"""E1 — Theorem 2.1.6: offline LLL schedules on general networks.

Regenerates the upper-bound claim: any workload with congestion ``C`` and
dilation ``D`` is schedulable in ``O((L+D) C (D log D)^(1/B) / B)`` flit
steps.  We build random layered workloads, construct and *execute* the
schedule for each ``B``, and report measured makespan against the bound
formula.  Shape checks: makespan falls monotonically with ``B``, every
run is block-free, and the measured/bound ratio stays within a constant
band across the sweep.
"""

import numpy as np
import pytest

from repro import Table, bounds, execute_schedule, lll_schedule
from repro.network.random_networks import layered_network, random_walk_paths
from repro.routing.paths import congestion, dilation, paths_from_node_walks
from repro.sim.sweep import TrialSpec, run_sweep

BS = (1, 2, 3, 4)


def build_workload(width, depth, messages, seed):
    rng = np.random.default_rng(seed)
    net = layered_network(width, depth, 3, rng)
    walks = random_walk_paths(net, width, depth, messages, rng)
    return net, paths_from_node_walks(net, walks)


def schedule_specs(width, depth, messages, L):
    """The E1 grid as sweep trials.

    ``schedule_seed=B`` and the executor's default ``seed=0`` reproduce
    the historical per-``B`` loop exactly, so the recorded tables are
    unchanged by the sweep migration.
    """
    return [
        TrialSpec.make(
            "layered",
            "schedule",
            B=B,
            workload_params={
                "width": width,
                "depth": depth,
                "messages": messages,
                "seed": 7,
            },
            sim_params={"mode": "direct", "schedule_seed": B},
            message_length=L,
        )
        for B in BS
    ]


def sweep_rows(specs, L):
    rows = []
    for trial in run_sweep(specs):
        m = trial.metrics
        bound = bounds.general_upper_bound(
            L, m["congestion"], m["dilation"], trial.spec.B
        )
        rows.append(
            {
                "B": trial.spec.B,
                "classes": m["classes"],
                "makespan": m["makespan"],
                "bound": bound,
                "ratio": m["makespan"] / bound,
                "blocked": m["blocked"],
            }
        )
    return rows


@pytest.mark.parametrize(
    "width,depth,messages",
    [(12, 12, 150), (16, 24, 320)],
    ids=["mid", "deep"],
)
def test_e1_schedule_length_vs_b(benchmark, save_table, width, depth, messages):
    net, paths = build_workload(width, depth, messages, seed=7)
    C, D = congestion(paths), dilation(paths)
    L = D  # the L = Theta(D) regime of the lower bound
    specs = schedule_specs(width, depth, messages, L)

    rows = benchmark.pedantic(
        sweep_rows, args=(specs, L), iterations=1, rounds=1
    )

    table = Table(
        f"E1: Theorem 2.1.6 schedules (C={C}, D={D}, L={L}, "
        f"{messages} messages, width={width})",
        ["B", "classes", "makespan", "bound", "ratio", "blocked"],
    )
    for r in rows:
        table.add_row([r["B"], r["classes"], r["makespan"], r["bound"], r["ratio"], r["blocked"]])
    save_table(f"e1_w{width}_d{depth}", table)

    makespans = [r["makespan"] for r in rows]
    assert makespans == sorted(makespans, reverse=True)
    assert all(r["blocked"] == 0 for r in rows)
    # Every measured schedule sits under the theorem's formula with a
    # small constant (random instances sit well under the worst case,
    # especially at B = 1 where the bound carries the full D log D).
    assert all(r["ratio"] <= 1.5 for r in rows)


def test_e1c_verbatim_construction(benchmark, save_table):
    """The paper's construction with its *verbatim* stage parameters
    (3e, 32e, 15 ln^3): class counts stay within the theorem's
    C (D log D)^(1/B) / B form, and the executed schedule still verifies
    block-free."""
    from repro import bounds as bnd

    net, paths = build_workload(10, 8, 110, seed=13)
    C, D = congestion(paths), dilation(paths)
    L = D

    def sweep():
        rows = []
        for B in (2, 3):  # B=1 verbatim r is in the thousands; skip
            build = lll_schedule(
                paths, L, B=B, rng=np.random.default_rng(B), mode="theory"
            )
            res = execute_schedule(net, paths, build.schedule, B=B)
            kappa_bound = bnd.color_classes_bound(C, D, B)
            rows.append(
                {
                    "B": B,
                    "classes (verbatim + merge)": build.num_classes,
                    "kappa bound C(DlogD)^(1/B)/B": kappa_bound,
                    "makespan": int(res.makespan),
                    "blocked": int(res.total_blocked_steps),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, iterations=1, rounds=1)
    table = Table(
        f"E1c: Theorem 2.1.6 verbatim construction (C={C}, D={D}, L={L})",
        list(rows[0].keys()),
    )
    for r in rows:
        table.add_row(list(r.values()))
    save_table("e1c_verbatim", table)

    for r in rows:
        assert r["blocked"] == 0
        assert r["classes (verbatim + merge)"] <= 3 * r["kappa bound C(DlogD)^(1/B)/B"]


def test_e1_speedup_scaling_with_depth(benchmark, save_table):
    """The B = 1 -> 2 speedup grows with D on congested workloads —
    the D^(1-1/B) flavor of the theorem's gap."""

    def measure():
        out = []
        for depth in (6, 24):
            net, paths = build_workload(10, depth, 40 * depth // 3, seed=3)
            L = dilation(paths)
            spans = {}
            for B in (1, 2):
                build = lll_schedule(
                    paths, L, B=B, rng=np.random.default_rng(0), mode="direct"
                )
                spans[B] = execute_schedule(
                    net, paths, build.schedule, B=B
                ).makespan
            out.append(
                {
                    "depth": depth,
                    "C": congestion(paths),
                    "t(B=1)": spans[1],
                    "t(B=2)": spans[2],
                    "speedup": spans[1] / spans[2],
                }
            )
        return out

    rows = benchmark.pedantic(measure, iterations=1, rounds=1)
    table = Table(
        "E1b: measured speedup B=1 -> B=2 vs depth",
        ["depth", "C", "t(B=1)", "t(B=2)", "speedup"],
    )
    for r in rows:
        table.add_row(list(r.values()))
    save_table("e1b_speedup_vs_depth", table)
    assert all(r["speedup"] > 1.2 for r in rows)
