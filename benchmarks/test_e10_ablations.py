"""E10 — ablations over the design choices DESIGN.md calls out.

* **Color count beta** (Section 3.1): too few colors per round -> many
  discards and extra rounds; too many -> each round is slow.  The total
  flit-step cost is the product; we sweep beta.
* **Refinement mode** (Section 2.1): the paper's verbatim stage
  parameters ("theory") versus the adaptive cascade and the one-stage
  direct refinement, with and without class merging.
* **Arbitration policy** of the flit-level simulator: random vs age vs
  index priorities under greedy injection.
* **Two passes vs one pass** on the butterfly: Valiant's random
  intermediate is what removes adversarial structure.
"""

import numpy as np
import pytest

from repro import (
    ButterflyRouter,
    Table,
    WormholeSimulator,
    lll_schedule,
    random_q_relation,
)
from repro.core.butterfly_lower_bound import one_pass_route
from repro.network.random_networks import layered_network, random_walk_paths
from repro.routing.paths import paths_from_node_walks
from repro.routing.problems import transpose_permutation


def test_e10_beta_sweep(benchmark, save_table):
    n, q = 64, 6
    inst = random_q_relation(n, q, np.random.default_rng(0))

    def sweep():
        rows = []
        for beta in (0.25, 0.5, 1.0, 2.0, 4.0):
            router = ButterflyRouter(n, B=2, message_length=8, beta=beta, seed=1)
            out = router.route(inst)
            rows.append(
                {
                    "beta": beta,
                    "colors/round": out.rounds[0].num_colors,
                    "rounds": out.num_rounds_used,
                    "flit steps": out.total_flit_steps,
                    "delivered": out.all_delivered,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, iterations=1, rounds=1)
    table = Table(
        f"E10a: color-constant beta ablation (n={n}, q={q}, B=2, L=8)",
        list(rows[0].keys()),
    )
    for r in rows:
        table.add_row(list(r.values()))
    save_table("e10a_beta", table)

    assert all(r["delivered"] for r in rows)
    # Fewer colors -> at least as many rounds needed.
    rounds = [r["rounds"] for r in rows]
    assert rounds == sorted(rounds, reverse=True)


def test_e10_refinement_modes(benchmark, save_table):
    rng = np.random.default_rng(5)
    net = layered_network(10, 10, 3, rng)
    walks = random_walk_paths(net, 10, 10, 120, rng)
    paths = paths_from_node_walks(net, walks)
    del net

    from repro.core.coloring import reduce_multiplex_size

    def sweep():
        rows = []
        for mode in ("direct", "adaptive", "theory"):
            for B in (1, 2):
                if mode == "theory" and B == 1:
                    # Verbatim constants at B = 1 produce r in the
                    # thousands; skip to keep the bench fast.
                    continue
                raw = reduce_multiplex_size(
                    paths, B=B, rng=np.random.default_rng(0),
                    mode=mode, merge=False,
                )
                merged = reduce_multiplex_size(
                    paths, B=B, rng=np.random.default_rng(0),
                    mode=mode, merge=True,
                )
                rows.append(
                    {
                        "mode": mode,
                        "B": B,
                        "raw classes": raw.num_color_classes,
                        "merged classes": merged.num_color_classes,
                        "stages": len(raw.stages),
                    }
                )
        return rows

    rows = benchmark.pedantic(sweep, iterations=1, rounds=1)
    table = Table("E10b: refinement-mode ablation (class counts)", list(rows[0].keys()))
    for r in rows:
        table.add_row(list(r.values()))
    save_table("e10b_modes", table)

    raw = {(r["mode"], r["B"]): r["raw classes"] for r in rows}
    merged = {(r["mode"], r["B"]): r["merged classes"] for r in rows}
    # Before merging, the paper's verbatim constants cost the most classes
    # and the one-stage direct refinement the fewest.
    assert raw[("direct", 2)] <= raw[("adaptive", 2)] <= raw[("theory", 2)]
    # Merging never increases class counts and recovers most of the gap.
    for key, m in merged.items():
        assert m <= raw[key]


def test_e10_arbitration_policies(benchmark, save_table):
    rng = np.random.default_rng(9)
    net = layered_network(8, 8, 2, rng)
    walks = random_walk_paths(net, 8, 8, 100, rng)
    paths = paths_from_node_walks(net, walks)

    def sweep():
        rows = []
        # "rank" is the fixed-random-priority discipline of Greenberg and
        # Oh's universal wormhole algorithm [19].
        for priority in ("random", "age", "index", "rank"):
            res = WormholeSimulator(net, 2, priority=priority, seed=3).run(
                paths, message_length=8
            )
            assert res.all_delivered
            rows.append(
                {
                    "priority": priority,
                    "makespan": int(res.makespan),
                    "total blocked": int(res.total_blocked_steps),
                    "mean latency": float(np.mean(res.latencies())),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, iterations=1, rounds=1)
    table = Table(
        "E10c: greedy-injection arbitration ablation (B=2, L=8)",
        list(rows[0].keys()),
    )
    for r in rows:
        table.add_row(list(r.values()))
    save_table("e10c_arbitration", table)
    spans = [r["makespan"] for r in rows]
    assert max(spans) / min(spans) < 1.6  # policy is a constant factor


def test_e10_one_vs_two_passes(benchmark, save_table):
    """Valiant's point: one-pass greedy time depends on the permutation's
    structure (transpose concentrates sqrt(n) worms per middle edge),
    while the two-pass randomized algorithm costs the same on any input."""
    from repro.routing.problems import random_permutation

    n = 256
    structured = transpose_permutation(n)
    random_inst = random_permutation(n, np.random.default_rng(1))

    def measure():
        out = {}
        out["one-pass transpose"] = one_pass_route(
            n, structured, B=1, L=8, seed=0
        ).measured_time
        out["one-pass random perm"] = one_pass_route(
            n, random_inst, B=1, L=8, seed=0
        ).measured_time
        two_s = ButterflyRouter(n, B=1, message_length=8, seed=0).route(structured)
        two_r = ButterflyRouter(n, B=1, message_length=8, seed=0).route(random_inst)
        assert two_s.all_delivered and two_r.all_delivered
        out["two-pass transpose"] = two_s.total_flit_steps
        out["two-pass random perm"] = two_r.total_flit_steps
        return out

    data = benchmark.pedantic(measure, iterations=1, rounds=1)
    table = Table(
        f"E10d: structured vs random permutations on n={n} (B=1, L=8)",
        ["algorithm / input", "flit steps"],
    )
    for k, v in data.items():
        table.add_row([k, v])
    save_table("e10d_passes", table)

    # Structure hurts the one-pass router...
    assert data["one-pass transpose"] > 1.5 * data["one-pass random perm"]
    # ...but the randomized two-pass cost is input-independent.
    ratio = data["two-pass transpose"] / data["two-pass random perm"]
    assert 0.5 < ratio < 2.0
