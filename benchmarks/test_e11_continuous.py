"""E11 — continuous routing (Scheideler-Vocking [43], Section 1.3.1).

The paper's batch bounds have a steady-state sibling: the maximum
injection rate a wormhole network can sustain carries the same
``D^(1/B)`` factor.  We inject Bernoulli traffic (random destinations)
into a butterfly at increasing per-input rates, classify each rate as
stable/unstable by the backlog trend, and report the measured knee per
``B``.  Shape checks: the knee rises monotonically with ``B``, and the
relative gain from B=1 to B=2 exceeds the gain from B=2 to B=4
(diminishing returns, consistent with the ``log^(1/B)``-type factor).
"""

import numpy as np
import pytest

from repro import Butterfly, Table
from repro.sim.continuous import ContinuousWormholeSimulator

N = 32
L = 6
HORIZON = 2500
RATES = (0.01, 0.02, 0.04, 0.08, 0.16, 0.32)


def path_gen(bf):
    def path_of(source, rng):
        return list(bf.path_edges(source, int(rng.integers(bf.n))))

    return path_of


def is_stable(res):
    """Backlog shows no growth trend (queueing fluctuation is fine)."""
    return res.backlog_slope() < 0.05


def knee(bf, B):
    """Largest tested rate that is still stable."""
    best = 0.0
    for rate in RATES:
        sim = ContinuousWormholeSimulator(bf, bf.n, B, seed=17)
        res = sim.run(rate, L, path_gen(bf), horizon=HORIZON, sample_every=100)
        if is_stable(res):
            best = rate
        else:
            break
    return best


def test_e11_stability_knee(benchmark, save_table):
    bf = Butterfly(N)

    def sweep():
        return {B: knee(bf, B) for B in (1, 2, 4)}

    knees = benchmark.pedantic(sweep, iterations=1, rounds=1)
    table = Table(
        f"E11: max stable injection rate (n={N} butterfly, L={L}, "
        f"random destinations, horizon={HORIZON})",
        ["B", "max stable rate (per input per flit step)"],
    )
    for B, r in knees.items():
        table.add_row([B, r])
    save_table("e11_stability", table)

    assert knees[1] < knees[2] <= knees[4]


def test_e11_latency_vs_rate(benchmark, save_table):
    """Below the knee, latency stays near L + D - 1 and rises with load;
    past it, latency and backlog blow up."""
    bf = Butterfly(N)

    def sweep():
        rows = []
        for B in (1, 2):
            for rate in (0.02, 0.08, 0.32):
                sim = ContinuousWormholeSimulator(bf, bf.n, B, seed=23)
                res = sim.run(rate, L, path_gen(bf), horizon=1500, sample_every=100)
                rows.append(
                    {
                        "B": B,
                        "rate": rate,
                        "throughput": res.throughput,
                        "mean latency": res.mean_latency,
                        "backlog slope": res.backlog_slope(),
                    }
                )
        return rows

    rows = benchmark.pedantic(sweep, iterations=1, rounds=1)
    table = Table("E11b: latency and backlog vs injection rate", list(rows[0].keys()))
    for r in rows:
        table.add_row(list(r.values()))
    save_table("e11b_latency", table)

    floor = L + bf.log_n - 1
    for r in rows:
        assert r["mean latency"] >= floor - 1e-9
    # At the same overloaded rate, B = 2 sustains more throughput.
    over1 = [r for r in rows if r["B"] == 1 and r["rate"] == 0.32][0]
    over2 = [r for r in rows if r["B"] == 2 and r["rate"] == 0.32][0]
    assert over2["throughput"] > over1["throughput"]