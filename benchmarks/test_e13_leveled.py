"""E13 — leveled networks: the O(LCD) bound of Ranade et al. [41].

Greedy wormhole routing on leveled networks finishes in ``O(L C D)``
flit steps at ``B = 1`` (Section 1.3.1) — and that bound is tight for
some instances (their lower-bound construction, generalized by the
paper's Theorem 2.2.1).  We sweep congestion on random leveled
workloads, verify the measured time stays under ``L C D`` while growing
with C, and show the random-delay smoothing trick cutting blocking.
"""

import numpy as np
import pytest

from repro import Table
from repro.core.leveled import (
    leveled_bound,
    random_delay_release,
    route_leveled_greedy,
)
from repro.network.random_networks import layered_network, random_walk_paths
from repro.routing.paths import congestion, dilation, paths_from_node_walks

WIDTH, DEPTH, L = 10, 10, 12


def build(messages, seed):
    rng = np.random.default_rng(seed)
    net = layered_network(WIDTH, DEPTH, 3, rng)
    walks = random_walk_paths(net, WIDTH, DEPTH, messages, rng)
    return net, paths_from_node_walks(net, walks)


def test_e13_lcd_bound(benchmark, save_table):
    def sweep():
        rows = []
        for messages in (40, 120, 360):
            net, paths = build(messages, seed=2)
            C, D = congestion(paths), dilation(paths)
            res = route_leveled_greedy(net, paths, L, B=1, seed=0)
            assert res.all_delivered
            rows.append(
                {
                    "messages": messages,
                    "C": C,
                    "D": D,
                    "measured": int(res.makespan),
                    "LCD bound": leveled_bound(L, C, D),
                    "ratio": res.makespan / leveled_bound(L, C, D),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, iterations=1, rounds=1)
    table = Table(
        f"E13: greedy wormhole on leveled networks (L={L}, B=1)",
        list(rows[0].keys()),
    )
    for r in rows:
        table.add_row(list(r.values()))
    save_table("e13_leveled", table)

    for r in rows:
        assert r["measured"] <= r["LCD bound"]
    measured = [r["measured"] for r in rows]
    assert measured == sorted(measured)  # grows with congestion


def test_e13_random_delay_smoothing(benchmark, save_table):
    net, paths = build(240, seed=3)
    C = congestion(paths)

    def measure():
        plain = route_leveled_greedy(net, paths, L, B=1, seed=0)
        rel = random_delay_release(len(paths), L, C, np.random.default_rng(1))
        smoothed = route_leveled_greedy(
            net, paths, L, B=1, release_times=rel, seed=0
        )
        return plain, smoothed

    plain, smoothed = benchmark.pedantic(measure, iterations=1, rounds=1)
    table = Table(
        "E13b: random-delay smoothing ([26, 27] trick) at B = 1",
        ["variant", "makespan", "total blocked steps"],
    )
    table.add_row(["greedy", plain.makespan, plain.total_blocked_steps])
    table.add_row(
        ["greedy + random delays", smoothed.makespan, smoothed.total_blocked_steps]
    )
    save_table("e13b_smoothing", table)

    assert smoothed.total_blocked_steps < plain.total_blocked_steps
