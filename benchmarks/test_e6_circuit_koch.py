"""E6 — Koch [22]: circuit-switched butterfly throughput
``Theta(n / log^(1/B) n)`` (Section 1.3.3).

The direct ancestor of the paper's superlinear claim: raising per-edge
circuit capacity from 1 to B multiplies throughput by about
``log^(1 - 1/B) n`` — more than the constant-factor hardware cost.
We sweep n and B with random destinations, reporting mean survivors
against the closed form.
"""

import numpy as np
import pytest

from repro import Butterfly, Table, bounds, circuit_switch_butterfly

NS = (64, 256, 1024)
BS = (1, 2, 3, 4)
TRIALS = 12


def mean_survivors(n, B, seed):
    bf = Butterfly(n)
    rng = np.random.default_rng(seed)
    vals = [
        circuit_switch_butterfly(bf, rng.integers(0, n, n), B, rng).num_survivors
        for _ in range(TRIALS)
    ]
    return float(np.mean(vals))


def test_e6_koch_throughput(benchmark, save_table):
    from repro.analysis.circuit_recursion import expected_survivors

    def sweep():
        return {
            (n, B): mean_survivors(n, B, seed=n + B) for n in NS for B in BS
        }

    data = benchmark.pedantic(sweep, iterations=1, rounds=1)
    table = Table(
        f"E6: circuit-switched butterfly survivors (random dests, "
        f"{TRIALS} trials)",
        ["n", "B", "survivors", "KS/Koch recursion", "n/log^(1/B) n", "ratio"],
    )
    for (n, B), s in data.items():
        k = bounds.koch_circuit_throughput(n, B)
        table.add_row([n, B, s, expected_survivors(n, B), k, s / k])
    save_table("e6_koch", table)

    # The analytic recursion tracks the simulation within a few percent.
    for (n, B), s in data.items():
        assert abs(s - expected_survivors(n, B)) / s < 0.08

    for n in NS:
        col = [data[(n, B)] for B in BS]
        assert col == sorted(col)  # monotone in B
    # Superlinear benefit: B=2 recovers far more than 2x the *loss* at B=1.
    for n in NS:
        lost_b1 = n - data[(n, 1)]
        lost_b2 = n - data[(n, 2)]
        assert lost_b2 < lost_b1 / 3
    # Theta shape: survivors / (n / log^(1/B) n) stays in a narrow band
    # across n for each B.
    for B in BS:
        ratios = [
            data[(n, B)] / bounds.koch_circuit_throughput(n, B) for n in NS
        ]
        assert max(ratios) / min(ratios) < 2.0


def test_e6_fraction_decays_as_log(benchmark, save_table):
    """At B = 1 the surviving fraction ~ c / log n: fraction * log n is
    nearly constant across two octaves of n."""

    def sweep():
        return {n: mean_survivors(n, 1, seed=9) for n in (64, 256, 1024, 4096)}

    data = benchmark.pedantic(sweep, iterations=1, rounds=1)
    table = Table(
        "E6b: B = 1 surviving fraction vs 1/log n",
        ["n", "fraction", "fraction * log2 n"],
    )
    products = []
    for n, s in data.items():
        frac = s / n
        products.append(frac * np.log2(n))
        table.add_row([n, frac, products[-1]])
    save_table("e6b_kruskal_snir", table)
    assert max(products) / min(products) < 1.5
