"""Probe-overhead benchmarks for the telemetry subsystem.

The design contract is that an empty probe set is free (the simulators
skip all dispatch behind one ``None`` check) and the standard collector
bundle costs a bounded constant factor.  These benchmarks keep both
claims measurable: compare ``test_perf_wormhole_bare`` against
``test_perf_wormhole_instrumented`` in the same run.
"""

import numpy as np
import pytest

from repro import WormholeSimulator
from repro.network.random_networks import layered_network, random_walk_paths
from repro.routing.paths import paths_from_node_walks
from repro.telemetry import TraceRecorder, Watchdog, standard_collectors


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(0)
    net = layered_network(16, 16, 3, rng)
    walks = random_walk_paths(net, 16, 16, 400, rng)
    return net, paths_from_node_walks(net, walks)


def test_perf_wormhole_bare(benchmark, workload):
    net, paths = workload

    def run():
        return WormholeSimulator(net, 2, seed=0).run(paths, message_length=10)

    result = benchmark(run)
    assert result.all_delivered


def test_perf_wormhole_instrumented(benchmark, workload):
    net, paths = workload
    baseline = WormholeSimulator(net, 2, seed=0).run(paths, message_length=10)

    def run():
        return WormholeSimulator(net, 2, seed=0).run(
            paths,
            message_length=10,
            telemetry=standard_collectors() + [Watchdog()],
        )

    result = benchmark(run)
    assert result.all_delivered
    assert np.array_equal(result.completion_times, baseline.completion_times)


def test_perf_trace_recording(benchmark, workload):
    net, paths = workload

    def run():
        recorder = TraceRecorder()
        WormholeSimulator(net, 2, seed=0).run(
            paths, message_length=10, telemetry=[recorder]
        )
        return recorder.to_trace()

    trace = benchmark(run)
    assert trace.events["grant"][0].size > 0
