"""E8 — the paper's "sandwich": lower bound <= LLL schedule <= naive.

On a shared workload, stack the Theorem 2.2.1 form ``L C D^(1/B) / B``,
the measured/naive footnote-5 schedule ``O((L+D) C D)``, and the
Theorem 2.1.6 schedule — showing the construction sits between the
theoretical floor and the naive ceiling, and that only the ``B``-aware
construction reaps the virtual-channel gain.
"""

import numpy as np
import pytest

from repro import (
    Table,
    bounds,
    execute_schedule,
    lll_schedule,
    naive_coloring_schedule,
)
from repro.network.random_networks import layered_network, random_walk_paths
from repro.routing.paths import congestion, dilation, paths_from_node_walks


def test_e8_sandwich(benchmark, save_table):
    rng = np.random.default_rng(11)
    net = layered_network(width=12, depth=14, out_degree=3, rng=rng)
    walks = random_walk_paths(net, 12, 14, 200, rng)
    paths = paths_from_node_walks(net, walks)
    C, D = congestion(paths), dilation(paths)
    L = D

    def measure():
        rows = []
        naive = naive_coloring_schedule(paths, L)
        naive_span = execute_schedule(net, paths, naive.schedule, B=1).makespan
        for B in (1, 2, 4):
            build = lll_schedule(
                paths, L, B=B, rng=np.random.default_rng(B), mode="direct"
            )
            span = execute_schedule(net, paths, build.schedule, B=B).makespan
            rows.append(
                {
                    "B": B,
                    "omega form LCD^(1/B)/B": bounds.general_lower_bound(L, C, D, B),
                    "LLL schedule (measured)": int(span),
                    "naive schedule (measured, B=1)": int(naive_span),
                    "naive bound (L+D)CD": bounds.naive_coloring_bound(L, C, D),
                }
            )
        return rows

    rows = benchmark.pedantic(measure, iterations=1, rounds=1)
    table = Table(
        f"E8: schedule sandwich (C={C}, D={D}, L={L}, 200 messages)",
        list(rows[0].keys()),
    )
    for r in rows:
        table.add_row(list(r.values()))
    save_table("e8_sandwich", table)

    for r in rows:
        # The LLL schedule always beats the naive *bound*; with B >= 2 it
        # beats the naive schedule's measured makespan too.
        assert r["LLL schedule (measured)"] < r["naive bound (L+D)CD"]
        if r["B"] >= 2:
            assert r["LLL schedule (measured)"] < r["naive schedule (measured, B=1)"]
    spans = [r["LLL schedule (measured)"] for r in rows]
    assert spans == sorted(spans, reverse=True)
