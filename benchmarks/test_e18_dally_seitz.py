"""E18 — the Dally-Seitz construction [14] at flit level (Section 1).

The paper opens with *why* virtual channels exist: Dally and Seitz used
them to make wormhole routing deadlock-free by restricting which virtual
channel a worm may occupy so the channel dependency graph is acyclic.
We reproduce the full story on a torus:

* at B = 1, dimension-order routing on a torus deadlocks (ring cycles);
* at B = 2 with *interchangeable* slots — the paper's Section 1.1 model —
  adversarial ring traffic can still deadlock (all slots fill);
* at B = 2 with *dateline classes* — Dally-Seitz proper — the CDG is
  acyclic and every run delivers.
"""

import numpy as np
import pytest

from repro import Table, WormholeSimulator, dateline_vc_assignment, dimension_order_path
from repro.network.mesh import KAryNCube
from repro.routing.paths import paths_from_node_walks
from repro.routing.traffic import tornado_traffic


def build_torus_workload(k):
    cube = KAryNCube(k=k, n=2, wrap=True)
    demands = tornado_traffic(cube)  # everyone turns the same way: rings fill
    walks = [dimension_order_path(cube, s, d) for s, d in demands]
    paths = paths_from_node_walks(cube.network, walks)
    vc_of = dateline_vc_assignment(cube)
    vcs = [[vc_of(p, h) for h in range(p.length)] for p in paths]
    return cube, paths, vcs


def test_e18_dateline_story(benchmark, save_table):
    k, L = 4, 8
    cube, paths, vcs = build_torus_workload(k)

    def sweep():
        rows = []
        for name, B, use_classes in [
            ("B=1", 1, False),
            ("B=2 interchangeable", 2, False),
            ("B=2 dateline classes", 2, True),
        ]:
            deadlocks, delivered, spans = 0, 0, []
            for seed in range(10):
                sim = WormholeSimulator(cube.network, B, seed=seed)
                res = sim.run(
                    paths,
                    message_length=L,
                    vc_ids=vcs if use_classes else None,
                )
                deadlocks += int(res.deadlocked)
                delivered += int(res.all_delivered)
                if res.all_delivered:
                    spans.append(res.makespan)
            rows.append(
                {
                    "configuration": name,
                    "deadlocks/10": deadlocks,
                    "full deliveries/10": delivered,
                    "mean makespan (successes)": (
                        float(np.mean(spans)) if spans else float("nan")
                    ),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, iterations=1, rounds=1)
    table = Table(
        f"E18: tornado traffic on a {k}x{k} torus, dimension-order routes "
        f"(L={L}, 10 seeds)",
        list(rows[0].keys()),
    )
    for r in rows:
        table.add_row(list(r.values()))
    save_table("e18_dally_seitz", table)

    by = {r["configuration"]: r for r in rows}
    assert by["B=1"]["deadlocks/10"] > 0
    assert by["B=2 dateline classes"]["deadlocks/10"] == 0
    assert by["B=2 dateline classes"]["full deliveries/10"] == 10
    # Dateline classes never do worse on deliveries than interchangeable.
    assert (
        by["B=2 dateline classes"]["full deliveries/10"]
        >= by["B=2 interchangeable"]["full deliveries/10"]
    )
