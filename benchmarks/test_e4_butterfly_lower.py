"""E4 — Section 3.2: collisions and the one-pass lower bound.

Three reproductions:

* **Lemma 3.2.3** (balls in bins): empirical ``Pr[no bin > B]`` against
  the closed form, falling as the ball count grows.
* **Theorem 3.2.5** (collisions): the probability that a random
  ``s``-subset of a random routing problem's messages collides rises to
  1 as ``s`` grows toward the theorem's ``s`` value.
* **Theorem 3.2.1 shape**: a greedy one-pass algorithm's measured time
  meets the phase-counting floor ``n q L / s`` and responds to ``B`` the
  way ``l^(1/B)/B`` predicts.
"""

import numpy as np
import pytest

from repro import Table, bounds, one_pass_route, random_destinations, subset_collision_rate, truncated_paths
from repro.analysis.balls_bins import lemma_3_2_3_bound, prob_no_bin_exceeds


def test_e4_balls_in_bins(benchmark, save_table):
    n, B = 64, 1
    ms = (8, 16, 32, 64)

    def measure():
        rng = np.random.default_rng(0)
        return [prob_no_bin_exceeds(m, n, B, 3000, rng) for m in ms]

    probs = benchmark.pedantic(measure, iterations=1, rounds=1)
    table = Table(
        f"E4a: Lemma 3.2.3 balls-in-bins (n={n} bins, B={B})",
        ["m", "Pr[max load <= B] (measured)", "closed-form bound (alpha=0.05)"],
    )
    for m, p in zip(ms, probs):
        table.add_row([m, p, lemma_3_2_3_bound(m, n, B, 0.05, statement_exponent=False)])
    save_table("e4a_balls_bins", table)
    assert probs == sorted(probs, reverse=True)
    for m, p in zip(ms, probs):
        assert p <= lemma_3_2_3_bound(m, n, B, 0.05, statement_exponent=False)


def test_e4_collision_probability(benchmark, save_table):
    n, q, L, B = 64, 4, 8, 1
    inst = random_destinations(n, q, np.random.default_rng(2))
    _, edges = truncated_paths(n, inst, L)
    sizes = (4, 16, 48, 128)

    def measure():
        rng = np.random.default_rng(3)
        return [
            subset_collision_rate(edges, s, B, trials=80, rng=rng) for s in sizes
        ]

    rates = benchmark.pedantic(measure, iterations=1, rounds=1)
    table = Table(
        f"E4b: Theorem 3.2.5 collision rates (n={n}, q={q}, L={L}, B={B}; "
        f"paper s = {bounds.butterfly_subset_size(n, q, L, B):.0f})",
        ["subset size s", "Pr[collides]"],
    )
    for s, r in zip(sizes, rates):
        table.add_row([s, r])
    save_table("e4b_collisions", table)
    assert rates[-1] == 1.0  # large subsets always collide
    assert all(a <= b + 0.05 for a, b in zip(rates[:-1], rates[1:]))


def test_e4_strip_decomposition(benchmark, save_table):
    """Lemma 3.2.4: collisions per strip of the truncated butterfly.

    The proof cuts the truncation into strips of log m levels and counts
    collisions inside each strip's disjoint subbutterflies; empirically
    every strip catches collisions once the load passes a few messages
    per input, and involvement grows with q.
    """
    from repro.core.butterfly_lower_bound import (
        strip_collision_counts,
        strip_decomposition,
    )

    n, L, B = 64, 8, 1

    def sweep():
        rows = []
        for q in (1, 2, 4, 8):
            inst = random_destinations(n, q, np.random.default_rng(q))
            bf, edges = truncated_paths(n, inst, L)
            counts = strip_collision_counts(bf, edges, B)
            rows.append(
                {
                    "q": q,
                    "messages": n * q,
                    "strips": len(strip_decomposition(bf)),
                    "involved per strip": str(counts),
                    "total involved": sum(counts),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, iterations=1, rounds=1)
    table = Table(
        f"E4d: Lemma 3.2.4 strip collisions (n={n}, l=min(L, log n), B={B})",
        list(rows[0].keys()),
    )
    for r in rows:
        table.add_row(list(r.values()))
    save_table("e4d_strips", table)

    totals = [r["total involved"] for r in rows]
    assert totals == sorted(totals)  # involvement grows with load
    assert rows[-1]["total involved"] > rows[0]["total involved"]


def test_e4_one_pass_floor(benchmark, save_table):
    n, q, L = 64, 6, 12

    def measure():
        rows = []
        for B in (1, 2, 3):
            inst = random_destinations(n, q, np.random.default_rng(4))
            out = one_pass_route(n, inst, B=B, L=L, seed=0)
            assert out.result.all_delivered
            rows.append(
                {
                    "B": B,
                    "measured": out.measured_time,
                    "phase floor nqL/s": out.time_lower_bound,
                    "theorem form": bounds.butterfly_lower_bound(L, q, n, B),
                }
            )
        return rows

    rows = benchmark.pedantic(measure, iterations=1, rounds=1)
    table = Table(
        f"E4c: greedy one-pass routing (n={n}, q={q}, L={L})",
        ["B", "measured", "phase floor nqL/s", "theorem form"],
    )
    for r in rows:
        table.add_row(list(r.values()))
    save_table("e4c_one_pass", table)
    measured = [r["measured"] for r in rows]
    assert measured == sorted(measured, reverse=True)  # B helps
    # The B=1 run must respect the unobstructed floor by a wide margin
    # (heavy congestion), demonstrating the lower bound's bite.
    assert measured[0] > 3 * (L + rows[0]["B"])
