"""E16 — offline (Thm 2.1.6) vs online ([13]-style) vs global (Waksman).

The paper positions its offline network-independent algorithm against
the online algorithm of Cypher et al. [13] and, on permutations, against
Waksman's globally-coordinated Benes routing [48].  We run all three
coordination levels on matched workloads:

* offline LLL schedule (global knowledge, block-free guarantee);
* online random delays (local, randomized; [13]-shaped window) — our
  documented stand-in for the [13] protocol;
* greedy (no coordination at all);
* Waksman on a Benes network (global switch setting; permutations only).
"""

import numpy as np
import pytest

from repro import Table, WormholeSimulator, execute_schedule, lll_schedule
from repro.core.benes_routing import route_permutation_benes
from repro.core.online_routing import route_online_random_delays
from repro.network.random_networks import layered_network, random_walk_paths
from repro.routing.paths import congestion, dilation, paths_from_node_walks


def test_e16_coordination_ladder(benchmark, save_table):
    rng = np.random.default_rng(21)
    net = layered_network(12, 12, 3, rng)
    walks = random_walk_paths(net, 12, 12, 180, rng)
    paths = paths_from_node_walks(net, walks)
    C, D = congestion(paths), dilation(paths)
    L = 12

    def measure():
        rows = []
        for B in (1, 2):
            greedy = WormholeSimulator(net, B, seed=0).run(paths, L)
            online = route_online_random_delays(
                net, paths, L, B=B, rng=np.random.default_rng(1), seed=0
            )
            build = lll_schedule(
                paths, L, B=B, rng=np.random.default_rng(2), mode="direct"
            )
            offline = execute_schedule(net, paths, build.schedule, B=B)
            rows.append(
                {
                    "B": B,
                    "greedy makespan": int(greedy.makespan),
                    "greedy blocked": int(greedy.total_blocked_steps),
                    "online makespan": int(online.makespan),
                    "online blocked": int(online.total_blocked_steps),
                    "offline makespan": int(offline.makespan),
                    "offline blocked": int(offline.total_blocked_steps),
                }
            )
        return rows

    rows = benchmark.pedantic(measure, iterations=1, rounds=1)
    table = Table(
        f"E16: coordination ladder (C={C}, D={D}, L={L}, 180 messages)",
        list(rows[0].keys()),
    )
    for r in rows:
        table.add_row(list(r.values()))
    save_table("e16_coordination", table)

    for r in rows:
        # Blocking falls monotonically with coordination.
        assert r["offline blocked"] == 0
        assert r["online blocked"] < r["greedy blocked"]


def test_e16_waksman_is_optimal_for_permutations(benchmark, save_table):
    """On a Benes network Waksman's globally-set switches reach the
    absolute floor L + D - 1 that no online algorithm can beat."""
    n, L = 32, 10
    rng = np.random.default_rng(4)
    perm = rng.permutation(n)

    def measure():
        res = route_permutation_benes(perm, message_length=L)
        return int(res.makespan)

    span = benchmark.pedantic(measure, iterations=1, rounds=1)
    log_n = n.bit_length() - 1
    table = Table(
        f"E16b: Waksman permutation routing on Benes(n={n}), L={L}",
        ["quantity", "value"],
    )
    table.add_row(["makespan", span])
    table.add_row(["floor L + D - 1", L + 2 * log_n - 1])
    save_table("e16b_waksman", table)
    assert span == L + 2 * log_n - 1
