"""E5 — Section 1.4: wormhole + virtual channels vs virtual cut-through
vs store-and-forward at a fixed buffer budget.

The paper's comparison: per edge, a wormhole router stores one flit from
each of ``B`` messages; a cut-through router stores ``B`` flits of one
message; a store-and-forward router must buffer whole messages (here it
also gets ``B`` flits/step of bandwidth so its budget is comparable).
Claims reproduced:

* cut-through's speedup in ``B`` is at most linear (it behaves like a
  wormhole router with messages of length ``L/B``);
* wormhole + VC speedup is superlinear on deep workloads;
* store-and-forward wins when ``C >> D`` (Section 1.3.2's observation),
  wormhole wins on latency when paths are long and conflicts few.
"""

import numpy as np

from repro import (
    CutThroughSimulator,
    StoreForwardSimulator,
    Table,
    WormholeSimulator,
    build_hard_instance,
)
from repro.network.random_networks import chain_bundle
from repro.routing.paths import paths_from_node_walks
from repro.sim.sweep import run_sweep, sweep_grid


def test_e5_fixed_buffer_budget(benchmark, save_table):
    """Same workload, same per-edge buffer budget B across the routers.

    All three routers keep their historical ``seed=0`` (and each its
    constructor-default priority) so the measured makespans match the
    pre-sweep tables exactly.
    """
    BS = (1, 2, 4)
    specs = sweep_grid(
        "chain-bundle",
        ["wormhole", "cut_through", "store_forward"],
        BS,
        workload_params={"chains": 4, "depth": 12, "messages": 8},
        sim_params={"seed": 0},
        message_length=24,
    )

    def measure():
        out = run_sweep(specs)
        spans = {
            (t.spec.simulator, t.spec.B): t.metrics["makespan"] for t in out
        }
        return [
            {
                "B": B,
                "wormhole+VC": spans[("wormhole", B)],
                "cut-through": spans[("cut_through", B)],
                "store&fwd": spans[("store_forward", B)],
            }
            for B in BS
        ]

    rows = benchmark.pedantic(measure, iterations=1, rounds=1)
    table = Table(
        "E5: makespan by router at equal buffer budget (C=8, D=12, L=24)",
        ["B", "wormhole+VC", "cut-through", "store&fwd"],
    )
    for r in rows:
        table.add_row(list(r.values()))
    save_table("e5_router_comparison", table)

    wh = {r["B"]: r["wormhole+VC"] for r in rows}
    ct = {r["B"]: r["cut-through"] for r in rows}
    # Wormhole+VC improves with B at least as fast as cut-through.
    assert wh[4] < wh[1] and ct[4] <= ct[1]
    assert wh[1] / wh[4] >= ct[1] / ct[4] * 0.9
    # Cut-through's gain is at most ~linear in B.
    assert ct[1] / ct[4] <= 4.5
    # At B=1 the two coincide on this workload shape (1-flit buffers).
    assert abs(wh[1] - ct[1]) / wh[1] < 0.35


def test_e5_store_forward_crossover(benchmark, save_table):
    """C >> D: store-and-forward (L(C+D)) beats B=1 wormhole (~LCD);
    long paths with few conflicts: wormhole wins on latency."""

    def measure():
        # Regime 1: hard instance with C >> D.
        inst = build_hard_instance(C=8, D=7, B=1)
        L1 = inst.recommended_length(3.0)
        wh1 = WormholeSimulator(inst.network, 1, seed=0).run(inst.paths, L1).makespan
        sf1 = StoreForwardSimulator(inst.network, 1, seed=0).run(inst.paths, L1).makespan
        # Regime 2: one long quiet path.
        net, walks = chain_bundle(1, 16, 1)
        p2 = paths_from_node_walks(net, walks)
        L2 = 32
        wh2 = WormholeSimulator(net, 1).run(p2, L2).makespan
        sf2 = StoreForwardSimulator(net, 1).run(p2, L2).makespan
        return {
            "congested (C=8, D=7)": (wh1, sf1),
            "quiet long path": (wh2, sf2),
        }

    data = benchmark.pedantic(measure, iterations=1, rounds=1)
    table = Table(
        "E5b: wormhole vs store-and-forward crossover (B = 1)",
        ["regime", "wormhole", "store&fwd", "winner"],
    )
    for regime, (wh, sf) in data.items():
        table.add_row([regime, wh, sf, "store&fwd" if sf < wh else "wormhole"])
    save_table("e5b_crossover", table)

    wh1, sf1 = data["congested (C=8, D=7)"]
    wh2, sf2 = data["quiet long path"]
    assert sf1 < wh1  # Section 1.3.2: SF wins under heavy congestion
    assert wh2 < sf2  # wormhole's D + L - 1 vs L * D latency win


def _crossing_workload():
    """A trunk worm that blocks mid-route plus per-edge crossing worms.

    The blocked trunk worm's body is the interesting object: in a
    wormhole router it spans ~L edges (every crossing worm behind it
    waits); a cut-through router with B-flit buffers compresses it into
    ~L/B edges — the paper's 'behaves like a worm of length L/B'.
    """
    from repro.network.graph import Network

    net = Network()
    T, L = 12, 8
    nodes = net.add_nodes(range(T + 1))
    trunk = [net.add_edge(nodes[i], nodes[i + 1]) for i in range(T)]
    blk_src = net.add_node("blk")
    e_blk = net.add_edge(blk_src, nodes[T - 1])
    blocker = [e_blk, trunk[T - 1]]
    trunk_worm = trunk[: T - 1]  # blocks wanting trunk[T-1]...
    # Trunk worm takes the whole trunk; it will stall on the last edge.
    trunk_worm = trunk
    crossers = [[e] for e in trunk[: T - 2]]
    paths = [blocker, trunk_worm] + crossers
    release = np.zeros(len(paths), dtype=np.int64)
    release[2:] = T + L  # crossers wake once the trunk worm is parked
    lengths = np.full(len(paths), L, dtype=np.int64)
    lengths[0] = 3 * L  # long blocker keeps the trunk worm stalled
    return net, paths, release, lengths, L


def test_e5c_cut_through_compression(benchmark, save_table):
    """Crossing traffic behind a blocked worm: cut-through's B-flit
    buffers shrink the blocked worm's footprint roughly like L -> L/B."""
    net, paths, release, lengths, L = _crossing_workload()

    def measure():
        # Wormhole B=1: per-message lengths supported directly.
        wh = WormholeSimulator(net, 1, priority="index").run(
            paths, message_length=lengths, release_times=release
        )
        out = {"wormhole B=1": wh}
        for buf in (1, 2, 4, 8):
            ct = CutThroughSimulator(net, buf, priority="index").run(
                [list(p) for p in paths], message_length=lengths,
                release_times=release,
            )
            out[f"cut-through buf={buf}"] = ct
        return out

    results = benchmark.pedantic(measure, iterations=1, rounds=1)
    table = Table(
        "E5c: crossing worms behind a blocked trunk worm (T=12, L=8)",
        ["router", "crosser mean completion", "crossers blocked >0 steps"],
    )
    rows = {}
    for name, res in results.items():
        cross_times = res.completion_times[2:]
        blocked = int((res.blocked_steps[2:] > 0).sum())
        rows[name] = (float(np.mean(cross_times)), blocked)
        table.add_row([name, rows[name][0], blocked])
    save_table("e5c_compression", table)

    # The blocked worm's footprint is ceil(L/buf) edges; the crossers on
    # those edges (minus the head's) are exactly the stuck ones.
    for buf in (1, 2, 4, 8):
        footprint = -(-L // buf)
        assert rows[f"cut-through buf={buf}"][1] == footprint - 1
    # buf = 1 cut-through coincides with B = 1 wormhole here.
    assert rows["cut-through buf=1"] == rows["wormhole B=1"]
