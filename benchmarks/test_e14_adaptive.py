"""E14 — adaptive wormhole routing on meshes (Section 1.3.4's category).

The paper's survey distinguishes deterministic, adaptive, and
fully-adaptive minimal deadlock-free algorithms.  We measure the
Glass-Ni west-first turn model against deterministic XY routing on a 2-D
mesh, and demonstrate the deadlock landscape: fully-adaptive B=1 can
deadlock on a 4-worm cycle; a turn model or a second virtual channel
fixes it — virtual channels buying *correctness*, not just speed.
"""

import numpy as np
import pytest

from repro import Table
from repro.network.mesh import KAryNCube
from repro.sim.adaptive import AdaptiveMeshRouter

K = 6
L = 6


def row_concentrated_demands(mesh):
    return [
        (mesh.node((x, 0)), mesh.node((min(K - 1, x + 2), K - 1)))
        for x in range(K - 1)
        for _ in range(4)
    ]


def square_cycle(mesh):
    a, b = mesh.node((0, 0)), mesh.node((1, 0))
    c, d = mesh.node((1, 1)), mesh.node((0, 1))
    return [(a, c), (b, d), (c, a), (d, b)]


def test_e14_turn_model_vs_xy(benchmark, save_table):
    mesh = KAryNCube(k=K, n=2, wrap=False)
    demands = row_concentrated_demands(mesh)

    def sweep():
        rows = []
        for policy in ("dimension", "west-first", "fully-adaptive"):
            spans, blocked = [], []
            for seed in range(6):
                out = AdaptiveMeshRouter(mesh, 1, policy=policy, seed=seed).run(
                    demands, message_length=L
                )
                assert out.all_delivered
                spans.append(out.result.makespan)
                blocked.append(out.result.total_blocked_steps)
            rows.append(
                {
                    "policy": policy,
                    "mean makespan": float(np.mean(spans)),
                    "mean blocked steps": float(np.mean(blocked)),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, iterations=1, rounds=1)
    table = Table(
        f"E14: adaptive routing on a {K}x{K} mesh, row-concentrated load "
        f"(L={L}, B=1, 6 seeds)",
        list(rows[0].keys()),
    )
    for r in rows:
        table.add_row(list(r.values()))
    save_table("e14_adaptive", table)

    by = {r["policy"]: r["mean makespan"] for r in rows}
    assert by["west-first"] < 0.8 * by["dimension"]


def test_e14_deadlock_landscape(benchmark, save_table):
    mesh = KAryNCube(k=K, n=2, wrap=False)
    demands = square_cycle(mesh)

    def sweep():
        rows = []
        for policy, B in [
            ("fully-adaptive", 1),
            ("fully-adaptive", 2),
            ("west-first", 1),
            ("dimension", 1),
        ]:
            deadlocks = 0
            for seed in range(30):
                out = AdaptiveMeshRouter(mesh, B, policy=policy, seed=seed).run(
                    demands, message_length=4
                )
                deadlocks += int(out.result.deadlocked)
            rows.append(
                {"policy": policy, "B": B, "deadlocks/30 runs": deadlocks}
            )
        return rows

    rows = benchmark.pedantic(sweep, iterations=1, rounds=1)
    table = Table(
        "E14b: deadlocks on the 4-worm square cycle",
        list(rows[0].keys()),
    )
    for r in rows:
        table.add_row(list(r.values()))
    save_table("e14b_deadlocks", table)

    by = {(r["policy"], r["B"]): r["deadlocks/30 runs"] for r in rows}
    assert by[("fully-adaptive", 1)] > 0  # unrestricted adaptivity deadlocks
    assert by[("fully-adaptive", 2)] == 0  # a second VC rescues it
    assert by[("west-first", 1)] == 0  # the turn model rescues it
    assert by[("dimension", 1)] == 0
