"""E17 — multibutterflies: O(L + log n) via path diversity ([3]).

Arora-Leighton-Maggs route input-to-output permutations on an n-input
multibutterfly in O(L + log n) flit steps online.  We compare the
multibutterfly's adaptive router against the plain butterfly's unique
greedy paths on the same adversarial permutation, sweeping the
multiplicity d — showing the diversity (not just extra wires) is what
buys the bound.
"""

import numpy as np
import pytest

from repro import Butterfly, Table, WormholeSimulator
from repro.core.multibutterfly_routing import MultibutterflyRouter
from repro.network.multibutterfly import Multibutterfly
from repro.routing.problems import transpose_permutation


def test_e17_diversity_vs_unique_paths(benchmark, save_table):
    n, L = 64, 8
    inst = transpose_permutation(n)  # sqrt(n) congestion on the butterfly

    def measure():
        rows = []
        bf = Butterfly(n)
        edges = bf.path_edges_batch(inst.sources, inst.dests)
        res = WormholeSimulator(bf, 1, seed=0).run(
            [list(r) for r in edges], message_length=L
        )
        rows.append(
            {
                "network": "butterfly (unique paths)",
                "makespan": int(res.makespan),
                "blocked steps": int(res.total_blocked_steps),
            }
        )
        for d in (1, 2, 3):
            mbf = Multibutterfly(n, d=d, rng=np.random.default_rng(7))
            out = MultibutterflyRouter(mbf, 1, seed=0).run(inst, L)
            assert out.all_delivered
            rows.append(
                {
                    "network": f"multibutterfly d={d}",
                    "makespan": int(out.makespan),
                    "blocked steps": int(out.total_blocked_steps),
                }
            )
        return rows

    rows = benchmark.pedantic(measure, iterations=1, rounds=1)
    table = Table(
        f"E17: transpose permutation, n={n}, L={L}, B=1",
        list(rows[0].keys()),
    )
    for r in rows:
        table.add_row(list(r.values()))
    save_table("e17_multibutterfly", table)

    by = {r["network"]: r["makespan"] for r in rows}
    assert by["multibutterfly d=2"] < by["butterfly (unique paths)"]
    assert by["multibutterfly d=3"] <= by["multibutterfly d=1"]


def test_e17_l_plus_logn_scaling(benchmark, save_table):
    L = 8

    def sweep():
        rows = []
        from repro.routing.problems import random_permutation

        for n in (16, 64, 256, 1024):
            mbf = Multibutterfly(n, d=2, rng=np.random.default_rng(n))
            inst = random_permutation(n, np.random.default_rng(n + 1))
            res = MultibutterflyRouter(mbf, 1, seed=0).run(inst, L)
            assert res.all_delivered
            rows.append(
                {
                    "n": n,
                    "log n": mbf.log_n,
                    "makespan": int(res.makespan),
                    "L + log n": L + mbf.log_n,
                    "ratio": res.makespan / (L + mbf.log_n),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, iterations=1, rounds=1)
    table = Table(
        f"E17b: multibutterfly random permutations (d=2, B=1, L={L})",
        list(rows[0].keys()),
    )
    for r in rows:
        table.add_row(list(r.values()))
    save_table("e17b_scaling", table)

    ratios = [r["ratio"] for r in rows]
    assert max(ratios) < 6.0  # O(L + log n): bounded constant across n
    assert max(ratios) / min(ratios) < 3.0
