"""E7 — Figures 1 and 2: structural reproductions.

Fig. 1 is the eight-input butterfly; Fig. 2 shows a message routed in two
passes through the butterfly via a random intermediate node.  We rebuild
both as ASCII artifacts and assert the structural facts the figures
depict (node/level counts, straight+cross wiring, and the two-pass route
touching level log n in the middle).
"""

import numpy as np
import pytest

from repro import Butterfly, Table
from repro.analysis.render import render_butterfly


def test_e7_fig1_butterfly_structure(benchmark, save_table, results_dir):
    bf = Butterfly(8)

    art = benchmark.pedantic(render_butterfly, args=(bf,), iterations=1, rounds=1)
    (results_dir / "e7_fig1_butterfly.txt").write_text(art + "\n")

    # Section 1.2's facts about Fig. 1.
    assert bf.num_nodes == 8 * (3 + 1)
    assert bf.num_levels == 4
    net = bf.to_network()
    # Every non-output node has exactly one straight and one cross edge.
    for level in range(3):
        for w in range(8):
            succ = sorted(
                net.label(net.head(e))[0]
                for e in net.out_edges(bf.node(w, level))
            )
            assert len(succ) == 2
            assert w in succ
            assert (w ^ (1 << bf.cross_bit(level))) in succ
    # Inputs at level 0, outputs at level log n.
    assert [net.label(v) for v in bf.inputs()] == [(w, 0) for w in range(8)]
    assert [net.label(v) for v in bf.outputs()] == [(w, 3) for w in range(8)]


def test_e7_fig2_two_pass_route(benchmark, save_table):
    """Reproduce Fig. 2: source input -> random level-log n node ->
    destination output, as one worm path through the 2-pass cascade."""
    n = 8
    bf = Butterfly(n, passes=2)
    rng = np.random.default_rng(42)
    src, dst = 5, 2
    mid = int(rng.integers(n))

    def build():
        return bf.two_pass_path_edges_batch(
            np.array([src]), np.array([mid]), np.array([dst])
        )[0]

    edges = benchmark.pedantic(build, iterations=1, rounds=1)
    table = Table(
        f"E7: Fig. 2 two-pass route, input {src} -> intermediate {mid} "
        f"-> output {dst} (n={n})",
        ["hop", "level", "from column", "to column", "edge kind"],
    )
    for hop, e in enumerate(edges):
        tail, head = bf.edge_endpoints(int(e))
        kind = "straight" if bf.column_of(tail) == bf.column_of(head) else "cross"
        table.add_row(
            [hop, bf.level_of(tail), bf.column_of(tail), bf.column_of(head), kind]
        )
    save_table("e7_fig2_route", table)

    # The route's defining structure.
    assert len(edges) == 2 * bf.log_n
    tail0, _ = bf.edge_endpoints(int(edges[0]))
    assert bf.column_of(tail0) == src and bf.level_of(tail0) == 0
    _, mid_node = bf.edge_endpoints(int(edges[bf.log_n - 1]))
    assert bf.column_of(mid_node) == mid  # pass 1 ends at the intermediate
    assert bf.level_of(mid_node) == bf.log_n
    _, final = bf.edge_endpoints(int(edges[-1]))
    assert bf.column_of(final) == dst and bf.level_of(final) == 2 * bf.log_n
