"""Performance micro-benchmarks of the package's hot paths.

These are genuine timing benchmarks (multiple rounds, statistics) of the
inner loops the experiments lean on, per the HPC guidance: measure
before optimizing, and keep regressions visible.

* flit-level simulation throughput on a congested workload;
* vectorized butterfly path generation;
* one Moser-Tardos refinement stage;
* a full level-synchronized butterfly subround.
"""

import numpy as np
import pytest

from repro import Butterfly, WormholeSimulator, arbitrate_levels
from repro.core.coloring import MessageEdgeIncidence, refine_colors
from repro.network.random_networks import layered_network, random_walk_paths
from repro.routing.paths import paths_from_node_walks


@pytest.fixture(scope="module")
def big_workload():
    rng = np.random.default_rng(0)
    net = layered_network(24, 20, 3, rng)
    walks = random_walk_paths(net, 24, 20, 600, rng)
    return net, paths_from_node_walks(net, walks)


def test_perf_wormhole_simulation(benchmark, big_workload):
    net, paths = big_workload

    def run():
        return WormholeSimulator(net, 2, seed=0).run(paths, message_length=12)

    result = benchmark(run)
    assert result.all_delivered


def test_perf_butterfly_path_batch(benchmark):
    bf = Butterfly(1024, passes=2)
    rng = np.random.default_rng(1)
    src = rng.integers(0, 1024, 4096)
    mid = rng.integers(0, 1024, 4096)
    dst = rng.integers(0, 1024, 4096)

    edges = benchmark(bf.two_pass_path_edges_batch, src, mid, dst)
    assert edges.shape == (4096, 20)


def test_perf_refinement_stage(benchmark, big_workload):
    _, paths = big_workload
    inc = MessageEdgeIncidence.from_paths(paths)
    colors = np.zeros(len(paths), dtype=np.int64)

    def stage():
        return refine_colors(
            inc, colors, r=24, mf=3, rng=np.random.default_rng(2)
        )

    out = benchmark(stage)
    assert out is not None


def test_perf_subround_arbitration(benchmark):
    bf = Butterfly(256, passes=2)
    rng = np.random.default_rng(3)
    src = rng.integers(0, 256, 2048)
    mid = rng.integers(0, 256, 2048)
    dst = rng.integers(0, 256, 2048)
    edges = bf.two_pass_path_edges_batch(src, mid, dst)

    alive = benchmark(arbitrate_levels, edges, 2, np.random.default_rng(4))
    assert alive.any()
