"""Batched-vs-serial sweep throughput (see ``repro.sim.batch``).

The lockstep batch engine's reason to exist is wall-clock: running a
whole trial grid as stacked ``(T, M)`` arrays amortizes per-step Python
dispatch across trials.  These benchmarks time both execution paths of
:func:`repro.sim.sweep.run_sweep` on the E5-style wormhole grid and
assert the batched path is substantially faster *and* bit-identical —
the same grid, seeds, and metrics either way.

``repro bench`` runs the same comparison standalone and records it to
``BENCH_sim.json``.
"""

import pytest

from repro.sim.sweep import run_sweep, sweep_grid

#: The E5 router-comparison shape: C=8, D=12, L=24, B in {1, 2, 4}.
GRID = dict(
    workload="chain-bundle",
    simulators="wormhole",
    Bs=(1, 2, 4),
    workload_params={"chains": 4, "depth": 12, "messages": 8},
    message_length=24,
    repeats=10,
)


@pytest.fixture(scope="module")
def grid_specs():
    return sweep_grid(
        GRID["workload"],
        GRID["simulators"],
        GRID["Bs"],
        workload_params=GRID["workload_params"],
        message_length=GRID["message_length"],
        repeats=GRID["repeats"],
    )


@pytest.fixture(scope="module")
def serial_metrics(grid_specs):
    out = run_sweep(grid_specs, batch_size=1)
    return [t.metrics for t in out]


def test_perf_sweep_serial(benchmark, grid_specs):
    out = benchmark(lambda: run_sweep(grid_specs, batch_size=1))
    assert len(out) == len(grid_specs)


def test_perf_sweep_batched(benchmark, grid_specs, serial_metrics):
    out = benchmark(lambda: run_sweep(grid_specs))
    assert [t.metrics for t in out] == serial_metrics


def test_batched_speedup(grid_specs, serial_metrics):
    """The acceptance bar: batched >= 3x serial trials/sec, bit-identical."""
    import time

    def best_of(fn, rounds=3):
        wall = float("inf")
        for _ in range(rounds):
            t0 = time.perf_counter()
            out = fn()
            wall = min(wall, time.perf_counter() - t0)
        return out, wall

    serial_out, serial_wall = best_of(lambda: run_sweep(grid_specs, batch_size=1))
    batched_out, batched_wall = best_of(lambda: run_sweep(grid_specs))
    assert [t.metrics for t in batched_out] == serial_metrics
    assert [t.metrics for t in serial_out] == serial_metrics
    speedup = serial_wall / batched_wall
    print(
        f"\nbatched sweep: {len(grid_specs)} trials, "
        f"serial {serial_wall:.3f}s, batched {batched_wall:.3f}s, "
        f"speedup {speedup:.2f}x"
    )
    assert speedup >= 3.0
