"""Shared helpers for the experiment benchmarks (E1-E10).

Each benchmark regenerates one of the paper's results (see DESIGN.md's
experiment index): it measures the relevant quantity across a parameter
sweep, prints the comparison table, writes it to ``benchmarks/results/``,
and asserts the *shape* the paper proves (who wins, monotonicity,
bounded measured/bound ratios).  ``pytest-benchmark`` times the core
operation of each experiment.
"""

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_table(results_dir):
    """Save a rendered table under benchmarks/results/<name>.txt."""

    def _save(name, table):
        text = table.render()
        (results_dir / f"{name}.txt").write_text(text + "\n")
        print()
        print(text)
        return text

    return _save
