"""E15 — trees: the O(L C + D) offline bound of Ranade et al. [41].

Section 1.3.4: on trees (and constant-dimension meshes) there are offline
wormhole schedules of length ``O(L C + D)`` — optimal, since some edge
must carry ``L C`` flits and some message travels ``D`` hops.  We route
root-heavy leaf-to-leaf traffic on complete binary trees greedily
(farthest-first would need global state; random arbitration suffices)
and check the measured makespan stays within a small constant of
``L C + D`` while the naive ``L C D`` form is left far behind.
"""

import numpy as np
import pytest

from repro import Table, WormholeSimulator
from repro.network.tree import CompleteTree, tree_path
from repro.routing.paths import congestion, dilation, paths_from_node_walks


def leaf_shuffle_workload(tree, rng, num_messages):
    leaves = list(tree.leaves())
    walks = []
    for _ in range(num_messages):
        s, d = rng.choice(len(leaves), size=2, replace=False)
        walks.append(tree_path(tree, leaves[s], leaves[d]))
    return paths_from_node_walks(tree.network, walks)


def test_e15_tree_lc_plus_d(benchmark, save_table):
    L = 8

    def sweep():
        rows = []
        for height, messages in ((3, 24), (4, 60), (5, 140)):
            tree = CompleteTree(arity=2, height=height)
            rng = np.random.default_rng(height)
            paths = leaf_shuffle_workload(tree, rng, messages)
            C, D = congestion(paths), dilation(paths)
            res = WormholeSimulator(tree.network, 1, seed=0).run(
                paths, message_length=L
            )
            assert res.all_delivered
            assert not res.deadlocked
            rows.append(
                {
                    "height": height,
                    "messages": messages,
                    "C": C,
                    "D": D,
                    "measured": int(res.makespan),
                    "LC + D": L * C + D,
                    "ratio": res.makespan / (L * C + D),
                    "LCD form": L * C * D,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, iterations=1, rounds=1)
    table = Table(
        f"E15: greedy wormhole on binary trees, leaf shuffle (L={L}, B=1)",
        list(rows[0].keys()),
    )
    for r in rows:
        table.add_row(list(r.values()))
    save_table("e15_trees", table)

    for r in rows:
        # Within a small constant of the optimal LC + D form, far from LCD.
        assert r["measured"] <= 4 * r["LC + D"]
        assert r["measured"] < r["LCD form"] / 2
    ratios = [r["ratio"] for r in rows]
    assert max(ratios) / min(ratios) < 3.0
