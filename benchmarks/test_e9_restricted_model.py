"""E9 — Section 1.4 Remarks: the restricted model (buffering only).

Each edge buffers ``B`` flits (one per message) but forwards only one
flit per step.  The Remarks claim (a) the main algorithms emulate this
model with slowdown ``<= B``, and (b) increasing *buffering alone*
(bandwidth fixed) still buys about a ``D^(1-1/B)`` reduction — possibly
superlinear in ``B``.  We measure both on the Theorem 2.2.1 hard
instance and on chain workloads.
"""

import numpy as np
import pytest

from repro import (
    RestrictedWormholeSimulator,
    Table,
    WormholeSimulator,
    build_hard_instance,
)
from repro.network.random_networks import chain_bundle
from repro.routing.paths import paths_from_node_walks


def test_e9_buffering_alone_helps(benchmark, save_table):
    """Sweep B on the hard instance in both models."""
    inst = build_hard_instance(C=9, D=15, B=2)
    L = inst.recommended_length()

    def measure():
        rows = []
        for B in (1, 2, 3):
            full = WormholeSimulator(inst.network, B, seed=0).run(
                inst.paths, message_length=L
            )
            restricted = RestrictedWormholeSimulator(inst.network, B, seed=0).run(
                inst.paths, message_length=L
            )
            assert full.all_delivered and restricted.all_delivered
            rows.append(
                {
                    "B": B,
                    "full model": int(full.makespan),
                    "restricted model": int(restricted.makespan),
                    "slowdown": restricted.makespan / full.makespan,
                }
            )
        return rows

    rows = benchmark.pedantic(measure, iterations=1, rounds=1)
    table = Table(
        f"E9: full vs restricted model on the hard instance "
        f"(C={inst.congestion}, D={inst.dilation}, L={L})",
        ["B", "full model", "restricted model", "slowdown"],
    )
    for r in rows:
        table.add_row(list(r.values()))
    save_table("e9_restricted", table)

    restricted = {r["B"]: r["restricted model"] for r in rows}
    full = {r["B"]: r["full model"] for r in rows}
    # (a) The Remarks' emulation claim: slowdown of the restricted model
    # over the full model is at most ~B.
    for r in rows:
        assert r["full model"] <= r["restricted model"] * 1.05
        assert r["slowdown"] <= r["B"] + 0.3
    # Buffers never hurt; on this instance the restricted time is pinned
    # near the bandwidth floor C*L per primary edge (each edge must push
    # C*L flits at 1 flit/step), so the gain is small — see E9c for the
    # head-of-line regime where buffering alone pays off.
    vals = [restricted[b] for b in (1, 2, 3)]
    assert vals == sorted(vals, reverse=True)
    floor = inst.congestion * L
    assert restricted[3] >= floor
    # At B = 1 the models coincide up to arbitration noise.
    assert abs(restricted[1] - full[1]) / full[1] < 0.25


def test_e9_bandwidth_vs_buffering_decomposition(benchmark, save_table):
    """Chain workload: going from (1 buf, 1 flit/step) to (B buf,
    B flits/step) decomposes into a buffering gain (restricted model)
    times a bandwidth gain (~B)."""
    net, walks = chain_bundle(2, 8, 8)
    paths = paths_from_node_walks(net, walks)
    L = 12

    def measure():
        out = {}
        for B in (1, 2, 4):
            out[("full", B)] = WormholeSimulator(net, B, seed=0).run(paths, L).makespan
            out[("restricted", B)] = RestrictedWormholeSimulator(net, B, seed=0).run(
                paths, L
            ).makespan
        return out

    data = benchmark.pedantic(measure, iterations=1, rounds=1)
    table = Table(
        "E9b: chain workload (C=8, D=8, L=12), buffering vs bandwidth",
        ["B", "restricted (buffers only)", "full (buffers + bandwidth)",
         "buffering gain", "total gain"],
    )
    base = data[("restricted", 1)]
    for B in (1, 2, 4):
        table.add_row(
            [
                B,
                data[("restricted", B)],
                data[("full", B)],
                base / data[("restricted", B)],
                base / data[("full", B)],
            ]
        )
    save_table("e9b_decomposition", table)

    for B in (2, 4):
        assert data[("full", B)] <= data[("restricted", B)]
        assert data[("restricted", B)] <= data[("restricted", 1)]


def test_e9c_buffers_relieve_head_of_line_blocking(benchmark, save_table):
    """Where buffering *alone* pays: a parked worm consumes no bandwidth,
    so a second buffer slot lets crossing traffic stream past it.

    Trunk worm blocks mid-route behind a long blocker; per-edge crossing
    worms want the trunk edges it occupies.  At one buffer they wait out
    the blockage; at two they share the (idle) link immediately.
    """
    from repro.network.graph import Network

    net = Network()
    T, L = 10, 8
    nodes = net.add_nodes(range(T + 1))
    trunk = [net.add_edge(nodes[i], nodes[i + 1]) for i in range(T)]
    blk_src = net.add_node("blk")
    e_blk = net.add_edge(blk_src, nodes[T - 1])
    paths = [[e_blk, trunk[T - 1]], trunk] + [[e] for e in trunk[: T - 2]]
    lengths = np.full(len(paths), L, dtype=np.int64)
    lengths[0] = 4 * L  # the blocker parks the trunk worm for a long time
    release = np.zeros(len(paths), dtype=np.int64)
    release[2:] = T + L  # crossers arrive once the trunk worm is parked

    def measure():
        out = {}
        for B in (1, 2, 3):
            res = RestrictedWormholeSimulator(net, B, seed=0).run(
                paths, message_length=lengths, release_times=release
            )
            assert res.all_delivered
            cross = res.completion_times[2:]
            out[B] = (float(np.mean(cross)), int((res.blocked_steps[2:] > 0).sum()))
        return out

    data = benchmark.pedantic(measure, iterations=1, rounds=1)
    table = Table(
        f"E9c: crossing worms vs parked trunk worm (restricted model, "
        f"T={T}, L={L})",
        ["buffers B", "crosser mean completion", "crossers ever blocked"],
    )
    for B, (mean_t, blocked) in data.items():
        table.add_row([B, mean_t, blocked])
    save_table("e9c_head_of_line", table)

    # More buffers -> crossers stop being blocked by the parked worm.
    assert data[2][1] <= data[1][1]
    assert data[2][0] <= data[1][0]
