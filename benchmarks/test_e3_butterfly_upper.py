"""E3 — Theorem 3.1.1: the randomized butterfly q-relation algorithm.

Runs the Section 3.1 router across ``n``, ``q`` and ``B`` and compares
total flit steps against ``L (q + log n) (log^(1/B) n) log log(nq) / B``.
Shape checks: everything is delivered w.h.p., time falls monotonically
with ``B`` (the virtual-channel benefit), and measured/bound ratios stay
in a constant band across the whole sweep.
"""

import numpy as np
import pytest

from repro import ButterflyRouter, Table, bounds, random_q_relation

L = 16


def run_cell(n, q, B, seed):
    inst = random_q_relation(n, q, np.random.default_rng(seed))
    router = ButterflyRouter(n, B=B, message_length=L, seed=seed)
    out = router.route(inst)
    return out


def test_e3_time_vs_bound(benchmark, save_table):
    cells = [
        (n, q, B)
        for n in (16, 64, 256)
        for q in (1, max(1, n.bit_length() - 1))
        for B in (1, 2, 3)
    ]

    def sweep():
        rows = []
        for n, q, B in cells:
            out = run_cell(n, q, B, seed=5)
            bound = bounds.butterfly_upper_bound(L, q, n, B)
            rows.append(
                {
                    "n": n,
                    "q": q,
                    "B": B,
                    "delivered": out.all_delivered,
                    "rounds": out.num_rounds_used,
                    "flit steps": out.total_flit_steps,
                    "bound": bound,
                    "ratio": out.total_flit_steps / bound,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, iterations=1, rounds=1)
    table = Table(
        f"E3: Theorem 3.1.1 butterfly q-relations (L={L})",
        ["n", "q", "B", "delivered", "rounds", "flit steps", "bound", "ratio"],
    )
    for r in rows:
        table.add_row(list(r.values()))
    save_table("e3_butterfly_upper", table)

    assert all(r["delivered"] for r in rows)
    # Monotone in B within each (n, q) cell.
    by_cell = {}
    for r in rows:
        by_cell.setdefault((r["n"], r["q"]), []).append(r["flit steps"])
    for steps in by_cell.values():
        assert steps == sorted(steps, reverse=True)
    ratios = [r["ratio"] for r in rows]
    assert max(ratios) / min(ratios) < 20  # constant-band shape


def test_e3_scaling_in_n(benchmark, save_table):
    """Fix q = log n, B = 2: measured time tracks the bound's growth."""

    def sweep():
        rows = []
        for n in (16, 64, 256, 1024):
            q = n.bit_length() - 1
            out = run_cell(n, q, 2, seed=1)
            bound = bounds.butterfly_upper_bound(L, q, n, 2)
            rows.append((n, q, out.total_flit_steps, bound, out.total_flit_steps / bound))
        return rows

    rows = benchmark.pedantic(sweep, iterations=1, rounds=1)
    table = Table(
        "E3b: scaling with n at q = log n, B = 2",
        ["n", "q", "flit steps", "bound", "ratio"],
    )
    for r in rows:
        table.add_row(list(r))
    save_table("e3b_scaling", table)
    steps = [r[2] for r in rows]
    assert steps == sorted(steps)  # time grows with n
    ratios = [r[4] for r in rows]
    assert max(ratios) / min(ratios) < 8  # but only as fast as the bound
