"""E2 — Theorem 2.2.1: the hard instance needs Omega(L C D^(1/B) / B).

Builds the primary/secondary-edge construction for each ``B``, routes it
greedily on the exact flit-level model, and compares the measured time
with the proof's explicit bound ``(L - D) M / B``.  Shape checks: the
measured time always meets the bound, stays within a small constant of
it, and running the ``B = 1`` instance with extra virtual channels yields
the paper's *superlinear* speedup (> B).
"""

from repro import (
    Table,
    WormholeSimulator,
    bounds,
    build_hard_instance,
    hard_instance_lower_bound,
)
from repro.sim.sweep import TrialSpec, run_sweep, sweep_grid

CASES = [
    # (B, C, D)
    (1, 6, 15),
    (1, 12, 15),
    (2, 6, 19),
    (2, 12, 19),
    (3, 8, 19),
]


def route_instance(inst, L, B):
    sim = WormholeSimulator(inst.network, num_virtual_channels=B, seed=0)
    return sim.run(inst.paths, message_length=L)


def test_e2_measured_vs_omega_bound(benchmark, save_table):
    # The greedy router keeps its historical seed=0 so the measured
    # makespans match the pre-sweep tables exactly.
    prepared = []
    for B, C, D in CASES:
        inst = build_hard_instance(C=C, D=D, B=B)
        L = inst.recommended_length()
        spec = TrialSpec.make(
            "hard-instance",
            "wormhole",
            B=B,
            workload_params={"C": C, "D": D, "B": B},
            sim_params={"seed": 0},
            message_length=L,
        )
        prepared.append((spec, inst, L))

    def sweep():
        out = run_sweep([spec for spec, _, _ in prepared])
        rows = []
        for trial, (_, inst, L) in zip(out, prepared):
            m = trial.metrics
            assert m["delivered"] == m["messages"]
            lb = hard_instance_lower_bound(inst, L)
            rows.append(
                {
                    "B": trial.spec.B,
                    "C": m["workload_congestion"],
                    "D": m["workload_dilation"],
                    "L": L,
                    "M": m["workload_messages"],
                    "measured": m["makespan"],
                    "omega": lb,
                    "ratio": m["makespan"] / lb,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, iterations=1, rounds=1)
    table = Table(
        "E2: Theorem 2.2.1 hard instances, greedy routing vs (L-D)M/B",
        ["B", "C", "D", "L", "M", "measured", "omega", "ratio"],
    )
    for r in rows:
        table.add_row(list(r.values()))
    save_table("e2_lower_bound", table)

    for r in rows:
        assert r["measured"] >= r["omega"]  # the bound holds
        assert r["ratio"] < 6  # and is nearly tight for greedy routing


def test_e2_superlinear_speedup(benchmark, save_table):
    """Route the B=1 hard instance with B' = 1..4 channels: the paper's
    headline — speedup beyond B' itself, approaching B' D^(1-1/B')."""
    inst = build_hard_instance(C=12, D=21, B=1)
    L = inst.recommended_length()
    specs = sweep_grid(
        "hard-instance",
        "wormhole",
        (1, 2, 3, 4),
        workload_params={"C": 12, "D": 21, "B": 1},
        sim_params={"seed": 0},
        message_length=L,
    )

    def sweep():
        return {
            t.spec.B: t.metrics["makespan"] for t in run_sweep(specs)
        }

    spans = benchmark.pedantic(sweep, iterations=1, rounds=1)
    table = Table(
        f"E2b: B=1 hard instance (C={inst.congestion}, D={inst.dilation}, "
        f"L={L}) routed with extra channels",
        ["B'", "measured", "speedup vs B'=1", "paper shape B' D^(1-1/B')"],
    )
    for Bp, t in spans.items():
        table.add_row(
            [
                Bp,
                t,
                spans[1] / t,
                bounds.virtual_channel_speedup(inst.dilation, Bp),
            ]
        )
    save_table("e2b_superlinear", table)

    assert spans[1] / spans[2] > 2.0  # superlinear at B' = 2
    assert spans[1] / spans[3] > 3.0  # and at B' = 3
    values = list(spans.values())
    assert values == sorted(values, reverse=True)
