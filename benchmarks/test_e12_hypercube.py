"""E12 — hypercube permutation routing in O(L + log n) ([1], Section 1.3.4).

Aiello et al. route any permutation on an n-node hypercube in
``O(L + log n)`` flit steps with a small constant number of virtual
channels.  We run the two-phase randomized scheme across n and L and
check the additive shape: time/(L + 2 log n) stays in a constant band,
and growing L by dL grows time by about dL (not dL * log n).
"""

import numpy as np
import pytest

from repro import Table
from repro.core.hypercube_routing import route_hypercube_permutation
from repro.network.hypercube import Hypercube
from repro.routing.problems import random_permutation


def test_e12_additive_shape(benchmark, save_table):
    def sweep():
        rows = []
        for n in (16, 64, 256):
            cube = Hypercube(n)
            for L in (4, 16, 64):
                inst = random_permutation(n, np.random.default_rng(n + L))
                out = route_hypercube_permutation(cube, inst, L, B=2, seed=0)
                assert out.all_delivered
                floor = L + 2 * cube.dimension
                rows.append(
                    {
                        "n": n,
                        "L": L,
                        "flit steps": out.total_flit_steps,
                        "L + 2 log n": floor,
                        "ratio": out.total_flit_steps / floor,
                        "max phase congestion": max(
                            out.congestion_phase1, out.congestion_phase2
                        ),
                    }
                )
        return rows

    rows = benchmark.pedantic(sweep, iterations=1, rounds=1)
    table = Table(
        "E12: two-phase hypercube permutation routing (B=2)",
        list(rows[0].keys()),
    )
    for r in rows:
        table.add_row(list(r.values()))
    save_table("e12_hypercube", table)

    ratios = [r["ratio"] for r in rows]
    assert max(ratios) < 6.0
    assert max(ratios) / min(ratios) < 4.0
    # Additivity in L: at n = 256, going L: 4 -> 64 adds ~O(dL), far less
    # than dL * log n.
    by = {(r["n"], r["L"]): r["flit steps"] for r in rows}
    dt = by[(256, 64)] - by[(256, 4)]
    assert dt < 0.8 * 60 * 8  # clearly below dL * log n growth


def test_e12_virtual_channels_tame_congestion(benchmark, save_table):
    """At B = 1 phases serialize on conflicts; a couple of channels
    recover the additive behaviour — [1]'s 'small constant' claim."""
    n, L = 128, 16
    cube = Hypercube(n)
    inst = random_permutation(n, np.random.default_rng(5))

    def sweep():
        return {
            B: route_hypercube_permutation(cube, inst, L, B=B, seed=0).total_flit_steps
            for B in (1, 2, 3, 4)
        }

    data = benchmark.pedantic(sweep, iterations=1, rounds=1)
    table = Table(
        f"E12b: hypercube routing time vs B (n={n}, L={L})",
        ["B", "flit steps", "vs floor L + 2 log n"],
    )
    floor = L + 2 * cube.dimension
    for B, t in data.items():
        table.add_row([B, t, t / floor])
    save_table("e12b_channels", table)
    vals = list(data.values())
    assert vals == sorted(vals, reverse=True)
    assert data[4] < 3 * floor
