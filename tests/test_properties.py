"""Property-based tests (hypothesis) on the package's core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import (
    general_lower_bound,
    general_upper_bound,
    virtual_channel_speedup,
)
from repro.core.coloring import (
    MessageEdgeIncidence,
    multiplex_size,
    reduce_multiplex_size,
)
from repro.core.lower_bound import max_m_prime
from repro.network.benes import Benes, looping_assignment, waksman_paths
from repro.network.butterfly import Butterfly
from repro.network.hypercube import bit_fixing_path
from repro.network.random_networks import chain_bundle
from repro.routing.paths import paths_from_node_walks
from repro.sim.wormhole import WormholeSimulator

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

power_of_two = st.sampled_from([2, 4, 8, 16, 32])


@st.composite
def permutation(draw, n=None):
    if n is None:
        n = draw(power_of_two)
    seed = draw(st.integers(0, 2**31 - 1))
    return np.random.default_rng(seed).permutation(n)


# ---------------------------------------------------------------------------
# butterfly path properties
# ---------------------------------------------------------------------------


@given(power_of_two, st.data())
@settings(max_examples=40, deadline=None)
def test_butterfly_greedy_path_reaches_destination(n, data):
    bf = Butterfly(n)
    src = data.draw(st.integers(0, n - 1))
    dst = data.draw(st.integers(0, n - 1))
    cols = bf.path_columns(src, dst)
    assert cols[0] == src
    assert cols[-1] == dst
    # Each step changes at most the level's cross bit.
    for lvl in range(bf.depth):
        diff = int(cols[lvl]) ^ int(cols[lvl + 1])
        assert diff in (0, 1 << bf.cross_bit(lvl))


@given(power_of_two, st.data())
@settings(max_examples=30, deadline=None)
def test_butterfly_edge_ids_invertible(n, data):
    bf = Butterfly(n)
    col = data.draw(st.integers(0, n - 1))
    lvl = data.draw(st.integers(0, bf.depth - 1))
    cross = data.draw(st.booleans())
    e = bf.edge(col, lvl, cross)
    tail, head = bf.edge_endpoints(e)
    assert bf.column_of(tail) == col
    assert bf.level_of(tail) == lvl
    assert bf.level_of(head) == lvl + 1


# ---------------------------------------------------------------------------
# Waksman / looping properties
# ---------------------------------------------------------------------------


@given(permutation())
@settings(max_examples=40, deadline=None)
def test_waksman_paths_always_edge_disjoint(perm):
    n = perm.size
    cols = waksman_paths(perm)
    assert np.array_equal(cols[:, -1], perm)
    edges = Benes(n).columns_to_edges(cols)
    flat = edges.ravel()
    assert np.unique(flat).size == flat.size


@given(st.integers(1, 32).map(lambda k: 2 * k), st.integers(0, 2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_looping_assignment_constraints(n, seed):
    perm = np.random.default_rng(seed).permutation(n)
    sub = looping_assignment(perm)
    inv = np.empty(n, dtype=np.int64)
    inv[perm] = np.arange(n)
    for i in range(0, n, 2):
        assert sub[i] != sub[i + 1]  # input switch
        assert sub[inv[i]] != sub[inv[i + 1]]  # output switch


# ---------------------------------------------------------------------------
# hypercube bit fixing
# ---------------------------------------------------------------------------


@given(st.integers(1, 8), st.data())
@settings(max_examples=40, deadline=None)
def test_bit_fixing_length_is_hamming(dim, data):
    src = data.draw(st.integers(0, (1 << dim) - 1))
    dst = data.draw(st.integers(0, (1 << dim) - 1))
    nodes = bit_fixing_path(src, dst, dim)
    assert nodes[0] == src and nodes[-1] == dst
    assert len(nodes) - 1 == bin(src ^ dst).count("1")
    for a, b in zip(nodes[:-1], nodes[1:]):
        assert bin(a ^ b).count("1") == 1


# ---------------------------------------------------------------------------
# coloring invariants
# ---------------------------------------------------------------------------


@given(
    st.integers(1, 3),  # B
    st.integers(1, 3),  # chains
    st.integers(2, 6),  # depth
    st.integers(1, 8),  # per chain
    st.integers(0, 2**31 - 1),
)
@settings(max_examples=25, deadline=None)
def test_refinement_always_reaches_b(B, chains, depth, per_chain, seed):
    net, walks = chain_bundle(chains, depth, per_chain)
    paths = paths_from_node_walks(net, walks)
    trace = reduce_multiplex_size(
        paths, B=B, rng=np.random.default_rng(seed), mode="direct"
    )
    inc = MessageEdgeIncidence.from_paths(paths)
    assert multiplex_size(inc, trace.colors) <= B
    # Colors are dense.
    assert trace.colors.max() + 1 == trace.num_color_classes


# ---------------------------------------------------------------------------
# wormhole simulator invariants
# ---------------------------------------------------------------------------


@given(
    st.integers(1, 3),  # B
    st.integers(1, 6),  # L
    st.integers(1, 4),  # per chain
    st.integers(2, 5),  # depth
    st.integers(0, 2**31 - 1),
)
@settings(max_examples=30, deadline=None)
def test_wormhole_completion_bounds(B, L, per_chain, depth, seed):
    """Every delivered message takes at least L + D - 1 steps from release,
    and a leveled workload always delivers."""
    net, walks = chain_bundle(2, depth, per_chain)
    paths = paths_from_node_walks(net, walks)
    sim = WormholeSimulator(net, num_virtual_channels=B, seed=seed)
    res = sim.run(paths, message_length=L)
    assert res.all_delivered
    assert (res.completion_times >= L + depth - 1).all()
    # Serialization can not exceed full sequentialization.
    assert res.makespan <= len(paths) * (L + depth)


@given(st.integers(1, 4), st.integers(1, 8), st.integers(2, 6))
@settings(max_examples=30, deadline=None)
def test_wormhole_unobstructed_exact(B, L, depth):
    net, walks = chain_bundle(1, depth, 1)
    paths = paths_from_node_walks(net, walks)
    res = WormholeSimulator(net, B).run(paths, message_length=L)
    assert res.makespan == L + depth - 1


# ---------------------------------------------------------------------------
# bound function properties
# ---------------------------------------------------------------------------


@given(
    st.integers(1, 512),
    st.integers(1, 256),
    st.integers(1, 256),
    st.integers(1, 6),
)
@settings(max_examples=100, deadline=None)
def test_general_bounds_positive_and_ordered(L, C, D, B):
    up = general_upper_bound(L, C, D, B)
    lo = general_lower_bound(L, C, D, B)
    assert up > 0 and lo > 0
    assert up >= lo


@given(st.integers(2, 4096), st.integers(1, 8))
@settings(max_examples=60, deadline=None)
def test_speedup_at_least_linear(D, B):
    assert virtual_channel_speedup(D, B) >= B * 0.999


@given(st.integers(1, 5), st.data())
@settings(max_examples=40, deadline=None)
def test_max_m_prime_feasible(B, data):
    import math

    D = data.draw(st.integers(B + 1, 500))
    m = max_m_prime(D, B)
    assert m >= B + 1
    assert 2 * math.comb(m - 1, B) - 1 <= D
    assert 2 * math.comb(m, B) - 1 > D
