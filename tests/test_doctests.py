"""Run the doctests embedded in module and package docstrings."""

import doctest

import pytest

import repro
import repro.analysis.tables
import repro.network.graph

MODULES = [repro, repro.network.graph, repro.analysis.tables]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    results = doctest.testmod(
        module, optionflags=doctest.NORMALIZE_WHITESPACE, verbose=False
    )
    assert results.attempted > 0, f"{module.__name__} has no doctests"
    assert results.failed == 0
