"""Facade tests: ``repro.simulate`` dispatch, bit-identity, deprecations.

The facade's contract is that it adds *nothing* to the models: a
``simulate(...)`` call with the same seed is bit-identical to building
the simulator directly, for every model it dispatches to.
"""

import numpy as np
import pytest

import repro
from repro import Butterfly, KAryNCube, simulate
from repro.network.graph import NetworkError
from repro.routing.problems import bit_reversal_permutation
from repro.sim.adaptive import AdaptiveMeshRouter
from repro.sim.cut_through import CutThroughSimulator
from repro.sim.restricted import RestrictedWormholeSimulator
from repro.sim.store_forward import StoreForwardSimulator
from repro.sim.wormhole import WormholeSimulator

L = 8
SEED = 3


@pytest.fixture(scope="module")
def butterfly_problem():
    bf = Butterfly(8)
    inst = bit_reversal_permutation(8)
    paths = [list(r) for r in bf.path_edges_batch(inst.sources, inst.dests)]
    return bf, paths


@pytest.fixture(scope="module")
def mesh_problem():
    cube = KAryNCube(5, 2, wrap=False)
    perm = np.random.default_rng(0).permutation(25)
    demands = [(i, int(d)) for i, d in enumerate(perm) if i != int(d)]
    return cube, demands


def _same(a, b):
    assert a.makespan == b.makespan
    assert np.array_equal(a.completion_times, b.completion_times)
    assert a.total_blocked_steps == b.total_blocked_steps


class TestBitIdentity:
    """simulate() == direct constructor call, per model."""

    def test_wormhole(self, butterfly_problem):
        bf, paths = butterfly_problem
        direct = WormholeSimulator(
            bf, num_virtual_channels=2, seed=SEED
        ).run(paths, message_length=L)
        _same(direct, simulate(
            (bf, paths), model="wormhole", B=2, seed=SEED, message_length=L
        ))

    def test_cut_through(self, butterfly_problem):
        bf, paths = butterfly_problem
        direct = CutThroughSimulator(bf, buffer_flits=2, seed=SEED).run(
            paths, message_length=L
        )
        _same(direct, simulate(
            (bf, paths), model="cut_through", B=2, seed=SEED, message_length=L
        ))

    def test_store_forward(self, butterfly_problem):
        bf, paths = butterfly_problem
        direct = StoreForwardSimulator(
            bf, bandwidth_flits_per_step=2, seed=SEED
        ).run(paths, message_length=L)
        _same(direct, simulate(
            (bf, paths),
            model="store_forward",
            B=2,
            seed=SEED,
            message_length=L,
        ))

    def test_restricted(self, butterfly_problem):
        bf, paths = butterfly_problem
        direct = RestrictedWormholeSimulator(
            bf, num_buffers=2, seed=SEED
        ).run(paths, message_length=L)
        _same(direct, simulate(
            (bf, paths), model="restricted", B=2, seed=SEED, message_length=L
        ))

    def test_adaptive(self, mesh_problem):
        cube, demands = mesh_problem
        direct = AdaptiveMeshRouter(
            cube, num_virtual_channels=2, policy="west-first", seed=SEED
        ).run(demands, message_length=5)
        _same(direct.result, simulate(
            (cube, demands), model="adaptive", B=2, seed=SEED, message_length=5
        ))

    def test_priority_override_forwarded(self, butterfly_problem):
        bf, paths = butterfly_problem
        direct = WormholeSimulator(
            bf, num_virtual_channels=1, priority="index", seed=SEED
        ).run(paths, message_length=L)
        _same(direct, simulate(
            (bf, paths),
            model="wormhole",
            B=1,
            seed=SEED,
            priority="index",
            message_length=L,
        ))


class TestProblemForms:
    def test_named_workload_defaults_length(self):
        res = simulate("chain-bundle", model="wormhole", B=2, seed=5)
        assert res.all_delivered

    def test_workload_params_forwarded(self):
        small = simulate(
            "chain-bundle",
            model="wormhole",
            B=1,
            workload_params={"chains": 2, "depth": 4, "messages": 2},
        )
        assert small.num_messages == 4  # 2 chains * 2 messages

    def test_backend_execution_bit_identical(self):
        local = simulate("chain-bundle", model="wormhole", B=2, seed=5)
        via = simulate(
            "chain-bundle", model="wormhole", B=2, seed=5, backend="process"
        )
        _same(local, via)

    def test_continuous_model(self):
        bf = Butterfly(8)

        def path_of(source, rng):
            return list(bf.path_edges(source, int(rng.integers(8))))

        res = simulate(
            (bf, 8, path_of),
            model="continuous",
            B=2,
            seed=11,
            message_length=4,
            rate=0.05,
            horizon=100,
        )
        assert res.throughput >= 0.0

    def test_exported_from_top_level(self):
        assert repro.simulate is simulate
        assert "wormhole" in repro.MODELS


class TestErrors:
    def test_unknown_model(self, butterfly_problem):
        with pytest.raises(NetworkError, match="unknown model"):
            simulate(butterfly_problem, model="teleport", message_length=4)

    def test_unknown_workload_name(self):
        with pytest.raises(NetworkError, match="unknown workload"):
            simulate("no-such-workload")

    def test_tuple_problem_requires_length(self, butterfly_problem):
        with pytest.raises(NetworkError, match="message_length"):
            simulate(butterfly_problem, model="wormhole")

    def test_telemetry_rejected_for_restricted(self, butterfly_problem):
        with pytest.raises(NetworkError, match="telemetry"):
            simulate(
                butterfly_problem,
                model="restricted",
                message_length=4,
                telemetry=object(),
            )

    def test_adaptive_needs_mesh_problem(self):
        with pytest.raises(NetworkError, match="mesh"):
            simulate("chain-bundle", model="adaptive")

    def test_bad_problem_type(self):
        with pytest.raises(TypeError, match="problem"):
            simulate(12345, model="wormhole", message_length=4)


class TestDeprecations:
    """The deprecated helper re-exports have completed their cycle."""

    @pytest.mark.parametrize(
        "module", ["wormhole", "cut_through", "restricted"]
    )
    @pytest.mark.parametrize("name", ["pad_paths", "check_edge_simple"])
    def test_shim_removed(self, module, name):
        """The old module-level aliases are gone; engine is canonical."""
        import importlib

        from repro.sim import engine

        mod = importlib.import_module(f"repro.sim.{module}")
        with pytest.raises(AttributeError):
            getattr(mod, name)
        assert callable(getattr(engine, name))

    def test_package_import_does_not_warn(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [
                sys.executable,
                "-W",
                "error::DeprecationWarning",
                "-c",
                "import repro, repro.sim",
            ],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr


class TestSimResultAndModes:
    """The ``SimResult`` facade and the ``mode=`` request axis."""

    def test_exact_result_delegates(self, butterfly_problem):
        res = simulate(butterfly_problem, model="wormhole", B=2,
                       message_length=L, seed=SEED)
        assert isinstance(res, repro.SimResult)
        assert res.mode == "exact" and res.provenance == "exact"
        assert res.steps == res.result.steps_executed
        assert np.array_equal(res.delays, res.result.completion_times)
        # Delegation: every SimulationResult attribute still reads.
        assert res.makespan == res.result.makespan
        assert res.num_delivered == res.result.num_delivered
        assert res.delivered.dtype == bool

    def test_estimate_mode_brackets_exact(self, butterfly_problem):
        exact = simulate(butterfly_problem, model="wormhole", B=2,
                         message_length=L, seed=SEED)
        bounds = simulate(butterfly_problem, model="wormhole", B=2,
                          message_length=L, mode="estimate")
        assert bounds.mode == "estimate"
        assert bounds.provenance == "estimate"
        assert bounds.steps == 0  # no simulation ran
        assert bounds.lower <= exact.makespan <= bounds.upper
        assert tuple(bounds.delays) == bounds.envelope.per_message_lower

    def test_estimate_is_deterministic(self, butterfly_problem):
        a = simulate(butterfly_problem, model="wormhole", B=2,
                     message_length=L, mode="estimate")
        b = simulate(butterfly_problem, model="wormhole", B=2,
                     message_length=L, mode="estimate")
        assert a.envelope.to_metrics() == b.envelope.to_metrics()

    def test_unknown_mode_rejected(self, butterfly_problem):
        with pytest.raises(NetworkError, match="unknown mode"):
            simulate(butterfly_problem, model="wormhole", B=2,
                     message_length=L, mode="turbo")

    def test_estimate_rejects_exact_only_features(self, butterfly_problem):
        with pytest.raises(NetworkError, match="exact-mode"):
            simulate(butterfly_problem, model="wormhole", B=2,
                     message_length=L, mode="estimate", batch=[1, 2])

    def test_batch_results_are_wrapped(self, butterfly_problem):
        out = simulate(butterfly_problem, model="wormhole", B=2,
                       message_length=L, batch=[1, 2])
        assert all(isinstance(r, repro.SimResult) for r in out)
        assert all(r.mode == "exact" for r in out)

    def test_dict_access_warns_once_per_key(self, butterfly_problem):
        res = simulate(butterfly_problem, model="wormhole", B=2,
                       message_length=L, seed=SEED)
        with pytest.warns(DeprecationWarning, match="makespan"):
            assert res["makespan"] == res.makespan
        with pytest.warns(DeprecationWarning):
            assert res.get("nope", 42) == 42
        with pytest.warns(DeprecationWarning):
            with pytest.raises(KeyError):
                res["not_a_field"]

    def test_simulate_modes_exported(self):
        assert repro.SIMULATE_MODES == ("exact", "estimate")
