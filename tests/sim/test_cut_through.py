"""Unit tests for the virtual cut-through baseline (Section 1.4)."""

import numpy as np
import pytest

from repro.network.graph import Network, NetworkError
from repro.network.random_networks import chain_bundle
from repro.routing.paths import paths_from_node_walks
from repro.sim.cut_through import CutThroughSimulator


def chain_paths(chains, depth, per_chain):
    net, walks = chain_bundle(chains, depth, per_chain)
    return net, paths_from_node_walks(net, walks)


class TestBasics:
    def test_unobstructed_latency_matches_wormhole(self):
        """With no contention, cut-through = wormhole = L + D - 1."""
        net, paths = chain_paths(1, 5, 1)
        for buf in (1, 2, 4):
            res = CutThroughSimulator(net, buffer_flits=buf).run(
                paths, message_length=6
            )
            assert res.makespan == 6 + 5 - 1
            assert res.total_blocked_steps == 0

    def test_single_hop(self):
        net, paths = chain_paths(1, 1, 1)
        res = CutThroughSimulator(net).run(paths, message_length=4)
        assert res.makespan == 4

    def test_zero_length_path(self):
        net, _ = chain_paths(1, 2, 1)
        res = CutThroughSimulator(net).run([[]], message_length=3)
        assert res.completion_times[0] == 0

    def test_empty(self):
        net, _ = chain_paths(1, 2, 1)
        res = CutThroughSimulator(net).run([], message_length=3)
        assert res.num_messages == 0

    def test_validation(self):
        net, paths = chain_paths(1, 2, 1)
        with pytest.raises(NetworkError):
            CutThroughSimulator(net, buffer_flits=0)
        with pytest.raises(NetworkError):
            CutThroughSimulator(net, priority="bogus")
        with pytest.raises(NetworkError):
            CutThroughSimulator(net).run(paths, message_length=0)
        with pytest.raises(NetworkError):
            CutThroughSimulator(net).run([[0, 0]], message_length=2)


class TestCompression:
    def test_blocked_worm_compresses_into_buffers(self):
        """Section 1.4: a cut-through worm behaves like a shorter worm.

        Two worms share a chain; the second can start streaming into the
        chain's buffers before the first clears, so bigger buffers lower
        the makespan relative to the 1-flit (wormhole-like) case.
        """
        net, paths = chain_paths(1, 6, 2)
        L = 8
        t1 = CutThroughSimulator(net, buffer_flits=1, priority="index").run(
            paths, L
        ).makespan
        t4 = CutThroughSimulator(net, buffer_flits=4, priority="index").run(
            paths, L
        ).makespan
        assert t4 <= t1

    def test_buffer_one_matches_wormhole_serialization(self):
        """At buffer_flits = 1 and exclusive edges, ownership transfers
        edge by edge — the second worm still waits about L per conflict."""
        net, paths = chain_paths(1, 3, 2)
        L = 5
        res = CutThroughSimulator(net, buffer_flits=1, priority="index").run(
            paths, L
        )
        assert res.all_delivered
        assert res.completion_times[0] == L + 3 - 1
        assert res.completion_times[1] > res.completion_times[0]

    def test_speedup_roughly_linear_in_buffer(self):
        """The paper: VCT with B-flit buffers ~ wormhole with length L/B.

        On a heavily shared chain the makespan should shrink as buffers
        grow, but by at most a linear factor.
        """
        net, paths = chain_paths(1, 4, 4)
        L = 12
        times = {}
        for buf in (1, 2, 4):
            times[buf] = CutThroughSimulator(
                net, buffer_flits=buf, priority="index"
            ).run(paths, L).makespan
        assert times[4] <= times[2] <= times[1]
        # Never better than the contention-free floor.
        assert times[4] >= L + 4 - 1


class TestDeadlockAndCaps:
    def test_cycle_deadlocks(self):
        net = Network()
        a, b = net.add_nodes("ab")
        e_ab = net.add_edge(a, b)
        e_ba = net.add_edge(b, a)
        res = CutThroughSimulator(net, buffer_flits=1, priority="index").run(
            [[e_ab, e_ba], [e_ba, e_ab]], message_length=6
        )
        assert res.deadlocked

    def test_step_cap(self):
        net, paths = chain_paths(1, 3, 3)
        res = CutThroughSimulator(net).run(paths, message_length=8, max_steps=4)
        assert res.hit_step_cap

    def test_reproducible(self):
        net, paths = chain_paths(1, 4, 3)
        a = CutThroughSimulator(net, seed=9).run(paths, 5)
        b = CutThroughSimulator(net, seed=9).run(paths, 5)
        assert np.array_equal(a.completion_times, b.completion_times)
