"""Unit tests for circuit switching on the butterfly (Koch [22])."""

import numpy as np
import pytest

from repro.network.butterfly import Butterfly
from repro.network.graph import NetworkError
from repro.sim.circuit import circuit_switch_butterfly


class TestBasics:
    def test_identity_all_survive(self, butterfly8, rng):
        """Straight-through circuits never conflict."""
        res = circuit_switch_butterfly(
            butterfly8, np.arange(8), capacity=1, rng=rng
        )
        assert res.num_survivors == 8
        assert res.fraction == 1.0

    def test_all_to_one_capacity_limits(self, butterfly8, rng):
        """All inputs to output 0: the output's two incoming edges each
        admit `capacity` circuits."""
        res = circuit_switch_butterfly(
            butterfly8, np.zeros(8, dtype=np.int64), capacity=1, rng=rng
        )
        assert res.num_survivors == 2
        res2 = circuit_switch_butterfly(
            butterfly8, np.zeros(8, dtype=np.int64), capacity=2, rng=rng
        )
        assert res2.num_survivors == 4

    def test_dropped_per_level_accounts_for_losses(self, butterfly8, rng):
        res = circuit_switch_butterfly(
            butterfly8, np.zeros(8, dtype=np.int64), capacity=1, rng=rng
        )
        assert res.dropped_per_level.sum() == 8 - res.num_survivors

    def test_explicit_sources(self, butterfly8, rng):
        # Sources 2 and 3 share every edge from level 1 on toward output 0.
        res = circuit_switch_butterfly(
            butterfly8,
            dests=np.array([0, 0]),
            capacity=1,
            rng=rng,
            sources=np.array([2, 3]),
        )
        assert res.num_survivors == 1

    def test_validation(self, butterfly8, rng):
        with pytest.raises(NetworkError):
            circuit_switch_butterfly(butterfly8, np.arange(8), 0, rng)
        with pytest.raises(NetworkError):
            circuit_switch_butterfly(butterfly8, np.arange(4), 1, rng)


class TestKochShape:
    def test_more_capacity_more_survivors(self):
        """Koch's monotonicity: capacity B strictly helps on average."""
        n = 256
        bf = Butterfly(n)
        means = []
        for B in (1, 2, 4):
            rng = np.random.default_rng(0)
            survivors = [
                circuit_switch_butterfly(
                    bf, rng.integers(0, n, n), B, rng
                ).num_survivors
                for _ in range(10)
            ]
            means.append(np.mean(survivors))
        assert means[0] < means[1] < means[2]

    def test_random_problem_loses_messages_at_b1(self):
        """Kruskal-Snir: only Theta(n / log n) survive at B = 1.

        The constant is around 4, so we check the band loosely and, more
        tellingly, that the surviving *fraction* falls as n grows — the
        1 / log n shape.
        """
        fractions = []
        for n in (64, 1024):
            bf = Butterfly(n)
            rng = np.random.default_rng(1)
            survivors = np.mean(
                [
                    circuit_switch_butterfly(
                        bf, rng.integers(0, n, n), 1, rng
                    ).num_survivors
                    for _ in range(8)
                ]
            )
            assert n / np.log2(n) < survivors < 0.75 * n
            fractions.append(survivors / n)
        assert fractions[1] < fractions[0]

    def test_reproducible(self, butterfly8):
        d = np.array([0, 0, 1, 1, 2, 2, 3, 3])
        a = circuit_switch_butterfly(butterfly8, d, 1, np.random.default_rng(4))
        b = circuit_switch_butterfly(butterfly8, d, 1, np.random.default_rng(4))
        assert np.array_equal(a.survived, b.survived)
