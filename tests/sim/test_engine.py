"""Unit tests for the shared simulator engine (:mod:`repro.sim.engine`)."""

import numpy as np
import pytest

from repro.network.graph import NetworkError
from repro.sim.engine import (
    SlotArbiter,
    StepLoop,
    age_priorities,
    check_edge_simple,
    compat_check_edge_simple,
    default_step_cap,
    grant_free_slots,
    legacy_extra,
    legacy_record_probes,
    pad_paths,
    resolve_step_cap,
)


# ----------------------------------------------------------------------
# grant_free_slots
# ----------------------------------------------------------------------


def test_grant_respects_capacity_per_slot():
    slots = np.array([0, 0, 0, 1, 1], dtype=np.int64)
    prio = np.array([0.3, 0.1, 0.2, 0.9, 0.8])
    granted = grant_free_slots(slots, prio, capacity=2)
    # slot 0: the two lowest priorities win; slot 1: both fit.
    assert granted.tolist() == [False, True, True, True, True]


def test_grant_breaks_ties_lowest_priority_first():
    slots = np.zeros(3, dtype=np.int64)
    prio = np.array([2.0, 0.0, 1.0])
    granted = grant_free_slots(slots, prio, capacity=1)
    assert granted.tolist() == [False, True, False]


def test_grant_subtracts_existing_occupancy():
    slots = np.array([0, 1], dtype=np.int64)
    prio = np.array([0.5, 0.5])
    occupancy = np.array([2, 1], dtype=np.int64)
    granted = grant_free_slots(slots, prio, capacity=2, occupancy=occupancy)
    assert granted.tolist() == [False, True]


def test_grant_empty_contender_set():
    granted = grant_free_slots(
        np.zeros(0, dtype=np.int64), np.zeros(0), capacity=1
    )
    assert granted.shape == (0,) and granted.dtype == bool


def test_grant_full_slot_admits_nobody():
    slots = np.array([0], dtype=np.int64)
    occupancy = np.array([1], dtype=np.int64)
    granted = grant_free_slots(slots, np.array([0.0]), 1, occupancy)
    assert granted.tolist() == [False]


# ----------------------------------------------------------------------
# SlotArbiter
# ----------------------------------------------------------------------


def test_arbiter_contend_acquire_vacate_roundtrip():
    arb = SlotArbiter(3, capacity=1)
    slots = np.array([0, 0, 2], dtype=np.int64)
    prio = np.array([0.9, 0.1, 0.5])
    granted = arb.contend(slots, prio)
    assert granted.tolist() == [False, True, True]
    arb.acquire(slots[granted])
    assert arb.occupancy.tolist() == [1, 0, 1]
    # Slot 0 is now full: nobody else gets in.
    again = arb.contend(np.array([0], dtype=np.int64), np.array([0.0]))
    assert again.tolist() == [False]
    arb.vacate(slots[granted])
    assert arb.occupancy.tolist() == [0, 0, 0]


def test_arbiter_scalar_interface():
    arb = SlotArbiter(2, capacity=2)
    assert arb.has_free(1)
    arb.acquire_one(1)
    arb.acquire_one(1)
    assert not arb.has_free(1)
    arb.vacate_one(1)
    assert arb.has_free(1)


def test_arbiter_duplicate_slots_in_one_acquire():
    arb = SlotArbiter(1, capacity=2)
    arb.acquire(np.array([0, 0], dtype=np.int64))
    assert arb.occupancy.tolist() == [2]


# ----------------------------------------------------------------------
# path validation helpers
# ----------------------------------------------------------------------


def test_pad_paths_shapes():
    padded, lengths = pad_paths([[1, 2, 3], [4], []])
    assert padded.shape == (3, 3)
    assert lengths.tolist() == [3, 1, 0]
    assert padded[1].tolist() == [4, -1, -1]


def test_check_edge_simple_rejects_duplicates():
    padded, _ = pad_paths([[1, 2], [3, 3]])
    with pytest.raises(NetworkError, match="message 1"):
        check_edge_simple(padded)


def test_check_edge_simple_custom_message():
    padded, _ = pad_paths([[5, 5]])
    with pytest.raises(NetworkError, match="worm 0 loops"):
        check_edge_simple(padded, what="worm {m} loops")


def test_compat_shim_drops_lengths_argument():
    padded, lengths = pad_paths([[1, 2], [2, 1]])
    compat_check_edge_simple(padded, lengths)  # legacy two-arg call
    bad, bad_len = pad_paths([[7, 7]])
    with pytest.raises(NetworkError):
        compat_check_edge_simple(bad, bad_len)


# ----------------------------------------------------------------------
# step caps
# ----------------------------------------------------------------------


def _dims(model):
    release = np.array([0, 3], dtype=np.int64)
    lengths = np.array([2, 4], dtype=np.int64)
    L = np.array([5, 5], dtype=np.int64)
    kw = {
        "release": release,
        "lengths": lengths,
        "message_length": L,
        "num_messages": 2,
    }
    if model == "wormhole":
        kw["total_moves"] = L + lengths - 1
        kw["trivial"] = lengths == 0
    return kw


@pytest.mark.parametrize(
    "model",
    ["wormhole", "cut_through", "restricted", "store_forward", "adaptive"],
)
def test_default_caps_are_positive_and_release_shifted(model):
    kw = _dims(model)
    cap = default_step_cap(model, **kw)
    assert cap > 0
    shifted = dict(kw, release=kw["release"] + 100)
    assert default_step_cap(model, **shifted) == cap + 100


def test_resolve_step_cap_explicit_wins():
    kw = _dims("wormhole")
    assert resolve_step_cap(17, "wormhole", **kw) == 17
    assert resolve_step_cap(None, "wormhole", **kw) == default_step_cap(
        "wormhole", **kw
    )


def test_default_cap_unknown_model():
    with pytest.raises(NetworkError, match="bogus"):
        default_step_cap("bogus", **_dims("wormhole"))


# ----------------------------------------------------------------------
# legacy telemetry shims
# ----------------------------------------------------------------------


def test_legacy_record_probes_warns_once_per_flag():
    with pytest.warns(DeprecationWarning, match="record_trace is deprecated"):
        extra, trace, contention = legacy_record_probes(True, False, stacklevel=2)
    assert trace is not None and contention is None and extra == [trace]
    with pytest.warns(
        DeprecationWarning, match="record_contention is deprecated"
    ):
        extra, trace, contention = legacy_record_probes(False, True, stacklevel=2)
    assert trace is None and contention is not None and extra == [contention]


def test_legacy_record_probes_silent_when_unused():
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error")
        extra, trace, contention = legacy_record_probes(False, False)
    assert extra == [] and trace is None and contention is None


def test_legacy_extra_keys():
    with pytest.warns(DeprecationWarning):
        _, trace, contention = legacy_record_probes(True, True, stacklevel=2)
    extra = legacy_extra(trace, contention)
    assert set(extra) == {"trace", "edge_contention"}


# ----------------------------------------------------------------------
# StepLoop
# ----------------------------------------------------------------------


def test_steploop_counts_steps_and_assembles_result():
    release = np.zeros(2, dtype=np.int64)
    loop = StepLoop(2, release, max_steps=100)

    def body(t, active):
        if t >= 3:
            loop.completion[:] = t
            loop.done[:] = True
        return True

    result = loop.run(body)
    assert result.makespan == 3
    assert result.steps_executed == 3
    assert result.all_delivered and not result.deadlocked


def test_steploop_skips_idle_gap():
    release = np.array([10], dtype=np.int64)
    loop = StepLoop(1, release, max_steps=100)
    seen = []

    def body(t, active):
        seen.append(t)
        loop.completion[:] = t
        loop.done[:] = True
        return True

    loop.run(body)
    # t jumps straight past the idle prefix: first working step is 11.
    assert seen == [11]


def test_steploop_declares_deadlock_when_nothing_moves():
    release = np.zeros(1, dtype=np.int64)
    loop = StepLoop(1, release, max_steps=100)
    result = loop.run(lambda t, active: False)
    assert result.deadlocked and not result.hit_step_cap
    assert result.steps_executed == 1
    assert result.completion_times.tolist() == [-1]


def test_steploop_detect_deadlock_off_hits_cap_instead():
    release = np.zeros(1, dtype=np.int64)
    loop = StepLoop(1, release, max_steps=5, detect_deadlock=False)
    result = loop.run(lambda t, active: False)
    assert not result.deadlocked and result.hit_step_cap
    assert result.steps_executed == 5


def test_steploop_time_scale_multiplies_steps():
    release = np.zeros(1, dtype=np.int64)
    loop = StepLoop(1, release, max_steps=50, time_scale=4)

    def body(t, active):
        loop.completion[:] = t * 4
        loop.done[:] = True
        return True

    result = loop.run(body)
    assert result.steps_executed == 4
    assert result.makespan == 4


def test_steploop_mark_trivial_completes_without_stepping():
    release = np.array([2, 0], dtype=np.int64)
    loop = StepLoop(2, release, max_steps=10)
    loop.mark_trivial(np.array([True, False]), release)

    def body(t, active):
        loop.completion[1] = t
        loop.done[1] = True
        return True

    result = loop.run(body)
    assert result.completion_times[0] == 2
    assert result.all_delivered


def test_steploop_extra_factory_populates_result():
    release = np.zeros(1, dtype=np.int64)
    loop = StepLoop(1, release, max_steps=10)

    def body(t, active):
        loop.completion[:] = t
        loop.done[:] = True
        return True

    result = loop.run(body, lambda: {"marker": 7})
    assert result.extra == {"marker": 7}


def test_age_priorities_orders_by_release_then_index():
    release = np.array([5, 0, 0], dtype=np.int64)
    prio = age_priorities(release)
    # Oldest (release 0, lowest index) ranks first; the late message last.
    assert prio.tolist() == [2, 0, 1]


# ----------------------------------------------------------------------
# the lexsort kernel lives only in the engine
# ----------------------------------------------------------------------


def test_single_kernel_site():
    import pathlib

    import repro.sim as sim_pkg

    sim_dir = pathlib.Path(sim_pkg.__file__).parent
    hits = [
        p.name
        for p in sim_dir.glob("*.py")
        if "np.lexsort((prio" in p.read_text()
    ]
    assert hits == ["engine.py"]


# ----------------------------------------------------------------------
# PaddedPaths
# ----------------------------------------------------------------------


def test_padded_paths_wraps_and_passes_through():
    from repro.sim.engine import PaddedPaths

    pp = PaddedPaths.from_paths([[0, 1], [2]])
    assert pp.num_messages == 2
    assert pp.lengths.tolist() == [2, 1]
    # from_paths on an instance returns the same object ...
    assert PaddedPaths.from_paths(pp) is pp
    # ... and pad_paths unwraps it without re-packing.
    padded, lengths = pad_paths(pp)
    assert padded is pp.padded and lengths is pp.lengths


def test_padded_paths_validates_once_and_caches():
    from repro.sim.engine import PaddedPaths

    pp = PaddedPaths.from_paths([[0, 1], [2]])
    assert not pp._edge_simple
    assert pp.require_edge_simple() is pp
    assert pp._edge_simple
    pp.require_edge_simple("anything")  # cached: no re-validation

    bad = PaddedPaths.from_paths([[0, 0]])
    with pytest.raises(NetworkError, match="edge-simple"):
        bad.require_edge_simple()
    with pytest.raises(NetworkError, match="worm"):
        PaddedPaths.from_paths([[1, 1]]).require_edge_simple("worm 0")


# ----------------------------------------------------------------------
# batched arbitration
# ----------------------------------------------------------------------


def test_grant_accepts_per_contender_capacity():
    from repro.sim.engine import grant_free_slots

    slots = np.array([0, 0, 0, 5, 5], dtype=np.int64)
    prio = np.array([0.3, 0.1, 0.2, 0.9, 0.8])
    cap = np.array([2, 2, 2, 1, 1], dtype=np.int64)
    granted = grant_free_slots(slots, prio, cap)
    # Slot 0 (capacity 2) grants its two best; slot 5 (capacity 1) one.
    assert granted.tolist() == [False, True, True, False, True]


def test_batch_arbiter_matches_independent_serial_arbiters():
    from repro.sim.engine import BatchSlotArbiter

    rng = np.random.default_rng(0)
    num_slots = np.array([4, 6, 4], dtype=np.int64)
    caps = np.array([1, 2, 3], dtype=np.int64)
    batch = BatchSlotArbiter(num_slots, caps)
    serial = [SlotArbiter(int(n), int(c)) for n, c in zip(num_slots, caps)]
    for _ in range(50):
        n = int(rng.integers(1, 10))
        trials = rng.integers(0, 3, size=n).astype(np.int64)
        slots = np.array(
            [rng.integers(0, num_slots[tr]) for tr in trials], dtype=np.int64
        )
        prio = rng.random(n)
        got = batch.contend(trials, slots, prio)
        want = np.zeros(n, dtype=bool)
        for tr in range(3):
            sel = trials == tr
            if sel.any():
                want[sel] = serial[tr].contend(slots[sel], prio[sel])
        assert np.array_equal(got, want)
        batch.acquire(trials[got], slots[got])
        for tr in range(3):
            sel = (trials == tr) & got
            serial[tr].acquire(slots[sel])
        # Randomly vacate some grants to keep occupancy in flux.
        drop = got & (rng.random(n) < 0.5)
        batch.vacate(trials[drop], slots[drop])
        for tr in range(3):
            sel = (trials == tr) & drop
            serial[tr].vacate(slots[sel])
        for tr in range(3):
            lo, hi = batch.offsets[tr], batch.offsets[tr + 1]
            assert np.array_equal(batch.occupancy[lo:hi], serial[tr].occupancy)


def test_batch_arbiter_rejects_bad_shapes():
    from repro.sim.engine import BatchSlotArbiter

    with pytest.raises(NetworkError, match="equal length"):
        BatchSlotArbiter(np.array([2, 3]), np.array([1]))
    with pytest.raises(NetworkError, match="capacity"):
        BatchSlotArbiter(np.array([2]), np.array([0]))


# ----------------------------------------------------------------------
# BatchStepLoop masking
# ----------------------------------------------------------------------


def test_batchsteploop_finalizes_trials_independently():
    from repro.sim.engine import BatchStepLoop

    release = np.zeros(1, dtype=np.int64)
    # Trial 0 finishes at step 2, trial 1 deadlocks at step 1, trial 2
    # runs to its cap of 3.
    loop = BatchStepLoop(3, 1, release, np.array([10, 10, 3]))

    def body(t, active):
        moved = np.zeros(3, dtype=bool)
        if active[0, 0] and t == 2:
            loop.completion[0, 0] = t
            loop.done[0, 0] = True
            moved[0] = True
        elif active[0, 0]:
            moved[0] = True
        moved[2] = bool(active[2, 0])
        return moved

    loop.run(body)
    assert loop.steps.tolist() == [2, 1, 3]
    assert loop.deadlocked.tolist() == [False, True, False]
    assert loop.hit_cap.tolist() == [False, False, True]
    results = loop.results()
    assert results[0].completion_times.tolist() == [2]
    assert results[1].deadlocked and not results[1].hit_step_cap
    assert results[2].hit_step_cap and not results[2].deadlocked


def test_batchsteploop_jumps_shared_clock_over_idle_gap():
    from repro.sim.engine import BatchStepLoop

    release = np.array([50], dtype=np.int64)
    loop = BatchStepLoop(2, 1, release, np.array([100, 100]))
    seen = []

    def body(t, active):
        seen.append(t)
        loop.completion[:, 0] = np.where(active[:, 0], t, loop.completion[:, 0])
        loop.done[:, 0] |= active[:, 0]
        return active[:, 0].copy()

    loop.run(body)
    assert seen == [51]  # the gap 1..50 was skipped, not stepped
    assert loop.steps.tolist() == [51, 51]


def test_batchsteploop_release_at_or_past_cap_sets_cap_flag():
    from repro.sim.engine import BatchStepLoop

    release = np.array([40], dtype=np.int64)
    loop = BatchStepLoop(2, 1, release, np.array([10, 100]))

    def body(t, active):
        loop.completion[:, 0] = np.where(active[:, 0], t, loop.completion[:, 0])
        loop.done[:, 0] |= active[:, 0]
        return active[:, 0].copy()

    loop.run(body)
    # Trial 0's next release (40) is past its cap (10): finalized at the
    # jump target with the cap flag, exactly like the serial exit.
    assert loop.steps.tolist() == [40, 41]
    assert loop.hit_cap.tolist() == [True, False]
    assert loop.results()[1].completion_times.tolist() == [41]
