"""Tests for the parallel trial-grid runner (:mod:`repro.sim.sweep`)."""

import json

import numpy as np
import pytest

from repro.network.graph import NetworkError
from repro.sim.sweep import (
    SIMULATORS,
    WORKLOADS,
    TrialSpec,
    Workload,
    register_workload,
    run_sweep,
    sweep_grid,
    trial_seed,
)

TINY_WL = {"chains": 2, "depth": 5, "messages": 3}


def tiny_grid(simulators=("wormhole", "store_forward"), Bs=(1, 2), repeats=1):
    return sweep_grid(
        "chain-bundle",
        list(simulators),
        Bs,
        workload_params=TINY_WL,
        message_length=8,
        repeats=repeats,
    )


# ----------------------------------------------------------------------
# specs and seeds
# ----------------------------------------------------------------------


def test_spec_params_are_canonicalized():
    a = TrialSpec.make("layered", "wormhole", workload_params={"b": 1, "a": 2})
    b = TrialSpec.make("layered", "wormhole", workload_params={"a": 2, "b": 1})
    assert a == b
    assert a.cache_key(0) == b.cache_key(0)


def test_spec_rejects_unknown_names_and_bad_values():
    with pytest.raises(NetworkError, match="unknown workload"):
        TrialSpec.make("nope", "wormhole")
    with pytest.raises(NetworkError, match="unknown simulator"):
        TrialSpec.make("layered", "nope")
    with pytest.raises(NetworkError, match="B must be"):
        TrialSpec.make("layered", "wormhole", B=0)
    with pytest.raises(NetworkError, match="JSON scalar"):
        TrialSpec.make("layered", "wormhole", workload_params={"x": [1, 2]})


def test_trial_seed_is_stable_and_repeat_separated():
    spec0 = TrialSpec.make("layered", "wormhole", B=2)
    spec1 = TrialSpec.make("layered", "wormhole", B=2, repeat=1)
    s0a = np.random.default_rng(trial_seed(spec0, 7)).integers(1 << 30)
    s0b = np.random.default_rng(trial_seed(spec0, 7)).integers(1 << 30)
    s1 = np.random.default_rng(trial_seed(spec1, 7)).integers(1 << 30)
    other_root = np.random.default_rng(trial_seed(spec0, 8)).integers(1 << 30)
    assert s0a == s0b  # deterministic
    assert s0a != s1  # repeats are independent streams
    assert s0a != other_root  # root seed matters


def test_trial_seed_ignores_grid_membership():
    """Repeat i's seed is identical whether 1 or 100 repeats exist."""
    spec = TrialSpec.make("layered", "wormhole", repeat=2)
    direct = trial_seed(spec, 0)
    assert direct.spawn_key == trial_seed(spec, 0).spawn_key


def test_sweep_grid_shape():
    specs = tiny_grid(repeats=2)
    assert len(specs) == 2 * 2 * 2
    assert {(s.simulator, s.B, s.repeat) for s in specs} == {
        (sim, B, r)
        for sim in ("wormhole", "store_forward")
        for B in (1, 2)
        for r in (0, 1)
    }


# ----------------------------------------------------------------------
# execution: serial == parallel, cache behavior
# ----------------------------------------------------------------------


def test_parallel_matches_serial_bit_exactly():
    specs = tiny_grid(repeats=2)
    serial = run_sweep(specs, root_seed=5, workers=0)
    parallel = run_sweep(specs, root_seed=5, workers=2)
    assert [t.metrics for t in serial] == [t.metrics for t in parallel]
    assert [t.spec for t in serial] == specs  # input order preserved


def test_results_in_input_order_and_complete():
    specs = tiny_grid()
    out = run_sweep(specs)
    assert [t.spec for t in out] == specs
    for t in out:
        assert t.metrics["delivered"] == t.metrics["messages"]
        assert t.metrics["message_length"] == 8
        assert t.metrics["workload_dilation"] == 5


def test_cache_round_trip_and_delta_recompute(tmp_path):
    specs = tiny_grid()
    first = run_sweep(specs, cache_dir=tmp_path)
    assert first.num_cached == 0
    second = run_sweep(specs, cache_dir=tmp_path)
    assert second.num_cached == len(specs)
    assert [t.metrics for t in second] == [t.metrics for t in first]
    # Extend one axis: only the new cells execute.
    bigger = tiny_grid(Bs=(1, 2, 4))
    third = run_sweep(bigger, cache_dir=tmp_path)
    assert third.num_cached == len(specs)
    assert len(third) == len(bigger)


def test_cache_force_recomputes(tmp_path):
    specs = tiny_grid(simulators=("wormhole",), Bs=(1,))
    run_sweep(specs, cache_dir=tmp_path)
    out = run_sweep(specs, cache_dir=tmp_path, force=True)
    assert out.num_cached == 0


def test_cache_keyed_on_root_seed(tmp_path):
    specs = tiny_grid(simulators=("wormhole",), Bs=(1,))
    run_sweep(specs, root_seed=0, cache_dir=tmp_path)
    out = run_sweep(specs, root_seed=1, cache_dir=tmp_path)
    assert out.num_cached == 0  # different root seed is a different trial


def test_cache_rejects_corrupt_entry(tmp_path):
    specs = tiny_grid(simulators=("wormhole",), Bs=(1,))
    run_sweep(specs, cache_dir=tmp_path)
    entry = next(tmp_path.glob("*.json"))
    entry.write_text("{not json")
    out = run_sweep(specs, cache_dir=tmp_path)
    assert out.num_cached == 0  # silently recomputed
    assert json.loads(entry.read_text())["metrics"]["delivered"] == 6


def test_explicit_sim_seed_overrides_derived():
    spec_a = TrialSpec.make(
        "chain-bundle",
        "wormhole",
        B=1,
        workload_params=TINY_WL,
        sim_params={"seed": 0},
        message_length=8,
    )
    out_a = run_sweep([spec_a], root_seed=1)
    out_b = run_sweep([spec_a], root_seed=99)
    # With an explicit simulator seed the root seed is irrelevant.
    assert out_a.trials[0].metrics == out_b.trials[0].metrics


# ----------------------------------------------------------------------
# runners
# ----------------------------------------------------------------------


def test_every_registered_simulator_runs():
    specs = [
        TrialSpec.make(
            "chain-bundle",
            sim,
            B=2,
            workload_params=TINY_WL,
            message_length=8,
        )
        for sim in ("wormhole", "cut_through", "store_forward", "restricted")
    ]
    specs.append(
        TrialSpec.make(
            "mesh-permutation", "adaptive", B=2, workload_params={"k": 3}
        )
    )
    specs.append(
        TrialSpec.make(
            "layered",
            "schedule",
            B=2,
            workload_params={"width": 6, "depth": 4, "messages": 20},
        )
    )
    out = run_sweep(specs)
    for t in out:
        assert t.metrics["delivered"] == t.metrics["messages"], t.spec.label()
    sched = out.trials[-1].metrics
    assert sched["blocked"] == 0 and sched["classes"] >= 1


def test_store_forward_reports_max_queue():
    spec = TrialSpec.make(
        "chain-bundle",
        "store_forward",
        workload_params=TINY_WL,
        message_length=8,
    )
    out = run_sweep([spec])
    assert out.trials[0].metrics["max_queue"] >= 1


def test_adaptive_requires_mesh_workload():
    spec = TrialSpec.make(
        "chain-bundle", "adaptive", workload_params=TINY_WL, message_length=8
    )
    with pytest.raises(NetworkError, match="mesh"):
        run_sweep([spec])


def test_register_workload_and_result_helpers():
    @register_workload("_test_tiny")
    def _tiny(depth: int = 3) -> Workload:
        from repro.network.random_networks import chain_bundle
        from repro.routing.paths import paths_from_node_walks

        net, walks = chain_bundle(1, depth, 2)
        return Workload(
            net=net,
            paths=paths_from_node_walks(net, walks),
            default_length=4,
            info={"depth": depth},
        )

    try:
        out = run_sweep(sweep_grid("_test_tiny", "wormhole", [1, 2]))
        assert out.column("makespan") == [
            t.metrics["makespan"] for t in out.trials
        ]
        only_b2 = out.filter(B=2)
        assert len(only_b2) == 1 and only_b2.trials[0].spec.B == 2
        row = out.trials[0].row()
        assert row["simulator"] == "wormhole" and row["workload_depth"] == 3
    finally:
        del WORKLOADS["_test_tiny"]


def test_registries_cover_the_documented_names():
    assert {
        "layered",
        "hard-instance",
        "chain-bundle",
        "butterfly-bitrev",
        "mesh-permutation",
    } <= set(WORKLOADS)
    assert {
        "wormhole",
        "cut_through",
        "store_forward",
        "restricted",
        "adaptive",
        "schedule",
    } == set(SIMULATORS)


# ----------------------------------------------------------------------
# batched execution
# ----------------------------------------------------------------------


def wormhole_grid(repeats=3, Bs=(1, 2, 4), **sim_params):
    return sweep_grid(
        "chain-bundle",
        "wormhole",
        Bs,
        workload_params=TINY_WL,
        sim_params=sim_params or None,
        message_length=8,
        repeats=repeats,
    )


@pytest.mark.parametrize("batch_size", [2, 3, None])
def test_batched_matches_serial_bit_exactly(batch_size):
    specs = wormhole_grid()
    serial = run_sweep(specs, root_seed=5, batch_size=1)
    batched = run_sweep(specs, root_seed=5, batch_size=batch_size)
    assert [t.metrics for t in serial] == [t.metrics for t in batched]
    assert [t.spec for t in batched] == specs


def test_batched_with_workers_and_cache(tmp_path):
    specs = wormhole_grid(repeats=2)
    serial = run_sweep(specs, root_seed=3, batch_size=1)
    batched = run_sweep(specs, root_seed=3, workers=2, cache_dir=tmp_path)
    assert [t.metrics for t in serial] == [t.metrics for t in batched]
    # Batch-produced cache entries serve later serial runs unchanged.
    again = run_sweep(specs, root_seed=3, batch_size=1, cache_dir=tmp_path)
    assert again.num_cached == len(specs)
    assert [t.metrics for t in again] == [t.metrics for t in serial]


def test_batched_respects_sim_params():
    for sim_params in ({"priority": "rank"}, {"seed": 7}):
        specs = wormhole_grid(repeats=2, **sim_params)
        serial = run_sweep(specs, batch_size=1)
        batched = run_sweep(specs)
        assert [t.metrics for t in serial] == [t.metrics for t in batched]


def test_batching_only_groups_compatible_cells():
    from repro.sim.sweep import _pack_units

    specs = wormhole_grid(repeats=2) + tiny_grid(
        simulators=("store_forward",), Bs=(1,)
    )
    units = _pack_units(specs, list(range(len(specs))), 0, batch_size=4)
    kinds = sorted(kind for (kind, _, _) in (u for u, _ in units))
    # 6 wormhole trials -> batches of 4 and 2; 1 store_forward single.
    assert kinds == ["batch", "batch", "single"]
    covered = sorted(i for _, idxs in units for i in idxs)
    assert covered == list(range(len(specs)))
    for (kind, payload, _), idxs in units:
        if kind == "batch":
            assert len(payload) == len(idxs) >= 2
            assert all(s.simulator == "wormhole" for s in payload)


def test_singleton_batch_tail_runs_as_single():
    from repro.sim.sweep import _pack_units

    specs = wormhole_grid(repeats=3, Bs=(1,))
    units = _pack_units(specs, list(range(3)), 0, batch_size=2)
    kinds = sorted(kind for (kind, _, _) in (u for u, _ in units))
    assert kinds == ["batch", "single"]


def test_batch_size_validation():
    with pytest.raises(NetworkError, match="batch_size"):
        run_sweep(wormhole_grid(repeats=1), batch_size=0)


def test_workload_cache_reuses_instances():
    from repro.sim.sweep import _WORKLOAD_CACHE, _build_workload

    _WORKLOAD_CACHE.clear()
    params = tuple(sorted(TINY_WL.items()))
    a = _build_workload("chain-bundle", params)
    b = _build_workload("chain-bundle", params)
    assert a is b
    assert a.padded_paths() is b.padded_paths()


def test_workload_cache_keyed_on_builder_function():
    from repro.sim.sweep import _WORKLOAD_CACHE, _build_workload

    @register_workload("_test_cache")
    def _v1() -> Workload:
        from repro.network.random_networks import chain_bundle
        from repro.routing.paths import paths_from_node_walks

        net, walks = chain_bundle(1, 2, 1)
        return Workload(net=net, paths=paths_from_node_walks(net, walks))

    try:
        first = _build_workload("_test_cache", ())

        @register_workload("_test_cache")
        def _v2() -> Workload:
            from repro.network.random_networks import chain_bundle
            from repro.routing.paths import paths_from_node_walks

            net, walks = chain_bundle(2, 2, 1)
            return Workload(net=net, paths=paths_from_node_walks(net, walks))

        second = _build_workload("_test_cache", ())
        # Re-registering the name must not serve the stale build.
        assert second is not first
        assert len(second.paths) == 2
    finally:
        del WORKLOADS["_test_cache"]
        _WORKLOAD_CACHE.clear()
