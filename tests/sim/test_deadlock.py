"""Unit tests for the Dally-Seitz deadlock machinery."""

import numpy as np

from repro.network.graph import Network
from repro.network.mesh import KAryNCube, dimension_order_path
from repro.routing.paths import Path, paths_from_node_walks
from repro.sim.deadlock import (
    channel_dependency_graph,
    dateline_vc_assignment,
    has_cycle,
    is_deadlock_free,
    wait_for_graph,
)


def ring_network(k):
    net = Network()
    nodes = net.add_nodes(range(k))
    for i in range(k):
        net.add_edge(nodes[i], nodes[(i + 1) % k])
    return net


class TestHasCycle:
    def test_dag(self):
        assert not has_cycle({1: {2}, 2: {3}, 3: set()})

    def test_cycle(self):
        assert has_cycle({1: {2}, 2: {3}, 3: {1}})

    def test_self_loop(self):
        assert has_cycle({1: {1}})

    def test_empty(self):
        assert not has_cycle({})


class TestChannelDependencyGraph:
    def test_line_paths_are_acyclic(self, small_line):
        p = Path.from_nodes(small_line, [0, 1, 2, 3])
        assert is_deadlock_free([p])

    def test_ring_routes_cycle(self):
        """All-the-way-around ring routes create the classic CDG cycle."""
        net = ring_network(4)
        walks = [[i, (i + 1) % 4, (i + 2) % 4, (i + 3) % 4] for i in range(4)]
        paths = paths_from_node_walks(net, walks)
        assert not is_deadlock_free(paths)

    def test_partial_ring_routes_fine(self):
        """Routes that never wrap cannot close the cycle."""
        net = ring_network(4)
        paths = paths_from_node_walks(net, [[0, 1, 2], [1, 2, 3]])
        assert is_deadlock_free(paths)

    def test_cdg_vertices_include_all_used_channels(self):
        net = ring_network(4)
        paths = paths_from_node_walks(net, [[0, 1, 2]])
        adj = channel_dependency_graph(paths)
        assert len(adj) == 2

    def test_single_edge_path(self):
        net = ring_network(4)
        paths = paths_from_node_walks(net, [[0, 1]])
        adj = channel_dependency_graph(paths)
        assert len(adj) == 1


class TestDateline:
    def test_dateline_breaks_torus_cycle(self):
        """Dimension-order torus routes deadlock at one VC but are safe
        with the dateline assignment — the Dally-Seitz construction."""
        cube = KAryNCube(k=4, n=1, wrap=True)
        net = cube.network
        walks = [
            dimension_order_path(cube, s, (s + 2) % 4) for s in range(4)
        ]
        # Force all clockwise so the ring cycle actually closes.
        walks = [[s, (s + 1) % 4, (s + 2) % 4] for s in range(4)]
        paths = paths_from_node_walks(net, walks)
        assert not is_deadlock_free(paths)  # single VC: cycle
        vc_of = dateline_vc_assignment(cube)
        assert is_deadlock_free(paths, vc_of)  # dateline: acyclic

    def test_dateline_vc_values(self):
        cube = KAryNCube(k=4, n=1, wrap=True)
        path = paths_from_node_walks(cube.network, [[2, 3, 0, 1]])[0]
        vc_of = dateline_vc_assignment(cube)
        assert vc_of(path, 0) == 0  # before the wrap
        assert vc_of(path, 1) == 1  # the wrap hop itself
        assert vc_of(path, 2) == 1  # after the wrap

    def test_dateline_2d(self):
        cube = KAryNCube(k=4, n=2, wrap=True)
        walks = [
            dimension_order_path(cube, cube.node((i, 0)), cube.node(((i + 2) % 4, 2)))
            for i in range(4)
        ]
        paths = paths_from_node_walks(cube.network, walks)
        vc_of = dateline_vc_assignment(cube)
        assert is_deadlock_free(paths, vc_of)


class TestWaitForGraph:
    def test_mutual_wait_detected(self):
        net = Network()
        a, b = net.add_nodes("ab")
        e_ab = net.add_edge(a, b)
        e_ba = net.add_edge(b, a)
        p0 = Path((a, b, a), (e_ab, e_ba))
        p1 = Path((b, a, b), (e_ba, e_ab))
        adj = wait_for_graph(
            [p0, p1],
            head_edge_index=np.array([1, 1]),  # both want their 2nd edge
            occupancy_of={e_ab: [0], e_ba: [1]},
        )
        assert has_cycle({k: set(v) for k, v in adj.items()})

    def test_draining_messages_excluded(self):
        net = Network()
        a, b = net.add_nodes("ab")
        e = net.add_edge(a, b)
        p = Path((a, b), (e,))
        adj = wait_for_graph([p], np.array([-1]), {e: [0]})
        assert adj == {}
