"""Unit tests for the flit-level wormhole simulator (Section 1.1 model)."""

import numpy as np
import pytest

from repro.network.graph import Network, NetworkError
from repro.network.random_networks import chain_bundle
from repro.routing.paths import paths_from_node_walks
from repro.sim.engine import pad_paths
from repro.sim.wormhole import WormholeSimulator
from repro.telemetry import EdgeContentionCollector


def line(n):
    net = Network()
    nodes = net.add_nodes(range(n))
    for u, v in zip(nodes[:-1], nodes[1:]):
        net.add_edge(u, v)
    return net


class TestPadPaths:
    def test_ragged(self):
        padded, lengths = pad_paths([[0, 1, 2], [5]])
        assert padded.shape == (2, 3)
        assert list(lengths) == [3, 1]
        assert padded[1, 1] == -1

    def test_empty(self):
        padded, lengths = pad_paths([])
        assert padded.shape == (0, 0)


class TestSingleWorm:
    def test_unobstructed_latency(self):
        """A never-delayed worm takes exactly D + L - 1 flit steps (Sec. 1)."""
        net = line(6)
        sim = WormholeSimulator(net, num_virtual_channels=1)
        for L in (1, 3, 8):
            res = sim.run([[0, 1, 2, 3, 4]], message_length=L)
            assert res.makespan == 5 + L - 1
            assert res.total_blocked_steps == 0

    def test_release_time_shifts_completion(self):
        net = line(4)
        sim = WormholeSimulator(net)
        res = sim.run(
            [[0, 1, 2]], message_length=2, release_times=np.array([10])
        )
        assert res.completion_times[0] == 10 + 3 + 2 - 1

    def test_zero_length_path_delivered_at_release(self):
        net = line(2)
        sim = WormholeSimulator(net)
        res = sim.run([[]], message_length=5, release_times=np.array([7]))
        assert res.completion_times[0] == 7

    def test_single_flit_message(self):
        """L = 1: pure header, one hop per step."""
        net = line(5)
        sim = WormholeSimulator(net)
        res = sim.run([[0, 1, 2, 3]], message_length=1)
        assert res.makespan == 4


class TestValidation:
    def test_rejects_non_edge_simple(self):
        net = line(3)
        sim = WormholeSimulator(net)
        with pytest.raises(NetworkError, match="edge-simple"):
            sim.run([[0, 0]], message_length=2)

    def test_rejects_bad_L(self):
        net = line(3)
        sim = WormholeSimulator(net)
        with pytest.raises(NetworkError, match="length"):
            sim.run([[0]], message_length=0)

    def test_rejects_bad_B(self):
        with pytest.raises(NetworkError, match="virtual channel"):
            WormholeSimulator(line(2), num_virtual_channels=0)

    def test_rejects_bad_priority(self):
        with pytest.raises(NetworkError, match="priority"):
            WormholeSimulator(line(2), priority="fifo")

    def test_rejects_negative_release(self):
        sim = WormholeSimulator(line(3))
        with pytest.raises(NetworkError):
            sim.run([[0]], message_length=1, release_times=np.array([-1]))

    def test_empty_run(self):
        sim = WormholeSimulator(line(2))
        res = sim.run([], message_length=3)
        assert res.num_messages == 0 and res.makespan == -1


class TestContention:
    def test_b1_serializes_shared_chain(self):
        """C worms sharing every edge of a chain serialize at B = 1.

        Each worm holds the first edge's buffer for L + 1 steps (its last
        flit vacates the head buffer one step after crossing); makespan is
        close to C * L with pipelining.
        """
        net, walks = chain_bundle(1, 4, 3)
        paths = paths_from_node_walks(net, walks)
        sim = WormholeSimulator(net, num_virtual_channels=1, seed=1)
        L = 6
        res = sim.run(paths, message_length=L)
        assert res.all_delivered
        # Worm k starts only after the previous worm's tail vacates edge
        # 0's buffer, i.e. L + 1 steps apart.
        assert res.makespan == 2 * (L + 1) + (L + 4 - 1)
        assert res.total_blocked_steps > 0

    def test_b_equals_c_no_blocking(self):
        """With B >= C every worm gets a virtual channel immediately."""
        net, walks = chain_bundle(1, 4, 3)
        paths = paths_from_node_walks(net, walks)
        sim = WormholeSimulator(net, num_virtual_channels=3)
        res = sim.run(paths, message_length=6)
        assert res.total_blocked_steps == 0
        assert res.makespan == 6 + 4 - 1

    def test_b2_halves_serialization(self):
        """B = 2 lets two worms share each edge concurrently."""
        net, walks = chain_bundle(1, 4, 4)
        paths = paths_from_node_walks(net, walks)
        L = 6
        t1 = WormholeSimulator(net, 1, seed=0).run(paths, L).makespan
        t2 = WormholeSimulator(net, 2, seed=0).run(paths, L).makespan
        assert t2 == (L + 1) + (L + 4 - 1)  # two batches of two
        assert t1 == 3 * (L + 1) + (L + 4 - 1)  # four serialized starts
        assert t2 < t1

    def test_blocked_steps_counted(self):
        net, walks = chain_bundle(1, 3, 2)
        paths = paths_from_node_walks(net, walks)
        res = WormholeSimulator(net, 1, seed=0).run(paths, message_length=4)
        # The losing worm waits exactly L + 1 steps at injection (the
        # winner's last flit vacates edge 0's buffer a step after
        # crossing it).
        assert res.blocked_steps.max() == 4 + 1
        assert res.blocked_steps.min() == 0


class TestArbitration:
    def test_index_priority_deterministic(self):
        net, walks = chain_bundle(1, 3, 3)
        paths = paths_from_node_walks(net, walks)
        sim = WormholeSimulator(net, 1, priority="index")
        res = sim.run(paths, message_length=3)
        # Message 0 wins first, then 1, then 2.
        assert list(np.argsort(res.completion_times)) == [0, 1, 2]

    def test_age_priority_respects_release(self):
        net, walks = chain_bundle(1, 3, 2)
        paths = paths_from_node_walks(net, walks)
        sim = WormholeSimulator(net, 1, priority="age")
        # Message 1 released earlier -> wins the contention at edge 0.
        res = sim.run(
            paths, message_length=3, release_times=np.array([2, 0])
        )
        assert res.completion_times[1] < res.completion_times[0]

    def test_rank_priority_is_consistent_across_steps(self):
        """Greenberg-Oh [19] style fixed ranks: the same worm wins every
        contention it enters, so completions follow the rank order."""
        net, walks = chain_bundle(1, 3, 4)
        paths = paths_from_node_walks(net, walks)
        res = WormholeSimulator(net, 1, priority="rank", seed=5).run(paths, 3)
        assert res.all_delivered
        # All four serialize; completion times are all distinct.
        assert len(set(res.completion_times.tolist())) == 4

    def test_random_priority_reproducible_by_seed(self):
        net, walks = chain_bundle(1, 3, 4)
        paths = paths_from_node_walks(net, walks)
        r1 = WormholeSimulator(net, 1, seed=42).run(paths, 3)
        r2 = WormholeSimulator(net, 1, seed=42).run(paths, 3)
        assert np.array_equal(r1.completion_times, r2.completion_times)


class TestWormSemantics:
    def test_worm_holds_edge_buffer_for_L_plus_1_steps(self):
        """A second worm can enter edge 0 only once the first worm's last
        flit has vacated edge 0's head buffer — L + 1 steps after the
        first worm started."""
        net = line(3)
        sim = WormholeSimulator(net, 1, priority="index")
        L = 5
        res = sim.run([[0, 1], [0, 1]], message_length=L)
        assert res.completion_times[0] == L + 1
        assert res.completion_times[1] == (L + 1) + (L + 1)

    def test_blocked_header_stalls_whole_worm(self):
        """A worm blocked mid-path keeps holding its upstream edges."""
        net = Network()
        a, b, c, d, e = net.add_nodes("abcde")
        e_ab = net.add_edge(a, b)
        e_bc = net.add_edge(b, c)
        e_cd = net.add_edge(c, d)
        # A long blocker occupying edge c->d via its own route.
        e_xc = net.add_edge(e, c)
        blocker = [e_xc, e_cd]
        crosser = [e_ab, e_bc, e_cd]
        sim = WormholeSimulator(net, 1, priority="index")
        L = 6
        res = sim.run([blocker, crosser], message_length=L)
        assert res.all_delivered
        # The crosser reaches c->d at step 3 but the blocker holds it
        # until step 2 + L... verify crosser was actually blocked.
        assert res.blocked_steps[1] > 0

    def test_blocked_worm_keeps_buffer_of_stalled_tail_flit(self):
        """Regression: a worm with D > L that blocks mid-path still holds
        the buffer its last flit is parked in.

        Worm A (L=2) crosses edges 0,1,2 then blocks on edge 3 (held by a
        long blocker).  A's tail flit is parked in edge 1's head buffer
        the whole time, so worm B (a single hop over edge 1) must wait for
        A to unblock and drain — it cannot be granted edge 1's only slot
        while A's flit sits there.
        """
        net = Network()
        nodes = net.add_nodes(range(8))
        chain = [net.add_edge(nodes[i], nodes[i + 1]) for i in range(5)]  # 0..4
        e_blk = net.add_edge(nodes[6], nodes[3])  # blocker's way into node 3
        e_b = net.add_edge(nodes[7], nodes[2])  # unused entry, keeps ids tidy
        del e_b
        worm_a = chain  # D = 5, L = 2
        blocker = [e_blk, chain[3]]  # holds edge 3 for its whole length
        worm_b = [chain[1]]  # single hop over edge 1
        sim = WormholeSimulator(net, 1, priority="index")
        res = sim.run(
            [blocker, worm_a, worm_b],
            message_length=np.array([10, 2, 1]),
            # B wakes only after A's tail flit is parked in edge 1's buffer.
            release_times=np.array([0, 0, 4]),
        )
        assert res.all_delivered
        # Blocker (L=10, D=2) completes at 11 and only then does A resume;
        # A's flit leaves edge 1's buffer at step 12, so B crosses at 13.
        assert res.completion_times[0] == 11
        assert res.completion_times[1] == 14
        assert res.completion_times[2] == 13

    def test_per_message_lengths(self):
        net, walks = chain_bundle(2, 3, 1)
        paths = paths_from_node_walks(net, walks)
        sim = WormholeSimulator(net, 1)
        res = sim.run(paths, message_length=np.array([2, 7]))
        assert res.completion_times[0] == 2 + 3 - 1
        assert res.completion_times[1] == 7 + 3 - 1


class TestDeadlock:
    def test_two_worm_deadlock_detected(self):
        """The classic cycle: two worms each wanting the other's edge.

        Dally-Seitz motivating example (Section 1): worm A holds edge
        u->v and wants v->u's... build a 2-cycle a->b->a with two worms
        starting on opposite edges, each long enough to keep holding its
        first edge when its header blocks.
        """
        net = Network()
        a, b = net.add_nodes("ab")
        e_ab = net.add_edge(a, b)
        e_ba = net.add_edge(b, a)
        sim = WormholeSimulator(net, 1, priority="index")
        res = sim.run([[e_ab, e_ba], [e_ba, e_ab]], message_length=5)
        assert res.deadlocked
        assert not res.all_delivered

    def test_virtual_channels_break_deadlock(self):
        """The same configuration with B = 2 routes fine."""
        net = Network()
        a, b = net.add_nodes("ab")
        e_ab = net.add_edge(a, b)
        e_ba = net.add_edge(b, a)
        sim = WormholeSimulator(net, 2, priority="index")
        res = sim.run([[e_ab, e_ba], [e_ba, e_ab]], message_length=5)
        assert res.all_delivered
        assert not res.deadlocked

    def test_step_cap(self):
        net, walks = chain_bundle(1, 3, 3)
        paths = paths_from_node_walks(net, walks)
        sim = WormholeSimulator(net, 1)
        res = sim.run(paths, message_length=10, max_steps=5)
        assert res.hit_step_cap
        assert not res.all_delivered


class TestContentionMap:
    def test_contention_localizes_to_shared_edges(self):
        """Denied requests pile up on the chain entrance, nowhere else."""
        net, walks = chain_bundle(2, 3, 3)
        paths = paths_from_node_walks(net, walks)
        collector = EdgeContentionCollector()
        res = WormholeSimulator(net, 1, seed=0).run(
            paths, message_length=4, telemetry=[collector]
        )
        contention = collector.denied
        assert contention.shape == (net.num_edges,)
        # All denials happen at the two chains' first edges (injection).
        first_edges = {paths[0].edges[0], paths[3].edges[0]}
        hot = set(np.flatnonzero(contention).tolist())
        assert hot <= first_edges
        assert contention.sum() == res.total_blocked_steps

    def test_absent_by_default(self):
        net, walks = chain_bundle(1, 2, 1)
        paths = paths_from_node_walks(net, walks)
        res = WormholeSimulator(net).run(paths, message_length=2)
        assert "edge_contention" not in res.extra


class TestLatencies:
    def test_latency_accessor(self):
        net = line(4)
        sim = WormholeSimulator(net)
        release = np.array([0, 5])
        res = sim.run([[0, 1], [2]], message_length=3, release_times=release)
        lat = res.latencies(release)
        assert list(lat) == [3 + 2 - 1, 3 + 1 - 1]
