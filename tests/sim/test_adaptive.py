"""Unit tests for adaptive mesh routing (turn models)."""

import numpy as np
import pytest

from repro.network.graph import NetworkError
from repro.network.mesh import KAryNCube
from repro.sim.adaptive import AdaptiveMeshRouter


@pytest.fixture
def mesh():
    return KAryNCube(k=4, n=2, wrap=False)


def square_cycle_demands(cube):
    """Four worms chasing each other around the unit square — the classic
    fully-adaptive deadlock configuration."""
    a = cube.node((0, 0))
    b = cube.node((1, 0))
    c = cube.node((1, 1))
    d = cube.node((0, 1))
    return [(a, c), (b, d), (c, a), (d, b)]


class TestConstruction:
    def test_requires_2d_mesh(self):
        with pytest.raises(NetworkError):
            AdaptiveMeshRouter(KAryNCube(k=4, n=3, wrap=False))
        with pytest.raises(NetworkError):
            AdaptiveMeshRouter(KAryNCube(k=4, n=2, wrap=True))

    def test_policy_validation(self, mesh):
        with pytest.raises(NetworkError):
            AdaptiveMeshRouter(mesh, policy="bogus")
        with pytest.raises(NetworkError):
            AdaptiveMeshRouter(mesh, num_virtual_channels=0)

    def test_bad_length(self, mesh):
        router = AdaptiveMeshRouter(mesh)
        with pytest.raises(NetworkError):
            router.run([(0, 5)], message_length=0)


class TestRoutesAreMinimal:
    @pytest.mark.parametrize("policy", ["dimension", "west-first", "fully-adaptive"])
    def test_paths_have_manhattan_length(self, mesh, policy):
        rng = np.random.default_rng(3)
        demands = [
            (int(rng.integers(16)), int(rng.integers(16))) for _ in range(30)
        ]
        router = AdaptiveMeshRouter(mesh, 2, policy=policy, seed=1)
        out = router.run(demands, message_length=4)
        assert out.all_delivered
        for (s, d), path in zip(demands, out.taken_paths):
            sx, sy = mesh.coords(s)
            dx, dy = mesh.coords(d)
            assert len(path) == abs(dx - sx) + abs(dy - sy)

    def test_dimension_policy_is_xy(self, mesh):
        router = AdaptiveMeshRouter(mesh, policy="dimension", seed=0)
        out = router.run([(mesh.node((0, 0)), mesh.node((2, 2)))], 3)
        nodes = [mesh.node((0, 0))]
        for e in out.taken_paths[0]:
            nodes.append(mesh.network.head(e))
        coords = [mesh.coords(v) for v in nodes]
        # x corrected first, then y.
        assert coords == [(0, 0), (1, 0), (2, 0), (2, 1), (2, 2)]

    def test_west_first_goes_west_deterministically(self, mesh):
        router = AdaptiveMeshRouter(mesh, policy="west-first", seed=0)
        out = router.run([(mesh.node((3, 1)), mesh.node((0, 3)))], 3)
        coords = [mesh.coords(mesh.network.tail(out.taken_paths[0][0]))]
        for e in out.taken_paths[0]:
            coords.append(mesh.coords(mesh.network.head(e)))
        # The first three hops all go west (x: 3 -> 0) before any y move.
        xs = [c[0] for c in coords[:4]]
        assert xs == [3, 2, 1, 0]


class TestDeadlock:
    def test_fully_adaptive_can_deadlock(self, mesh):
        """The square-cycle workload deadlocks fully-adaptive B=1 for
        some arbitration outcome."""
        demands = square_cycle_demands(mesh)
        saw_deadlock = False
        for seed in range(40):
            router = AdaptiveMeshRouter(
                mesh, 1, policy="fully-adaptive", seed=seed
            )
            out = router.run(demands, message_length=4)
            if out.result.deadlocked:
                saw_deadlock = True
                break
        assert saw_deadlock

    @pytest.mark.parametrize("policy", ["dimension", "west-first"])
    def test_restricted_policies_never_deadlock(self, mesh, policy):
        """Turn-model guarantee: no deadlock on any tested seed, even on
        the cycle workload and random loads."""
        demands = square_cycle_demands(mesh)
        rng = np.random.default_rng(0)
        random_demands = [
            (int(rng.integers(16)), int(rng.integers(16))) for _ in range(40)
        ]
        for seed in range(15):
            for load in (demands, random_demands):
                router = AdaptiveMeshRouter(mesh, 1, policy=policy, seed=seed)
                out = router.run(load, message_length=4)
                assert not out.result.deadlocked
                assert out.all_delivered

    def test_virtual_channels_rescue_fully_adaptive(self, mesh):
        """B = 2 resolves the square cycle even without turn rules."""
        demands = square_cycle_demands(mesh)
        for seed in range(10):
            router = AdaptiveMeshRouter(
                mesh, 2, policy="fully-adaptive", seed=seed
            )
            out = router.run(demands, message_length=4)
            assert out.all_delivered


class TestAdaptivityHelps:
    def test_adaptive_beats_xy_on_row_concentrated_load(self):
        """North-east traffic launched along one row: XY pins every worm
        to the crowded bottom row until its x is corrected; west-first
        may turn north early and spread the load (~2x faster here)."""
        mesh = KAryNCube(k=6, n=2, wrap=False)
        demands = [
            (mesh.node((x, 0)), mesh.node((min(5, x + 2), 5)))
            for x in range(5)
            for _ in range(4)
        ]
        xy_spans, wf_spans = [], []
        for seed in range(5):
            xy = AdaptiveMeshRouter(mesh, 1, policy="dimension", seed=seed).run(
                demands, message_length=6
            )
            wf = AdaptiveMeshRouter(mesh, 1, policy="west-first", seed=seed).run(
                demands, message_length=6
            )
            assert xy.all_delivered and wf.all_delivered
            xy_spans.append(xy.result.makespan)
            wf_spans.append(wf.result.makespan)
        assert np.mean(wf_spans) < 0.8 * np.mean(xy_spans)

    def test_zero_hop_demand(self, mesh):
        router = AdaptiveMeshRouter(mesh)
        out = router.run([(3, 3)], message_length=5)
        assert out.result.completion_times[0] == 0

    def test_release_times(self, mesh):
        router = AdaptiveMeshRouter(mesh, policy="dimension")
        out = router.run(
            [(0, mesh.node((0, 2)))],
            message_length=3,
            release_times=np.array([4]),
        )
        assert out.result.completion_times[0] == 4 + 3 + 2 - 1

    def test_reproducible(self, mesh):
        demands = [(0, 15), (3, 12), (5, 10)]
        a = AdaptiveMeshRouter(mesh, 1, seed=5).run(demands, 4)
        b = AdaptiveMeshRouter(mesh, 1, seed=5).run(demands, 4)
        assert np.array_equal(
            a.result.completion_times, b.result.completion_times
        )
        assert a.taken_paths == b.taken_paths
