"""Tests for virtual-channel *class* assignments (Dally-Seitz proper).

The paper's Section 1.1 model treats an edge's B buffer slots as
interchangeable; Dally and Seitz's deadlock solution additionally
*restricts* which virtual channel a worm may use per hop so the virtual
channel dependency graph is acyclic.  These tests exercise the
``vc_ids`` mode of the wormhole simulator and reproduce the classic
result: interchangeable slots can still deadlock on a ring, class
restrictions (dateline) cannot.
"""

import pytest

from repro.network.graph import Network, NetworkError
from repro.sim.wormhole import WormholeSimulator


def ring(k):
    net = Network()
    nodes = net.add_nodes(range(k))
    edges = [net.add_edge(nodes[i], nodes[(i + 1) % k]) for i in range(k)]
    return net, edges


def around_the_ring_paths(edges, k):
    """One worm starting at each node, traveling all the way around."""
    return [[edges[(s + j) % k] for j in range(k)] for s in range(k)]


def dateline_vcs(paths, k):
    """VC 0 until the worm crosses edge k-1 (the dateline), then VC 1."""
    out = []
    for path in paths:
        vcs = []
        crossed = False
        for e in path:
            vcs.append(1 if crossed else 0)
            if e == k - 1:  # edge ids equal their ring position here
                crossed = True
        out.append(vcs)
    return out


class TestValidation:
    def test_vc_ids_length_mismatch(self):
        net, edges = ring(4)
        sim = WormholeSimulator(net, 2)
        with pytest.raises(NetworkError, match="match"):
            sim.run([[edges[0], edges[1]]], 3, vc_ids=[[0]])

    def test_vc_ids_out_of_range(self):
        net, edges = ring(4)
        sim = WormholeSimulator(net, 2)
        with pytest.raises(NetworkError, match="vc ids"):
            sim.run([[edges[0]]], 3, vc_ids=[[2]])


class TestBasicSemantics:
    def test_single_worm_unaffected(self):
        net, edges = ring(5)
        sim = WormholeSimulator(net, 2)
        res = sim.run([[edges[0], edges[1], edges[2]]], 4, vc_ids=[[0, 0, 1]])
        assert res.makespan == 4 + 3 - 1

    def test_same_class_serializes_different_classes_share(self):
        """Two worms over one edge: same class -> serialize; different
        classes -> both proceed (the classes are the B slots)."""
        net, edges = ring(3)
        sim = WormholeSimulator(net, 2, priority="index")
        same = sim.run(
            [[edges[0]], [edges[0]]], 5, vc_ids=[[0], [0]]
        )
        assert same.completion_times[1] > same.completion_times[0]
        sim2 = WormholeSimulator(net, 2, priority="index")
        diff = sim2.run(
            [[edges[0]], [edges[0]]], 5, vc_ids=[[0], [1]]
        )
        assert diff.completion_times[0] == diff.completion_times[1] == 5

    def test_class_capacity_is_one(self):
        """Three worms on one edge with classes {0,0,1}: the two class-0
        worms serialize even though B = 2 has a free... no — exactly one
        slot per class."""
        net, edges = ring(3)
        sim = WormholeSimulator(net, 2, priority="index")
        res = sim.run(
            [[edges[0]], [edges[0]], [edges[0]]], 4, vc_ids=[[0], [0], [1]]
        )
        assert res.all_delivered
        times = sorted(res.completion_times.tolist())
        # Two classes proceed together; the second class-0 worm waits the
        # full L (a final edge's slot frees at completion).
        assert times == [4, 4, 8]


class TestDallySeitzRing:
    def test_interchangeable_slots_deadlock_on_ring(self):
        """k worms around a k-ring fill every slot of every edge when
        B divides the per-edge load; all heads block: deadlock even at
        B = 2."""
        k = 4
        net, edges = ring(k)
        paths = around_the_ring_paths(edges, k) * 2  # 2 worms per start
        sim = WormholeSimulator(net, 2, priority="index")
        res = sim.run(paths, message_length=6)
        assert res.deadlocked

    def test_dateline_classes_break_the_cycle(self):
        """The same workload with dateline VC classes delivers fully —
        the Dally-Seitz construction, reproduced at flit level."""
        k = 4
        net, edges = ring(k)
        paths = around_the_ring_paths(edges, k) * 2
        vcs = dateline_vcs(paths, k)
        sim = WormholeSimulator(net, 2, priority="index")
        res = sim.run(paths, message_length=6, vc_ids=vcs)
        assert not res.deadlocked
        assert res.all_delivered

    def test_dateline_works_across_seeds(self):
        k = 4
        net, edges = ring(k)
        paths = around_the_ring_paths(edges, k) * 2
        vcs = dateline_vcs(paths, k)
        for seed in range(8):
            sim = WormholeSimulator(net, 2, seed=seed)
            res = sim.run(paths, message_length=5, vc_ids=vcs)
            assert res.all_delivered
