"""Batch-vs-serial bit-exactness for the non-wormhole lockstep runners.

Companion to ``test_batch.py`` (which pins ``run_wormhole_batch``):
every other entry of :data:`repro.sim.batch.BATCHED_MODELS` — cut
through, store-and-forward, restricted, adaptive — must produce trials
bit-identical to its serial simulator run with the same ``(B, seed)``.
On top of the per-model suites, the degenerate shapes every kernel must
survive are covered across models: ``T = 1`` batches, mixed message
lengths at the padding boundary, all-deadlocked batches, and per-trial
step-cap masking.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from golden_cases import _layered_workload, _ring, _stagger
from repro.network.graph import Network, NetworkError
from repro.network.mesh import KAryNCube
from repro.sim.adaptive import AdaptiveMeshRouter
from repro.sim.batch import (
    run_adaptive_batch,
    run_cut_through_batch,
    run_restricted_batch,
    run_store_forward_batch,
)
from repro.sim.cut_through import CutThroughSimulator
from repro.sim.restricted import RestrictedWormholeSimulator
from repro.sim.store_forward import StoreForwardSimulator


def _assert_equal(batch_res, serial_res, label=""):
    assert np.array_equal(
        batch_res.completion_times, serial_res.completion_times
    ), label
    assert batch_res.makespan == serial_res.makespan, label
    assert batch_res.steps_executed == serial_res.steps_executed, label
    assert np.array_equal(
        batch_res.blocked_steps, serial_res.blocked_steps
    ), label
    assert batch_res.deadlocked == serial_res.deadlocked, label
    assert batch_res.hit_step_cap == serial_res.hit_step_cap, label


def _check_cut_through(net, paths, L, trials, priority="random", **kw):
    batch = run_cut_through_batch(
        net, paths, L,
        seeds=[s for _, s in trials],
        buffer_flits=[B for B, _ in trials],
        priority=priority, **kw,
    )
    assert len(batch) == len(trials)
    for res, (B, seed) in zip(batch, trials):
        serial = CutThroughSimulator(net, B, priority=priority, seed=seed).run(
            paths, message_length=L, **kw
        )
        _assert_equal(res, serial, f"cut_through B={B} seed={seed}")
    return batch


def _check_store_forward(net, paths, L, trials, priority="farthest", **kw):
    batch = run_store_forward_batch(
        net, paths, L,
        seeds=[s for _, s in trials],
        bandwidth_flits_per_step=[B for B, _ in trials],
        priority=priority, **kw,
    )
    assert len(batch) == len(trials)
    for res, (B, seed) in zip(batch, trials):
        serial = StoreForwardSimulator(
            net, B, priority=priority, seed=seed
        ).run(paths, message_length=L, **kw)
        _assert_equal(res, serial, f"store_forward B={B} seed={seed}")
        assert res.extra["max_queue"] == serial.extra["max_queue"]
        assert res.extra["message_step_flits"] == serial.extra[
            "message_step_flits"
        ]
    return batch


def _check_restricted(net, paths, L, trials, **kw):
    batch = run_restricted_batch(
        net, paths, L,
        seeds=[s for _, s in trials],
        num_buffers=[B for B, _ in trials],
        **kw,
    )
    assert len(batch) == len(trials)
    for res, (B, seed) in zip(batch, trials):
        serial = RestrictedWormholeSimulator(net, B, seed=seed).run(
            paths, message_length=L, **kw
        )
        _assert_equal(res, serial, f"restricted B={B} seed={seed}")
    return batch


def _check_adaptive(cube, demands, L, trials, policy="west-first", **kw):
    batch = run_adaptive_batch(
        cube, demands, L,
        seeds=[s for _, s in trials],
        num_virtual_channels=[B for B, _ in trials],
        policy=policy, **kw,
    )
    assert len(batch) == len(trials)
    for run, (B, seed) in zip(batch, trials):
        serial = AdaptiveMeshRouter(cube, B, policy=policy, seed=seed).run(
            demands, message_length=L, **kw
        )
        _assert_equal(
            run.result, serial.result, f"adaptive B={B} seed={seed}"
        )
        assert run.taken_paths == serial.taken_paths, (
            f"adaptive routes diverged at B={B} seed={seed}"
        )
    return batch


@pytest.fixture(scope="module")
def layered():
    return _layered_workload()


@pytest.fixture(scope="module")
def mesh():
    cube = KAryNCube(5, 2, wrap=False)
    perm = np.random.default_rng(77).permutation(cube.num_nodes)
    demands = [(int(s), int(perm[s])) for s in range(cube.num_nodes)]
    return cube, demands


# ----------------------------------------------------------------------
# Per-model suites: mixed B / seeds, priorities, staggered releases
# ----------------------------------------------------------------------


@pytest.mark.parametrize("priority", ["random", "index"])
def test_cut_through_priorities_mixed_B_and_seeds(layered, priority):
    net, paths = layered
    trials = [(B, seed) for B in (1, 2, 4) for seed in (9, 17)]
    _check_cut_through(net, paths, 8, trials, priority=priority)


def test_cut_through_staggered_releases(layered):
    net, paths = layered
    _check_cut_through(
        net, paths, 6, [(1, 4), (2, 4), (2, 11)],
        release_times=_stagger(len(paths)),
    )


@pytest.mark.parametrize("priority", ["random", "age", "farthest"])
def test_store_forward_priorities_mixed_B_and_seeds(layered, priority):
    net, paths = layered
    trials = [(B, seed) for B in (1, 2, 4) for seed in (9, 17)]
    _check_store_forward(net, paths, 8, trials, priority=priority)


def test_store_forward_staggered_releases_and_delay(layered):
    """Per-trial RNG delays must replay in serial draw order."""
    net, paths = layered
    _check_store_forward(
        net, paths, 6, [(1, 4), (2, 4), (2, 11)],
        release_times=_stagger(len(paths)), delay_range=3,
    )


def test_restricted_mixed_B_and_seeds(layered):
    net, paths = layered
    trials = [(B, seed) for B in (1, 2, 4) for seed in (9, 17)]
    _check_restricted(net, paths, 8, trials)


def test_restricted_staggered_releases(layered):
    net, paths = layered
    _check_restricted(
        net, paths, 6, [(1, 4), (2, 4), (2, 11)],
        release_times=_stagger(len(paths)),
    )


@pytest.mark.parametrize(
    "policy", ["dimension", "west-first", "fully-adaptive"]
)
def test_adaptive_policies_mixed_B_and_seeds(mesh, policy):
    cube, demands = mesh
    trials = [(B, seed) for B in (1, 2) for seed in (9, 17)]
    _check_adaptive(cube, demands, 5, trials, policy=policy)


def test_adaptive_staggered_releases(mesh):
    cube, demands = mesh
    _check_adaptive(
        cube, demands, 4, [(2, 4), (2, 11), (1, 4)],
        release_times=_stagger(len(demands)),
    )


# ----------------------------------------------------------------------
# Degenerate batch shapes, across models
# ----------------------------------------------------------------------


def test_batches_of_one(layered, mesh):
    """T=1 batches: the lockstep path with nothing to amortize."""
    net, paths = layered
    cube, demands = mesh
    _check_cut_through(net, paths, 8, [(2, 42)])
    _check_store_forward(net, paths, 8, [(2, 42)])
    _check_restricted(net, paths, 8, [(2, 42)])
    _check_adaptive(cube, demands, 5, [(2, 42)])


def test_mixed_message_lengths_at_padding_boundary():
    """Per-message L on ragged paths (incl. empty) must pad identically.

    ``cut_through`` and ``restricted`` accept per-message lengths; the
    path set mixes the full line, single edges, and a zero-hop message
    so the padded ``(M, max_len)`` matrix has live cells flush against
    the padding in every row.
    """
    net = Network()
    nodes = net.add_nodes(range(6))
    edges = [net.add_edge(nodes[i], nodes[i + 1]) for i in range(5)]
    paths = [edges[:5], edges[:1], [], edges[1:4], edges[2:3]]
    L = np.array([4, 2, 3, 5, 1], dtype=np.int64)
    _check_cut_through(net, paths, L, [(1, 3), (2, 3), (1, 8)])
    _check_restricted(net, paths, L, [(1, 3), (2, 3), (1, 8)])
    # store-and-forward advances whole packets on a scalar L.
    _check_store_forward(net, paths, 4, [(1, 3), (2, 3), (1, 8)])


def test_all_deadlocked_batch():
    """A batch with no live trial must settle exactly like serial runs."""
    net, _, paths = _ring(4)
    for res in _check_cut_through(net, paths, 6, [(1, 0), (2, 5)]):
        assert res.deadlocked and not res.all_delivered
    for res in _check_restricted(net, paths, 6, [(1, 0), (2, 5)]):
        assert res.deadlocked and not res.all_delivered


def test_deadlocked_trial_mixed_with_live_trial():
    """fully-adaptive at B=1 can wedge; a live co-trial must not notice."""
    cube = KAryNCube(3, 2, wrap=False)
    # Four worms turning around a unit square: a classic cyclic wait.
    corners = [(0, 0), (1, 0), (1, 1), (0, 1)]
    ids = [cube.node(c) for c in corners]
    demands = [(ids[i], ids[(i + 2) % 4]) for i in range(4)]
    batch = run_adaptive_batch(
        cube, demands, 4, seeds=[0, 1, 2],
        num_virtual_channels=[1, 1, 4], policy="fully-adaptive",
    )
    for run, (B, seed) in zip(batch, [(1, 0), (1, 1), (4, 2)]):
        serial = AdaptiveMeshRouter(
            cube, B, policy="fully-adaptive", seed=seed
        ).run(demands, message_length=4)
        _assert_equal(run.result, serial.result, f"B={B} seed={seed}")


def test_per_trial_step_cap_masking(layered):
    """A shared cap must freeze each trial at its own step budget."""
    net, _, paths = _ring(5)
    batch = _check_cut_through(
        net, paths, 4, [(1, 2), (2, 2), (4, 2)], max_steps=4
    )
    assert any(res.hit_step_cap or res.deadlocked for res in batch)
    batch = _check_restricted(
        net, paths, 4, [(1, 2), (2, 2), (4, 2)], max_steps=4
    )
    assert any(res.hit_step_cap or res.deadlocked for res in batch)
    # Store-and-forward counts the cap in message steps, which scale
    # with per-trial bandwidth: the same cap masks trials differently.
    net2, paths2 = layered
    batch = _check_store_forward(
        net2, paths2, 9, [(1, 2), (2, 2), (4, 2)], max_steps=3
    )
    assert any(res.hit_step_cap for res in batch)


def test_idle_trial_whose_release_exceeds_the_cap(layered):
    """Serial jumps the clock past the cap; batches must finalize alike."""
    net, paths = layered
    release = np.full(len(paths), 100, dtype=np.int64)
    _check_cut_through(
        net, paths, 6, [(2, 1), (1, 3)], release_times=release, max_steps=50
    )
    _check_restricted(
        net, paths, 6, [(2, 1), (1, 3)], release_times=release, max_steps=50
    )


def test_empty_workload(layered):
    net, _ = layered
    for runner in (
        run_cut_through_batch, run_store_forward_batch, run_restricted_batch
    ):
        out = runner(net, [], 8, seeds=[0, 1])
        assert len(out) == 2
        for res in out:
            assert res.num_messages == 0 and res.makespan == -1
    cube = KAryNCube(3, 2, wrap=False)
    out = run_adaptive_batch(cube, [], 4, seeds=[0, 1])
    assert len(out) == 2
    for run in out:
        assert run.result.num_messages == 0 and run.taken_paths == []


def test_validation_errors(layered):
    net, paths = layered
    cube = KAryNCube(3, 2, wrap=False)
    with pytest.raises(NetworkError, match="seeds"):
        run_cut_through_batch(net, paths, 8, seeds=[])
    with pytest.raises(NetworkError, match="buffer"):
        run_cut_through_batch(net, paths, 8, seeds=[0], buffer_flits=0)
    with pytest.raises(NetworkError, match="priority"):
        run_cut_through_batch(net, paths, 8, seeds=[0], priority="age")
    with pytest.raises(NetworkError, match="bandwidth"):
        run_store_forward_batch(
            net, paths, 8, seeds=[0], bandwidth_flits_per_step=0
        )
    with pytest.raises(NetworkError, match="one entry per trial"):
        run_store_forward_batch(
            net, paths, 8, seeds=[0, 1], bandwidth_flits_per_step=[1, 2, 3]
        )
    with pytest.raises(NetworkError, match="buffer"):
        run_restricted_batch(net, paths, 8, seeds=[0], num_buffers=0)
    with pytest.raises(NetworkError, match="policy"):
        run_adaptive_batch(cube, [(0, 8)], 4, seeds=[0], policy="nope")
    with pytest.raises(NetworkError, match="virtual channel"):
        run_adaptive_batch(
            cube, [(0, 8)], 4, seeds=[0], num_virtual_channels=0
        )


# ----------------------------------------------------------------------
# Randomized equivalence sweeps
# ----------------------------------------------------------------------


def _line_net(num_edges):
    net = Network()
    nodes = net.add_nodes(range(num_edges + 1))
    edges = [net.add_edge(nodes[i], nodes[i + 1]) for i in range(num_edges)]
    return net, edges


def _draw_line_case(data):
    num_edges = data.draw(st.integers(2, 8), label="edges")
    net, edges = _line_net(num_edges)
    M = data.draw(st.integers(1, 7), label="messages")
    paths = []
    for _ in range(M):
        a = data.draw(st.integers(0, num_edges - 1))
        b = data.draw(st.integers(a, num_edges))
        paths.append(edges[a:b])
    T = data.draw(st.integers(1, 5), label="batch")
    trials = [
        (data.draw(st.integers(1, 3)), data.draw(st.integers(0, 999)))
        for _ in range(T)
    ]
    release = np.array(
        [data.draw(st.integers(0, 12)) for _ in range(M)], dtype=np.int64
    )
    max_steps = data.draw(st.one_of(st.none(), st.integers(1, 30)), label="cap")
    return net, paths, trials, release, max_steps


@given(st.data())
@settings(max_examples=25, deadline=None)
def test_random_cut_through_matches_serial(data):
    net, paths, trials, release, max_steps = _draw_line_case(data)
    L = data.draw(st.integers(1, 6), label="L")
    priority = data.draw(st.sampled_from(["random", "index"]), label="priority")
    _check_cut_through(
        net, paths, L, trials,
        priority=priority, release_times=release, max_steps=max_steps,
    )


@given(st.data())
@settings(max_examples=25, deadline=None)
def test_random_store_forward_matches_serial(data):
    net, paths, trials, release, max_steps = _draw_line_case(data)
    L = data.draw(st.integers(1, 6), label="L")
    priority = data.draw(
        st.sampled_from(["random", "age", "farthest"]), label="priority"
    )
    delay = data.draw(st.integers(0, 3), label="delay")
    _check_store_forward(
        net, paths, L, trials,
        priority=priority, release_times=release,
        delay_range=delay, max_steps=max_steps,
    )


@given(st.data())
@settings(max_examples=25, deadline=None)
def test_random_restricted_matches_serial(data):
    net, paths, trials, release, max_steps = _draw_line_case(data)
    L = data.draw(st.integers(1, 6), label="L")
    _check_restricted(
        net, paths, L, trials, release_times=release, max_steps=max_steps
    )


@given(st.data())
@settings(max_examples=20, deadline=None)
def test_random_adaptive_matches_serial(data):
    k = data.draw(st.integers(3, 5), label="k")
    cube = KAryNCube(k, 2, wrap=False)
    n = cube.num_nodes
    M = data.draw(st.integers(1, 6), label="messages")
    demands = [
        (
            data.draw(st.integers(0, n - 1)),
            data.draw(st.integers(0, n - 1)),
        )
        for _ in range(M)
    ]
    L = data.draw(st.integers(1, 5), label="L")
    T = data.draw(st.integers(1, 4), label="batch")
    trials = [
        (data.draw(st.integers(1, 3)), data.draw(st.integers(0, 999)))
        for _ in range(T)
    ]
    policy = data.draw(
        st.sampled_from(["dimension", "west-first", "fully-adaptive"]),
        label="policy",
    )
    max_steps = data.draw(st.one_of(st.none(), st.integers(1, 40)), label="cap")
    _check_adaptive(cube, demands, L, trials, policy=policy, max_steps=max_steps)
