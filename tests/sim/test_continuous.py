"""Unit tests for the continuous (steady-state) wormhole harness."""

import pytest

from repro.network.butterfly import Butterfly
from repro.network.graph import Network, NetworkError
from repro.sim.continuous import ContinuousWormholeSimulator


def line(n):
    net = Network()
    nodes = net.add_nodes(range(n))
    for u, v in zip(nodes[:-1], nodes[1:]):
        net.add_edge(u, v)
    return net


def line_path_gen(depth):
    def path_of(source, rng):
        return list(range(depth))

    return path_of


class TestBasics:
    def test_zero_rate_idles(self):
        net = line(4)
        sim = ContinuousWormholeSimulator(net, num_sources=1)
        res = sim.run(0.0, message_length=3, path_of=line_path_gen(3), horizon=100)
        assert res.generated == 0
        assert res.throughput == 0.0
        assert res.final_backlog == 0

    def test_single_source_low_rate_delivers_everything(self):
        net = line(5)
        sim = ContinuousWormholeSimulator(net, num_sources=1, seed=1)
        res = sim.run(
            0.05, message_length=4, path_of=line_path_gen(4), horizon=2000
        )
        assert res.generated > 0
        # Low rate: everything in flight drains, backlog stays tiny.
        assert res.delivered >= res.generated - 3
        assert res.final_backlog <= 3
        # Latency is at least the unobstructed L + D - 1.
        assert res.mean_latency >= 4 + 4 - 1

    def test_saturation_throughput_capped_by_bandwidth(self):
        """A single chain at rate 1.0: one worm per L+1 steps at most."""
        net = line(3)
        sim = ContinuousWormholeSimulator(net, num_sources=1, seed=2)
        L = 5
        res = sim.run(1.0, message_length=L, path_of=line_path_gen(2), horizon=600)
        assert res.throughput <= 1.0 / L
        assert res.final_backlog > 10  # clearly unstable
        assert res.backlog_slope() > 0.1

    def test_more_channels_raise_saturation_throughput(self):
        net = line(3)
        L = 5
        out = {}
        for B in (1, 2, 4):
            sim = ContinuousWormholeSimulator(net, 1, B, seed=3)
            out[B] = sim.run(
                1.0, message_length=L, path_of=line_path_gen(2), horizon=600
            ).throughput
        assert out[1] < out[2] < out[4]

    def test_validation(self):
        net = line(3)
        sim = ContinuousWormholeSimulator(net, 1)
        with pytest.raises(NetworkError):
            sim.run(1.5, 3, line_path_gen(2), 10)
        with pytest.raises(NetworkError):
            sim.run(0.5, 0, line_path_gen(2), 10)
        with pytest.raises(NetworkError):
            sim.run(0.5, 3, line_path_gen(2), 0)
        with pytest.raises(NetworkError):
            ContinuousWormholeSimulator(net, 0)
        with pytest.raises(NetworkError):
            ContinuousWormholeSimulator(net, 1, 0)


class TestButterflyTraffic:
    def path_gen(self, bf):
        def path_of(source, rng):
            dst = int(rng.integers(bf.n))
            return list(bf.path_edges(source, dst))

        return path_of

    def test_stable_at_low_rate(self):
        bf = Butterfly(16)
        sim = ContinuousWormholeSimulator(bf, bf.n, 2, seed=4)
        res = sim.run(0.01, 4, self.path_gen(bf), horizon=1500)
        assert res.delivered > 0
        assert abs(res.backlog_slope()) < 0.02

    def test_unstable_at_high_rate(self):
        bf = Butterfly(16)
        sim = ContinuousWormholeSimulator(bf, bf.n, 1, seed=5)
        res = sim.run(0.5, 8, self.path_gen(bf), horizon=1500)
        assert res.backlog_slope() > 0.1
        assert res.final_backlog > 50

    def test_backlog_series_sampling(self):
        bf = Butterfly(8)
        sim = ContinuousWormholeSimulator(bf, bf.n, 1, seed=6)
        res = sim.run(0.2, 4, self.path_gen(bf), horizon=400, sample_every=100)
        assert res.backlog_series.size == 4

    def test_reproducible(self):
        bf = Butterfly(8)
        runs = []
        for _ in range(2):
            sim = ContinuousWormholeSimulator(bf, bf.n, 2, seed=7)
            runs.append(sim.run(0.1, 4, self.path_gen(bf), horizon=500))
        assert runs[0].generated == runs[1].generated
        assert runs[0].delivered == runs[1].delivered
