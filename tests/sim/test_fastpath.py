"""Parity and backend-selection tests for :mod:`repro.sim.fastpath`.

The fastpath module swaps the inner rank/grant scan of
:func:`repro.sim.engine.grant_free_slots` between a NumPy build and an
optional numba jit.  These tests pin three things:

1. the module imports and resolves a backend without numba installed;
2. the ``REPRO_FASTPATH`` override is honoured (and rejected when it
   cannot be, or is garbage) — checked in subprocesses because the
   choice is made at import time;
3. the production grant kernel is bit-identical to the naive per-slot
   reference across every priority shape the routers feed it (random
   floats, age counters, rank permutations), mixed per-contender
   capacities, pre-existing occupancy, and degenerate boundaries.
"""

import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import fastpath
from repro.sim.engine import grant_free_slots, grant_free_slots_reference

# ----------------------------------------------------------------------
# backend selection
# ----------------------------------------------------------------------


def _probe(env_value):
    """Import fastpath in a subprocess with REPRO_FASTPATH=env_value."""
    code = (
        "from repro.sim import fastpath; print(fastpath.active_backend())"
    )
    import os

    env = dict(os.environ)
    if env_value is None:
        env.pop("REPRO_FASTPATH", None)
    else:
        env["REPRO_FASTPATH"] = env_value
    return subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        env=env,
    )


def test_import_without_numba_resolves_a_backend():
    assert fastpath.active_backend() in ("numpy", "numba")


def test_auto_backend_matches_numba_availability():
    try:
        import numba  # noqa: F401

        expected = "numba"
    except ImportError:
        expected = "numpy"
    proc = _probe(None)
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == expected


def test_forced_numpy_always_wins():
    proc = _probe("numpy")
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == "numpy"


def test_forced_numba_without_numba_raises():
    try:
        import numba  # noqa: F401

        pytest.skip("numba is installed; the failure leg needs it absent")
    except ImportError:
        pass
    proc = _probe("numba")
    assert proc.returncode != 0
    assert "REPRO_FASTPATH" in proc.stderr


def test_invalid_backend_value_raises():
    proc = _probe("cython")
    assert proc.returncode != 0
    assert "REPRO_FASTPATH" in proc.stderr


def test_case_and_whitespace_insensitive():
    proc = _probe("  NumPy ")
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == "numpy"


# ----------------------------------------------------------------------
# scan build parity (sorted-order interface)
# ----------------------------------------------------------------------


def test_segmented_grant_numpy_empty():
    out = fastpath.segmented_grant_numpy(
        np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64), None
    )
    assert out.shape == (0,) and out.dtype == bool


def test_segmented_grant_matches_reference_build():
    rng = np.random.default_rng(0)
    for _ in range(50):
        n = int(rng.integers(0, 40))
        sorted_slots = np.sort(rng.integers(0, 8, size=n))
        caps = rng.integers(1, 5, size=n)
        # Capacity must be constant within a slot group.
        for s in np.unique(sorted_slots):
            caps[sorted_slots == s] = caps[sorted_slots == s][0]
        occ = rng.integers(0, 3, size=8)
        a = fastpath.segmented_grant(sorted_slots, caps, occ)
        b = fastpath.segmented_grant_numpy(sorted_slots, caps, occ)
        assert np.array_equal(a, b)


# ----------------------------------------------------------------------
# grant_free_slots vs naive reference (hypothesis)
# ----------------------------------------------------------------------

_PRIO_MODES = ("random", "age", "rank")


def _priorities(rng, n, mode):
    if mode == "random":
        return rng.random(n)
    if mode == "age":
        # Age counters: small non-negative ints with heavy ties.
        return rng.integers(0, 4, size=n).astype(np.float64)
    # Rank: a permutation — every priority distinct.
    return rng.permutation(n).astype(np.float64)


@settings(max_examples=150, deadline=None)
@given(
    n=st.integers(min_value=0, max_value=64),
    n_slots=st.integers(min_value=1, max_value=9),
    mode=st.sampled_from(_PRIO_MODES),
    scalar_cap=st.integers(min_value=1, max_value=4),
    use_occupancy=st.booleans(),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_grant_parity_scalar_capacity(
    n, n_slots, mode, scalar_cap, use_occupancy, seed
):
    rng = np.random.default_rng(seed)
    slots = rng.integers(0, n_slots, size=n)
    prio = _priorities(rng, n, mode)
    occ = (
        rng.integers(0, scalar_cap + 1, size=n_slots)
        if use_occupancy
        else None
    )
    got = grant_free_slots(slots, prio, scalar_cap, occ)
    want = grant_free_slots_reference(slots, prio, scalar_cap, occ)
    assert np.array_equal(got, want)


@settings(max_examples=150, deadline=None)
@given(
    n=st.integers(min_value=0, max_value=64),
    n_slots=st.integers(min_value=1, max_value=9),
    mode=st.sampled_from(_PRIO_MODES),
    use_occupancy=st.booleans(),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_grant_parity_mixed_capacity_array(
    n, n_slots, mode, use_occupancy, seed
):
    """Per-contender capacity arrays — the mixed-B batched-arbiter shape."""
    rng = np.random.default_rng(seed)
    slots = rng.integers(0, n_slots, size=n)
    prio = _priorities(rng, n, mode)
    # Each slot belongs to one trial with its own B: capacity varies by
    # slot but is constant within a slot group, exactly as
    # BatchSlotArbiter guarantees.
    per_slot_cap = rng.integers(1, 5, size=n_slots)
    capacity = per_slot_cap[slots]
    occ = (
        np.minimum(
            rng.integers(0, 5, size=n_slots), per_slot_cap
        )
        if use_occupancy
        else None
    )
    got = grant_free_slots(slots, prio, capacity, occ)
    want = grant_free_slots_reference(slots, prio, capacity, occ)
    assert np.array_equal(got, want)


def test_grant_parity_padding_boundary():
    """A slot whose contenders all sit past the free capacity, plus an
    untouched trailing slot — the padded-lane shape batched kernels emit."""
    slots = np.array([3, 3, 3, 3, 7], dtype=np.int64)
    prio = np.array([0.4, 0.1, 0.3, 0.2, 0.5])
    occ = np.zeros(8, dtype=np.int64)
    occ[3] = 2  # only one free seat in slot 3
    occ[7] = 1  # slot 7 already full at capacity 1
    for cap in (1, 3):
        got = grant_free_slots(slots, prio, cap, occ)
        want = grant_free_slots_reference(slots, prio, cap, occ)
        assert np.array_equal(got, want)


def test_grant_parity_tie_order_is_first_come():
    """Equal priorities must grant in input order on both paths."""
    slots = np.zeros(5, dtype=np.int64)
    prio = np.zeros(5)
    got = grant_free_slots(slots, prio, 2)
    want = grant_free_slots_reference(slots, prio, 2)
    assert np.array_equal(got, want)
    assert got.tolist() == [True, True, False, False, False]
