"""Batch-vs-serial bit-exactness for :func:`repro.sim.batch.run_wormhole_batch`.

The batch engine's contract is that trial ``i`` of a batch is
*bit-identical* to the serial ``WormholeSimulator`` run with the same
``(B, seed)`` — completion times, makespan, executed steps, blocked
counts, deadlock flags, and step-cap flags.  These tests pin that over
the golden-case shapes (priority disciplines, staggered releases,
deadlock rings, VC classes, mixed path lengths) and a randomized
hypothesis sweep over workloads, seeds, and batch compositions.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from golden_cases import _layered_workload, _ring, _stagger
from repro.network.graph import Network, NetworkError
from repro.sim.batch import run_wormhole_batch
from repro.sim.wormhole import WormholeSimulator


def _serial(net, paths, L, *, B, seed, priority="random", **kw):
    sim = WormholeSimulator(net, B, priority=priority, seed=seed)
    return sim.run(paths, message_length=L, **kw)


def _assert_equal(batch_res, serial_res, label=""):
    assert np.array_equal(
        batch_res.completion_times, serial_res.completion_times
    ), label
    assert batch_res.makespan == serial_res.makespan, label
    assert batch_res.steps_executed == serial_res.steps_executed, label
    assert np.array_equal(batch_res.blocked_steps, serial_res.blocked_steps), label
    assert batch_res.deadlocked == serial_res.deadlocked, label
    assert batch_res.hit_step_cap == serial_res.hit_step_cap, label


def _check_batch(net, paths, L, trials, priority="random", **kw):
    """Run one batch of (B, seed) trials and compare each against serial."""
    Bs = [B for B, _ in trials]
    seeds = [s for _, s in trials]
    batch = run_wormhole_batch(
        net, paths, L, seeds=seeds, num_virtual_channels=Bs,
        priority=priority, **kw,
    )
    assert len(batch) == len(trials)
    for res, (B, seed) in zip(batch, trials):
        serial = _serial(net, paths, L, B=B, seed=seed, priority=priority, **kw)
        _assert_equal(res, serial, f"B={B} seed={seed} priority={priority}")
    return batch


@pytest.fixture(scope="module")
def layered():
    return _layered_workload()


@pytest.mark.parametrize("priority", ["random", "age", "index", "rank"])
def test_priorities_mixed_B_and_seeds(layered, priority):
    net, paths = layered
    trials = [(B, seed) for B in (1, 2, 4) for seed in (9, 17)]
    _check_batch(net, paths, 8, trials, priority=priority)


def test_staggered_releases(layered):
    net, paths = layered
    release = _stagger(len(paths))
    _check_batch(
        net, paths, 6, [(1, 4), (2, 4), (2, 11)], release_times=release
    )


def test_deadlock_ring_mixed_with_live_trials():
    net, _, paths = _ring(4)
    batch = _check_batch(net, paths, 3, [(1, 0), (4, 0)], priority="index")
    # B < 4 on the 4-ring deadlocks (every worm wraps the whole cycle);
    # the co-batched B=4 trial must not be dragged down, nor keep the
    # dead trial alive.
    assert batch[0].deadlocked
    assert not batch[1].deadlocked and batch[1].all_delivered


def test_vc_classes_dateline_mixed_B():
    k = 6
    net, _, paths = _ring(k)
    dateline = []
    for path in paths:
        vcs, crossed = [], False
        for e in path:
            vcs.append(1 if crossed else 0)
            if e == k - 1:
                crossed = True
        dateline.append(vcs)
    batch = _check_batch(
        net, paths, 4, [(2, 0), (3, 0), (2, 5)],
        priority="index", vc_ids=dateline,
    )
    assert all(res.all_delivered for res in batch)


def test_mixed_path_lengths_and_trivial_messages():
    net = Network()
    nodes = net.add_nodes(range(6))
    edges = [net.add_edge(nodes[i], nodes[i + 1]) for i in range(5)]
    paths = [edges[:5], edges[:1], [], edges[1:4], edges[2:3]]
    L = np.array([4, 2, 3, 5, 1], dtype=np.int64)
    _check_batch(net, paths, L, [(1, 3), (2, 3), (1, 8)])


def test_step_cap_shared_across_batch():
    net, _, paths = _ring(5)
    batch = _check_batch(
        net, paths, 4, [(1, 2), (2, 2), (3, 2)], max_steps=4
    )
    assert any(res.hit_step_cap or res.deadlocked for res in batch)


def test_idle_trial_whose_release_exceeds_the_cap(layered):
    """Serial jumps the clock past the cap; the batch must finalize alike."""
    net, paths = layered
    release = np.full(len(paths), 100, dtype=np.int64)
    # One pathological trial alone, and one co-batched with live work.
    _check_batch(net, paths, 6, [(2, 1)], release_times=release, max_steps=50)
    _check_batch(
        net, paths, 6, [(2, 1), (1, 3)], release_times=release, max_steps=50
    )


def test_empty_workload(layered):
    net, _ = layered
    out = run_wormhole_batch(net, [], 8, seeds=[0, 1])
    assert len(out) == 2
    for res in out:
        assert res.num_messages == 0 and res.makespan == -1


def test_batch_of_one_and_repeatability(layered):
    net, paths = layered
    a = _check_batch(net, paths, 8, [(2, 42)])
    b = run_wormhole_batch(net, paths, 8, seeds=[42], num_virtual_channels=2)
    _assert_equal(a[0], b[0], "repeat determinism")


def test_validation_errors(layered):
    net, paths = layered
    with pytest.raises(NetworkError, match="virtual channel"):
        run_wormhole_batch(net, paths, 8, seeds=[0], num_virtual_channels=0)
    with pytest.raises(NetworkError, match="virtual channel"):
        run_wormhole_batch(net, paths, 8, seeds=[0, 1], num_virtual_channels=[2, -1])
    with pytest.raises(NetworkError, match="priority"):
        run_wormhole_batch(net, paths, 8, seeds=[0], priority="nope")
    with pytest.raises(NetworkError, match="length L"):
        run_wormhole_batch(net, paths, 0, seeds=[0])
    with pytest.raises(NetworkError, match="seeds"):
        run_wormhole_batch(net, paths, 8, seeds=[])
    with pytest.raises(NetworkError, match="one entry per trial"):
        run_wormhole_batch(
            net, paths, 8, seeds=[0, 1], num_virtual_channels=[1, 2, 3]
        )
    with pytest.raises(NetworkError, match="message_length"):
        run_wormhole_batch(
            net, paths, np.arange(1, len(paths) + 2), seeds=[0]
        )


def test_validation_errors_are_valueerrors(layered):
    """Up-front validation surfaces as ValueError (NetworkError subclasses
    it), never as a deep engine/numpy shape error."""
    net, paths = layered
    for kwargs in (
        dict(seeds=[]),
        dict(seeds=[0], num_virtual_channels=0),
        dict(seeds=[0, 1], num_virtual_channels=[1, 2, 3]),
    ):
        with pytest.raises(ValueError):
            run_wormhole_batch(net, paths, 8, **kwargs)


# ----------------------------------------------------------------------
# Randomized equivalence sweep
# ----------------------------------------------------------------------


def _line_net(num_edges):
    net = Network()
    nodes = net.add_nodes(range(num_edges + 1))
    edges = [
        net.add_edge(nodes[i], nodes[i + 1]) for i in range(num_edges)
    ]
    return net, edges


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_random_workloads_match_serial(data):
    num_edges = data.draw(st.integers(2, 8), label="edges")
    net, edges = _line_net(num_edges)
    M = data.draw(st.integers(1, 7), label="messages")
    paths = []
    for _ in range(M):
        a = data.draw(st.integers(0, num_edges - 1))
        b = data.draw(st.integers(a, num_edges))
        paths.append(edges[a:b])
    L = data.draw(st.integers(1, 6), label="L")
    T = data.draw(st.integers(1, 5), label="batch")
    trials = [
        (data.draw(st.integers(1, 3)), data.draw(st.integers(0, 999)))
        for _ in range(T)
    ]
    priority = data.draw(
        st.sampled_from(["random", "age", "index", "rank"]), label="priority"
    )
    release = np.array(
        [data.draw(st.integers(0, 12)) for _ in range(M)], dtype=np.int64
    )
    max_steps = data.draw(
        st.one_of(st.none(), st.integers(1, 30)), label="cap"
    )
    _check_batch(
        net, paths, L, trials,
        priority=priority, release_times=release, max_steps=max_steps,
    )
