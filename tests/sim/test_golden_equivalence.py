"""S4: the engine-based router rewrites are bit-exact.

``golden.json`` records seeded completion times, makespans, blocked
counts, deadlock flags, and telemetry digests for all five routers,
captured by running ``golden_cases.py`` against the *pre-refactor*
simulators.  These tests re-run every case on the current code and
assert equality — any drift in RNG draw order, arbitration, probe event
ordering, step caps, or deadlock declaration fails loudly.

Regenerate (only when an intentional behavior change is being made):

    PYTHONPATH=src:tests python tests/sim/golden_cases.py --write
"""

import json

import pytest

from golden_cases import GOLDEN_PATH, CASES

GOLDEN = json.loads(GOLDEN_PATH.read_text())


def test_golden_covers_every_case():
    assert sorted(GOLDEN) == sorted(CASES)


@pytest.mark.parametrize("name", sorted(CASES))
def test_bit_exact_vs_pre_refactor(name):
    got = CASES[name]()
    want = GOLDEN[name]
    assert got == want, (
        f"case {name!r} drifted from the pre-refactor baseline; "
        "first differing keys: "
        + ", ".join(
            k for k in want if got.get(k) != want.get(k)
        )[:500]
    )
