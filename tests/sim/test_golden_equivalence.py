"""S4: the engine-based router rewrites are bit-exact.

``golden.json`` records seeded completion times, makespans, blocked
counts, deadlock flags, and telemetry digests for all five routers,
captured by running ``golden_scenarios.py`` against the *pre-refactor*
simulators.  These tests re-run every scenario on the current code and
assert equality — any drift in RNG draw order, arbitration, probe event
ordering, step caps, or deadlock declaration fails loudly.

Regenerate (only when an intentional behavior change is being made):

    PYTHONPATH=src:tests python tests/sim/golden_scenarios.py --write
"""

import json

import pytest

from golden_scenarios import GOLDEN_PATH, SCENARIOS

GOLDEN = json.loads(GOLDEN_PATH.read_text())


def test_golden_covers_every_scenario():
    assert sorted(GOLDEN) == sorted(SCENARIOS)


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_bit_exact_vs_pre_refactor(name):
    got = SCENARIOS[name]()
    want = GOLDEN[name]
    assert got == want, (
        f"scenario {name!r} drifted from the pre-refactor baseline; "
        "first differing keys: "
        + ", ".join(
            k for k in want if got.get(k) != want.get(k)
        )[:500]
    )
