"""Equivalence of the optimized wormhole simulator with the naive
per-flit reference implementation (tests/reference_simulator.py).

Both use lowest-index arbitration and the same synchronous semantics;
their per-message completion times must be *identical* on every
workload.  This pins the optimized engine's move-counter arithmetic
(acquisition at k-1, release at k-L-1, final edge at completion) against
a first-principles flit-state simulation.
"""

import sys
from pathlib import Path

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))
from reference_simulator import reference_run  # noqa: E402

from repro.network.random_networks import chain_bundle, layered_network, random_walk_paths
from repro.routing.paths import paths_from_node_walks
from repro.sim.wormhole import WormholeSimulator


def optimized_run(net, paths, L, B, release=None):
    sim = WormholeSimulator(net, B, priority="index")
    res = sim.run(
        paths,
        message_length=L,
        release_times=None if release is None else np.asarray(release),
    )
    return res.completion_times


class TestHandPickedCases:
    def test_single_worm(self):
        net, walks = chain_bundle(1, 4, 1)
        paths = paths_from_node_walks(net, walks)
        edge_lists = [list(p.edges) for p in paths]
        ref = reference_run(edge_lists, L=5, B=1)
        opt = optimized_run(net, paths, 5, 1)
        assert np.array_equal(ref, opt)

    def test_serialized_chain(self):
        net, walks = chain_bundle(1, 4, 3)
        paths = paths_from_node_walks(net, walks)
        edge_lists = [list(p.edges) for p in paths]
        for B in (1, 2, 3):
            ref = reference_run(edge_lists, L=6, B=B)
            opt = optimized_run(net, paths, 6, B)
            assert np.array_equal(ref, opt), f"B={B}"

    def test_d_greater_than_l(self):
        """The regression regime: long paths, short worms."""
        net, walks = chain_bundle(1, 7, 3)
        paths = paths_from_node_walks(net, walks)
        edge_lists = [list(p.edges) for p in paths]
        ref = reference_run(edge_lists, L=2, B=1)
        opt = optimized_run(net, paths, 2, 1)
        assert np.array_equal(ref, opt)

    def test_single_edge_paths(self):
        net, walks = chain_bundle(1, 1, 4)
        paths = paths_from_node_walks(net, walks)
        edge_lists = [list(p.edges) for p in paths]
        for B in (1, 2):
            ref = reference_run(edge_lists, L=4, B=B)
            opt = optimized_run(net, paths, 4, B)
            assert np.array_equal(ref, opt), f"B={B}"

    def test_release_times(self):
        net, walks = chain_bundle(1, 3, 2)
        paths = paths_from_node_walks(net, walks)
        edge_lists = [list(p.edges) for p in paths]
        release = [3, 0]
        ref = reference_run(edge_lists, L=4, B=1, release_times=release)
        opt = optimized_run(net, paths, 4, 1, release)
        assert np.array_equal(ref, opt)


class TestPropertyEquivalence:
    @given(
        st.integers(1, 3),  # B
        st.integers(1, 6),  # L
        st.integers(2, 5),  # depth
        st.integers(1, 4),  # per chain
        st.integers(1, 2),  # chains
    )
    @settings(max_examples=40, deadline=None)
    def test_chain_workloads(self, B, L, depth, per_chain, chains):
        net, walks = chain_bundle(chains, depth, per_chain)
        paths = paths_from_node_walks(net, walks)
        edge_lists = [list(p.edges) for p in paths]
        ref = reference_run(edge_lists, L=L, B=B)
        opt = optimized_run(net, paths, L, B)
        assert np.array_equal(ref, opt)

    @given(st.integers(0, 2**31 - 1), st.integers(1, 2), st.integers(1, 5))
    @settings(max_examples=25, deadline=None)
    def test_layered_workloads(self, seed, B, L):
        rng = np.random.default_rng(seed)
        net = layered_network(4, 3, 2, rng)
        walks = random_walk_paths(net, 4, 3, 8, rng)
        paths = paths_from_node_walks(net, walks)
        edge_lists = [list(p.edges) for p in paths]
        ref = reference_run(edge_lists, L=L, B=B)
        opt = optimized_run(net, paths, L, B)
        assert np.array_equal(ref, opt)

    @given(st.integers(0, 2**31 - 1), st.integers(1, 2), st.integers(2, 5))
    @settings(max_examples=25, deadline=None)
    def test_staggered_releases(self, seed, B, L):
        """Equivalence holds under arbitrary release schedules too."""
        rng = np.random.default_rng(seed)
        net, walks = chain_bundle(2, 3, 3)
        paths = paths_from_node_walks(net, walks)
        edge_lists = [list(p.edges) for p in paths]
        release = rng.integers(0, 12, size=len(paths)).tolist()
        ref = reference_run(edge_lists, L=L, B=B, release_times=release)
        opt = optimized_run(net, paths, L, B, release)
        assert np.array_equal(ref, opt)
