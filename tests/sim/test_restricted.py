"""Unit tests for the restricted (buffering-only) model of Section 1.4."""

import numpy as np
import pytest

from repro.network.graph import Network, NetworkError
from repro.network.random_networks import chain_bundle
from repro.routing.paths import paths_from_node_walks
from repro.sim.restricted import RestrictedWormholeSimulator
from repro.sim.wormhole import WormholeSimulator


def chain_paths(chains, depth, per_chain):
    net, walks = chain_bundle(chains, depth, per_chain)
    return net, paths_from_node_walks(net, walks)


class TestBasics:
    def test_single_worm_unobstructed(self):
        """With one flit per edge per step and no contention, a lone worm
        still pipelines: L + D - 1 steps."""
        net, paths = chain_paths(1, 5, 1)
        res = RestrictedWormholeSimulator(net, 1).run(paths, message_length=6)
        assert res.makespan == 6 + 5 - 1
        assert res.total_blocked_steps == 0

    def test_single_hop(self):
        net, paths = chain_paths(1, 1, 1)
        res = RestrictedWormholeSimulator(net, 2).run(paths, message_length=4)
        assert res.makespan == 4

    def test_zero_length_path(self):
        net, _ = chain_paths(1, 2, 1)
        res = RestrictedWormholeSimulator(net).run([[]], message_length=3)
        assert res.completion_times[0] == 0

    def test_empty(self):
        net, _ = chain_paths(1, 2, 1)
        res = RestrictedWormholeSimulator(net).run([], message_length=3)
        assert res.num_messages == 0

    def test_validation(self):
        net, paths = chain_paths(1, 2, 1)
        with pytest.raises(NetworkError):
            RestrictedWormholeSimulator(net, 0)
        with pytest.raises(NetworkError):
            RestrictedWormholeSimulator(net).run(paths, message_length=0)
        with pytest.raises(NetworkError):
            RestrictedWormholeSimulator(net).run([[0, 0]], message_length=2)


class TestBandwidthSharing:
    def test_two_worms_share_one_link(self):
        """B = 2 admits both worms, but the shared link still forwards
        one flit per step: total time about 2 L for one edge."""
        net, paths = chain_paths(1, 1, 2)
        L = 6
        res = RestrictedWormholeSimulator(net, 2).run(paths, message_length=L)
        assert res.all_delivered
        assert res.makespan == 2 * L  # 12 flits through a 1-flit/step link

    def test_matches_full_model_at_light_load(self):
        """A single worm sees no difference between the models."""
        net, paths = chain_paths(2, 4, 1)
        L = 5
        full = WormholeSimulator(net, 2).run(paths, L).makespan
        restricted = RestrictedWormholeSimulator(net, 2).run(paths, L).makespan
        assert full == restricted == L + 4 - 1

    def test_full_model_at_most_b_faster(self):
        """Remarks: the restricted model emulates the full model with
        slowdown <= B (and is never faster)."""
        net, paths = chain_paths(1, 4, 4)
        L = 6
        for B in (2, 3):
            full = WormholeSimulator(net, B, seed=0).run(paths, L).makespan
            restricted = RestrictedWormholeSimulator(net, B, seed=0).run(
                paths, L
            ).makespan
            assert restricted >= full
            assert restricted <= 2 * B * full  # generous constant

    def test_buffering_alone_still_helps(self):
        """More buffers reduce makespan even at fixed bandwidth."""
        net, paths = chain_paths(1, 6, 6)
        L = 4
        t1 = RestrictedWormholeSimulator(net, 1, seed=0).run(paths, L).makespan
        t3 = RestrictedWormholeSimulator(net, 3, seed=0).run(paths, L).makespan
        assert t3 <= t1


class TestSemantics:
    def test_slot_limit_respected(self):
        """Only B worms ever enter a shared edge concurrently: with B = 1
        worms serialize fully on a single edge."""
        net, paths = chain_paths(1, 1, 3)
        L = 4
        res = RestrictedWormholeSimulator(net, 1, seed=0).run(paths, L)
        # Messages finish at L, 2L, 3L (no interleaving possible).
        assert sorted(res.completion_times) == [L, 2 * L, 3 * L]

    def test_deadlock_detected(self):
        net = Network()
        a, b = net.add_nodes("ab")
        e_ab = net.add_edge(a, b)
        e_ba = net.add_edge(b, a)
        res = RestrictedWormholeSimulator(net, 1).run(
            [[e_ab, e_ba], [e_ba, e_ab]], message_length=5
        )
        assert res.deadlocked

    def test_step_cap(self):
        net, paths = chain_paths(1, 3, 3)
        res = RestrictedWormholeSimulator(net).run(
            paths, message_length=8, max_steps=4
        )
        assert res.hit_step_cap

    def test_release_times(self):
        net, paths = chain_paths(1, 3, 1)
        res = RestrictedWormholeSimulator(net).run(
            paths, message_length=2, release_times=np.array([5])
        )
        assert res.completion_times[0] == 5 + 2 + 3 - 1

    def test_reproducible(self):
        net, paths = chain_paths(1, 4, 4)
        a = RestrictedWormholeSimulator(net, 2, seed=3).run(paths, 4)
        b = RestrictedWormholeSimulator(net, 2, seed=3).run(paths, 4)
        assert np.array_equal(a.completion_times, b.completion_times)
