"""Unit tests for the store-and-forward baseline (Section 1)."""

import numpy as np
import pytest

from repro.network.graph import NetworkError
from repro.network.random_networks import chain_bundle
from repro.routing.paths import paths_from_node_walks
from repro.sim.store_forward import StoreForwardSimulator


def chain_paths(chains, depth, per_chain):
    net, walks = chain_bundle(chains, depth, per_chain)
    return net, paths_from_node_walks(net, walks)


class TestBasics:
    def test_single_message_takes_LD_flit_steps(self):
        """Section 1: store-and-forward needs D message steps = L*D."""
        net, paths = chain_paths(1, 4, 1)
        sim = StoreForwardSimulator(net)
        res = sim.run(paths, message_length=5)
        assert res.makespan == 5 * 4
        assert res.total_blocked_steps == 0

    def test_wormhole_beats_store_forward_unobstructed(self):
        """The paper's headline latency contrast: L+D-1 vs L*D."""
        from repro.sim.wormhole import WormholeSimulator

        net, paths = chain_paths(1, 6, 1)
        L = 8
        sf = StoreForwardSimulator(net).run(paths, L).makespan
        wh = WormholeSimulator(net).run(paths, L).makespan
        assert wh == L + 6 - 1
        assert sf == L * 6
        assert wh < sf

    def test_bandwidth_scales_hop_time(self):
        net, paths = chain_paths(1, 3, 1)
        res = StoreForwardSimulator(net, bandwidth_flits_per_step=4).run(
            paths, message_length=8
        )
        assert res.makespan == (8 // 4) * 3

    def test_ceil_hop_time(self):
        net, paths = chain_paths(1, 3, 1)
        res = StoreForwardSimulator(net, bandwidth_flits_per_step=3).run(
            paths, message_length=7
        )
        assert res.makespan == 3 * 3  # ceil(7/3) = 3 flit steps per hop

    def test_zero_length_path(self):
        net, _ = chain_paths(1, 2, 1)
        res = StoreForwardSimulator(net).run([[]], message_length=4)
        assert res.completion_times[0] == 0

    def test_empty(self):
        net, _ = chain_paths(1, 2, 1)
        res = StoreForwardSimulator(net).run([], message_length=4)
        assert res.num_messages == 0


class TestContention:
    def test_shared_chain_serializes_per_edge(self):
        """k messages over one chain: edge 0 forwards one per step."""
        net, paths = chain_paths(1, 4, 3)
        sim = StoreForwardSimulator(net, priority="age", seed=0)
        res = sim.run(paths, message_length=2)
        assert res.all_delivered
        # Pipelined: last message starts hop 1 at step 3, finishes at 6.
        assert res.makespan == 2 * (4 + 3 - 1)

    def test_close_to_c_plus_d(self):
        """Greedy store-and-forward achieves about (C + D) message steps
        on chains — the [27] optimal shape."""
        net, paths = chain_paths(2, 8, 6)
        res = StoreForwardSimulator(net, priority="farthest").run(
            paths, message_length=1
        )
        C, D = 6, 8
        assert res.makespan <= 2 * (C + D)

    def test_max_queue_reported(self):
        net, paths = chain_paths(1, 3, 5)
        res = StoreForwardSimulator(net).run(paths, message_length=1)
        assert res.extra["max_queue"] == 5


class TestOptions:
    def test_priority_validation(self):
        net, _ = chain_paths(1, 2, 1)
        with pytest.raises(NetworkError):
            StoreForwardSimulator(net, priority="bogus")
        with pytest.raises(NetworkError):
            StoreForwardSimulator(net, bandwidth_flits_per_step=0)

    def test_bad_L(self):
        net, paths = chain_paths(1, 2, 1)
        with pytest.raises(NetworkError):
            StoreForwardSimulator(net).run(paths, message_length=0)

    def test_random_delay_spreads_starts(self):
        net, paths = chain_paths(1, 4, 4)
        res = StoreForwardSimulator(net, seed=3).run(
            paths, message_length=1, delay_range=8
        )
        assert res.all_delivered

    def test_release_times_rounded_to_message_steps(self):
        net, paths = chain_paths(1, 2, 1)
        res = StoreForwardSimulator(net).run(
            paths, message_length=4, release_times=np.array([5])
        )
        # Release 5 flit steps -> message step 2 -> starts at step 2.
        assert res.completion_times[0] == (2 + 2) * 4

    def test_reproducible(self):
        net, paths = chain_paths(1, 4, 5)
        a = StoreForwardSimulator(net, priority="random", seed=7).run(paths, 2)
        b = StoreForwardSimulator(net, priority="random", seed=7).run(paths, 2)
        assert np.array_equal(a.completion_times, b.completion_times)
