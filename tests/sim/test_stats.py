"""Unit tests for simulation result types."""

import numpy as np

from repro.sim.stats import SimulationResult, summarize_latencies


def make_result(times, blocked=None):
    times = np.asarray(times, dtype=np.int64)
    return SimulationResult(
        completion_times=times,
        makespan=int(times.max()) if times.size else -1,
        steps_executed=int(times.max()) if times.size else 0,
        blocked_steps=(
            np.asarray(blocked, dtype=np.int64)
            if blocked is not None
            else np.zeros(times.size, dtype=np.int64)
        ),
    )


class TestSimulationResult:
    def test_delivered_mask(self):
        res = make_result([5, -1, 7])
        assert list(res.delivered) == [True, False, True]
        assert res.num_delivered == 2
        assert not res.all_delivered

    def test_all_delivered_empty(self):
        res = make_result([])
        assert res.all_delivered

    def test_blocked_total(self):
        res = make_result([5, 6], blocked=[2, 3])
        assert res.total_blocked_steps == 5

    def test_latencies_ignore_undelivered(self):
        res = make_result([5, -1, 7])
        assert list(res.latencies()) == [5.0, 7.0]

    def test_latencies_subtract_release(self):
        res = make_result([5, 9])
        lat = res.latencies(np.array([1, 4]))
        assert list(lat) == [4.0, 5.0]


class TestSummaries:
    def test_summary_fields(self):
        s = summarize_latencies(np.array([1.0, 2.0, 3.0, 100.0]))
        assert s["max"] == 100.0
        assert s["mean"] == 26.5
        assert s["median"] == 2.5

    def test_empty_summary(self):
        s = summarize_latencies(np.array([]))
        assert s == {"mean": 0.0, "median": 0.0, "p95": 0.0, "max": 0.0}
