"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_defaults(self):
        args = build_parser().parse_args(["butterfly"])
        assert args.n == 64 and args.channels == 2


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out
        assert "virtual channels" in out

    def test_demo(self, capsys):
        assert main(["demo", "--n", "8", "--length", "8"]) == 0
        out = capsys.readouterr().out
        assert "Bit-reversal" in out
        assert out.count("\n") >= 5

    def test_butterfly(self, capsys):
        assert main(["butterfly", "--n", "16", "--q", "2", "--length", "4"]) == 0
        out = capsys.readouterr().out
        assert "all delivered: True" in out

    def test_schedule(self, capsys):
        assert main(
            ["schedule", "--width", "6", "--depth", "5", "--messages", "40"]
        ) == 0
        out = capsys.readouterr().out
        assert "LLL schedules" in out

    def test_hard_instance(self, capsys):
        assert main(["hard-instance", "--congestion", "4", "--dilation", "11"]) == 0
        out = capsys.readouterr().out
        assert "Omega bound" in out

    def test_spacetime(self, capsys):
        assert main(["spacetime", "--worms", "2", "--depth", "3"]) == 0
        out = capsys.readouterr().out
        assert "*" in out

    def test_profile_hard_instance(self, capsys):
        assert main(
            ["profile", "--congestion", "4", "--dilation", "7", "--top", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "Theorem 2.2.1 hard instance" in out
        assert "## Hottest edges (flits crossed)" in out
        assert "## Stall attribution" in out
        assert "worst blame chain" in out

    def test_profile_demo_workload(self, capsys):
        assert main(
            ["profile", "--workload", "demo", "--n", "8", "--channels", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "butterfly" in out
        assert "## Throughput" in out

    def test_profile_writes_replayable_trace(self, capsys, tmp_path):
        trace_path = tmp_path / "run.jsonl"
        assert main(
            [
                "profile",
                "--congestion", "4",
                "--dilation", "7",
                "--trace", str(trace_path),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert str(trace_path) in out
        from repro.telemetry import load_trace, replay_check

        replay_check(load_trace(trace_path))

    def test_sweep_prints_grid_table(self, capsys):
        assert main(
            [
                "sweep",
                "--workload", "chain-bundle",
                "--param", "chains=2",
                "--param", "depth=5",
                "--param", "messages=3",
                "--length", "8",
                "--simulators", "wormhole,store_forward",
                "--channels", "1,2",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "sweep: chain-bundle" in out
        assert "wormhole" in out and "store_forward" in out
        assert "4 trials (0 cached, 4 executed)" in out

    def test_sweep_uses_and_reports_cache(self, capsys, tmp_path):
        argv = [
            "sweep",
            "--workload", "chain-bundle",
            "--param", "chains=2",
            "--param", "depth=5",
            "--param", "messages=3",
            "--length", "8",
            "--simulators", "wormhole",
            "--channels", "1",
            "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "1 trials (1 cached, 0 executed)" in out

    def test_sweep_rejects_unknown_workload(self):
        with pytest.raises(SystemExit, match="unknown workload"):
            main(["sweep", "--workload", "zzz"])

    def test_sweep_rejects_malformed_param(self):
        with pytest.raises(SystemExit, match="KEY=VAL"):
            main(["sweep", "--param", "oops"])

    def test_sweep_batch_size_matches_serial(self, capsys):
        argv = [
            "sweep",
            "--workload", "chain-bundle",
            "--param", "chains=2",
            "--param", "depth=5",
            "--param", "messages=3",
            "--length", "8",
            "--simulators", "wormhole",
            "--channels", "1,2",
            "--repeats", "2",
        ]
        assert main(argv + ["--batch-size", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--batch-size", "4"]) == 0
        batched = capsys.readouterr().out
        # Identical tables either way (the footer's wall time may jitter).
        assert serial.splitlines()[:-1] == batched.splitlines()[:-1]
        assert "4 trials (0 cached, 4 executed)" in batched

    def test_sweep_rejects_bad_batch_size(self):
        with pytest.raises(SystemExit, match="batch-size"):
            main(["sweep", "--batch-size", "zero"])
        with pytest.raises(SystemExit, match="batch-size"):
            main(["sweep", "--batch-size", "0"])

    def test_sweep_dry_run_prints_plan_without_executing(self, capsys):
        assert main(
            [
                "sweep",
                "--workload", "chain-bundle",
                "--param", "chains=2",
                "--param", "depth=5",
                "--param", "messages=3",
                "--length", "8",
                "--simulators", "wormhole,store_forward",
                "--channels", "1,2,4",
                "--dry-run",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "sweep plan (dry run" in out
        # Both routers batch now; each model's 3 trials pack into one
        # lockstep batch, labelled per model in the summary.
        assert "lockstep" in out
        assert "wormhole: 1 lockstep batch(es)" in out
        assert "store_forward: 1 lockstep batch(es)" in out
        assert (
            "6 trials: 0 cache hits, 6 to execute in 2 lockstep batch(es) "
            "+ 0 single(s); nothing executed (dry run)" in out
        )
        # No trial ran: no result table, no wall time footer.
        assert "makespan" not in out
        assert "executed)" not in out

    def test_sweep_dry_run_labels_singles_per_model(self, capsys):
        assert main(
            [
                "sweep",
                "--workload", "chain-bundle",
                "--param", "chains=2",
                "--param", "depth=5",
                "--param", "messages=3",
                "--length", "8",
                "--simulators", "restricted,schedule",
                "--channels", "1,2",
                "--dry-run",
            ]
        ) == 0
        out = capsys.readouterr().out
        # The schedule pipeline has no lockstep runner: its trials stay
        # singles while the restricted router's pack into a batch.
        assert "restricted: 1 lockstep batch(es)" in out
        assert "schedule: 2 single(s)" in out
        assert (
            "4 trials: 0 cache hits, 4 to execute in 1 lockstep batch(es) "
            "+ 2 single(s); nothing executed (dry run)" in out
        )

    def test_sweep_dry_run_sees_cache_hits(self, capsys, tmp_path):
        argv = [
            "sweep",
            "--workload", "chain-bundle",
            "--param", "chains=2",
            "--param", "depth=5",
            "--param", "messages=3",
            "--length", "8",
            "--simulators", "wormhole",
            "--channels", "1,2",
            "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv + ["--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "2 trials: 2 cache hits, 0 to execute" in out
        # --force plans a full re-run even with a warm cache.
        assert main(argv + ["--dry-run", "--force"]) == 0
        out = capsys.readouterr().out
        assert "2 trials: 0 cache hits, 2 to execute" in out

    def test_serve_and_loadgen_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 7654 and args.queue_limit == 64
        assert args.max_batch == 32 and args.max_wait_ms == 2.0
        args = build_parser().parse_args(["loadgen"])
        assert args.requests == 32 and args.concurrency == 8
        assert args.channels == "1,2,4" and args.rate == 0.0
        assert args.output == "BENCH_service.json"
        assert not args.no_verify and not args.shutdown

    def test_loadgen_rejects_empty_channels(self):
        with pytest.raises(SystemExit, match="channels"):
            main(["loadgen", "--channels", ","])

    def test_loadgen_unreachable_server_is_a_clean_error(self):
        # Port 1 on loopback is never listening; connect fails fast.
        with pytest.raises(SystemExit, match="cannot reach"):
            main(["loadgen", "--port", "1", "--requests", "1"])

    def test_bench_quick_writes_report(self, capsys, tmp_path):
        out_file = tmp_path / "bench.json"
        assert main(
            ["bench", "--quick", "--output", str(out_file)]
        ) == 0
        out = capsys.readouterr().out
        assert "bit-identical: True" in out
        import json

        payload = json.loads(out_file.read_text())
        assert payload["bit_identical"] is True
        assert payload["grid"]["trials"] == 18
        assert payload["serial"]["trials_per_s"] > 0
        assert payload["batched"]["trials_per_s"] > 0
        # Every batched model reports its own serial-vs-lockstep row.
        for model in (
            "wormhole", "cut_through", "store_forward", "restricted",
            "adaptive",
        ):
            row = payload["models"][model]
            assert row["bit_identical"] is True
            assert row["speedup"] > 0
        assert "micro" not in payload  # --quick skips microbenchmarks

    def test_experiment_unknown_name(self):
        with pytest.raises(SystemExit, match="no benchmark"):
            main(["experiment", "zzz"])

    def test_experiment_prints_saved_tables(self, capsys):
        """A previously-generated table prints even without rerunning,
        as long as the bench run itself succeeds."""
        import pathlib

        results = pathlib.Path("benchmarks/results")
        if not (results / "e7_fig2_route.txt").exists():
            pytest.skip("bench results not generated yet")
        assert main(["experiment", "e7"]) == 0
        out = capsys.readouterr().out
        assert "two-pass route" in out

    def test_module_entry_point(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "info"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        assert "repro" in proc.stdout


class TestScenarioCommand:
    def test_list(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        assert "lower-bound-gadget" in out
        assert "ring-dateline" in out
        assert "continuous" in out

    def test_show(self, capsys):
        assert main(["scenario", "show", "lower-bound-gadget"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 2.2.1" in out
        assert "C" in out and "D" in out
        assert "expect" in out.lower()

    def test_run_gadget_across_channels(self, capsys):
        assert main(
            [
                "scenario",
                "run",
                "lower-bound-gadget",
                "--channels",
                "1,2",
                "--param",
                "C=6",
                "--param",
                "D=7",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "ok" in out
        assert "case:" in out

    def test_run_unknown_scenario(self):
        with pytest.raises(SystemExit, match="unknown scenario"):
            main(["scenario", "run", "zzz"])

    def test_run_rejects_undeclared_model(self):
        with pytest.raises(SystemExit, match="does not support model"):
            main(
                ["scenario", "run", "ring-deadlock", "--model", "store_forward"]
            )

    def test_run_bad_param_is_a_clean_error(self):
        with pytest.raises(SystemExit, match="--param"):
            main(["scenario", "run", "chain-contention", "--param", "chains"])

    def test_subcommand_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenario"])


class TestFuzzCommand:
    def test_small_clean_run(self, capsys, tmp_path):
        assert main(
            [
                "fuzz",
                "--rounds",
                "3",
                "--seed",
                "0",
                "--artifact-dir",
                str(tmp_path),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "all invariants held" in out
        assert list(tmp_path.iterdir()) == []

    def test_family_restriction(self, capsys, tmp_path):
        assert main(
            [
                "fuzz",
                "--rounds",
                "2",
                "--families",
                "ring",
                "--artifact-dir",
                str(tmp_path),
            ]
        ) == 0
        assert "ring=2" in capsys.readouterr().out

    def test_unknown_family_is_a_clean_error(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown fuzz famil"):
            main(["fuzz", "--rounds", "1", "--families", "bogus"])

    def test_replay_missing_artifact_is_a_clean_error(self, tmp_path):
        with pytest.raises(SystemExit, match="artifact"):
            main(["fuzz", "--replay", str(tmp_path / "nope.json")])


class TestScenarioIntegrationFlags:
    def test_loadgen_scenario_default_is_none(self):
        args = build_parser().parse_args(["loadgen"])
        assert args.scenario is None

    def test_loadgen_unknown_scenario_is_a_clean_error(self):
        with pytest.raises(SystemExit, match="unknown scenario"):
            main(["loadgen", "--scenario", "zzz", "--requests", "1"])

    def test_profile_scenario_smoke(self, capsys):
        assert main(
            ["profile", "--scenario", "chain-contention", "--channels", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "chain-contention" in out
        assert "Run summary" in out and "Throughput" in out

    def test_profile_scenario_and_artifact_conflict(self, tmp_path):
        with pytest.raises(SystemExit, match="not both"):
            main(
                [
                    "profile",
                    "--scenario",
                    "chain-contention",
                    "--artifact",
                    str(tmp_path / "a.json"),
                ]
            )
