"""Extended property-based tests for the newer subsystems."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.mesh import KAryNCube
from repro.network.multibutterfly import Multibutterfly
from repro.routing.decompose import decompose_q_relation
from repro.routing.problems import RoutingInstance, random_q_relation
from repro.sim.adaptive import AdaptiveMeshRouter
from repro.sim.wormhole import WormholeSimulator


# ---------------------------------------------------------------------------
# adaptive mesh routing
# ---------------------------------------------------------------------------


@given(
    st.sampled_from(["dimension", "west-first"]),
    st.integers(3, 6),  # k
    st.integers(1, 20),  # demands
    st.integers(0, 2**31 - 1),
)
@settings(max_examples=25, deadline=None)
def test_restricted_adaptive_policies_always_deliver(policy, k, n_dem, seed):
    """Turn-model / XY routing never deadlocks, whatever the workload."""
    mesh = KAryNCube(k=k, n=2, wrap=False)
    rng = np.random.default_rng(seed)
    N = mesh.num_nodes
    demands = [(int(rng.integers(N)), int(rng.integers(N))) for _ in range(n_dem)]
    out = AdaptiveMeshRouter(mesh, 1, policy=policy, seed=seed).run(
        demands, message_length=4
    )
    assert out.all_delivered
    assert not out.result.deadlocked


@given(st.integers(3, 6), st.integers(0, 2**31 - 1))
@settings(max_examples=20, deadline=None)
def test_adaptive_latency_floor(k, seed):
    """No adaptive route beats the Manhattan-distance floor."""
    mesh = KAryNCube(k=k, n=2, wrap=False)
    rng = np.random.default_rng(seed)
    N = mesh.num_nodes
    L = 3
    demands = [(int(rng.integers(N)), int(rng.integers(N))) for _ in range(8)]
    out = AdaptiveMeshRouter(mesh, 2, policy="west-first", seed=seed).run(
        demands, message_length=L
    )
    for (s, d), t in zip(demands, out.result.completion_times):
        cs, cd = mesh.coords(s), mesh.coords(d)
        dist = sum(abs(a - b) for a, b in zip(cs, cd))
        floor = L + dist - 1 if dist else 0
        assert t >= floor


# ---------------------------------------------------------------------------
# q-relation decomposition
# ---------------------------------------------------------------------------


@given(
    st.sampled_from([4, 8, 16]),
    st.integers(1, 4),
    st.integers(0, 2**31 - 1),
)
@settings(max_examples=25, deadline=None)
def test_decompose_regular_relations(n, q, seed):
    inst = random_q_relation(n, q, np.random.default_rng(seed))
    batches = decompose_q_relation(inst)
    assert len(batches) == q
    # Every batch is a permutation and the union covers the demands.
    for perm in batches:
        assert np.array_equal(np.sort(perm), np.arange(n))
    want: dict = {}
    for s, d in zip(inst.sources, inst.dests):
        want[(int(s), int(d))] = want.get((int(s), int(d)), 0) + 1
    got: dict = {}
    for perm in batches:
        for s in range(n):
            key = (s, int(perm[s]))
            if key in want and got.get(key, 0) < want[key]:
                got[key] = got.get(key, 0) + 1
    assert got == want


@given(st.integers(2, 8), st.integers(5, 30), st.integers(0, 2**31 - 1))
@settings(max_examples=25, deadline=None)
def test_decompose_irregular_relations(n, m, seed):
    """Arbitrary demand multisets decompose within 2q+4 batches."""
    rng = np.random.default_rng(seed)
    inst = RoutingInstance(
        n,
        rng.integers(0, n, size=m).astype(np.int64),
        rng.integers(0, n, size=m).astype(np.int64),
    )
    q = max(inst.max_per_source(), inst.max_per_dest())
    batches = decompose_q_relation(inst)
    assert len(batches) <= 2 * q + 4


# ---------------------------------------------------------------------------
# multibutterfly candidates
# ---------------------------------------------------------------------------


@given(
    st.sampled_from([8, 16, 32]),
    st.integers(1, 3),
    st.integers(0, 2**31 - 1),
)
@settings(max_examples=20, deadline=None)
def test_multibutterfly_any_candidate_walk_reaches_dest(n, d, seed):
    mbf = Multibutterfly(n, d=d, rng=np.random.default_rng(seed))
    rng = np.random.default_rng(seed + 1)
    for _ in range(5):
        src = int(rng.integers(n))
        dst = int(rng.integers(n))
        node = src
        for _lvl in range(mbf.log_n):
            edges = mbf.candidate_edges(node, dst)
            assert len(edges) == d
            node = mbf.network.head(edges[int(rng.integers(d))])
        assert node == mbf.output_of(dst)


# ---------------------------------------------------------------------------
# VC classes
# ---------------------------------------------------------------------------


@given(st.sampled_from([3, 4, 5, 6]), st.integers(2, 8), st.integers(0, 2**31 - 1))
@settings(max_examples=25, deadline=None)
def test_dateline_ring_always_delivers(k, L, seed):
    """Around-the-ring worms with dateline classes: never deadlock."""
    from repro.network.graph import Network

    net = Network()
    nodes = net.add_nodes(range(k))
    edges = [net.add_edge(nodes[i], nodes[(i + 1) % k]) for i in range(k)]
    paths = [[edges[(s + j) % k] for j in range(k)] for s in range(k)]
    vcs = []
    for path in paths:
        crossed = False
        row = []
        for e in path:
            row.append(1 if crossed else 0)
            if e == k - 1:
                crossed = True
        vcs.append(row)
    sim = WormholeSimulator(net, 2, seed=seed)
    res = sim.run(paths, message_length=L, vc_ids=vcs)
    assert res.all_delivered
    assert not res.deadlocked
