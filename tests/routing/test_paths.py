"""Unit tests for paths, congestion, and dilation (Section 1.1)."""

import pytest

from repro.network.graph import Network, NetworkError
from repro.routing.paths import (
    Path,
    check_edge_simple,
    congestion,
    dilation,
    edge_loads,
    path_set_stats,
    paths_from_node_walks,
)


@pytest.fixture
def net():
    """a -> b -> c -> d with a parallel shortcut a -> c."""
    net = Network()
    a, b, c, d = net.add_nodes("abcd")
    net.add_edge(a, b)  # 0
    net.add_edge(b, c)  # 1
    net.add_edge(c, d)  # 2
    net.add_edge(a, c)  # 3
    return net


class TestPath:
    def test_from_nodes(self, net):
        p = Path.from_nodes(net, [0, 1, 2, 3])
        assert p.edges == (0, 1, 2)
        assert p.source == 0 and p.destination == 3
        assert p.length == 3

    def test_from_nodes_missing_edge(self, net):
        with pytest.raises(NetworkError, match="no edge"):
            Path.from_nodes(net, [1, 0])

    def test_from_edges(self, net):
        p = Path.from_edges(net, [3, 2])
        assert p.nodes == (0, 2, 3)

    def test_from_edges_discontinuous(self, net):
        with pytest.raises(NetworkError, match="continue"):
            Path.from_edges(net, [0, 2])

    def test_from_edges_empty(self, net):
        with pytest.raises(NetworkError):
            Path.from_edges(net, [])

    def test_single_node_path(self):
        p = Path((7,), ())
        assert p.length == 0
        assert p.source == p.destination == 7

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(NetworkError):
            Path((0, 1), ())

    def test_empty_nodes_rejected(self):
        with pytest.raises(NetworkError):
            Path((), ())

    def test_edge_simple(self, net):
        p = Path.from_nodes(net, [0, 1, 2])
        assert p.is_edge_simple()
        loop = Path((0, 1, 0, 1), (0, 99, 0))
        assert not loop.is_edge_simple()


class TestMeasures:
    def test_congestion_counts_max_edge_load(self, net):
        p1 = Path.from_nodes(net, [0, 1, 2, 3])
        p2 = Path.from_nodes(net, [0, 2, 3])
        p3 = Path.from_nodes(net, [2, 3])
        assert congestion([p1, p2, p3]) == 3  # edge c->d used by all

    def test_dilation_is_longest_path(self, net):
        p1 = Path.from_nodes(net, [0, 1, 2, 3])
        p2 = Path.from_nodes(net, [0, 2])
        assert dilation([p1, p2]) == 3

    def test_empty_set(self):
        assert congestion([]) == 0
        assert dilation([]) == 0

    def test_edge_loads_sized(self, net):
        p = Path.from_nodes(net, [0, 1, 2])
        loads = edge_loads([p], num_edges=net.num_edges)
        assert list(loads) == [1, 1, 0, 0]

    def test_check_edge_simple_raises(self):
        bad = Path((0, 1, 0, 1), (5, 6, 5))
        with pytest.raises(NetworkError, match="twice"):
            check_edge_simple([bad])

    def test_path_set_stats(self, net):
        p1 = Path.from_nodes(net, [0, 1, 2, 3])
        p2 = Path.from_nodes(net, [0, 2])
        stats = path_set_stats([p1, p2])
        assert stats.num_messages == 2
        assert stats.dilation == 3
        assert stats.congestion == 1
        assert stats.total_path_length == 4
        assert stats.mean_path_length == 2.0

    def test_stats_empty(self):
        stats = path_set_stats([])
        assert stats.mean_path_length == 0.0


class TestBulk:
    def test_paths_from_node_walks(self, net):
        paths = paths_from_node_walks(net, [[0, 1, 2], [0, 2, 3]])
        assert len(paths) == 2
        assert paths[1].edges == (3, 2)
