"""Unit tests for q-relation decomposition (König / Hall)."""

import numpy as np
import pytest

from repro.routing.decompose import decompose_q_relation
from repro.routing.problems import (
    RoutingInstance,
    random_permutation,
    random_q_relation,
)


def demand_multiset(inst):
    pairs = {}
    for s, d in zip(inst.sources, inst.dests):
        pairs[(int(s), int(d))] = pairs.get((int(s), int(d)), 0) + 1
    return pairs


class TestDecompose:
    def test_permutation_is_one_batch(self, rng):
        inst = random_permutation(8, rng)
        batches = decompose_q_relation(inst)
        assert len(batches) == 1
        assert np.array_equal(batches[0], inst.dests)

    @pytest.mark.parametrize("q", [1, 2, 4])
    def test_regular_relation_q_batches(self, q, rng):
        inst = random_q_relation(16, q, rng)
        batches = decompose_q_relation(inst)
        assert len(batches) == q
        for perm in batches:
            assert np.array_equal(np.sort(perm), np.arange(16))

    def test_covers_every_demand(self, rng):
        inst = random_q_relation(8, 3, rng)
        batches = decompose_q_relation(inst)
        covered = {}
        want = demand_multiset(inst)
        for perm in batches:
            for s in range(8):
                key = (s, int(perm[s]))
                if key in want and covered.get(key, 0) < want[key]:
                    covered[key] = covered.get(key, 0) + 1
        assert covered == want

    def test_irregular_relation(self):
        """Inputs with different loads still decompose."""
        inst = RoutingInstance(
            4,
            np.array([0, 0, 0, 1, 2], dtype=np.int64),
            np.array([1, 2, 3, 0, 0], dtype=np.int64),
        )
        batches = decompose_q_relation(inst)
        assert 3 <= len(batches) <= 10
        want = demand_multiset(inst)
        covered: dict = {}
        for perm in batches:
            for s in range(4):
                key = (s, int(perm[s]))
                if key in want and covered.get(key, 0) < want[key]:
                    covered[key] = covered.get(key, 0) + 1
        assert covered == want

    def test_duplicate_demands(self):
        """The same (s, d) pair repeated q times needs q batches."""
        inst = RoutingInstance(
            4,
            np.array([2, 2, 2], dtype=np.int64),
            np.array([3, 3, 3], dtype=np.int64),
        )
        batches = decompose_q_relation(inst)
        assert len(batches) == 3
        for perm in batches:
            assert perm[2] == 3

    def test_empty_instance(self):
        inst = RoutingInstance(
            4, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        )
        assert decompose_q_relation(inst) == []


class TestEndToEndWithBenes:
    def test_route_decomposed_relation(self, rng):
        """Full pipeline: q-relation -> permutation batches -> pipelined
        Waksman routing, O(qL + log n) with zero blocking."""
        from repro.core.benes_routing import route_q_relation_benes

        n, q, L = 16, 3, 6
        inst = random_q_relation(n, q, rng)
        batches = decompose_q_relation(inst)
        res = route_q_relation_benes(batches, message_length=L)
        assert res.all_delivered
        assert res.total_blocked_steps == 0
        log_n = n.bit_length() - 1
        assert res.makespan == (len(batches) - 1) * (L + 1) + L + 2 * log_n - 1
