"""Unit tests for mesh traffic patterns."""

import numpy as np
import pytest

from repro.network.graph import NetworkError
from repro.network.mesh import KAryNCube
from repro.routing.traffic import (
    bit_complement_traffic,
    hotspot_traffic,
    neighbor_traffic,
    tornado_traffic,
    uniform_traffic,
)


@pytest.fixture
def cube():
    return KAryNCube(k=4, n=2, wrap=True)


class TestUniform:
    def test_counts(self, cube, rng):
        demands = uniform_traffic(cube, 3, rng)
        assert len(demands) == 16 * 3
        sources = [s for s, _ in demands]
        assert all(sources.count(v) == 3 for v in range(16))

    def test_validation(self, cube, rng):
        with pytest.raises(NetworkError):
            uniform_traffic(cube, 0, rng)


class TestHotspot:
    def test_fraction_one_all_to_hotspot(self, cube, rng):
        demands = hotspot_traffic(cube, 2, hotspot=5, fraction=1.0, rng=rng)
        assert all(d == 5 for _, d in demands)

    def test_fraction_shifts_mass(self, cube):
        rng = np.random.default_rng(1)
        demands = hotspot_traffic(cube, 4, hotspot=0, fraction=0.5, rng=rng)
        hits = sum(1 for _, d in demands if d == 0)
        assert 0.3 * len(demands) < hits < 0.7 * len(demands)

    def test_validation(self, cube, rng):
        with pytest.raises(NetworkError):
            hotspot_traffic(cube, 1, hotspot=99, fraction=0.1, rng=rng)
        with pytest.raises(NetworkError):
            hotspot_traffic(cube, 1, hotspot=0, fraction=1.5, rng=rng)


class TestDeterministicPatterns:
    def test_tornado_distance(self, cube):
        for s, d in tornado_traffic(cube):
            cs, cd = cube.coords(s), cube.coords(d)
            assert (cs[0] + 2) % 4 == cd[0]
            assert cs[1] == cd[1]

    def test_neighbor_is_one_hop(self, cube):
        for s, d in neighbor_traffic(cube):
            cs, cd = cube.coords(s), cube.coords(d)
            assert (cs[0] + 1) % 4 == cd[0]

    def test_bit_complement_involution(self, cube):
        demands = dict(bit_complement_traffic(cube))
        for s, d in demands.items():
            assert demands[d] == s

    def test_patterns_are_permutations(self, cube):
        for pattern in (tornado_traffic, neighbor_traffic, bit_complement_traffic):
            demands = pattern(cube)
            dests = [d for _, d in demands]
            assert sorted(dests) == list(range(16))
