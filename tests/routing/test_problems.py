"""Unit tests for routing-problem generators (Section 1.2)."""

import numpy as np
import pytest

from repro.routing.problems import (
    RoutingInstance,
    bit_reversal_permutation,
    is_q_relation,
    random_destinations,
    random_permutation,
    random_q_relation,
    transpose_permutation,
)


class TestRoutingInstance:
    def test_basic(self):
        inst = RoutingInstance(
            4, np.array([0, 1, 2]), np.array([3, 3, 0])
        )
        assert inst.num_messages == 3
        assert inst.max_per_source() == 1
        assert inst.max_per_dest() == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            RoutingInstance(4, np.array([0, 4]), np.array([0, 1]))
        with pytest.raises(ValueError):
            RoutingInstance(4, np.array([0]), np.array([0, 1]))

    def test_empty(self):
        inst = RoutingInstance(4, np.empty(0, np.int64), np.empty(0, np.int64))
        assert inst.max_per_source() == 0


class TestGenerators:
    def test_random_permutation_is_1_relation(self, rng):
        inst = random_permutation(16, rng)
        assert is_q_relation(inst, 1)
        assert sorted(inst.dests) == list(range(16))

    def test_random_q_relation_exact(self, rng):
        inst = random_q_relation(8, 3, rng)
        assert inst.num_messages == 24
        assert inst.max_per_source() == 3
        assert inst.max_per_dest() == 3
        assert is_q_relation(inst, 3)

    def test_random_q_relation_rejects_bad_q(self, rng):
        with pytest.raises(ValueError):
            random_q_relation(8, 0, rng)

    def test_random_destinations_sources_balanced(self, rng):
        inst = random_destinations(8, 2, rng)
        assert inst.num_messages == 16
        assert inst.max_per_source() == 2
        # Destinations are unconstrained balls-in-bins.
        assert inst.max_per_dest() >= 2

    def test_transpose(self):
        inst = transpose_permutation(16)
        assert is_q_relation(inst, 1)
        # (row, col) -> (col, row): index 1 = (0,1) goes to (1,0) = 4.
        assert inst.dests[1] == 4
        assert inst.dests[4] == 1

    def test_transpose_needs_square(self):
        with pytest.raises(ValueError):
            transpose_permutation(8)

    def test_bit_reversal(self):
        inst = bit_reversal_permutation(8)
        assert is_q_relation(inst, 1)
        assert inst.dests[0b001] == 0b100
        assert inst.dests[0b110] == 0b011

    def test_bit_reversal_involution(self):
        inst = bit_reversal_permutation(32)
        d = inst.dests
        assert np.array_equal(d[d], np.arange(32))

    def test_bit_reversal_needs_power_of_two(self):
        with pytest.raises(ValueError):
            bit_reversal_permutation(12)

    def test_reproducibility(self):
        a = random_q_relation(8, 2, np.random.default_rng(5))
        b = random_q_relation(8, 2, np.random.default_rng(5))
        assert np.array_equal(a.dests, b.dests)
