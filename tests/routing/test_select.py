"""Unit tests for congestion-aware path selection (Srinivasan-Teo flavor)."""

import numpy as np
import pytest

from repro.network.graph import Network, NetworkError
from repro.network.mesh import KAryNCube
from repro.routing.paths import congestion
from repro.routing.select import min_penalty_path, select_paths
from repro.routing.shortest import shortest_paths


@pytest.fixture
def two_route_net():
    """Two disjoint 2-hop routes from s to t."""
    net = Network()
    s, a, b, t = net.add_nodes("sabt")
    net.add_edge(s, a)
    net.add_edge(a, t)
    net.add_edge(s, b)
    net.add_edge(b, t)
    return net, s, t


class TestMinPenaltyPath:
    def test_prefers_empty_route(self, two_route_net):
        net, s, t = two_route_net
        loads = np.zeros(net.num_edges, dtype=np.int64)
        loads[0] = loads[1] = 5  # top route congested
        p = min_penalty_path(net, s, t, loads, beta=2.0)
        assert p.edges == (2, 3)

    def test_trivial(self, two_route_net):
        net, s, _ = two_route_net
        p = min_penalty_path(net, s, s, np.zeros(4, np.int64), 2.0)
        assert p.length == 0

    def test_unreachable(self, two_route_net):
        net, s, t = two_route_net
        with pytest.raises(NetworkError, match="unreachable"):
            min_penalty_path(net, t, s, np.zeros(4, np.int64), 2.0)


class TestSelectPaths:
    def test_splits_over_disjoint_routes(self, two_route_net):
        net, s, t = two_route_net
        result = select_paths(net, [(s, t)] * 4)
        assert result.congestion == 2  # 4 messages over 2 routes
        assert result.dilation == 2

    def test_beats_naive_shortest_on_mesh(self, rng):
        """Spreading identical demands beats first-found shortest paths."""
        cube = KAryNCube(k=4, n=2, wrap=False)
        demands = [(cube.node((0, 0)), cube.node((3, 3)))] * 6
        naive = shortest_paths(cube.network, demands)  # all on one route
        assert congestion(naive) == 6
        result = select_paths(cube.network, demands, rng=rng)
        # Many corner-to-corner shortest routes exist; selection spreads.
        assert result.congestion <= 3
        assert result.dilation == 6

    def test_endpoints_preserved(self, rng):
        cube = KAryNCube(k=3, n=2, wrap=True)
        demands = [(0, 8), (1, 7), (2, 6)]
        result = select_paths(cube.network, demands, rng=rng)
        for p, (s, d) in zip(result.paths, demands):
            assert p.source == s and p.destination == d

    def test_sweeps_bounded(self, two_route_net):
        net, s, t = two_route_net
        result = select_paths(net, [(s, t)] * 2, max_sweeps=3)
        assert result.sweeps <= 3
