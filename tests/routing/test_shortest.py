"""Unit tests for BFS shortest-path selection."""

import numpy as np
import pytest

from repro.network.graph import NetworkError
from repro.network.mesh import KAryNCube
from repro.routing.shortest import bfs_path, bfs_tree, shortest_paths


class TestBfsPath:
    def test_line(self, small_line):
        p = bfs_path(small_line, 0, 4)
        assert p.nodes == (0, 1, 2, 3, 4)

    def test_trivial(self, small_line):
        p = bfs_path(small_line, 2, 2)
        assert p.length == 0

    def test_unreachable(self, small_line):
        with pytest.raises(NetworkError, match="unreachable"):
            bfs_path(small_line, 4, 0)

    def test_shortest_on_mesh(self):
        cube = KAryNCube(k=4, n=2, wrap=False)
        src, dst = cube.node((0, 0)), cube.node((2, 3))
        p = bfs_path(cube.network, src, dst)
        assert p.length == 5  # Manhattan distance

    def test_random_tiebreak_varies(self):
        cube = KAryNCube(k=5, n=2, wrap=False)
        src, dst = cube.node((0, 0)), cube.node((4, 4))
        seen = set()
        for seed in range(20):
            p = bfs_path(cube.network, src, dst, np.random.default_rng(seed))
            assert p.length == 8
            seen.add(p.nodes)
        assert len(seen) > 1  # spread over the shortest-path DAG

    def test_deterministic_without_rng(self):
        cube = KAryNCube(k=4, n=2, wrap=False)
        a = bfs_path(cube.network, 0, 15)
        b = bfs_path(cube.network, 0, 15)
        assert a.nodes == b.nodes


class TestBfsTree:
    def test_parent_edges(self, small_line):
        parents = bfs_tree(small_line, 0)
        assert parents[0] == -1
        assert small_line.head(parents[4]) == 4

    def test_unreachable_marked(self, small_line):
        parents = bfs_tree(small_line, 4)
        assert all(parents[v] == -1 for v in range(4))


class TestShortestPaths:
    def test_batch(self, small_line):
        paths = shortest_paths(small_line, [(0, 2), (1, 4)])
        assert [p.length for p in paths] == [2, 3]
