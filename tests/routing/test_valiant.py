"""Unit tests for Valiant random-intermediate routing [47]."""

import numpy as np

from repro.network.mesh import KAryNCube
from repro.routing.valiant import valiant_path, valiant_paths


class TestValiant:
    def test_endpoints(self, rng):
        cube = KAryNCube(k=4, n=2, wrap=True)
        p = valiant_path(cube.network, 0, 15, rng)
        assert p.nodes[0] == 0 and p.nodes[-1] == 15

    def test_intermediate_restriction(self, rng):
        cube = KAryNCube(k=4, n=2, wrap=False)
        pool = [5, 6]
        for seed in range(10):
            p = valiant_path(
                cube.network, 0, 15, np.random.default_rng(seed), pool
            )
            assert p.nodes[0] == 0 and p.nodes[-1] == 15
            assert 5 in p.nodes or 6 in p.nodes

    def test_spreads_congestion(self):
        """Valiant paths for a fixed demand differ across seeds."""
        cube = KAryNCube(k=4, n=2, wrap=False)
        routes = {
            valiant_path(cube.network, 0, 15, np.random.default_rng(s)).nodes
            for s in range(12)
        }
        assert len(routes) > 3

    def test_batch(self, rng):
        cube = KAryNCube(k=3, n=2, wrap=False)
        demands = [(0, 8), (8, 0), (4, 4)]
        paths = valiant_paths(cube.network, demands, rng)
        assert len(paths) == 3
        for p, (s, d) in zip(paths, demands):
            assert p.source == s and p.destination == d
