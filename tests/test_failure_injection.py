"""Failure injection and pathological-input tests.

Production routers meet degenerate workloads; these tests push the
simulators and schedulers into corner configurations — mixed zero-hop
messages, single-flit worms, enormous B, duplicate paths, staggered
releases landing mid-deadlock — and check the invariants hold.
"""

import numpy as np
import pytest

from repro import (
    CutThroughSimulator,
    Network,
    RestrictedWormholeSimulator,
    StoreForwardSimulator,
    WormholeSimulator,
    execute_schedule,
    lll_schedule,
)
from repro.network.random_networks import chain_bundle
from repro.routing.paths import paths_from_node_walks


def chain(depth, per_chain=1, chains=1):
    net, walks = chain_bundle(chains, depth, per_chain)
    return net, paths_from_node_walks(net, walks)


class TestDegenerateWorkloads:
    def test_mixed_zero_hop_and_long_paths(self):
        net, paths = chain(4, per_chain=2)
        mixed = [[], list(paths[0].edges), [], list(paths[1].edges)]
        res = WormholeSimulator(net, 1, seed=0).run(mixed, message_length=5)
        assert res.all_delivered
        assert res.completion_times[0] == 0
        assert res.completion_times[2] == 0

    def test_all_zero_hop(self):
        net, _ = chain(2)
        res = WormholeSimulator(net).run([[], [], []], message_length=3)
        assert res.all_delivered
        assert res.makespan == 0

    def test_huge_b_is_harmless(self):
        net, paths = chain(3, per_chain=4)
        res = WormholeSimulator(net, 10_000).run(paths, message_length=4)
        assert res.makespan == 4 + 3 - 1

    def test_identical_duplicate_paths(self):
        """Many copies of the same path — the replication pattern of the
        hard instance — serialize cleanly."""
        net, paths = chain(3)
        dup = [list(paths[0].edges)] * 6
        res = WormholeSimulator(net, 1, seed=0).run(dup, message_length=4)
        assert res.all_delivered
        assert len(set(res.completion_times.tolist())) == 6  # all distinct

    def test_single_flit_storm(self):
        net, paths = chain(5, per_chain=8)
        res = WormholeSimulator(net, 1, seed=0).run(paths, message_length=1)
        assert res.all_delivered
        # L = 1 headers pipeline: near (M + D) steps, far below M * D.
        assert res.makespan <= 8 * 2 + 5 + 2

    def test_release_into_deadlocked_network(self):
        """A message released after a deadlock forms still counts as
        undelivered, and the run reports the deadlock."""
        net = Network()
        a, b, c = net.add_nodes("abc")
        e_ab = net.add_edge(a, b)
        e_ba = net.add_edge(b, a)
        e_bc = net.add_edge(b, c)
        res = WormholeSimulator(net, 1, priority="index").run(
            [[e_ab, e_ba], [e_ba, e_ab], [e_bc]],
            message_length=6,
            release_times=np.array([0, 0, 50]),
        )
        # The third message's edge is free, so it IS delivered; the two
        # cyclic worms stay stuck and the run ends via deadlock or cap.
        assert res.completion_times[2] > 0
        assert not res.delivered[0] and not res.delivered[1]

    def test_extreme_length_ratio(self):
        """L = 1000 on a 2-edge path: makespan exactly L + D - 1."""
        net, paths = chain(2)
        res = WormholeSimulator(net).run(paths, message_length=1000)
        assert res.makespan == 1001


class TestSchedulerRobustness:
    def test_schedule_on_workload_with_empty_paths(self):
        net, paths = chain(3, per_chain=3)
        mixed = [list(p.edges) for p in paths] + [[]]
        build = lll_schedule(mixed, message_length=4, B=1)
        res = execute_schedule(net, mixed, build.schedule, B=1)
        assert res.all_delivered

    def test_schedule_single_message(self):
        net, paths = chain(3)
        build = lll_schedule(paths, message_length=4, B=2)
        assert build.num_classes == 1
        res = execute_schedule(net, paths, build.schedule, B=2)
        assert res.makespan == 4 + 3 - 1

    def test_schedule_empty_workload(self):
        net, _ = chain(2)
        build = lll_schedule([], message_length=4, B=1)
        res = execute_schedule(net, [], build.schedule, B=1)
        assert res.num_messages == 0


class TestAllSimulatorsAgreeOnInvariants:
    """Every simulator respects the same basic contracts."""

    @pytest.fixture
    def setup(self):
        net, paths = chain(4, per_chain=3, chains=2)
        return net, paths

    @pytest.mark.parametrize(
        "factory",
        [
            lambda net: WormholeSimulator(net, 2, seed=0),
            lambda net: CutThroughSimulator(net, 2, seed=0),
            lambda net: RestrictedWormholeSimulator(net, 2, seed=0),
            lambda net: StoreForwardSimulator(net, 1, seed=0),
        ],
        ids=["wormhole", "cut-through", "restricted", "store-forward"],
    )
    def test_contract(self, setup, factory):
        net, paths = setup
        L = 5
        res = factory(net).run(paths, message_length=L)
        assert res.all_delivered
        assert res.makespan >= L + 4 - 1  # physical floor
        assert (res.completion_times[res.delivered] >= 1).all()
        assert (res.blocked_steps >= 0).all()
        assert res.makespan == res.completion_times.max()
