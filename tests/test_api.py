"""Public-API surface tests: exports resolve and stay importable."""

import importlib

import pytest

SUBPACKAGES = [
    "repro",
    "repro.core",
    "repro.exec",
    "repro.network",
    "repro.routing",
    "repro.service",
    "repro.sim",
    "repro.analysis",
]


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_all_exports_resolve(module_name):
    mod = importlib.import_module(module_name)
    assert hasattr(mod, "__all__")
    for name in mod.__all__:
        assert hasattr(mod, name), f"{module_name}.{name} missing"


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_all_is_sorted(module_name):
    mod = importlib.import_module(module_name)
    assert list(mod.__all__) == sorted(mod.__all__), f"{module_name}.__all__ unsorted"


def test_version():
    import repro

    assert repro.__version__.count(".") == 2


def test_public_items_have_docstrings():
    import repro

    undocumented = [
        name
        for name in repro.__all__
        if getattr(repro, name).__doc__ in (None, "")
    ]
    assert undocumented == []
