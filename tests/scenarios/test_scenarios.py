"""The adversarial scenario library: registry, runs, and integration."""

import pytest

from repro.facade import simulate
from repro.network.graph import NetworkError
from repro.scenarios import SCENARIOS, get_scenario, register_scenario
from repro.sim.sweep import WORKLOADS, TrialSpec, _execute_trial


class TestRegistry:
    def test_builtin_scenarios_registered(self):
        assert {
            "lower-bound-gadget",
            "gadget-hotspot",
            "chain-contention",
            "hotspot-mesh",
            "layered-schedule",
            "ring-deadlock",
            "ring-dateline",
            "bursty-arrivals",
            "heavy-tail-arrivals",
        } <= set(SCENARIOS)

    def test_unknown_name_lists_registered(self):
        with pytest.raises(NetworkError, match="unknown scenario"):
            get_scenario("zzz")

    def test_trial_scenarios_become_sweep_workloads(self):
        for name, scen in SCENARIOS.items():
            if scen.kind in ("trial", "schedule"):
                assert f"scenario:{name}" in WORKLOADS
            else:
                assert f"scenario:{name}" not in WORKLOADS

    def test_register_rejects_unknown_kind(self):
        with pytest.raises(NetworkError, match="unknown scenario kind"):
            register_scenario(
                "x", family="f", theorem="t", kind="bogus"
            )

    def test_defaults_reflect_builder_signature(self):
        d = get_scenario("lower-bound-gadget").defaults()
        assert d["C"] == 8 and d["D"] == 15 and d["B"] == 1

    def test_undeclared_model_rejected(self):
        with pytest.raises(NetworkError, match="does not support model"):
            get_scenario("ring-deadlock").run(B=1, model="store_forward")


class TestRunsClean:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_default_run_satisfies_expectations(self, name):
        run = get_scenario(name).run()
        assert run.ok, [v.detail for v in run.violations]
        assert run.checked  # every scenario declares expectations

    def test_checked_labels_match_case_checks(self):
        run = get_scenario("chain-contention").run(B=2)
        assert run.checked == [label for label, _ in run.case.checks]


class TestGadgetLowerBound:
    @pytest.mark.parametrize("B", [1, 2, 4])
    def test_theorem_221_bound_reproduced(self, B):
        run = get_scenario("lower-bound-gadget").run(B=B)
        assert run.ok
        assert run.summary()["makespan"] >= run.case.info["lower_bound"]

    def test_bound_scales_inversely_with_B(self):
        bounds = {
            B: get_scenario("lower-bound-gadget")
            .build_case(B=B)
            .info["lower_bound"]
            for B in (1, 2)
        }
        assert bounds[1] > bounds[2]

    def test_hotspot_variant_inflates_M_and_holds(self):
        scen = get_scenario("gadget-hotspot")
        run = run_plain = scen.run(B=1)
        assert run.ok
        plain = get_scenario("lower-bound-gadget").build_case(B=1)
        assert run_plain.case.info["M"] > plain.info["M"]


class TestDeadlockFamily:
    @pytest.mark.parametrize(
        "B,expect", [(1, True), (2, True), (6, False), (8, False)]
    )
    def test_ring_deadlock_is_deterministic(self, B, expect):
        run = get_scenario("ring-deadlock").run(B=B)
        assert run.ok
        assert run.outcome.deadlocked is expect  # hops defaults to 6

    def test_dateline_restores_delivery_at_B2(self):
        run = get_scenario("ring-dateline").run(B=2)
        assert run.ok
        assert not run.outcome.deadlocked
        assert run.case.info["cdg_acyclic"] is True

    def test_dateline_at_B1_degrades_to_deadlock(self):
        run = get_scenario("ring-dateline").run(B=1)
        assert run.ok  # the B=1 case *expects* the deadlock
        assert run.outcome.deadlocked

    def test_hotspot_mesh_west_first_delivers(self):
        run = get_scenario("hotspot-mesh").run(B=2)
        assert run.ok and not run.outcome.deadlocked


class TestScheduleFamily:
    def test_schedule_model_meets_length_bound(self):
        run = get_scenario("layered-schedule").run(B=2, model="schedule")
        assert run.ok
        assert run.outcome["makespan"] <= run.outcome["length_bound"]

    def test_same_case_runs_greedy_models_too(self):
        run = get_scenario("layered-schedule").run(B=2, model="wormhole")
        assert run.ok
        assert run.outcome.all_delivered


class TestArrivalFamily:
    def test_bursty_trace_conserves_messages(self):
        run = get_scenario("bursty-arrivals").run(B=2)
        assert run.ok
        out = run.outcome
        assert out.generated == out.delivered + out.final_backlog

    def test_continuous_rejects_backend(self):
        with pytest.raises(NetworkError, match="in-process"):
            get_scenario("bursty-arrivals").run(B=1, backend="inline")

    def test_heavy_tail_trace_is_seeded_deterministic(self):
        a = get_scenario("heavy-tail-arrivals").run(B=1)
        b = get_scenario("heavy-tail-arrivals").run(B=1)
        assert a.outcome.generated == b.outcome.generated
        assert a.outcome.delivered == b.outcome.delivered


class TestIntegration:
    def test_facade_runs_scenario_workload_by_name(self):
        res = simulate(
            "scenario:chain-contention",
            model="wormhole",
            B=2,
            workload_params={"chains": 2, "depth": 5, "messages": 3},
        )
        assert res.all_delivered

    def test_sweep_trial_spec_executes_scenario_cell(self):
        spec = TrialSpec.make(
            "scenario:chain-contention",
            "wormhole",
            B=2,
            workload_params={"chains": 2, "depth": 5, "messages": 3},
        )
        metrics, _ = _execute_trial((spec, 0))
        assert metrics["delivered"] == metrics["messages"]

    def test_scenario_workload_riding_B_param(self):
        # Gadget instances must be built FOR the B they run at: the
        # builder's B travels as an ordinary workload parameter.
        spec = TrialSpec.make(
            "scenario:lower-bound-gadget",
            "wormhole",
            B=2,
            workload_params={"B": 2, "C": 6, "D": 7},
        )
        metrics, _ = _execute_trial((spec, 0))
        assert metrics["delivered"] == metrics["messages"]

    def test_loadgen_config_substitutes_scenario_workload(self):
        from repro.service import LoadgenConfig

        config = LoadgenConfig(
            scenario="chain-contention", requests=4, channels=(1, 2)
        )
        specs = config.specs()
        assert all(
            s.workload == "scenario:chain-contention" for s in specs
        )
        assert config.arrival_offsets() is None

    def test_loadgen_config_paces_arrival_scenario(self):
        from repro.service import LoadgenConfig

        config = LoadgenConfig(
            scenario="bursty-arrivals", requests=8, channels=(1,)
        )
        # Arrival-trace scenarios keep the synthetic workload...
        assert config.effective_workload() == config.workload
        offsets = config.arrival_offsets()
        # ...but pace requests along the cumulative rate trace.
        assert len(offsets) == 8
        assert offsets == sorted(offsets)
        assert offsets[-1] > offsets[0]

    def test_telemetry_probes_attach_to_scenario_runs(self):
        from repro.telemetry import standard_collectors

        probes = standard_collectors()
        run = get_scenario("chain-contention").run(B=2, telemetry=probes)
        assert run.ok
        assert any(getattr(p, "total_flits", 0) > 0 for p in probes)

    def test_run_summary_shapes(self):
        trial = get_scenario("chain-contention").run(B=1)
        assert set(trial.summary()) == {
            "makespan",
            "delivered",
            "blocked",
            "deadlocked",
        }
        sched = get_scenario("layered-schedule").run(B=1, model="schedule")
        assert "length_bound" in sched.summary()
        cont = get_scenario("bursty-arrivals").run(B=1)
        assert "backlog" in cont.summary()


class TestContinuousArrayRate:
    def test_scalar_and_constant_trace_bit_identical(self):
        import numpy as np

        from repro.network.random_networks import layered_network

        rng = np.random.default_rng(0)
        net = layered_network(4, 3, 2, rng)

        def path_of(source, prng):
            node = int(source)
            edges = []
            for _ in range(3):
                out = net.out_edges(node)
                e = out[int(prng.integers(len(out)))]
                edges.append(e)
                node = net.head(e)
            return edges

        kwargs = dict(
            model="continuous",
            B=2,
            message_length=4,
            seed=5,
            horizon=120,
        )
        a = simulate((net, 4, path_of), rate=0.2, **kwargs)
        b = simulate((net, 4, path_of), rate=np.full(120, 0.2), **kwargs)
        assert a.generated == b.generated
        assert a.delivered == b.delivered
        assert a.final_backlog == b.final_backlog
        assert a.mean_latency == b.mean_latency

    def test_bad_trace_shape_rejected(self):
        from repro.sim.continuous import ContinuousWormholeSimulator

        import numpy as np

        from repro.network.graph import Network

        net = Network()
        a, b = net.add_nodes("ab")
        net.add_edge(a, b)
        sim = ContinuousWormholeSimulator(net, 1)
        with pytest.raises(NetworkError, match="shape"):
            sim.run(np.full(5, 0.1), 4, lambda s, r: [0], horizon=10)

    def test_out_of_range_trace_rejected(self):
        import numpy as np

        from repro.network.graph import Network
        from repro.sim.continuous import ContinuousWormholeSimulator

        net = Network()
        a, b = net.add_nodes("ab")
        net.add_edge(a, b)
        sim = ContinuousWormholeSimulator(net, 1)
        with pytest.raises(NetworkError, match="rate"):
            sim.run(np.array([0.1] * 9 + [1.5]), 4, lambda s, r: [0], horizon=10)


class TestVcIdsFacade:
    def test_vc_ids_rejected_off_wormhole(self):
        case = get_scenario("ring-dateline").build_case(B=2)
        with pytest.raises(NetworkError, match="wormhole"):
            simulate(
                case.workload,
                model="store_forward",
                B=2,
                message_length=case.message_length,
                vc_ids=case.vc_ids,
            )

    def test_vc_ids_forwarded_to_wormhole(self):
        case = get_scenario("ring-dateline").build_case(B=2)
        res = simulate(
            case.workload,
            model="wormhole",
            B=2,
            message_length=case.message_length,
            priority="index",
            vc_ids=case.vc_ids,
        )
        assert res.all_delivered
