"""The fuzz driver: determinism, clean runs, sabotage, shrink, replay."""

import json

import pytest

from repro.fuzz import fuzzer as fz
from repro.fuzz.fuzzer import (
    FAMILIES,
    generate_case,
    replay_artifact,
    run_case,
    run_fuzz,
    shrink_case,
)
from repro.fuzz.invariants import Violation
from repro.network.graph import NetworkError


class TestGeneration:
    def test_same_seed_and_round_is_identical(self):
        a = generate_case(7, 3)
        b = generate_case(7, 3)
        assert a.family == b.family
        assert a.paths == b.paths
        assert a.message_length == b.message_length
        assert a.sim_seed == b.sim_seed

    def test_rounds_are_independent_of_each_other(self):
        # Spawned SeedSequences: round 5 is the same case whether or not
        # rounds 0..4 were ever generated.
        direct = generate_case(0, 5)
        after_others = [generate_case(0, i) for i in range(6)][5]
        assert direct.paths == after_others.paths
        assert direct.sim_seed == after_others.sim_seed

    def test_all_families_reachable(self):
        seen = {generate_case(0, i).family for i in range(60)}
        assert seen == set(FAMILIES)

    def test_family_restriction(self):
        for i in range(10):
            assert generate_case(3, i, ("ring",)).family == "ring"


class TestCleanRun:
    def test_fifty_rounds_hold_every_invariant(self, tmp_path):
        report = run_fuzz(50, seed=0, artifact_dir=str(tmp_path))
        assert report.ok, report.failures
        assert report.checks_run == 50
        assert sum(report.cases_by_family.values()) == 50
        assert list(tmp_path.iterdir()) == []  # no artifacts when clean

    def test_unknown_family_rejected(self, tmp_path):
        with pytest.raises(NetworkError, match="unknown fuzz families"):
            run_fuzz(1, seed=0, families=("bogus",), artifact_dir=str(tmp_path))


def _sabotage(monkeypatch, family="layered"):
    """Make every ``family`` case 'violate' a fabricated invariant.

    Patches the module-level check table (the documented seam), so no
    simulator is touched and the violation is a deterministic function
    of the case shape — exactly what the shrinker needs to chew on.
    """
    real = fz.CASE_CHECKERS[family]

    def checker(case, telemetry=None):
        out = list(real(case, telemetry=telemetry))
        if len(case.paths) >= 2 and case.message_length >= 2:
            out.append(
                Violation(
                    "sabotaged-dominance",
                    f"{len(case.paths)} paths at L={case.message_length}",
                    observed=len(case.paths),
                    bound=1,
                )
            )
        return out

    monkeypatch.setitem(fz.CASE_CHECKERS, family, checker)


class TestSabotage:
    def test_broken_invariant_is_caught_shrunk_and_replayable(
        self, monkeypatch, tmp_path
    ):
        _sabotage(monkeypatch)
        report = run_fuzz(
            10, seed=0, families=("layered",), artifact_dir=str(tmp_path)
        )
        assert not report.ok
        assert len(report.failures) == 10
        payload = report.failures[0]
        assert payload["violations"][0]["invariant"] == "sabotaged-dominance"
        # Shrunk to the boundary the sabotage predicate defines.
        assert len(payload["paths"]) == 2
        assert payload["message_length"] == 2
        # The artifact on disk replays to the same violation.
        path = report.artifact_paths[0]
        violations = replay_artifact(path)
        assert any(v.invariant == "sabotaged-dominance" for v in violations)

    def test_replay_is_clean_after_fix(self, monkeypatch, tmp_path):
        _sabotage(monkeypatch)
        report = run_fuzz(
            3, seed=1, families=("layered",), artifact_dir=str(tmp_path)
        )
        assert not report.ok
        path = report.artifact_paths[0]
        monkeypatch.undo()  # the "fix"
        assert replay_artifact(path) == []


class TestShrinking:
    def test_gadget_family_shrinks_length_only(self, monkeypatch):
        # Dropping hard-instance paths would invalidate the recomputed
        # bound, so the gadget shrinker may only reduce L.
        case = next(
            generate_case(0, i, ("gadget",)) for i in range(20)
        )
        original_paths = [list(p) for p in case.paths]

        def checker(c, telemetry=None):
            return [Violation("always", "x")]

        monkeypatch.setitem(fz.CASE_CHECKERS, "gadget", checker)
        shrunk = shrink_case(case, "always")
        assert shrunk.paths == original_paths
        assert shrunk.message_length == int(case.extra["dilation"]) + 1

    def test_shrink_preserves_the_violation(self, monkeypatch):
        case = generate_case(0, 0, ("chain",))

        def checker(c, telemetry=None):
            if len(c.paths) >= 3:
                return [Violation("needs-three", "x")]
            return []

        monkeypatch.setitem(fz.CASE_CHECKERS, "chain", checker)
        shrunk = shrink_case(case, "needs-three")
        assert len(shrunk.paths) == 3
        assert run_case(shrunk) != []


class TestArtifacts:
    def test_round_trip_rebuilds_identical_edge_ids(self):
        case = generate_case(2, 0, ("layered",))
        payload = fz.case_to_artifact(case, [], root_seed=2, round_index=0)
        rebuilt = fz.case_from_artifact(payload)
        assert rebuilt.network.num_nodes == case.network.num_nodes
        assert rebuilt.network.num_edges == case.network.num_edges
        for e in range(case.network.num_edges):
            assert rebuilt.network.tail(e) == case.network.tail(e)
            assert rebuilt.network.head(e) == case.network.head(e)
        assert rebuilt.paths == case.paths
        assert rebuilt.sim_seed == case.sim_seed

    def test_payload_is_json_safe(self):
        case = generate_case(2, 1, ("ring",))
        payload = fz.case_to_artifact(
            case,
            [Violation("x", "d", observed=1, bound=2)],
            root_seed=2,
            round_index=1,
        )
        json.dumps(payload)  # must not raise

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 99}))
        with pytest.raises(NetworkError, match="artifact version"):
            replay_artifact(str(path))


class TestTelemetry:
    def test_probes_see_fuzz_traffic(self, tmp_path):
        from repro.telemetry import standard_collectors

        probes = standard_collectors()
        report = run_fuzz(
            3,
            seed=0,
            families=("chain",),
            artifact_dir=str(tmp_path),
            telemetry=probes,
        )
        assert report.ok
        # The utilization collector observed the (last) fuzz run's flits.
        assert any(getattr(p, "total_flits", 0) > 0 for p in probes)
