"""Pin every fuzz oracle as a pure function.

Each checker gets (at least) one hand-built violating input that must be
flagged and one golden passing input that must not — so a fuzzing
failure can only ever mean a *simulator* regressed, never that an
oracle silently drifted.
"""

import numpy as np
import pytest

from repro.fuzz import invariants as inv
from repro.fuzz.invariants import Violation


class TestDelivery:
    def test_clean_run_short_delivery_flagged(self):
        v = inv.check_delivery(
            delivered=7, messages=8, deadlocked=False, hit_step_cap=False
        )
        assert v is not None and v.invariant == "delivery"
        assert v.observed == 7 and v.bound == 8

    def test_full_delivery_passes(self):
        assert (
            inv.check_delivery(
                delivered=8, messages=8, deadlocked=False, hit_step_cap=False
            )
            is None
        )

    def test_deadlocked_run_is_exempt(self):
        assert (
            inv.check_delivery(
                delivered=0, messages=8, deadlocked=True, hit_step_cap=False
            )
            is None
        )

    def test_step_capped_run_is_exempt(self):
        assert (
            inv.check_delivery(
                delivered=3, messages=8, deadlocked=False, hit_step_cap=True
            )
            is None
        )


class TestUnobstructed:
    def test_wormhole_bound_is_L_plus_d_minus_1(self):
        # d=5, L=8 -> no run can beat 12 flit steps.
        v = inv.check_unobstructed(
            11, message_length=8, path_lengths=[3, 5], B=2
        )
        assert v is not None and v.invariant == "unobstructed-time"
        assert v.bound == 12
        assert (
            inv.check_unobstructed(
                12, message_length=8, path_lengths=[3, 5], B=2
            )
            is None
        )

    def test_store_forward_bound_scales_with_bandwidth(self):
        # d=4, L=8, B=3 -> 4 * ceil(8/3) = 12.
        v = inv.check_unobstructed(
            11,
            message_length=8,
            path_lengths=[4],
            B=3,
            model="store_forward",
        )
        assert v is not None and v.bound == 12

    def test_release_times_shift_the_bound(self):
        v = inv.check_unobstructed(
            14,
            message_length=8,
            path_lengths=[3, 3],
            release_times=[0, 5],
        )
        assert v is not None and v.bound == 15  # 5 + 8 + 3 - 1

    def test_zero_length_paths_are_excluded(self):
        assert (
            inv.check_unobstructed(0, message_length=8, path_lengths=[0])
            is None
        )


class TestCongestionBound:
    def test_beating_ceil_LC_over_B_flagged(self):
        # L=8, C=5, B=2 -> ceil(40/2) = 20.
        v = inv.check_congestion_bound(
            19, message_length=8, congestion=5, B=2
        )
        assert v is not None and v.invariant == "congestion-bound"
        assert v.bound == 20

    def test_meeting_the_bound_passes(self):
        assert (
            inv.check_congestion_bound(
                20, message_length=8, congestion=5, B=2
            )
            is None
        )


class TestGadgetBound:
    def test_below_theorem_221_flagged(self):
        v = inv.check_gadget_bound(539, lower_bound=540.0)
        assert v is not None and v.invariant == "gadget-lower-bound"

    def test_at_bound_passes(self):
        assert inv.check_gadget_bound(540, lower_bound=540.0) is None


class TestScheduleBound:
    def test_overrunning_length_bound_flagged(self):
        v = inv.check_schedule_bound(67, length_bound=66)
        assert v is not None and v.invariant == "schedule-upper-bound"

    def test_meeting_length_bound_passes(self):
        assert inv.check_schedule_bound(66, length_bound=66) is None


class TestStoreForwardEnvelope:
    def test_blowing_the_envelope_flagged(self):
        # slack * L * (C+D) = 4 * 8 * 10 = 320.
        v = inv.check_store_forward_envelope(
            321, message_length=8, congestion=5, dilation=5
        )
        assert v is not None and v.invariant == "store-forward-envelope"

    def test_within_envelope_passes(self):
        assert (
            inv.check_store_forward_envelope(
                320, message_length=8, congestion=5, dilation=5
            )
            is None
        )


class TestBMonotonicity:
    def test_rise_with_B_flagged_per_pair(self):
        out = inv.check_b_monotonicity({1: 100, 2: 110, 4: 90})
        assert len(out) == 1
        assert out[0].invariant == "b-monotonicity"
        assert out[0].observed == 110 and out[0].bound == 100

    def test_monotone_decrease_passes(self):
        assert inv.check_b_monotonicity({1: 100, 2: 80, 4: 80}) == []

    def test_empty_and_singleton_pass(self):
        assert inv.check_b_monotonicity({}) == []
        assert inv.check_b_monotonicity({2: 50}) == []


class TestFullVsRestricted:
    def test_full_slower_than_restricted_flagged(self):
        v = inv.check_full_vs_restricted(101, 100, B=2, congestion=6)
        assert v is not None and v.invariant == "full-vs-restricted"

    def test_full_at_most_restricted_passes(self):
        assert (
            inv.check_full_vs_restricted(100, 100, B=2, congestion=6) is None
        )


class TestDeadlockConsistency:
    def test_deadlock_under_acyclic_cdg_flagged(self):
        v = inv.check_deadlock_consistency(True, cdg_acyclic=True)
        assert v is not None and v.invariant == "deadlock-freedom"

    def test_deadlock_under_cyclic_cdg_permitted(self):
        assert inv.check_deadlock_consistency(True, cdg_acyclic=False) is None

    def test_no_deadlock_always_passes(self):
        assert inv.check_deadlock_consistency(False, cdg_acyclic=True) is None


class TestBatchMatchesSerial:
    def test_identical_metrics_pass(self):
        m = [{"makespan": 10, "digest": "aa"}, {"makespan": 11, "digest": "bb"}]
        assert inv.check_batch_matches_serial(m, [dict(x) for x in m]) is None

    def test_divergent_trial_flagged_with_keys(self):
        batch = [{"makespan": 10, "digest": "aa"}]
        serial = [{"makespan": 12, "digest": "aa"}]
        v = inv.check_batch_matches_serial(batch, serial)
        assert v is not None and v.invariant == "batch-serial-exactness"
        assert "makespan" in v.detail and "digest" not in v.detail

    def test_count_mismatch_flagged(self):
        v = inv.check_batch_matches_serial([{}], [{}, {}])
        assert v is not None and "count" in v.detail


class TestConservation:
    def test_leaked_message_flagged(self):
        v = inv.check_conservation(generated=10, delivered=7, backlog=2)
        assert v is not None and v.invariant == "message-conservation"

    def test_balanced_books_pass(self):
        assert (
            inv.check_conservation(generated=10, delivered=7, backlog=3)
            is None
        )


class TestViolationSerialization:
    def test_to_json_is_numpy_safe(self):
        v = Violation(
            "x", "numpy numbers", observed=np.int64(3), bound=np.float64(4.5)
        )
        payload = v.to_json()
        assert payload == {
            "invariant": "x",
            "detail": "numpy numbers",
            "observed": 3,
            "bound": 4.5,
        }
        assert type(payload["observed"]) is int
        assert type(payload["bound"]) is float

    def test_frozen(self):
        v = Violation("x", "d")
        with pytest.raises(AttributeError):
            v.detail = "other"


class TestEstimateEnvelope:
    def test_inside_envelope_passes(self):
        assert inv.check_estimate_envelope(10, lower=5, upper=20) is None
        assert inv.check_estimate_envelope(5, lower=5, upper=20) is None
        assert inv.check_estimate_envelope(20, lower=5, upper=20) is None

    def test_below_lower_violates(self):
        v = inv.check_estimate_envelope(4, lower=5, upper=20, model="wormhole")
        assert v is not None and v.invariant == "estimate-envelope"
        assert v.observed == 4 and v.bound == 5
        assert "lower" in v.detail

    def test_above_upper_violates(self):
        v = inv.check_estimate_envelope(21, lower=5, upper=20)
        assert v is not None and v.observed == 21 and v.bound == 20
        assert "upper" in v.detail

    def test_none_sides_are_unchecked(self):
        # Adaptive: no lower bound — only the upper side can fire.
        assert inv.check_estimate_envelope(0, lower=None, upper=20) is None
        v = inv.check_estimate_envelope(21, lower=None, upper=20)
        assert v is not None
        assert inv.check_estimate_envelope(10**9, lower=5, upper=None) is None
