"""Shared fixtures for the repro test suite."""

import numpy as np
import pytest

from repro.network.butterfly import Butterfly
from repro.network.graph import Network
from repro.network.random_networks import layered_network, random_walk_paths
from repro.routing.paths import paths_from_node_walks


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_line():
    """A 5-node directed line a->b->c->d->e."""
    net = Network(name="line5")
    nodes = net.add_nodes(["a", "b", "c", "d", "e"])
    for u, v in zip(nodes[:-1], nodes[1:]):
        net.add_edge(u, v)
    return net


@pytest.fixture
def butterfly8():
    return Butterfly(8)


@pytest.fixture
def layered_workload(rng):
    """A modest layered network with 60 random-walk paths."""
    net = layered_network(width=8, depth=6, out_degree=2, rng=rng)
    walks = random_walk_paths(net, 8, 6, 60, rng)
    return net, paths_from_node_walks(net, walks)
