"""End-to-end service tests: golden equivalence, backpressure, draining.

These exercise a real :class:`SimulationService` on an ephemeral port
inside ``asyncio.run`` (no event-loop plugin needed).  The headline
test is the golden-equivalence run: a concurrent load generator whose
every response must be bit-identical to a serial
:class:`~repro.sim.wormhole.WormholeSimulator` replay, while the
server's stats endpoint reports mean batch occupancy > 1 — i.e. the
dynamic batcher really coalesced concurrent requests and really did
not change a single answer.
"""

import asyncio
import contextlib

import pytest

from repro.service import (
    STATUS_EXPIRED,
    STATUS_OK,
    STATUS_REJECTED,
    LoadgenConfig,
    ServiceClient,
    ServiceConfig,
    SimulationService,
    run_loadgen,
)
from repro.sim.sweep import TrialSpec, _execute_trial

WORKLOAD_PARAMS = {"chains": 2, "depth": 4, "messages": 3}


def _spec(B=2, repeat=0):
    return TrialSpec.make(
        "chain-bundle",
        "wormhole",
        B=B,
        workload_params=WORKLOAD_PARAMS,
        message_length=8,
        repeat=repeat,
    )


def run_async(coro, timeout=60):
    return asyncio.run(asyncio.wait_for(coro, timeout))


@contextlib.asynccontextmanager
async def service(**overrides):
    """A live service on an ephemeral port; drains cleanly on exit."""
    overrides.setdefault("port", 0)
    svc = SimulationService(ServiceConfig(**overrides))
    task = asyncio.create_task(svc.run())
    await svc.started.wait()
    try:
        yield svc
    finally:
        svc.request_shutdown()
        await task


async def _wait_for_depth(svc, depth):
    """Poll until ``depth`` requests are queued (event-loop friendly)."""
    while len(svc.queue) < depth:
        await asyncio.sleep(0.005)


def test_golden_equivalence_under_concurrent_load():
    """Concurrent loadgen: batched answers bit-identical to serial runs.

    Pins the acceptance criterion: at concurrency 8 the stats endpoint
    must report mean batch occupancy > 1 while every response matches a
    local serial replay byte for byte.
    """

    async def drive():
        async with service(max_wait_ms=60.0, max_batch=32) as svc:
            config = LoadgenConfig(
                workload="chain-bundle",
                workload_params=WORKLOAD_PARAMS,
                channels=(1, 2, 4),
                message_length=8,
                requests=24,
                concurrency=8,
                root_seed=3,
                verify=True,
            )
            return await run_loadgen("127.0.0.1", svc.port, config)

    report = run_async(drive(), timeout=120)
    assert report["statuses"] == {STATUS_OK: 24}
    assert report["ok"] == 24
    assert report["verified"] == 24
    assert report["mismatches"] == []
    assert report["bit_exact"] is True
    batches = report["server"]["batches"]
    assert batches["mean_occupancy"] > 1
    assert batches["total"] == 24  # every request rode exactly one batch
    assert report["client_mean_batch"] > 1
    assert report["server"]["counters"]["completed"] == 24
    assert report["server"]["counters"]["errors"] == 0


def test_batch_composition_never_changes_answers():
    """The same spec served solo and in a crowd yields identical metrics."""

    async def drive():
        spec = _spec(B=2)
        async with service(max_wait_ms=50.0) as svc:
            # Solo: the only request, batch of one.
            async with await ServiceClient.connect("127.0.0.1", svc.port) as c:
                solo = await c.run_trial(spec, root_seed=11)
            # Crowded: same spec sharing a batch with six neighbours.
            clients = [
                await ServiceClient.connect("127.0.0.1", svc.port)
                for _ in range(7)
            ]
            try:
                specs = [spec] + [_spec(B=b, repeat=r) for b, r in
                                  [(1, 0), (4, 0), (2, 1), (1, 1), (4, 1), (2, 2)]]
                crowd = await asyncio.gather(*(
                    c.run_trial(s, root_seed=11)
                    for c, s in zip(clients, specs)
                ))
            finally:
                for c in clients:
                    await c.close()
        return solo, crowd

    solo, crowd = run_async(drive())
    assert solo["status"] == STATUS_OK and crowd[0]["status"] == STATUS_OK
    assert crowd[0]["batched"] > 1  # really shared a lockstep batch
    assert crowd[0]["metrics"] == solo["metrics"]
    serial, _ = _execute_trial((_spec(B=2), 11))
    assert solo["metrics"] == serial


def test_deadline_expiry_cancels_before_compute():
    async def drive():
        async with service(max_wait_ms=30.0) as svc:
            async with await ServiceClient.connect("127.0.0.1", svc.port) as c:
                # deadline_ms=0 expires the instant the batch launches.
                doomed = await c.run_trial(_spec(), deadline_ms=0)
                # The connection stays usable; a later request succeeds.
                fine = await c.run_trial(_spec(repeat=1))
            stats = svc._stats_snapshot()
        return doomed, fine, stats

    doomed, fine, stats = run_async(drive())
    assert doomed["status"] == STATUS_EXPIRED
    assert doomed["waited_ms"] >= 0
    assert "deadline" in doomed["error"]
    assert fine["status"] == STATUS_OK
    assert stats["counters"]["deadline_expired"] == 1
    assert stats["counters"]["completed"] == 1


def test_queue_full_returns_structured_reject():
    """With a depth-1 queue, a second concurrent request must bounce.

    A queued request counts against the limit for the whole coalescing
    window (max_batch=2 keeps the window open), so the second admission
    finds the queue full and gets the 429-style reject with a
    retry-after hint — it is never silently queued or dropped.
    """

    async def drive():
        async with service(
            queue_limit=1, max_batch=2, max_wait_ms=1500.0
        ) as svc:
            c1 = await ServiceClient.connect("127.0.0.1", svc.port)
            c2 = await ServiceClient.connect("127.0.0.1", svc.port)
            try:
                first = asyncio.create_task(c1.run_trial(_spec()))
                await _wait_for_depth(svc, 1)
                bounced = await c2.run_trial(_spec(repeat=1))
                first_resp = await first
            finally:
                await c1.close()
                await c2.close()
            stats = svc._stats_snapshot()
        return bounced, first_resp, stats

    bounced, first_resp, stats = run_async(drive())
    assert bounced["status"] == STATUS_REJECTED
    assert bounced["error"] == "queue full"
    assert bounced["retry_after_ms"] >= 1
    # The occupant of the queue was served normally, untouched.
    assert first_resp["status"] == STATUS_OK
    assert stats["counters"]["rejected_queue_full"] == 1
    assert stats["counters"]["completed"] == 1


def test_shutdown_drains_all_admitted_requests():
    """Drain discipline: everything admitted is answered, nothing after.

    Six requests sit in an open coalescing window (the max-wait is far
    longer than the test); a ``shutdown`` op must (a) flush them all
    with ``ok`` responses, (b) reject a subsequent ``run`` as
    ``draining``, and (c) let the server task finish cleanly.
    """

    async def drive():
        svc = SimulationService(
            ServiceConfig(port=0, max_wait_ms=60_000.0, max_batch=32)
        )
        server_task = asyncio.create_task(svc.run())
        await svc.started.wait()
        clients = [
            await ServiceClient.connect("127.0.0.1", svc.port)
            for _ in range(6)
        ]
        control = await ServiceClient.connect("127.0.0.1", svc.port)
        try:
            pending = [
                asyncio.create_task(c.run_trial(_spec(B=1 + i % 3, repeat=i)))
                for i, c in enumerate(clients)
            ]
            await _wait_for_depth(svc, 6)
            ack = await control.shutdown()
            # Same control connection, handled strictly after the
            # shutdown op: the run must bounce as draining.
            late = await control.run_trial(_spec(repeat=99))
            responses = await asyncio.gather(*pending)
        finally:
            for c in [*clients, control]:
                await c.close()
        await asyncio.wait_for(server_task, 30)
        return ack, late, responses, svc

    ack, late, responses, svc = run_async(drive())
    assert ack["status"] == "ok" and ack["draining"] is True
    assert late["status"] == STATUS_REJECTED
    assert late["error"] == "draining"
    assert late["retry_after_ms"] >= 1
    assert [r["status"] for r in responses] == [STATUS_OK] * 6
    # The drain flushed everything in one batch, skipping the window.
    assert all(r["batched"] == 6 for r in responses)
    assert svc.stats.counters["completed"] == 6
    assert svc.stats.counters["rejected_draining"] == 1
    assert len(svc.queue) == 0 and svc.batcher.in_flight == 0


def test_health_stats_and_protocol_errors():
    async def drive():
        async with service() as svc:
            async with await ServiceClient.connect("127.0.0.1", svc.port) as c:
                health = await c.health()
                await c.run_trial(_spec())
                stats = await c.stats()
                garbage = await c.request({"op": "transmogrify", "id": "x"})
                raw = await c.request({"op": "run", "id": "bad", "spec": {}})
        return health, stats, garbage, raw

    health, stats, garbage, raw = run_async(drive())
    assert health["status"] == "ok" and health["protocol"] == 1
    assert health["queue_depth"] == 0
    assert stats["counters"]["completed"] == 1
    assert stats["batches"]["count"] == 1
    assert stats["latency_ms"]["count"] == 1
    assert stats["queue"]["limit"] == ServiceConfig().queue_limit
    assert garbage["status"] == "error" and "unknown op" in garbage["error"]
    assert raw["status"] == "error" and "workload" in raw["error"]


def test_non_wormhole_trials_served_via_per_trial_path():
    async def drive():
        spec = TrialSpec.make(
            "chain-bundle",
            "store_forward",
            B=2,
            workload_params=WORKLOAD_PARAMS,
            message_length=8,
        )
        async with service(max_wait_ms=20.0) as svc:
            async with await ServiceClient.connect("127.0.0.1", svc.port) as c:
                resp = await c.run_trial(spec, root_seed=5)
        serial, _ = _execute_trial((spec, 5))
        return resp, serial

    resp, serial = run_async(drive())
    assert resp["status"] == STATUS_OK
    assert resp["metrics"] == serial


@pytest.mark.parametrize("field, value", [("max_batch", 0), ("max_wait_ms", -1)])
def test_bad_policy_rejected(field, value):
    with pytest.raises(ValueError, match=field):
        ServiceConfig(**{field: value}).policy()


def test_unknown_protocol_version_gets_structured_reject():
    """A ``v`` the server does not speak bounces without touching the op."""

    async def drive():
        async with service() as svc:
            async with await ServiceClient.connect("127.0.0.1", svc.port) as c:
                bad = await c.request(
                    {"op": "run", "id": "vfuture", "v": 99}
                )
                # The connection survives; a current-version op still works.
                health = await c.health()
            stats = svc._stats_snapshot()
        return bad, health, stats

    bad, health, stats = run_async(drive())
    assert bad["status"] == "error"
    assert bad["id"] == "vfuture"
    assert bad["supported_versions"] == [1]
    assert "unsupported protocol version" in bad["error"]
    assert health["status"] == "ok"
    assert stats["counters"]["protocol_errors"] == 1
    assert stats["counters"]["completed"] == 0


def test_responses_carry_protocol_version():
    async def drive():
        async with service(max_wait_ms=10.0) as svc:
            async with await ServiceClient.connect("127.0.0.1", svc.port) as c:
                ok = await c.run_trial(_spec())
                health = await c.health()
        return ok, health

    ok, health = run_async(drive())
    assert ok["v"] == 1
    assert health["v"] == 1


class TestProcessBackendService:
    """The service on the fault-tolerant process backend.

    Answers must stay bit-identical to serial replays, and killing a
    worker mid-service must cost retries — never dropped requests or
    changed metrics.
    """

    def test_process_backend_bit_exact(self):
        async def drive():
            async with service(
                backend="process", workers=2, max_wait_ms=40.0
            ) as svc:
                config = LoadgenConfig(
                    workload="chain-bundle",
                    workload_params=WORKLOAD_PARAMS,
                    channels=(1, 2),
                    message_length=8,
                    requests=8,
                    concurrency=4,
                    root_seed=9,
                    verify=True,
                )
                report = await run_loadgen("127.0.0.1", svc.port, config)
                health = svc._health()
            return report, health

        report, health = run_async(drive(), timeout=120)
        assert report["bit_exact"] is True
        assert report["ok"] == 8
        assert health["backend"] == "process"
        assert health["backend_mode"] == "process"

    def test_worker_kill_recovers_without_dropping_requests(self):
        import os
        import signal

        async def drive():
            async with service(
                backend="process", workers=2, max_wait_ms=10.0
            ) as svc:
                async with await ServiceClient.connect(
                    "127.0.0.1", svc.port
                ) as c:
                    before = await c.run_trial(_spec(), root_seed=13)
                    os.kill(svc.backend.worker_pids()[0], signal.SIGKILL)
                    # Every request after the murder still gets served.
                    after = [
                        await c.run_trial(_spec(repeat=r), root_seed=13)
                        for r in range(3)
                    ]
                    stats = await c.stats()
                    health = await c.health()
            return before, after, stats, health

        before, after, stats, health = run_async(drive(), timeout=120)
        assert before["status"] == STATUS_OK
        assert [r["status"] for r in after] == [STATUS_OK] * 3
        # Bit-exactness survives the crash: replay each spec serially.
        serial, _ = _execute_trial((_spec(repeat=0), 13))
        assert after[0]["metrics"] == serial
        assert stats["exec"]["worker_restarts"] >= 1
        assert health["worker_restarts"] >= 1
        assert health["backend_mode"] == "process"  # never degraded
        assert stats["counters"]["errors"] == 0
