"""End-to-end ``mode="estimate"`` through a live service.

Pins the estimate tier's service contract: estimates never touch the
DynamicBatcher (the batch histogram stays empty), repeated estimates
are bit-stable, the estimator screens infeasible deadlines *before*
queuing, and an unknown mode draws the structured error that lists the
supported modes.
"""

import asyncio
import contextlib

import pytest

from repro.analysis.estimate import estimate_spec
from repro.service import (
    STATUS_OK,
    STATUS_REJECTED,
    LoadgenConfig,
    ServiceClient,
    ServiceConfig,
    SimulationService,
    run_loadgen,
)
from repro.sim.sweep import TrialSpec

WORKLOAD_PARAMS = {"chains": 2, "depth": 4, "messages": 3}


def _spec(B=2, simulator="wormhole"):
    return TrialSpec.make(
        "chain-bundle",
        simulator,
        B=B,
        workload_params=WORKLOAD_PARAMS,
        message_length=8,
    )


def run_async(coro, timeout=60):
    return asyncio.run(asyncio.wait_for(coro, timeout))


@contextlib.asynccontextmanager
async def service(**overrides):
    overrides.setdefault("port", 0)
    svc = SimulationService(ServiceConfig(**overrides))
    task = asyncio.create_task(svc.run())
    await svc.started.wait()
    try:
        yield svc
    finally:
        svc.request_shutdown()
        await task


def test_estimate_bypasses_batcher_and_is_bit_stable():
    async def drive():
        async with service() as svc:
            async with await ServiceClient.connect("127.0.0.1", svc.port) as c:
                spec = _spec()
                first = await c.run_trial(spec, mode="estimate")
                assert first["status"] == STATUS_OK
                assert first["mode"] == "estimate"
                assert first["batched"] == 0
                # Bit-stable: repeats and the local estimator agree exactly.
                again = await c.run_trial(spec, mode="estimate", req_id="r2")
                assert again["metrics"] == first["metrics"]
                assert first["metrics"] == estimate_spec(spec).to_metrics()
                # The envelope fields are the wire payload.
                m = first["metrics"]
                assert m["makespan_lower"] <= m["makespan_upper"]
                stats = await c.stats()
        assert stats["counters"]["estimated"] == 2
        # No estimate ever entered the batcher.
        assert stats["batches"]["count"] == 0
        return stats

    run_async(drive())


def test_exact_and_estimate_interleave():
    async def drive():
        async with service() as svc:
            async with await ServiceClient.connect("127.0.0.1", svc.port) as c:
                spec = _spec()
                exact = await c.run_trial(spec)
                est = await c.run_trial(spec, mode="estimate", req_id="e")
                assert exact["status"] == est["status"] == STATUS_OK
                assert "mode" not in exact  # exact is the unmarked default
                lower = est["metrics"]["makespan_lower"]
                upper = est["metrics"]["makespan_upper"]
                assert lower <= exact["metrics"]["makespan"] <= upper

    run_async(drive())


def test_unknown_mode_lists_supported_modes():
    async def drive():
        async with service() as svc:
            async with await ServiceClient.connect("127.0.0.1", svc.port) as c:
                resp = await c.run_trial(_spec(), mode="turbo")
                assert resp["status"] == "error"
                assert "unknown mode 'turbo'" in resp["error"]
                assert resp["supported_modes"] == ["exact", "estimate"]

    run_async(drive())


def test_infeasible_deadline_rejected_before_queuing():
    async def drive():
        async with service(step_cost_ms=1.0) as svc:
            async with await ServiceClient.connect("127.0.0.1", svc.port) as c:
                spec = _spec()
                floor = estimate_spec(spec).lower
                # A deadline below the analytic floor is rejected with
                # the minimum feasible deadline as the retry hint...
                resp = await c.run_trial(spec, deadline_ms=float(floor) / 2)
                assert resp["status"] == STATUS_REJECTED
                assert resp["error"] == "infeasible_deadline"
                assert resp["retry_after_ms"] >= float(floor)
                # ...while a generous deadline passes the screen.
                ok = await c.run_trial(spec, deadline_ms=60_000.0, req_id="ok")
                assert ok["status"] == STATUS_OK
                stats = await c.stats()
        assert stats["counters"]["rejected_infeasible"] == 1
        assert stats["counters"]["completed"] == 1

    run_async(drive())


def test_screen_off_without_step_cost():
    async def drive():
        async with service() as svc:  # step_cost_ms defaults to None
            async with await ServiceClient.connect("127.0.0.1", svc.port) as c:
                resp = await c.run_trial(_spec(), deadline_ms=60_000.0)
                assert resp["status"] == STATUS_OK

    run_async(drive())


def test_estimate_loadgen_verifies_against_local_estimator():
    async def drive():
        async with service() as svc:
            config = LoadgenConfig(
                workload="chain-bundle",
                workload_params=WORKLOAD_PARAMS,
                simulators=("wormhole", "store_forward"),
                lengths=(8,),
                channels=(1, 2),
                requests=12,
                concurrency=4,
                mode="estimate",
            )
            report = await run_loadgen("127.0.0.1", svc.port, config)
        assert report["ok"] == 12
        assert report["verified"] == 12
        assert report["bit_exact"] is True
        assert report["config"]["mode"] == "estimate"
        assert report["client_mean_batch"] == 0.0
        assert report["server"]["counters"]["estimated"] == 12

    run_async(drive())
