"""Client-side failure attribution: structured errors, timeouts, and
the multi-key loadgen spec stream."""

import asyncio

import pytest

from repro.service import (
    LoadgenConfig,
    ServiceClient,
    ServiceConnectionError,
    ServiceTimeoutError,
)

WORKLOAD_PARAMS = {"chains": 2, "depth": 4, "messages": 3}


def run_async(coro, timeout=30):
    return asyncio.run(asyncio.wait_for(coro, timeout))


async def _fake_server(handler):
    """An asyncio server running ``handler``; returns (server, port)."""
    server = await asyncio.start_server(handler, "127.0.0.1", 0)
    return server, server.sockets[0].getsockname()[1]


def test_timeout_raises_structured_timeout_error():
    """A server that accepts but never answers trips ``timeout_s`` with
    a :class:`ServiceTimeoutError` naming peer, op, and request id."""

    async def drive():
        async def black_hole(reader, writer):
            await reader.readline()  # swallow the request, answer nothing

        server, port = await _fake_server(black_hole)
        try:
            async with await ServiceClient.connect("127.0.0.1", port) as c:
                with pytest.raises(ServiceTimeoutError) as exc_info:
                    await c.request(
                        {"op": "health", "id": "t1"}, timeout_s=0.05
                    )
        finally:
            server.close()
            await server.wait_closed()
        return exc_info.value

    err = run_async(drive())
    assert err.op == "health" and err.req_id == "t1"
    assert err.timeout_s == pytest.approx(0.05)
    assert "health" in str(err) and "t1" in str(err)
    # The timeout is a *kind of* connection failure: one except clause
    # catches both on the retry path.
    assert isinstance(err, ServiceConnectionError)
    assert isinstance(err, ConnectionError)


def test_server_closing_mid_request_raises_attributable_error():
    async def drive():
        async def slammer(reader, writer):
            await reader.readline()
            writer.close()  # EOF instead of a response line

        server, port = await _fake_server(slammer)
        try:
            async with await ServiceClient.connect("127.0.0.1", port) as c:
                with pytest.raises(ServiceConnectionError) as exc_info:
                    await c.run_trial(
                        {
                            "workload": "chain-bundle",
                            "workload_params": WORKLOAD_PARAMS,
                        },
                        req_id="r7",
                    )
        finally:
            server.close()
            await server.wait_closed()
        return exc_info.value

    err = run_async(drive())
    assert err.op == "run" and err.req_id == "r7"
    assert err.peer.startswith("127.0.0.1:")
    assert "closed the connection" in str(err)


def test_no_timeout_means_unbounded_wait():
    """``timeout_s=None`` preserves the old blocking contract."""

    async def drive():
        async def slow_echo(reader, writer):
            await reader.readline()
            await asyncio.sleep(0.1)
            writer.write(b'{"status": "ok", "id": "s"}\n')
            await writer.drain()

        server, port = await _fake_server(slow_echo)
        try:
            async with await ServiceClient.connect("127.0.0.1", port) as c:
                return await c.request({"op": "health", "id": "s"})
        finally:
            server.close()
            await server.wait_closed()

    assert run_async(drive())["status"] == "ok"


# ----------------------------------------------------------------------
# Multi-key loadgen spec stream
# ----------------------------------------------------------------------


def test_default_spec_stream_is_unchanged():
    """Without simulators/lengths the classic ordering holds: channels
    cycle fastest, the repeat counter advances."""
    config = LoadgenConfig(
        workload_params=WORKLOAD_PARAMS,
        channels=(1, 2),
        message_length=8,
        requests=6,
    )
    specs = config.specs()
    assert [(s.B, s.repeat) for s in specs] == [
        (1, 0), (2, 0), (1, 1), (2, 1), (1, 2), (2, 2),
    ]
    assert {s.simulator for s in specs} == {"wormhole"}


def test_multi_key_stream_cycles_pairs_between_channels_and_repeats():
    config = LoadgenConfig(
        workload_params=WORKLOAD_PARAMS,
        channels=(1, 2),
        simulators=("wormhole", "cut_through"),
        lengths=(8, 16),
        requests=16,
    )
    specs = config.specs()
    # 2 channels x 4 (sim, length) pairs = 8 unique cells per repeat.
    assert [(s.simulator, s.message_length, s.B) for s in specs[:8]] == [
        ("wormhole", 8, 1), ("wormhole", 8, 2),
        ("wormhole", 16, 1), ("wormhole", 16, 2),
        ("cut_through", 8, 1), ("cut_through", 8, 2),
        ("cut_through", 16, 1), ("cut_through", 16, 2),
    ]
    assert [s.repeat for s in specs[:8]] == [0] * 8
    assert [s.repeat for s in specs[8:]] == [1] * 8
    # Every spec is unique: nothing silently collapses to a cache hit.
    assert len({(s.simulator, s.message_length, s.B, s.repeat)
                for s in specs}) == 16
