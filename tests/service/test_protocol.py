"""Wire-format tests for :mod:`repro.service.protocol`."""

import pytest

from repro.service.protocol import (
    MODE_ESTIMATE,
    MODE_EXACT,
    PROTOCOL_VERSION,
    RUN_MODES,
    RunRequest,
    RunResponse,
    UnknownModeError,
    unknown_mode_response,
)
from repro.service.protocol import (
    STATUS_ERROR,
    STATUS_EXPIRED,
    STATUS_OK,
    STATUS_REJECTED,
    ProtocolError,
    UnsupportedVersionError,
    check_version,
    decode_message,
    encode_message,
    error_response,
    expired_response,
    ok_response,
    parse_run_request,
    reject_response,
    unsupported_version_response,
)
from repro.sim.sweep import TrialSpec


def _run_msg(**overrides):
    msg = {
        "op": "run",
        "id": "r1",
        "spec": {
            "workload": "chain-bundle",
            "simulator": "wormhole",
            "B": 2,
            "workload_params": {"chains": 2, "depth": 5, "messages": 3},
            "message_length": 8,
            "repeat": 1,
        },
        "root_seed": 7,
    }
    msg.update(overrides)
    return msg


class TestFraming:
    def test_roundtrip(self):
        msg = {"op": "health", "id": "x", "n": 3}
        line = encode_message(msg)
        assert line.endswith(b"\n") and line.count(b"\n") == 1
        assert decode_message(line) == msg

    def test_rejects_non_json(self):
        with pytest.raises(ProtocolError, match="JSON"):
            decode_message(b"{nope\n")

    def test_rejects_empty_line(self):
        with pytest.raises(ProtocolError, match="empty"):
            decode_message(b"\n")

    def test_rejects_non_object(self):
        with pytest.raises(ProtocolError, match="object"):
            decode_message(b"[1, 2]\n")

    def test_rejects_bad_utf8(self):
        with pytest.raises(ProtocolError, match="UTF-8"):
            decode_message(b"\xff\xfe\n")

    def test_version_constant(self):
        assert PROTOCOL_VERSION == 1


class TestParseRunRequest:
    def test_valid_request_builds_the_sweep_spec(self):
        req = parse_run_request(_run_msg())
        expected = TrialSpec.make(
            "chain-bundle",
            "wormhole",
            B=2,
            workload_params={"chains": 2, "depth": 5, "messages": 3},
            message_length=8,
            repeat=1,
        )
        assert req.spec == expected
        assert req.id == "r1" and req.root_seed == 7
        assert req.deadline_ms is None

    def test_deadline_parsed(self):
        req = parse_run_request(_run_msg(deadline_ms=250))
        assert req.deadline_ms == 250.0

    @pytest.mark.parametrize(
        "mutate, match",
        [
            ({"spec": None}, "'spec'"),
            ({"spec": {"workload": "zzz"}}, "unknown workload"),
            (
                {"spec": {"workload": "chain-bundle", "simulator": "zzz"}},
                "unknown simulator",
            ),
            (
                {"spec": {"workload": "chain-bundle", "mystery": 1}},
                "unknown spec fields",
            ),
            (
                {"spec": {"workload": "chain-bundle", "B": 0}},
                "invalid spec",
            ),
            (
                {
                    "spec": {
                        "workload": "chain-bundle",
                        "workload_params": {"depth": [1]},
                    }
                },
                "invalid spec",
            ),
            ({"root_seed": "seven"}, "root_seed"),
            ({"root_seed": True}, "root_seed"),
            ({"deadline_ms": -1}, "deadline_ms"),
            ({"deadline_ms": "soon"}, "deadline_ms"),
            ({"id": 42}, "'id'"),
        ],
    )
    def test_malformed_requests(self, mutate, match):
        with pytest.raises(ProtocolError, match=match):
            parse_run_request(_run_msg(**mutate))


class TestResponses:
    def test_ok_response(self):
        resp = ok_response("a", {"makespan": 3}, batched=4, queue_ms=1.5)
        assert resp["status"] == STATUS_OK
        assert resp["batched"] == 4 and resp["queue_ms"] == 1.5
        decode_message(encode_message(resp))  # JSON-safe

    def test_reject_response_carries_retry_after(self):
        resp = reject_response("a", "queue full", retry_after_ms=123.4)
        assert resp["status"] == STATUS_REJECTED
        assert resp["retry_after_ms"] == 123
        assert reject_response("a", "x", retry_after_ms=0)["retry_after_ms"] >= 1

    def test_expired_and_error_responses(self):
        assert expired_response("a", waited_ms=9.0)["status"] == STATUS_EXPIRED
        err = error_response(None, "boom")
        assert err["status"] == STATUS_ERROR and err["id"] == ""

    @pytest.mark.parametrize(
        "build",
        [
            lambda: ok_response("a", {"makespan": 3}, batched=1, queue_ms=0.0),
            lambda: reject_response("a", "queue full", retry_after_ms=5),
            lambda: expired_response("a", waited_ms=1.0),
            lambda: error_response("a", "boom"),
        ],
    )
    def test_every_response_is_versioned(self, build):
        assert build()["v"] == PROTOCOL_VERSION


class TestVersioning:
    def test_missing_v_means_version_one(self):
        # Pre-versioning clients never sent ``v``; they stay compatible.
        assert check_version({"op": "health"}) == 1

    def test_current_version_accepted(self):
        assert check_version({"op": "run", "v": PROTOCOL_VERSION}) == 1

    @pytest.mark.parametrize("bad", [0, 2, 99, "1", None])
    def test_unknown_version_raises(self, bad):
        with pytest.raises(UnsupportedVersionError, match="unsupported"):
            check_version({"op": "run", "v": bad})
        try:
            check_version({"v": bad})
        except UnsupportedVersionError as exc:
            assert exc.got == bad

    def test_structured_reject_names_supported_versions(self):
        resp = unsupported_version_response("r9", 42)
        assert resp["status"] == STATUS_ERROR
        assert resp["id"] == "r9"
        assert resp["supported_versions"] == [PROTOCOL_VERSION]
        assert "42" in resp["error"]
        decode_message(encode_message(resp))  # JSON-safe


class TestModes:
    def test_mode_defaults_to_exact(self):
        req = parse_run_request(_run_msg())
        assert req.mode == MODE_EXACT

    def test_mode_estimate_parsed(self):
        req = parse_run_request(_run_msg(mode="estimate"))
        assert req.mode == MODE_ESTIMATE
        assert req.timeout_s is None

    def test_unknown_mode_is_structured(self):
        with pytest.raises(UnknownModeError) as exc_info:
            parse_run_request(_run_msg(mode="turbo"))
        assert exc_info.value.got == "turbo"
        resp = unknown_mode_response("r1", "turbo")
        assert resp["status"] == STATUS_ERROR
        assert resp["supported_modes"] == list(RUN_MODES)
        assert "turbo" in resp["error"]
        decode_message(encode_message(resp))  # JSON-safe

    def test_run_request_round_trips_through_the_wire(self):
        spec = TrialSpec.make(
            "chain-bundle",
            "wormhole",
            B=2,
            workload_params={"chains": 2, "depth": 5, "messages": 3},
            message_length=8,
            repeat=1,
        )
        req = RunRequest(
            id="r7",
            spec=spec,
            root_seed=9,
            deadline_ms=125.0,
            mode=MODE_ESTIMATE,
            timeout_s=2.5,
        )
        wire = req.to_wire()
        assert wire["op"] == "run" and wire["v"] == PROTOCOL_VERSION
        parsed = parse_run_request(decode_message(encode_message(wire)))
        assert parsed.spec == spec
        assert parsed.id == "r7" and parsed.root_seed == 9
        assert parsed.deadline_ms == 125.0
        assert parsed.mode == MODE_ESTIMATE
        assert parsed.timeout_s == 2.5

    def test_to_wire_omits_unset_optionals(self):
        spec = TrialSpec.make("chain-bundle", "wormhole", B=1)
        wire = RunRequest(id="a", spec=spec, root_seed=0).to_wire()
        assert "deadline_ms" not in wire and "timeout_s" not in wire
        assert wire["mode"] == MODE_EXACT

    def test_ok_response_marks_estimates_only(self):
        exact = ok_response("a", {"makespan": 3}, batched=1, queue_ms=0.0)
        assert "mode" not in exact
        est = ok_response(
            "a", {"makespan_upper": 9}, batched=0, queue_ms=0.0,
            mode=MODE_ESTIMATE,
        )
        assert est["mode"] == MODE_ESTIMATE

    def test_run_response_round_trip(self):
        wire = ok_response(
            "a", {"makespan_upper": 9}, batched=0, queue_ms=0.5,
            mode=MODE_ESTIMATE,
        )
        resp = RunResponse.from_wire(wire)
        assert resp.ok and resp.mode == MODE_ESTIMATE
        assert resp.metrics == {"makespan_upper": 9}
        assert resp.to_wire()["status"] == STATUS_OK
        rej = RunResponse.from_wire(
            reject_response("a", "queue full", retry_after_ms=5)
        )
        assert not rej.ok and rej.retry_after_ms == 5
