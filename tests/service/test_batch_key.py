"""The batch-compatibility key is defined once and shared everywhere.

``repro.sim.batch.batch_compat_key`` owns the definition of "these
trials may share a lockstep batch".  Both consumers — the offline sweep
packer and the online service batcher — must use that exact function,
so the two can never drift apart on what is batchable.
"""

from repro.sim import batch, sweep
from repro.sim.sweep import TrialSpec
from repro.service import batcher as service_batcher
from repro.service.batcher import DynamicBatcher


def _spec(**overrides):
    kwargs = dict(
        workload="chain-bundle",
        simulator="wormhole",
        B=2,
        workload_params={"chains": 2, "depth": 4, "messages": 3},
        message_length=8,
        repeat=0,
    )
    kwargs.update(overrides)
    return TrialSpec.make(**kwargs)


def test_sweep_uses_the_shared_helper():
    assert sweep._batch_key is batch.batch_compat_key


def test_service_uses_the_shared_helper():
    assert service_batcher.batch_compat_key is batch.batch_compat_key
    spec = _spec()
    assert DynamicBatcher.compat_key(spec) == batch.batch_compat_key(spec)


def test_key_ignores_B_and_repeat_but_not_workload():
    base = batch.batch_compat_key(_spec())
    # B and repeat vary within a batch (per-trial vectors / fresh seeds).
    assert batch.batch_compat_key(_spec(B=4)) == base
    assert batch.batch_compat_key(_spec(repeat=3)) == base
    # Anything shaping the shared lockstep state splits the batch.
    assert batch.batch_compat_key(_spec(message_length=16)) != base
    assert (
        batch.batch_compat_key(
            _spec(workload_params={"chains": 3, "depth": 4, "messages": 3})
        )
        != base
    )
    assert batch.batch_compat_key(_spec(simulator="store_forward")) != base
    assert (
        batch.batch_compat_key(_spec(sim_params={"priority": "index"})) != base
    )
