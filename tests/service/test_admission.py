"""Unit tests for the bounded admission queue (backpressure layer)."""

import asyncio

import pytest

from repro.service.admission import AdmissionQueue, PendingRequest, QueueFullError


def _pending(key=("k",), enqueued_at=0.0, expires_at=None):
    return PendingRequest(
        request=None,
        key=key,
        batchable=True,
        enqueued_at=enqueued_at,
        expires_at=expires_at,
        future=None,
    )


def test_limit_must_be_positive():
    with pytest.raises(ValueError, match="limit"):
        AdmissionQueue(0)


def test_admit_until_full_then_structured_reject():
    async def drive():
        q = AdmissionQueue(2, default_service_ms=40.0)
        q.admit(_pending())
        q.admit(_pending())
        assert len(q) == 2 and q.full
        with pytest.raises(QueueFullError) as exc_info:
            q.admit(_pending())
        # Drain estimate: depth (2) x EWMA service time (40 ms).
        assert exc_info.value.retry_after_ms == pytest.approx(80.0)
        assert "retry after" in str(exc_info.value)
        assert len(q) == 2  # the rejected request was never queued

    asyncio.run(drive())


def test_retry_hint_tracks_ewma_service_time():
    async def drive():
        q = AdmissionQueue(8, default_service_ms=50.0, ewma_alpha=0.5)
        q.admit(_pending())
        assert q.retry_after_ms() == pytest.approx(50.0)
        # One batch of 4 requests took 0.8 s -> 200 ms/request observed;
        # EWMA with alpha=0.5 moves 50 -> 125.
        q.note_service_time(0.8, requests=4)
        assert q.retry_after_ms() == pytest.approx(125.0)
        q.note_service_time(0.0, requests=0)  # no-op guard
        assert q.retry_after_ms() == pytest.approx(125.0)

    asyncio.run(drive())


def test_retry_hint_floor_is_one_ms():
    async def drive():
        q = AdmissionQueue(4, default_service_ms=0.0)
        assert q.retry_after_ms() >= 1.0

    asyncio.run(drive())


def test_take_compatible_is_fifo_and_keeps_others_in_place():
    async def drive():
        q = AdmissionQueue(16)
        a1, b1, a2, b2, a3 = (
            _pending(key=("a",)),
            _pending(key=("b",)),
            _pending(key=("a",)),
            _pending(key=("b",)),
            _pending(key=("a",)),
        )
        for p in (a1, b1, a2, b2, a3):
            q.admit(p)
        assert q.peek() is a1
        assert q.count_compatible(("a",)) == 3
        assert q.count_compatible(("b",)) == 2

        taken = q.take_compatible(("a",), max_batch=2)
        assert taken == [a1, a2]  # FIFO among matches, capped at max_batch
        # Non-matching requests kept their relative order; the surplus
        # "a" rides a later batch.
        assert q.peek() is b1
        assert q.take_compatible(("b",), max_batch=8) == [b1, b2]
        assert q.take_compatible(("a",), max_batch=8) == [a3]
        assert len(q) == 0

    asyncio.run(drive())


def test_wait_arrival_wakes_on_admit_and_on_kick():
    async def drive():
        q = AdmissionQueue(4)

        async def admit_later():
            await asyncio.sleep(0.01)
            q.admit(_pending())

        task = asyncio.create_task(admit_later())
        await asyncio.wait_for(q.wait_arrival(), 5)
        await task
        assert len(q) == 1

        # kick() unblocks a waiter even with no arrival (drain path).
        async def kick_later():
            await asyncio.sleep(0.01)
            q.kick()

        q.take_compatible(("k",), 8)
        task = asyncio.create_task(kick_later())
        await asyncio.wait_for(q.wait_arrival(), 5)
        await task

        # With items queued and no timeout, wait_arrival returns at once.
        q.admit(_pending())
        await asyncio.wait_for(q.wait_arrival(), 5)

    asyncio.run(drive())


def test_expiry_predicate():
    p = _pending(expires_at=10.0)
    assert not p.expired(9.9)
    assert p.expired(10.0)
    assert not _pending(expires_at=None).expired(1e9)
