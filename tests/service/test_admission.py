"""Unit tests for the bounded admission queue (backpressure layer)."""

import asyncio

import pytest

from repro.service.admission import AdmissionQueue, PendingRequest, QueueFullError


def _pending(key=("k",), enqueued_at=0.0, expires_at=None):
    return PendingRequest(
        request=None,
        key=key,
        batchable=True,
        enqueued_at=enqueued_at,
        expires_at=expires_at,
        future=None,
    )


def test_limit_must_be_positive():
    with pytest.raises(ValueError, match="limit"):
        AdmissionQueue(0)


def test_admit_until_full_then_structured_reject():
    async def drive():
        q = AdmissionQueue(2, default_service_ms=40.0)
        q.admit(_pending())
        q.admit(_pending())
        assert len(q) == 2 and q.full
        with pytest.raises(QueueFullError) as exc_info:
            q.admit(_pending())
        # Drain estimate: depth (2) x EWMA service time (40 ms).
        assert exc_info.value.retry_after_ms == pytest.approx(80.0)
        assert "retry after" in str(exc_info.value)
        assert len(q) == 2  # the rejected request was never queued

    asyncio.run(drive())


def test_retry_hint_tracks_ewma_service_time():
    async def drive():
        q = AdmissionQueue(8, default_service_ms=50.0, ewma_alpha=0.5)
        q.admit(_pending())
        assert q.retry_after_ms() == pytest.approx(50.0)
        # One batch of 4 requests took 0.8 s -> 200 ms/request observed;
        # EWMA with alpha=0.5 moves 50 -> 125.
        q.note_service_time(0.8, requests=4)
        assert q.retry_after_ms() == pytest.approx(125.0)
        q.note_service_time(0.0, requests=0)  # no-op guard
        assert q.retry_after_ms() == pytest.approx(125.0)

    asyncio.run(drive())


def test_retry_hint_floor_is_one_ms():
    async def drive():
        q = AdmissionQueue(4, default_service_ms=0.0)
        assert q.retry_after_ms() >= 1.0

    asyncio.run(drive())


def test_take_compatible_is_fifo_and_keeps_others_in_place():
    async def drive():
        q = AdmissionQueue(16)
        a1, b1, a2, b2, a3 = (
            _pending(key=("a",)),
            _pending(key=("b",)),
            _pending(key=("a",)),
            _pending(key=("b",)),
            _pending(key=("a",)),
        )
        for p in (a1, b1, a2, b2, a3):
            q.admit(p)
        assert q.peek() is a1
        assert q.count_compatible(("a",)) == 3
        assert q.count_compatible(("b",)) == 2

        taken = q.take_compatible(("a",), max_batch=2)
        assert taken == [a1, a2]  # FIFO among matches, capped at max_batch
        # Non-matching requests kept their relative order; the surplus
        # "a" rides a later batch.
        assert q.peek() is b1
        assert q.take_compatible(("b",), max_batch=8) == [b1, b2]
        assert q.take_compatible(("a",), max_batch=8) == [a3]
        assert len(q) == 0

    asyncio.run(drive())


def test_wait_arrival_wakes_on_admit_and_on_kick():
    async def drive():
        q = AdmissionQueue(4)

        async def admit_later():
            await asyncio.sleep(0.01)
            q.admit(_pending())

        task = asyncio.create_task(admit_later())
        await asyncio.wait_for(q.wait_arrival(), 5)
        await task
        assert len(q) == 1

        # kick() unblocks a waiter even with no arrival (drain path).
        async def kick_later():
            await asyncio.sleep(0.01)
            q.kick()

        q.take_compatible(("k",), 8)
        task = asyncio.create_task(kick_later())
        await asyncio.wait_for(q.wait_arrival(), 5)
        await task

        # With items queued and no timeout, wait_arrival returns at once.
        q.admit(_pending())
        await asyncio.wait_for(q.wait_arrival(), 5)

    asyncio.run(drive())


def test_ewma_tracks_bursty_arrivals_and_recovers():
    """The retry hint follows a burst up and decays back afterwards.

    A burst of slow batches must push ``retry_after_ms`` monotonically
    toward the burst's per-request cost (never past it), and a quiet
    period of fast batches must walk it back down — so the hint is
    load-*following*, not pinned to the configured default.
    """

    async def drive():
        q = AdmissionQueue(64, default_service_ms=50.0, ewma_alpha=0.2)
        q.admit(_pending())  # depth 1: retry hint == EWMA directly

        # Burst: 12 batches, each 4 requests in 1.6 s -> 400 ms/request.
        burst_hints = []
        for _ in range(12):
            q.note_service_time(1.6, requests=4)
            burst_hints.append(q.retry_after_ms())
        assert burst_hints == sorted(burst_hints)  # monotone rise
        assert burst_hints[0] > 50.0
        assert burst_hints[-1] <= 400.0
        # alpha=0.2 over 12 observations closes >90% of the 50->400 gap.
        assert burst_hints[-1] == pytest.approx(
            400.0 - (400.0 - 50.0) * 0.8**12
        )

        # Recovery: fast 5 ms/request batches pull the estimate down.
        recovery_hints = []
        for _ in range(12):
            q.note_service_time(0.02, requests=4)
            recovery_hints.append(q.retry_after_ms())
        assert recovery_hints == sorted(recovery_hints, reverse=True)
        assert recovery_hints[-1] < burst_hints[0]
        assert recovery_hints[-1] >= 5.0  # never undershoots the rate

        # The hint scales with backlog depth at the current estimate.
        per_request = q.retry_after_ms()
        for _ in range(3):
            q.admit(_pending())
        assert q.retry_after_ms() == pytest.approx(4 * per_request)

    asyncio.run(drive())


def test_take_compatible_stays_fair_when_two_keys_interleave():
    """Alternating dispatch over interleaved keys starves neither.

    With a/b arrivals interleaved and ``max_batch`` below each key's
    backlog, alternating takes must (a) serve each key strictly FIFO,
    (b) leave the other key's backlog intact and ordered, and (c) keep
    the queue head honest — after a take, the oldest *remaining*
    request is at the front regardless of key.
    """

    async def drive():
        q = AdmissionQueue(32)
        arrivals = []
        for i in range(6):  # a0 b0 a1 b1 ... a5 b5
            a = _pending(key=("a",), enqueued_at=float(i))
            b = _pending(key=("b",), enqueued_at=float(i) + 0.5)
            arrivals += [a, b]
            q.admit(a)
            q.admit(b)
        a_stream = [p for p in arrivals if p.key == ("a",)]
        b_stream = [p for p in arrivals if p.key == ("b",)]

        served_a, served_b = [], []
        while len(q):
            took_a = q.take_compatible(("a",), max_batch=2)
            served_a += took_a
            if len(q):
                # Head-of-line honesty: the front is now the oldest
                # remaining request (a "b" until that stream drains).
                expected_head = (b_stream + a_stream)[
                    len(served_b) if len(served_b) < len(b_stream) else -1
                ]
                if len(served_b) < len(b_stream):
                    assert q.peek() is expected_head
            served_b += q.take_compatible(("b",), max_batch=2)

        # Strict FIFO within each key, full service for both.
        assert served_a == a_stream
        assert served_b == b_stream
        # Batches were capped, so service really alternated: neither
        # key was drained in one take while the other waited.
        assert len(served_a) == len(served_b) == 6

    asyncio.run(drive())


def test_expiry_predicate():
    p = _pending(expires_at=10.0)
    assert not p.expired(9.9)
    assert p.expired(10.0)
    assert not _pending(expires_at=None).expired(1e9)
