"""A deliberately naive per-flit wormhole reference simulator.

This implements the Section 1.1 model with *explicit flit state* — one
position per flit, edge occupancy computed by inspecting where flits
actually are — and none of the optimized simulator's derived arithmetic
(move counters, release windows).  It is slow and first-principles; the
test suite checks the optimized :class:`repro.sim.wormhole
.WormholeSimulator` produces *identical* completion times under the same
deterministic arbitration, pinning the lock-step reduction and the
buffer-holding windows documented in MODEL.md.

Per-flit state: ``-1`` waiting at the source; ``i`` in ``[0, D-1)`` = in
the buffer at the head of path edge ``i``; ``DONE`` delivered.  Crossing
the final edge delivers immediately (the buffer at its head is the
destination's delivery buffer).

Rules applied each step — worm lock-step *emerges*, it is not assumed:

* a message occupies edge ``e_i`` iff some flit has crossed ``e_i`` and
  some flit has not yet crossed ``e_{i+1}`` (crossing ``e_D`` meaning
  delivered) — its virtual channel/buffer on ``e_i`` is still in use;
* the header (leading undelivered flit) may cross its next edge iff
  fewer than ``B`` messages occupy that edge at the start of the step
  (same-step grants count; lowest message index wins — matching the
  optimized simulator's ``priority="index"``);
* a trailing flit may advance into exactly the buffer slot its
  predecessor vacates in the same step (intra-message same-step
  handover; cross-message handover needs a fresh grant next step);
* only the header may cross the final edge (one flit per virtual
  channel per step; trailing flits become the header as their
  predecessors deliver).
"""

from __future__ import annotations

import numpy as np

__all__ = ["reference_run", "DONE"]

DONE = 1 << 30


def _advance(p: int, d: int) -> int:
    """Next position of a flit at ``p`` on a ``d``-edge path."""
    nxt = p + 1
    return nxt if nxt <= d - 2 else DONE


def reference_run(paths, L, B, release_times=None, max_steps=100_000):
    """Simulate; returns per-message completion times (-1 undelivered).

    ``paths``: per-message edge-id lists.  Arbitration: lowest message
    index first (the optimized simulator's ``priority="index"``).
    """
    M = len(paths)
    D = [len(p) for p in paths]
    release = (
        [0] * M if release_times is None else [int(r) for r in release_times]
    )
    pos = [[-1] * L for _ in range(M)]
    completion = [-1] * M
    for m in range(M):
        if D[m] == 0:
            completion[m] = release[m]
            pos[m] = [DONE] * L

    def crossed(p: int, i: int) -> bool:
        return p == DONE or p >= i

    def occupies(snapshot, m: int, e: int) -> bool:
        for i, edge in enumerate(paths[m]):
            if edge != e:
                continue
            some_crossed = any(crossed(p, i) for p in snapshot[m])
            if i + 1 >= D[m]:
                some_not_past = any(p != DONE for p in snapshot[m])
            else:
                some_not_past = any(not crossed(p, i + 1) for p in snapshot[m])
            return some_crossed and some_not_past
        return False

    all_edges = sorted({e for p in paths for e in p})

    for t in range(1, max_steps + 1):
        if all(c >= 0 for c in completion):
            break
        snapshot = [row[:] for row in pos]
        occupants = {
            e: {m for m in range(M) if occupies(snapshot, m, e)}
            for e in all_edges
        }
        granted = []
        for m in range(M):
            if completion[m] >= 0 or release[m] >= t:
                continue
            h = next(j for j in range(L) if snapshot[m][j] != DONE)
            crossing_edge = paths[m][snapshot[m][h] + 1]
            # A message already holding a virtual channel on the edge
            # (its earlier flits crossed it — the final-edge case) needs
            # no new grant; otherwise it contends for a free slot.
            if m in occupants[crossing_edge] or len(occupants[crossing_edge]) < B:
                occupants[crossing_edge].add(m)
                granted.append(m)

        for m in granted:
            h = next(j for j in range(L) if snapshot[m][j] != DONE)
            prev_vacated = snapshot[m][h]
            pos[m][h] = _advance(snapshot[m][h], D[m])
            for j in range(h + 1, L):
                target = _advance(snapshot[m][j], D[m])
                if target == DONE:  # only the header crosses the final edge
                    break
                if prev_vacated != target:  # not chained to a vacated slot
                    break
                prev_vacated = snapshot[m][j]
                pos[m][j] = target
            if all(p == DONE for p in pos[m]):
                completion[m] = t
    return np.asarray(completion, dtype=np.int64)
