"""Unit tests for ASCII rendering and simulator tracing."""

import numpy as np
import pytest

from repro.analysis.render import render_butterfly, render_route, render_spacetime
from repro.network.butterfly import Butterfly
from repro.network.random_networks import chain_bundle
from repro.routing.paths import paths_from_node_walks
from repro.sim.wormhole import WormholeSimulator
from repro.telemetry import TraceSnapshotCollector


class TestRenderButterfly:
    def test_mentions_all_nodes(self):
        bf = Butterfly(4)
        art = render_butterfly(bf)
        for w in range(4):
            for lvl in range(3):
                assert f"({w},{lvl})" in art

    def test_mentions_cross_bits(self):
        art = render_butterfly(Butterfly(8))
        assert "w ^ 1" in art and "w ^ 2" in art and "w ^ 4" in art


class TestRenderRoute:
    def test_hop_table(self):
        bf = Butterfly(8)
        edges = bf.path_edges(5, 2)
        art = render_route(bf, edges)
        lines = art.splitlines()
        assert len(lines) == 1 + 3
        assert "cross" in art  # 5 -> 2 must cross somewhere
        assert "straight" in art or art.count("cross") == 3


class TestTraceAndSpacetime:
    @pytest.fixture
    def traced_run(self):
        net, walks = chain_bundle(1, 3, 2)
        paths = paths_from_node_walks(net, walks)
        sim = WormholeSimulator(net, 1, priority="index")
        snapshot = TraceSnapshotCollector()
        res = sim.run(paths, message_length=4, telemetry=[snapshot])
        return paths, res, snapshot.matrix

    def test_trace_shape(self, traced_run):
        paths, res, trace = traced_run
        assert trace.shape == (res.steps_executed, 2)
        # Move counts never decrease.
        assert (np.diff(trace, axis=0) >= 0).all()

    def test_trace_absent_by_default(self):
        net, walks = chain_bundle(1, 2, 1)
        paths = paths_from_node_walks(net, walks)
        res = WormholeSimulator(net, 1).run(paths, message_length=2)
        assert "trace" not in res.extra

    def test_spacetime_rendering(self, traced_run):
        paths, res, trace = traced_run
        art = render_spacetime(trace, [3, 3], message_length=4)
        lines = art.splitlines()
        assert len(lines) == res.steps_executed + 1
        # The winning worm ends delivered; the loser too by the end.
        assert lines[-1].count("*") == 2
        # The blocked worm shows '-' while waiting in its injection buffer.
        assert "-" in art

    def test_spacetime_truncation(self, traced_run):
        paths, res, trace = traced_run
        art = render_spacetime(trace, [3, 3], message_length=4, max_rows=2)
        assert "more steps" in art

    def test_spacetime_validation(self):
        with pytest.raises(ValueError):
            render_spacetime(np.zeros(3), [1], 1)
        with pytest.raises(ValueError):
            render_spacetime(np.zeros((2, 3)), [1], 1)
