"""The analytic delay-envelope estimator (``repro.analysis.estimate``).

Three layers of pinning:

* hand-computed formula checks per model (the arithmetic itself);
* the envelope *property* — ``lower <= simulated makespan <= upper``
  for every clean run — on the full E5 comparison grid and on 50
  seeded fuzz cases across all estimable models;
* the wire/metric contract: ``to_metrics`` is JSON-safe, deterministic,
  and bit-stable across calls (what lets services answer estimates
  from any replica).
"""

import json
import math

import numpy as np
import pytest

from repro.analysis.estimate import (
    ESTIMATABLE_MODELS,
    DelayEnvelope,
    EstimateError,
    estimate_paths,
    estimate_spec,
    estimate_workload,
)
from repro.sim.sweep import TrialSpec, _build_workload, run_sweep, sweep_grid

# ----------------------------------------------------------------------
# Formula checks (hand-computed)
# ----------------------------------------------------------------------


def test_wormhole_formulas():
    # Three worms over a shared edge: d = [3, 3, 2], C = 3, L = 8, B = 2.
    env = estimate_paths(
        "wormhole", message_length=8, B=2, path_lengths=[3, 3, 2], congestion=3
    )
    # Unobstructed floors: L + d - 1 = [10, 10, 9].
    assert env.per_message_lower == (10, 10, 9)
    # Occupancy term ceil(L*C/B) = 12 beats the floor max 10.
    assert env.lower == 12
    # Progress budget: sum(L + d - 1) = 29.
    assert env.upper == 29
    assert env.dilation == 3 and env.total_path_length == 8
    assert env.tightness == pytest.approx(29 / 12)


def test_cut_through_and_restricted_ignore_B_in_occupancy():
    # One flit per physical edge per step regardless of B.
    for model in ("cut_through", "restricted"):
        e1 = estimate_paths(
            model, message_length=6, B=1, path_lengths=[4, 4], congestion=2
        )
        e4 = estimate_paths(
            model, message_length=6, B=4, path_lengths=[4, 4], congestion=2
        )
        assert e1.lower == e4.lower == 6 * 2  # L * C
        assert e1.upper == e4.upper == 6 * 8  # L * sum(d)


def test_store_forward_formulas():
    env = estimate_paths(
        "store_forward", message_length=7, B=2, path_lengths=[5, 3], congestion=2
    )
    hop = math.ceil(7 / 2)
    assert env.per_message_lower == (5 * hop, 3 * hop)
    assert env.lower == max(5 * hop, 2 * hop)
    assert env.upper == 8 * hop  # sum(d) message steps of ceil(L/B)


def test_adaptive_upper_only():
    env = estimate_paths("adaptive", message_length=5, B=2, path_lengths=[4, 2])
    assert env.lower is None
    assert env.congestion is None
    assert env.tightness is None
    assert env.upper == (5 + 4 - 1) + (5 + 2 - 1)
    assert env.check(env.upper) and not env.check(env.upper + 1)


def test_release_times_shift_both_sides():
    base = estimate_paths(
        "wormhole", message_length=4, B=1, path_lengths=[3, 3], congestion=1
    )
    late = estimate_paths(
        "wormhole",
        message_length=4,
        B=1,
        path_lengths=[3, 3],
        congestion=1,
        release_times=[0, 10],
    )
    assert late.per_message_lower == (6, 16)
    assert late.lower == 16
    assert late.upper == base.upper + 10  # max_release shifts the budget
    assert late.max_release == 10


def test_zero_length_paths_are_free():
    # Source == destination: delivered at release, no network time.
    env = estimate_paths(
        "wormhole", message_length=9, B=1, path_lengths=[0, 0, 2], congestion=1
    )
    assert env.per_message_lower == (0, 0, 10)
    assert env.upper == 10  # only the active path consumes budget


def test_empty_workload():
    env = estimate_paths(
        "wormhole", message_length=4, B=1, path_lengths=[], congestion=0
    )
    assert env.lower == 0 and env.upper == 0 and env.messages == 0
    assert env.check(0)


def test_validation_errors():
    with pytest.raises(EstimateError, match="no analytic envelope"):
        estimate_paths("schedule", message_length=4, B=1, path_lengths=[1])
    with pytest.raises(EstimateError, match="message_length"):
        estimate_paths("wormhole", message_length=0, B=1, path_lengths=[1])
    with pytest.raises(EstimateError, match="B must"):
        estimate_paths("wormhole", message_length=4, B=0, path_lengths=[1])
    with pytest.raises(EstimateError, match="congestion"):
        estimate_paths("wormhole", message_length=4, B=1, path_lengths=[1])
    with pytest.raises(EstimateError, match="release_times"):
        estimate_paths(
            "wormhole",
            message_length=4,
            B=1,
            path_lengths=[1, 2],
            congestion=1,
            release_times=[0],
        )


# ----------------------------------------------------------------------
# Workload / spec plumbing
# ----------------------------------------------------------------------


def test_estimate_workload_matches_route_stats():
    from repro.routing.paths import congestion as path_congestion
    from repro.routing.paths import dilation as path_dilation

    wl = _build_workload(
        "chain-bundle", (("chains", 3), ("depth", 5), ("messages", 4))
    )
    env = estimate_workload(wl, "wormhole", B=2)
    assert env.message_length == wl.default_length
    assert env.congestion == path_congestion(wl.paths)
    assert env.dilation == path_dilation(wl.paths)
    assert env.messages == len(wl.paths)


def test_estimate_workload_plain_edge_lists():
    # butterfly-bitrev stores plain edge-id lists, not Path objects.
    wl = _build_workload("butterfly-bitrev", (("n", 8),))
    env = estimate_workload(wl, "cut_through", B=2)
    assert env.messages == len(wl.paths)
    assert env.dilation == max(len(p) for p in wl.paths)


def test_estimate_spec_deterministic_and_seed_blind():
    a = TrialSpec.make("chain-bundle", "wormhole", B=2, message_length=8)
    b = TrialSpec.make(
        "chain-bundle", "wormhole", B=2, message_length=8, repeat=3
    )
    ma, mb = estimate_spec(a).to_metrics(), estimate_spec(b).to_metrics()
    assert ma == mb  # repeats / seeds never move the bounds
    assert ma == estimate_spec(a).to_metrics()  # bit-stable across calls
    json.dumps(ma)  # JSON-safe for the wire


def test_estimate_spec_rejects_schedule():
    spec = TrialSpec.make("chain-bundle", "schedule", B=1)
    with pytest.raises(EstimateError):
        estimate_spec(spec)


def test_to_metrics_digest_tracks_per_message_floors():
    e1 = estimate_paths(
        "wormhole", message_length=4, B=1, path_lengths=[2, 3], congestion=1
    )
    e2 = estimate_paths(
        "wormhole", message_length=4, B=1, path_lengths=[3, 2], congestion=1
    )
    m1, m2 = e1.to_metrics(), e2.to_metrics()
    assert m1["delay_lower_digest"] != m2["delay_lower_digest"]
    assert m1["makespan_upper"] == m2["makespan_upper"]


# ----------------------------------------------------------------------
# The envelope property
# ----------------------------------------------------------------------


def test_envelope_holds_on_e5_grid():
    """lower <= simulated makespan <= upper on the full E5 sweep grid."""
    specs = sweep_grid(
        "chain-bundle",
        ["wormhole", "cut_through", "store_forward", "restricted"],
        (1, 2, 4),
        workload_params={"chains": 4, "depth": 12, "messages": 8},
        sim_params={"seed": 0},
        message_length=24,
    )
    for trial in run_sweep(specs):
        env = estimate_spec(trial.spec)
        makespan = trial.metrics["makespan"]
        assert env.lower <= makespan <= env.upper, (
            f"{trial.spec.label()}: {env.lower} <= {makespan} <= {env.upper}"
        )


def test_envelope_holds_on_fuzz_cases():
    """50 seeded fuzz rounds: every clean run sits inside its envelope.

    Draws the same reproducible cases as ``repro fuzz`` (layered /
    chain / gadget / ring families) and checks all four fixed-route
    models at the case's lowest channel count, plus the adaptive model
    on a derived permutation mesh — the property the fuzzer's
    ``estimate-envelope`` oracle then watches continuously.
    """
    from repro.facade import simulate
    from repro.fuzz.fuzzer import generate_case
    from repro.network.mesh import KAryNCube

    checked = 0
    for i in range(50):
        case = generate_case(11, i)
        if case.family == "continuous":
            continue
        B = case.channels[0]
        lengths = [len(p) for p in case.paths]
        loads = {}
        for p in case.paths:
            for e in p:
                loads[e] = loads.get(e, 0) + 1
        C = max(loads.values(), default=0)
        for model in ("wormhole", "cut_through", "store_forward", "restricted"):
            res = simulate(
                (case.network, case.paths),
                model=model,
                B=B,
                message_length=case.message_length,
                seed=case.sim_seed,
                max_steps=200_000,
            )
            if res.deadlocked or res.hit_step_cap:
                continue
            env = estimate_paths(
                model,
                message_length=case.message_length,
                B=B,
                path_lengths=lengths,
                congestion=C,
            )
            assert env.check(int(res.makespan)), (
                f"round {i} {case.family} {model} B={B}: "
                f"{env.lower} <= {res.makespan} <= {env.upper}"
            )
            checked += 1
        # Adaptive: upper bound only, on a mesh permutation.
        cube = KAryNCube(4, 2, wrap=False)
        perm = np.random.default_rng(case.sim_seed).permutation(cube.num_nodes)
        demands = [(s, int(d)) for s, d in enumerate(perm) if s != int(d)]
        L = min(case.message_length, 6)
        res = simulate(
            (cube, demands), model="adaptive", B=B, message_length=L,
            seed=case.sim_seed, max_steps=200_000,
        )
        if not (res.deadlocked or res.hit_step_cap):
            from repro.analysis.estimate import _cube_distances

            env = estimate_paths(
                "adaptive",
                message_length=L,
                B=B,
                path_lengths=_cube_distances(cube, demands),
            )
            assert env.check(int(res.makespan))
            checked += 1
    assert checked > 100  # the sweep really exercised the property


def test_estimatable_models_cover_batched_kernels():
    from repro.sim.batch import BATCHED_MODELS

    assert set(ESTIMATABLE_MODELS) == set(BATCHED_MODELS)


def test_envelope_is_frozen():
    env = estimate_paths(
        "wormhole", message_length=4, B=1, path_lengths=[2], congestion=1
    )
    assert isinstance(env, DelayEnvelope)
    with pytest.raises(AttributeError):
        env.upper = 0
