"""Unit tests for power-law fitting."""

import numpy as np
import pytest

from repro.analysis.fitting import PowerLawFit, fit_power_law, loglog_slope


class TestFitPowerLaw:
    def test_exact_power_law_recovered(self):
        x = np.array([1.0, 2.0, 4.0, 8.0])
        y = 3.0 * x**1.5
        fit = fit_power_law(x, y)
        assert fit.exponent == pytest.approx(1.5)
        assert fit.coefficient == pytest.approx(3.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_negative_exponent(self):
        x = np.array([1.0, 10.0, 100.0])
        y = 5.0 / x
        fit = fit_power_law(x, y)
        assert fit.exponent == pytest.approx(-1.0)

    def test_noisy_fit_reasonable(self, rng):
        x = np.geomspace(1, 100, 20)
        y = 2.0 * x**0.5 * np.exp(rng.normal(0, 0.05, 20))
        fit = fit_power_law(x, y)
        assert 0.4 < fit.exponent < 0.6
        assert fit.r_squared > 0.9

    def test_predict(self):
        fit = PowerLawFit(exponent=2.0, coefficient=1.5, r_squared=1.0)
        assert fit.predict(np.array([2.0]))[0] == pytest.approx(6.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_power_law(np.array([1.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            fit_power_law(np.array([1.0, -1.0]), np.array([1.0, 1.0]))
        with pytest.raises(ValueError):
            fit_power_law(np.array([2.0, 2.0]), np.array([1.0, 3.0]))

    def test_loglog_slope(self):
        x = np.array([1.0, 2.0, 4.0])
        assert loglog_slope(x, x**3) == pytest.approx(3.0)

    def test_measured_superlinearity_example(self):
        """The E2b speedups grow with a positive exponent in B."""
        B = np.array([1.0, 2.0, 3.0, 4.0])
        speedup = np.array([1.0, 3.06, 4.68, 5.39])  # from EXPERIMENTS.md
        fit = fit_power_law(B, speedup)
        assert fit.exponent > 1.0  # superlinear in B
