"""Unit tests for the ASCII table renderer."""

import pytest

from repro.analysis.tables import Table, format_value


class TestFormatValue:
    def test_int(self):
        assert format_value(42) == "42"

    def test_bool(self):
        assert format_value(True) == "True"

    def test_float(self):
        assert format_value(2.5) == "2.5"
        assert format_value(0.000123) == "0.000123"

    def test_tiny_float_scientific(self):
        assert "e" in format_value(1.23e-9)

    def test_zero_and_nan(self):
        assert format_value(0.0) == "0"
        assert format_value(float("nan")) == "nan"

    def test_string_passthrough(self):
        assert format_value("x") == "x"


class TestTable:
    def test_render_alignment(self):
        t = Table("demo", ["name", "v"])
        t.add_row(["a", 1])
        t.add_row(["longer", 22])
        out = t.render()
        lines = out.split("\n")
        assert lines[0] == "demo"
        assert "name" in lines[1] and "v" in lines[1]
        assert len(lines) == 5
        # Columns align: all rows same width.
        assert len(lines[3].split("|")[0]) == len(lines[4].split("|")[0])

    def test_row_width_checked(self):
        t = Table("t", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_empty_title(self):
        t = Table("", ["a"])
        t.add_row([1])
        assert t.render().startswith("a")
