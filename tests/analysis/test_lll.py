"""Unit tests for the LLL / Chernoff toolbox, including the paper's
verification that each case of Lemma 2.1.5 satisfies 4qb < 1."""

import math

import pytest

from repro.analysis.lll import (
    bad_event_probability_case12,
    bad_event_probability_case3,
    binomial,
    chernoff_upper_tail,
    lll_condition,
    log_binomial,
)


class TestLllCondition:
    def test_threshold(self):
        assert lll_condition(q=0.01, b=10)
        assert not lll_condition(q=0.1, b=10)

    def test_validation(self):
        with pytest.raises(ValueError):
            lll_condition(-0.1, 1)


class TestChernoff:
    def test_decreasing_in_mu(self):
        assert chernoff_upper_tail(10, 0.5) < chernoff_upper_tail(1, 0.5)

    def test_decreasing_in_delta(self):
        assert chernoff_upper_tail(10, 1.0) < chernoff_upper_tail(10, 0.1)

    def test_clamps_delta(self):
        assert chernoff_upper_tail(10, 5.0) == chernoff_upper_tail(10, 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            chernoff_upper_tail(-1, 0.5)
        with pytest.raises(ValueError):
            chernoff_upper_tail(1, 0)

    def test_monte_carlo_agreement(self, rng):
        """The bound actually bounds the empirical tail."""
        n, p, delta = 200, 0.3, 0.5
        mu = n * p
        samples = rng.binomial(n, p, size=4000)
        empirical = (samples > (1 + delta) * mu).mean()
        assert empirical <= chernoff_upper_tail(mu, delta)


class TestBinomials:
    def test_exact(self):
        assert binomial(10, 3) == 120

    def test_log_matches_exact(self):
        assert log_binomial(20, 7) == pytest.approx(math.log(binomial(20, 7)))

    def test_out_of_range(self):
        assert log_binomial(5, 7) == float("-inf")


class TestBadEventBounds:
    def test_case12_monotone_in_r(self):
        assert bad_event_probability_case12(
            20, 4, 100
        ) < bad_event_probability_case12(20, 4, 10)

    def test_case12_zero_when_mf_exceeds_ms(self):
        assert bad_event_probability_case12(3, 5, 10) == 0.0

    def test_case3_trivial_when_mean_exceeds_mf(self):
        assert bad_event_probability_case3(100, 5, 10) == 1.0

    def test_case3_small_for_big_gap(self):
        assert bad_event_probability_case3(1000, 500, 10) < 1e-5

    def test_lemma_case1_satisfies_lll(self):
        """The proof's case-1 computation: 4qb = 4/3^B < 1 for B > 1."""
        import math as m

        for B in (2, 3, 4):
            for D in (1 << 12, 1 << 16):
                log_d = m.log2(D)
                ms = int(log_d)  # largest ms allowed in case 1
                mf = B
                r = m.ceil(3 * m.e * ((D * ms) ** (1 / B)) * ms / B)
                q = bad_event_probability_case12(ms, mf, r)
                b = ms * D
                assert lll_condition(q, b)

    def test_lemma_case2_satisfies_lll(self):
        """Case 2: ms in (log D, D], mf = log D, r = 32 e ms / log D."""
        import math as m

        D = 1 << 16
        log_d = m.log2(D)
        for ms in (32, 256, D):
            mf = int(log_d)
            r = m.ceil(32 * m.e * ms / log_d)
            q = bad_event_probability_case12(ms, mf, r)
            assert lll_condition(q, ms * D)

    def test_lemma_case3_satisfies_lll(self):
        """Case 3: ms > D, mf = max(D, 15 ln^3 ms), Chernoff-based."""
        import math as m

        D = 64
        ms = 10**7  # large enough that 15 ln^3 ms < ms
        ln_ms = m.log(ms)
        mf = max(D, m.ceil(15 * ln_ms**3))
        assert mf < ms
        r = max(2, m.floor(ms / ((1 - 1 / ln_ms) * mf)))
        q = bad_event_probability_case3(ms, mf, r)
        assert lll_condition(q, ms * D)
