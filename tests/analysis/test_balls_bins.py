"""Unit tests for the balls-in-bins machinery (Lemma 3.2.3)."""

import numpy as np
import pytest

from repro.analysis.balls_bins import (
    lemma_3_2_3_bound,
    max_load_samples,
    per_bin_overflow_lower_bound,
    prob_no_bin_exceeds,
)


class TestMonteCarlo:
    def test_trivial_cases(self, rng):
        assert prob_no_bin_exceeds(0, 5, 1, 10, rng) == 1.0
        assert prob_no_bin_exceeds(2, 1000, 1, 50, rng) > 0.9

    def test_pigeonhole(self, rng):
        """More balls than B*n forces an overflow always."""
        assert prob_no_bin_exceeds(11, 5, 2, 20, rng) == 0.0

    def test_probability_falls_with_m(self, rng):
        n, B = 50, 1
        p_small = prob_no_bin_exceeds(5, n, B, 400, np.random.default_rng(0))
        p_large = prob_no_bin_exceeds(40, n, B, 400, np.random.default_rng(0))
        assert p_large < p_small

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            prob_no_bin_exceeds(-1, 5, 1, 10, rng)

    def test_max_load_samples_shape(self, rng):
        loads = max_load_samples(10, 10, 25, rng)
        assert loads.shape == (25,)
        assert (loads >= 1).all()


class TestClosedForms:
    def test_bound_decreases_with_m(self):
        vals = [lemma_3_2_3_bound(m, 100, 1) for m in (10, 50, 100)]
        assert vals == sorted(vals, reverse=True)

    def test_statement_vs_proof_exponent(self):
        s = lemma_3_2_3_bound(50, 100, 1, statement_exponent=True)
        p = lemma_3_2_3_bound(50, 100, 1, statement_exponent=False)
        assert s < p  # extra factor of m tightens the statement form

    def test_validation(self):
        with pytest.raises(ValueError):
            lemma_3_2_3_bound(10, 100, 0)

    def test_per_bin_lower_bound_in_range(self):
        p = per_bin_overflow_lower_bound(m=40, n=50, B=1)
        assert 0 < p < 1

    def test_per_bin_zero_when_too_few_balls(self):
        assert per_bin_overflow_lower_bound(m=2, n=50, B=2) == 0.0

    def test_lemma_bound_actually_bounds(self):
        """Empirical no-overflow probability <= the lemma's bound shape
        for a suitable constant alpha (we use the proof exponent and
        alpha small enough to be a certified upper bound here)."""
        rng = np.random.default_rng(1)
        m, n, B = 60, 64, 1
        empirical = prob_no_bin_exceeds(m, n, B, 2000, rng)
        loose = lemma_3_2_3_bound(m, n, B, alpha=0.05, statement_exponent=False)
        assert empirical <= loose
