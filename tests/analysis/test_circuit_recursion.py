"""Unit tests for the Kruskal-Snir / Koch circuit survival recursion."""

import numpy as np
import pytest

from repro.analysis.circuit_recursion import (
    edge_load_distribution,
    expected_survivors,
    kruskal_snir_b1_probability,
)
from repro.network.butterfly import Butterfly
from repro.sim.circuit import circuit_switch_butterfly


class TestDistribution:
    def test_is_probability_vector(self):
        for n in (4, 64):
            for B in (1, 2, 4):
                dist = edge_load_distribution(n, B)
                assert dist.size == B + 1
                assert dist.min() >= 0
                assert dist.sum() == pytest.approx(1.0)

    def test_level1_base_case(self):
        """At n = 2 there is one edge-level: each input's message picks
        this out-edge with probability 1/2."""
        dist = edge_load_distribution(2, 1)
        assert dist[0] == pytest.approx(0.5)
        assert dist[1] == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            edge_load_distribution(6, 1)
        with pytest.raises(ValueError):
            edge_load_distribution(8, 0)
        with pytest.raises(ValueError):
            kruskal_snir_b1_probability(12)


class TestAgreement:
    def test_b1_matches_closed_recursion(self):
        for n in (8, 64, 1024):
            dist = edge_load_distribution(n, 1)
            assert dist[1] == pytest.approx(kruskal_snir_b1_probability(n))

    def test_survivors_monotone_in_b(self):
        for n in (64, 256):
            vals = [expected_survivors(n, B) for B in (1, 2, 3, 4)]
            assert vals == sorted(vals)
            assert vals[-1] <= n

    @pytest.mark.parametrize("n,B", [(64, 1), (64, 2), (256, 1), (256, 3)])
    def test_matches_monte_carlo(self, n, B):
        """Independence recursion within a few percent of simulation."""
        pred = expected_survivors(n, B)
        rng = np.random.default_rng(0)
        bf = Butterfly(n)
        sim = np.mean(
            [
                circuit_switch_butterfly(
                    bf, rng.integers(0, n, n), B, rng
                ).num_survivors
                for _ in range(15)
            ]
        )
        assert sim == pytest.approx(pred, rel=0.08)

    def test_fraction_decays_like_one_over_logn(self):
        """The recursion itself exhibits the Theta(n / log n) decay."""
        products = [
            kruskal_snir_b1_probability(1 << k) * 2 * k for k in (6, 10, 14, 18)
        ]
        # p * 2 log n per message... fraction = 2p; fraction * log n stable.
        assert max(products) / min(products) < 1.6
