"""Unit tests for the Probe protocol and the ProbeSet dispatcher."""

import numpy as np
import pytest

from repro.telemetry import Probe, ProbeSet


class StepCounter(Probe):
    def __init__(self):
        super().__init__()
        self.steps = 0

    def on_step(self, t, movers, k):
        self.steps += 1


class GrantCounter(Probe):
    def __init__(self):
        super().__init__()
        self.grants = 0

    def on_grant(self, t, messages, edges):
        self.grants += int(messages.size)


class TestCoerce:
    def test_none_is_none(self):
        assert ProbeSet.coerce(None) is None

    def test_empty_iterable_is_none(self):
        assert ProbeSet.coerce([]) is None
        assert ProbeSet.coerce(()) is None

    def test_empty_probeset_is_none(self):
        assert ProbeSet.coerce(ProbeSet()) is None

    def test_single_probe(self):
        p = StepCounter()
        ps = ProbeSet.coerce(p)
        assert isinstance(ps, ProbeSet)
        assert list(ps) == [p]

    def test_iterable_of_probes(self):
        a, b = StepCounter(), GrantCounter()
        ps = ProbeSet.coerce([a, b])
        assert list(ps) == [a, b]
        assert len(ps) == 2 and bool(ps)

    def test_extra_appended_without_mutating_caller(self):
        a = StepCounter()
        caller = [a]
        legacy = GrantCounter()
        ps = ProbeSet.coerce(caller, extra=[legacy])
        assert list(ps) == [a, legacy]
        assert caller == [a]  # the caller's list is untouched

    def test_coerce_probeset_copies(self):
        original = ProbeSet([StepCounter()])
        ps = ProbeSet.coerce(original, extra=[GrantCounter()])
        assert len(original) == 1 and len(ps) == 2

    def test_non_probe_rejected(self):
        with pytest.raises(TypeError):
            ProbeSet.coerce([object()])


class TestDispatch:
    def test_events_reach_only_overriders(self):
        stepper, granter = StepCounter(), GrantCounter()
        ps = ProbeSet([stepper, granter])
        m = np.array([0, 1])
        e = np.array([2, 3])
        ps.on_step(1, m, m)
        ps.on_grant(1, m, e)
        ps.on_grant(2, m[:1], e[:1])
        assert stepper.steps == 1
        assert granter.grants == 3

    def test_dispatch_lists_skip_non_overriders(self):
        stepper = StepCounter()
        ps = ProbeSet([stepper])
        assert ps._dispatch["on_step"] == [stepper]
        assert ps._dispatch["on_grant"] == []

    def test_add_rebinds(self):
        ps = ProbeSet()
        g = GrantCounter()
        ps.add(g)
        ps.on_grant(1, np.array([0]), np.array([0]))
        assert g.grants == 1

    def test_find(self):
        stepper, granter = StepCounter(), GrantCounter()
        ps = ProbeSet([stepper, granter])
        assert ps.find(GrantCounter) is granter
        assert ps.find(StepCounter) is stepper
        assert ProbeSet([stepper]).find(GrantCounter) is None


class TestAbort:
    def test_no_abort_by_default(self):
        ps = ProbeSet([StepCounter()])
        assert not ps.aborted and ps.abort_reason is None

    def test_request_abort_surfaces(self):
        p = StepCounter()
        ps = ProbeSet([p, GrantCounter()])
        p.request_abort("too slow")
        assert ps.aborted
        assert ps.abort_reason == "too slow"
