"""Event-trace round-trips and the bit-exact replay check."""

import json
import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))
from reference_simulator import reference_run  # noqa: E402

from repro.network.butterfly import Butterfly
from repro.network.random_networks import chain_bundle, layered_network, random_walk_paths
from repro.routing.paths import paths_from_node_walks
from repro.routing.problems import bit_reversal_permutation
from repro.sim.store_forward import StoreForwardSimulator
from repro.sim.wormhole import WormholeSimulator
from repro.telemetry import (
    TRACE_FORMAT,
    TRACE_VERSION,
    TraceError,
    TraceRecorder,
    load_trace,
    replay_check,
    write_trace,
)


def record_chain(B=1, worms=3, depth=4, L=5, release=None, priority="index"):
    net, walks = chain_bundle(1, depth, worms)
    paths = paths_from_node_walks(net, walks)
    recorder = TraceRecorder()
    res = WormholeSimulator(net, B, priority=priority).run(
        paths, message_length=L, release_times=release, telemetry=[recorder]
    )
    return recorder, res, paths


class TestRoundTrip:
    @pytest.mark.parametrize("suffix", [".jsonl", ".npz"])
    def test_save_load_identity(self, tmp_path, suffix):
        recorder, res, _ = record_chain()
        trace = recorder.to_trace()
        path = recorder.save(tmp_path / f"run{suffix}")
        loaded = load_trace(path)
        assert loaded.meta == trace.meta
        assert loaded.end == trace.end
        # Writers may regroup batches; the flat (t, m[, e]) multisets
        # must survive exactly.
        for ev in trace.events:
            orig = np.stack(trace.events[ev])
            back = np.stack(loaded.events[ev])
            assert np.array_equal(
                orig[:, np.lexsort(orig[::-1])], back[:, np.lexsort(back[::-1])]
            )

    def test_header_versioned(self, tmp_path):
        recorder, _, _ = record_chain()
        path = recorder.save(tmp_path / "run.jsonl")
        header = json.loads(path.read_text().splitlines()[0])
        assert header["format"] == TRACE_FORMAT
        assert header["version"] == TRACE_VERSION

    def test_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "junk.jsonl"
        path.write_text('{"format": "something-else"}\n')
        with pytest.raises(TraceError, match="not a"):
            load_trace(path)

    def test_rejects_newer_version(self, tmp_path):
        recorder, _, _ = record_chain()
        trace = recorder.to_trace()
        trace.meta["version"] = TRACE_VERSION + 1
        path = write_trace(trace, tmp_path / "future.jsonl")
        with pytest.raises(TraceError, match="newer"):
            load_trace(path)

    def test_rejects_unknown_event(self, tmp_path):
        recorder, _, _ = record_chain()
        path = recorder.save(tmp_path / "run.jsonl")
        lines = path.read_text().splitlines()
        lines.insert(2, json.dumps({"t": 1, "ev": "frobnicate", "m": []}))
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceError, match="unknown event"):
            load_trace(path)


class TestReplay:
    def test_replay_matches_simulator(self):
        recorder, res, _ = record_chain(worms=3, depth=4, L=5)
        derived = replay_check(recorder.to_trace(), res)
        assert np.array_equal(derived, res.completion_times)

    def test_replay_with_releases_and_random_priority(self):
        release = np.array([0, 3, 7])
        recorder, res, _ = record_chain(
            B=2, worms=3, depth=5, L=4, release=release, priority="random"
        )
        replay_check(recorder.to_trace(), res)

    def test_replay_after_round_trip(self, tmp_path):
        recorder, res, _ = record_chain(B=2, worms=4, depth=3, L=6)
        for suffix in (".jsonl", ".npz"):
            path = recorder.save(tmp_path / f"run{suffix}")
            replay_check(load_trace(path), res)

    def test_replay_on_butterfly_matches_reference(self):
        """Acceptance: traced butterfly run replays bit-exactly, and the
        whole pipeline agrees with the first-principles flit simulator."""
        bf = Butterfly(8)
        inst = bit_reversal_permutation(8)
        paths = [list(r) for r in bf.path_edges_batch(inst.sources, inst.dests)]
        recorder = TraceRecorder()
        res = WormholeSimulator(bf, 2, priority="index").run(
            paths, message_length=6, telemetry=[recorder]
        )
        derived = replay_check(recorder.to_trace(), res)
        ref = reference_run(paths, L=6, B=2)
        assert np.array_equal(derived, np.asarray(ref))

    def test_replay_on_layered_workload(self):
        rng = np.random.default_rng(7)
        net = layered_network(6, 6, 3, rng)
        walks = random_walk_paths(net, 6, 6, 30, rng)
        paths = paths_from_node_walks(net, walks)
        recorder = TraceRecorder()
        res = WormholeSimulator(net, 2, seed=11).run(
            paths, message_length=5, telemetry=[recorder]
        )
        replay_check(recorder.to_trace(), res)

    def test_replay_refuses_non_wormhole(self):
        net, walks = chain_bundle(1, 3, 2)
        paths = paths_from_node_walks(net, walks)
        recorder = TraceRecorder()
        StoreForwardSimulator(net).run(paths, 4, telemetry=[recorder])
        with pytest.raises(TraceError, match="wormhole"):
            replay_check(recorder.to_trace())

    def test_replay_detects_tampering(self):
        recorder, res, _ = record_chain(worms=2, depth=3, L=4)
        trace = recorder.to_trace()
        t, m, e = trace.events["grant"]
        trace.events["grant"] = (t[:-1], m[:-1], e[:-1])  # drop a grant
        with pytest.raises(TraceError, match="replay mismatch"):
            replay_check(trace)

    def test_completion_times_include_trivial_messages(self):
        net, walks = chain_bundle(1, 3, 1)
        paths = [paths_from_node_walks(net, walks)[0], []]
        recorder = TraceRecorder()
        res = WormholeSimulator(net, 1).run(paths, 4, telemetry=[recorder])
        trace = recorder.to_trace()
        assert np.array_equal(trace.completion_times(), res.completion_times)
        assert np.array_equal(replay_check(trace, res), res.completion_times)
