"""Rendering the collected run into the text report."""

import numpy as np

from repro.network.graph import Network
from repro.network.random_networks import chain_bundle
from repro.routing.paths import paths_from_node_walks
from repro.sim.wormhole import WormholeSimulator
from repro.telemetry import (
    EdgeContentionCollector,
    StallAttributionCollector,
    Watchdog,
    render_report,
    standard_collectors,
)


def profiled_chain(worms=3, depth=4, L=5, extra=()):
    net, walks = chain_bundle(1, depth, worms)
    paths = paths_from_node_walks(net, walks)
    probes = standard_collectors() + list(extra)
    res = WormholeSimulator(net, 1, priority="index").run(
        paths, message_length=L, telemetry=probes
    )
    return probes, res, paths


class TestRenderReport:
    def test_full_report_sections(self):
        probes, res, paths = profiled_chain(extra=[Watchdog()])
        text = render_report(probes, res, title="Chain convoy")
        assert text.startswith("# Chain convoy")
        for heading in (
            "## Run summary",
            "## Hottest edges (flits crossed)",
            "## Buffer occupancy",
            "## Stall attribution",
            "## Throughput",
        ):
            assert heading in text
        assert "watchdog: no alerts" in text
        assert "worst blame chain:" in text

    def test_names_the_hottest_edge(self):
        probes, res, paths = profiled_chain()
        text = render_report(probes, res, top=1)
        util = probes[0]
        (edge, flits), = util.hottest(1)
        line = next(
            ln for ln in text.splitlines() if ln.lstrip().startswith("1 ")
        )
        assert str(edge) in line and str(flits) in line

    def test_sections_skipped_without_collectors(self):
        stall = StallAttributionCollector()
        probes, res, _ = profiled_chain()
        text = render_report([stall], None)
        assert "## Hottest edges" not in text
        assert "## Throughput" not in text
        assert "## Run summary" not in text

    def test_contention_only_fallback(self):
        net, walks = chain_bundle(1, 3, 3)
        paths = paths_from_node_walks(net, walks)
        cont = EdgeContentionCollector()
        WormholeSimulator(net, 1).run(paths, 4, telemetry=[cont])
        text = render_report([cont])
        assert "most contended edges" in text

    def test_single_probe_accepted(self):
        cont = EdgeContentionCollector()
        cont.denied = np.zeros(3, dtype=np.int64)
        text = render_report(cont)
        assert "no blocking observed" in text

    def test_deadlock_flagged_in_summary(self):
        net = Network(name="2cycle")
        a, b = net.add_nodes(["a", "b"])
        net.add_edge(a, b)
        net.add_edge(b, a)
        probes = standard_collectors() + [Watchdog()]
        res = WormholeSimulator(net, 1, priority="index").run(
            [[0, 1], [1, 0]], 4, telemetry=probes
        )
        text = render_report(probes, res)
        assert "DEADLOCKED" in text
        assert "watchdog alert" in text
