"""Watchdog alerts: stalls, slow delivery, deadlock, and aborts."""

import numpy as np
import pytest

from repro.network.random_networks import chain_bundle
from repro.routing.paths import paths_from_node_walks
from repro.sim.wormhole import WormholeSimulator
from repro.telemetry import Watchdog


def chain(worms=2, depth=3):
    net, walks = chain_bundle(1, depth, worms)
    return net, paths_from_node_walks(net, walks)


class TestValidation:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            Watchdog(stall_steps=0)
        with pytest.raises(ValueError):
            Watchdog(rate_window=0)


class TestAnnotations:
    def test_clean_run_reports_no_alerts(self):
        net, paths = chain()
        wd = Watchdog()
        res = WormholeSimulator(net, 1).run(paths, 4, telemetry=[wd])
        assert not wd.tripped
        report = res.extra["watchdog"]
        assert report["tripped"] is False
        assert report["delivered"] == 2
        assert report["steps_observed"] == res.steps_executed
        assert report["last_progress_step"] is not None

    def test_stall_alert_once_per_episode(self):
        # Unit-level: the simulators fast-forward fully quiet stretches,
        # so feed the step stream directly to pin the episode logic.
        wd = Watchdog(stall_steps=3)
        nobody = np.zeros(0, dtype=np.int64)
        k = np.zeros(2, dtype=np.int64)
        for t in range(1, 9):  # 8 consecutive no-mover steps
            wd.on_step(t, nobody, k)
        stalls = [a for a in wd.alerts if a["type"] == "stall"]
        assert len(stalls) == 1  # one alert for the whole quiet stretch
        assert stalls[0]["stalled_steps"] == 3 and stalls[0]["step"] == 3
        # Progress resets the episode; a second stall alerts again.
        wd.on_step(9, np.array([0]), k)
        for t in range(10, 14):
            wd.on_step(t, nobody, k)
        assert len([a for a in wd.alerts if a["type"] == "stall"]) == 2

    def test_low_rate_alert(self):
        net, paths = chain(worms=3, depth=4)
        wd = Watchdog(min_rate=1.0, rate_window=5)
        res = WormholeSimulator(net, 1).run(paths, 6, telemetry=[wd])
        assert res.all_delivered
        assert any(a["type"] == "low-rate" for a in wd.alerts)
        # The first window is exempt: no alert at step <= rate_window.
        first = min(a["step"] for a in wd.alerts)
        assert first > 5

    def test_deadlock_alert(self):
        net = _cycle_network()
        paths = [[0, 1], [1, 0]]
        wd = Watchdog()
        res = WormholeSimulator(net, 1, priority="index").run(
            paths, 4, telemetry=[wd]
        )
        assert res.deadlocked
        dead = [a for a in wd.alerts if a["type"] == "deadlock"]
        assert len(dead) == 1
        assert sorted(dead[0]["pending"]) == [0, 1]
        assert res.extra["watchdog"]["tripped"] is True


class TestAbort:
    def test_abort_stops_the_run_and_annotates(self):
        # An impossible delivery-rate floor trips on the first checked
        # window of the B=1 convoy; abort=True then cuts the run short.
        net, paths = chain(worms=4, depth=6)
        wd = Watchdog(min_rate=1.0, rate_window=5, abort=True)
        res = WormholeSimulator(net, 1, priority="index").run(
            paths, 8, telemetry=[wd]
        )
        assert not res.all_delivered
        assert "telemetry_abort" in res.extra
        assert "watchdog" in res.extra["telemetry_abort"]
        # The full convoy needs ~4 * (L + D - 1) steps; we stopped at the
        # first post-exemption window boundary instead.
        assert res.steps_executed == 10

    def test_no_abort_by_default(self):
        net, paths = chain(worms=4, depth=6)
        wd = Watchdog(min_rate=1.0, rate_window=5)
        res = WormholeSimulator(net, 1, priority="index").run(
            paths, 8, telemetry=[wd]
        )
        assert res.all_delivered
        assert wd.tripped
        assert "telemetry_abort" not in res.extra


def _cycle_network():
    from repro.network.graph import Network

    net = Network(name="2cycle")
    a, b = net.add_nodes(["a", "b"])
    net.add_edge(a, b)
    net.add_edge(b, a)
    return net
