"""Attaching telemetry must never change a simulation's outcome.

Property-based: for random workloads, the SimulationResult of an
instrumented run is bit-identical to the uninstrumented run — the
collectors observe, they do not perturb (in particular they never touch
the simulator's RNG stream).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.random_networks import chain_bundle
from repro.routing.paths import paths_from_node_walks
from repro.sim.adaptive import AdaptiveMeshRouter
from repro.sim.cut_through import CutThroughSimulator
from repro.sim.store_forward import StoreForwardSimulator
from repro.sim.wormhole import WormholeSimulator
from repro.telemetry import (
    EdgeContentionCollector,
    TraceRecorder,
    TraceSnapshotCollector,
    Watchdog,
    standard_collectors,
)


def assert_results_identical(plain, probed):
    assert np.array_equal(plain.completion_times, probed.completion_times)
    assert plain.makespan == probed.makespan
    assert plain.steps_executed == probed.steps_executed
    assert np.array_equal(plain.blocked_steps, probed.blocked_steps)
    assert plain.deadlocked == probed.deadlocked
    assert plain.hit_step_cap == probed.hit_step_cap


workload = st.fixed_dictionaries(
    {
        "chains": st.integers(1, 2),
        "depth": st.integers(1, 5),
        "worms": st.integers(1, 4),
        "B": st.integers(1, 3),
        "L": st.integers(1, 6),
        "seed": st.integers(0, 2**16),
        "priority": st.sampled_from(["random", "index"]),
        "staggered": st.booleans(),
    }
)


class TestWormholeInvariance:
    @settings(max_examples=40, deadline=None)
    @given(w=workload)
    def test_collectors_do_not_perturb(self, w):
        net, walks = chain_bundle(w["chains"], w["depth"], w["worms"])
        paths = paths_from_node_walks(net, walks)
        M = len(paths)
        release = (
            np.arange(M, dtype=np.int64) * 2 if w["staggered"] else None
        )

        def run(telemetry):
            sim = WormholeSimulator(
                net, w["B"], priority=w["priority"], seed=w["seed"]
            )
            return sim.run(
                paths,
                message_length=w["L"],
                release_times=release,
                telemetry=telemetry,
            )

        plain = run(None)
        probes = standard_collectors() + [
            EdgeContentionCollector(),
            TraceSnapshotCollector(),
            TraceRecorder(),
            Watchdog(),
        ]
        probed = run(probes)
        assert_results_identical(plain, probed)
        # Annotation-only keys may be added; core extras must agree.
        assert "watchdog" in probed.extra
        assert "watchdog" not in plain.extra


class TestOtherEngineInvariance:
    def test_cut_through(self):
        net, walks = chain_bundle(2, 4, 3)
        paths = paths_from_node_walks(net, walks)

        def run(telemetry):
            return CutThroughSimulator(net, 2, seed=5).run(
                paths, 5, telemetry=telemetry
            )

        assert_results_identical(run(None), run(standard_collectors()))

    def test_store_forward(self):
        net, walks = chain_bundle(2, 4, 3)
        paths = paths_from_node_walks(net, walks)

        def run(telemetry):
            return StoreForwardSimulator(net, priority="random", seed=5).run(
                paths, 5, delay_range=3, telemetry=telemetry
            )

        assert_results_identical(run(None), run(standard_collectors()))

    def test_adaptive(self):
        from repro.network.mesh import KAryNCube

        cube = KAryNCube(k=4, n=2, wrap=False)
        demands = [(0, 15), (3, 12), (5, 10), (12, 3), (15, 0)]

        def run(telemetry):
            router = AdaptiveMeshRouter(cube, 1, policy="west-first", seed=9)
            return router.run(demands, 4, telemetry=telemetry).result

        assert_results_identical(run(None), run(standard_collectors()))


class TestDeprecatedShims:
    """The legacy record_* kwargs still work, warn, and match exactly."""

    def make(self):
        net, walks = chain_bundle(2, 3, 3)
        paths = paths_from_node_walks(net, walks)
        return net, paths

    def test_record_trace_shim(self):
        net, paths = self.make()
        with pytest.deprecated_call(match="record_trace"):
            legacy = WormholeSimulator(net, 1, seed=0).run(
                paths, 4, record_trace=True
            )
        snap = TraceSnapshotCollector()
        modern = WormholeSimulator(net, 1, seed=0).run(
            paths, 4, telemetry=[snap]
        )
        assert_results_identical(legacy, modern)
        assert np.array_equal(legacy.extra["trace"], snap.matrix)

    def test_record_contention_shim(self):
        net, paths = self.make()
        with pytest.deprecated_call(match="record_contention"):
            legacy = WormholeSimulator(net, 1, seed=0).run(
                paths, 4, record_contention=True
            )
        cont = EdgeContentionCollector()
        modern = WormholeSimulator(net, 1, seed=0).run(
            paths, 4, telemetry=[cont]
        )
        assert_results_identical(legacy, modern)
        assert np.array_equal(legacy.extra["edge_contention"], cont.denied)

    def test_shims_compose_with_telemetry(self):
        net, paths = self.make()
        cont = EdgeContentionCollector()
        with pytest.deprecated_call(match="record_trace"):
            res = WormholeSimulator(net, 1, seed=0).run(
                paths, 4, record_trace=True, telemetry=[cont]
            )
        assert "trace" in res.extra
        assert cont.denied.sum() == res.total_blocked_steps
