"""Unit tests for the standard telemetry collectors.

The anchor is flit conservation: a delivered message of length ``L`` on
a ``D``-edge path transports exactly ``L * D`` flit-edge crossings, so
the utilization collector's grand total is checkable in closed form on
every engine.
"""

import numpy as np
import pytest

from repro.network.mesh import KAryNCube
from repro.network.random_networks import chain_bundle
from repro.routing.paths import paths_from_node_walks
from repro.sim.adaptive import AdaptiveMeshRouter
from repro.sim.cut_through import CutThroughSimulator
from repro.sim.store_forward import StoreForwardSimulator
from repro.sim.wormhole import WormholeSimulator
from repro.telemetry import (
    BufferOccupancyCollector,
    ChannelUtilizationCollector,
    EdgeContentionCollector,
    StallAttributionCollector,
    ThroughputCollector,
    TraceSnapshotCollector,
    standard_collectors,
)


def chain_run(B=1, worms=3, depth=4, L=5, probes=None, priority="index"):
    net, walks = chain_bundle(1, depth, worms)
    paths = paths_from_node_walks(net, walks)
    sim = WormholeSimulator(net, B, priority=priority)
    res = sim.run(paths, message_length=L, telemetry=probes)
    return net, paths, res


class TestChannelUtilization:
    def test_exact_flit_conservation(self):
        util = ChannelUtilizationCollector()
        net, paths, res = chain_run(worms=3, depth=4, L=5, probes=[util])
        assert res.all_delivered
        # Every delivered worm moves L flits across each of its D edges.
        assert util.total_flits == 3 * 5 * 4
        # On a single shared chain every chain edge carries all worms.
        for e in paths[0].edges:
            assert util.flits_crossed[e] == 3 * 5

    def test_per_step_series_sums_to_total(self):
        util = ChannelUtilizationCollector()
        chain_run(worms=2, depth=3, L=4, probes=[util])
        assert sum(f for _, f in util.flits_per_step) == util.total_flits

    def test_hottest_sorted_descending(self):
        util = ChannelUtilizationCollector()
        net, walks = chain_bundle(2, 3, 2)
        paths = paths_from_node_walks(net, walks)
        WormholeSimulator(net, 1).run(paths, 4, telemetry=[util])
        hottest = util.hottest(10)
        flits = [f for _, f in hottest]
        assert flits == sorted(flits, reverse=True)
        assert all(f > 0 for f in flits)

    def test_sampling(self):
        util = ChannelUtilizationCollector(sample_every=2)
        _, _, res = chain_run(worms=2, depth=3, L=4, probes=[util])
        assert len(util.samples) == res.steps_executed // 2
        t_last, snap = util.samples[-1]
        assert snap.sum() <= util.total_flits


class TestBufferOccupancy:
    @pytest.mark.parametrize("B", [1, 2])
    def test_occupancy_bounded_by_B(self, B):
        occ = BufferOccupancyCollector()
        _, _, res = chain_run(B=B, worms=3, depth=4, L=5, probes=[occ])
        assert res.all_delivered
        assert occ.max_occupancy.max() == B  # the shared chain saturates
        assert (occ.max_occupancy <= B).all()

    def test_all_slots_freed_at_end(self):
        occ = BufferOccupancyCollector()
        chain_run(worms=3, depth=4, L=5, probes=[occ])
        assert (occ.occupancy == 0).all()

    def test_histogram_accounts_every_edge_step(self):
        occ = BufferOccupancyCollector()
        net, _, res = chain_run(worms=2, depth=3, L=4, probes=[occ])
        assert occ.steps_observed == res.steps_executed
        assert occ.hist.sum() == net.num_edges * res.steps_executed
        frac = occ.global_histogram()
        assert frac.sum() == pytest.approx(1.0)


class TestStallAttribution:
    def test_blame_points_at_the_worm_ahead(self):
        stall = StallAttributionCollector()
        _, _, res = chain_run(worms=2, depth=4, L=5, probes=[stall])
        # Index priority: worm 1 waits behind worm 0 at the chain mouth.
        assert stall.blocked_steps[1] > 0
        assert stall.blame[(1, 0)] == stall.blocked_steps[1]
        assert stall.top_blame(1) == [(1, 0, stall.blame[(1, 0)])]

    def test_blame_chain_follows_the_convoy(self):
        stall = StallAttributionCollector()
        chain_run(worms=3, depth=4, L=5, probes=[stall])
        chain = stall.blame_chain()
        assert len(chain) >= 2
        assert chain[-1] == 0  # the head of the convoy was never blocked

    def test_unblocked_run_accumulates_nothing(self):
        stall = StallAttributionCollector()
        _, _, res = chain_run(worms=1, depth=3, L=4, probes=[stall])
        assert res.total_blocked_steps == 0
        assert not stall.blame and not stall.blocked_at_edge
        assert stall.blame_chain() == []


class TestThroughput:
    def test_delivered_total_and_series(self):
        thr = ThroughputCollector()
        _, _, res = chain_run(worms=3, depth=4, L=5, probes=[thr])
        assert thr.delivered_total == 3
        assert thr.delivered_series().sum() == 3
        assert len(thr.steps) == res.steps_executed

    def test_backlog_counts_waiting_worms(self):
        thr = ThroughputCollector()
        chain_run(worms=3, depth=4, L=5, probes=[thr])
        # At B=1 two worms wait at injection while the first crosses.
        assert thr.peak_backlog == 2
        assert thr.mean_rate() > 0


class TestEdgeContention:
    def test_matches_blocked_steps(self):
        cont = EdgeContentionCollector()
        _, _, res = chain_run(worms=3, depth=4, L=5, probes=[cont])
        assert cont.denied.sum() == res.total_blocked_steps
        (hot_edge, hot_count), *_ = cont.hottest(1)
        assert hot_count == cont.denied.max()


class TestTraceSnapshot:
    def test_matrix_shape_and_monotonicity(self):
        snap = TraceSnapshotCollector()
        _, _, res = chain_run(worms=2, depth=3, L=4, probes=[snap])
        trace = snap.matrix
        assert trace.shape == (res.steps_executed, 2)
        assert (np.diff(np.maximum(trace, 0), axis=0) >= 0).all()

    def test_empty_run_is_empty_matrix(self):
        snap = TraceSnapshotCollector()
        assert snap.matrix.shape == (0, 0)


class TestOtherEngines:
    def test_cut_through_flit_conservation(self):
        util = ChannelUtilizationCollector()
        thr = ThroughputCollector()
        net, walks = chain_bundle(1, 4, 3)
        paths = paths_from_node_walks(net, walks)
        res = CutThroughSimulator(net, buffer_flits=2, priority="index").run(
            paths, message_length=5, telemetry=[util, thr]
        )
        assert res.all_delivered
        # Grant-weighted accounting: one edge-ownership claim per edge,
        # each implying L flits stream across it.
        assert util.total_flits == 3 * 5 * 4
        assert thr.delivered_total == 3

    def test_store_forward_flit_conservation(self):
        util = ChannelUtilizationCollector()
        occ = BufferOccupancyCollector()
        net, walks = chain_bundle(1, 4, 3)
        paths = paths_from_node_walks(net, walks)
        res = StoreForwardSimulator(net, priority="age").run(
            paths, message_length=5, telemetry=[util, occ]
        )
        assert res.all_delivered
        assert util.total_flits == 3 * 5 * 4

    def test_adaptive_flit_conservation(self):
        util = ChannelUtilizationCollector()
        stall = StallAttributionCollector()
        cube = KAryNCube(k=4, n=2, wrap=False)
        router = AdaptiveMeshRouter(cube, policy="west-first", seed=1)
        demands = [(0, 15), (3, 12), (5, 10), (12, 3)]
        out = router.run(demands, message_length=4, telemetry=[util, stall])
        assert out.all_delivered
        hops = sum(len(p) for p in out.taken_paths)
        assert util.total_flits == 4 * hops

    def test_standard_collectors_bundle(self):
        probes = standard_collectors()
        types = {type(p) for p in probes}
        assert types == {
            ChannelUtilizationCollector,
            BufferOccupancyCollector,
            StallAttributionCollector,
            ThroughputCollector,
        }
