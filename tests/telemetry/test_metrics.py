"""Unit tests for the service-side metric collectors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry import (
    DepthGauge,
    EventCounter,
    LatencyRecorder,
    SizeHistogram,
    quantile,
)


class TestQuantile:
    def test_empty_returns_zero(self):
        assert quantile([], 0.5) == 0.0

    def test_single_value(self):
        assert quantile([7.0], 0.0) == 7.0
        assert quantile([7.0], 1.0) == 7.0

    def test_fraction_out_of_range(self):
        with pytest.raises(ValueError, match="quantile"):
            quantile([1.0], 1.5)

    @given(
        st.lists(
            st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=50
        ),
        st.floats(0.0, 1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_numpy_linear_percentile(self, values, q):
        expected = float(np.percentile(values, q * 100.0))
        assert quantile(values, q) == pytest.approx(expected, abs=1e-6)


class TestEventCounter:
    def test_all_names_present_from_the_start(self):
        c = EventCounter("a", "b")
        assert c.snapshot() == {"a": 0, "b": 0}
        c.bump("a")
        c.bump("b", 3)
        assert c["a"] == 1 and c["b"] == 3

    def test_unknown_name_is_an_error(self):
        c = EventCounter("a")
        with pytest.raises(KeyError, match="typo"):
            c.bump("typo")

    def test_snapshot_is_a_copy(self):
        c = EventCounter("a")
        snap = c.snapshot()
        snap["a"] = 99
        assert c["a"] == 0


class TestDepthGauge:
    def test_tracks_value_and_peak(self):
        g = DepthGauge()
        assert g.snapshot() == {"depth": 0, "peak": 0}
        g.set(5)
        g.set(2)
        assert g.snapshot() == {"depth": 2, "peak": 5}


class TestSizeHistogram:
    def test_empty(self):
        h = SizeHistogram()
        assert h.mean() == 0.0
        assert h.snapshot() == {
            "count": 0,
            "total": 0,
            "mean_occupancy": 0.0,
            "occupancy_hist": {},
        }

    def test_mean_occupancy_and_histogram(self):
        h = SizeHistogram()
        for size in (1, 8, 8, 3):
            h.record(size)
        assert h.count == 4 and h.total == 20
        assert h.mean() == 5.0
        snap = h.snapshot()
        assert snap["mean_occupancy"] == 5.0
        assert snap["occupancy_hist"] == {"1": 1, "3": 1, "8": 2}


class TestLatencyRecorder:
    def test_summary_quantiles(self):
        r = LatencyRecorder()
        for s in (0.010, 0.020, 0.030, 0.040):
            r.record(s)
        summary = r.summary()
        assert summary["count"] == 4
        assert summary["mean"] == pytest.approx(25.0)
        assert summary["p50"] == pytest.approx(25.0)
        assert summary["max"] == pytest.approx(40.0)

    def test_window_is_bounded_but_count_is_not(self):
        r = LatencyRecorder(max_samples=10)
        for i in range(100):
            r.record(i / 1000.0)  # 0..99 ms
        assert r.count == 100
        assert len(r._window) == 10
        summary = r.summary()
        # Quantiles see only the newest 10 samples (90..99 ms) ...
        assert summary["p50"] >= 90.0
        # ... while the mean covers the full history.
        assert summary["mean"] == pytest.approx(49.5)

    def test_empty_summary(self):
        summary = LatencyRecorder().summary()
        assert summary == {
            "count": 0,
            "mean": 0.0,
            "p50": 0.0,
            "p95": 0.0,
            "p99": 0.0,
            "max": 0.0,
        }
