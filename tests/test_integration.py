"""Integration tests spanning the full pipeline: topology -> paths ->
scheduler -> flit-level simulation, plus the paper's headline comparisons."""

import numpy as np
import pytest

from repro import (
    Butterfly,
    ButterflyRouter,
    CutThroughSimulator,
    StoreForwardSimulator,
    WormholeSimulator,
    bounds,
    build_hard_instance,
    execute_schedule,
    hard_instance_lower_bound,
    lll_schedule,
    naive_coloring_schedule,
    random_q_relation,
)
from repro.network.random_networks import layered_network, random_walk_paths
from repro.routing.paths import paths_from_node_walks


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(0)
    net = layered_network(width=12, depth=10, out_degree=3, rng=rng)
    walks = random_walk_paths(net, 12, 10, 150, rng)
    paths = paths_from_node_walks(net, walks)
    return net, paths


class TestSchedulerPipeline:
    def test_lll_schedule_end_to_end(self, workload):
        """Build the Theorem 2.1.6 schedule, execute it on the exact flit
        model, verify zero blocking and the length bound."""
        net, paths = workload
        L = 12
        for B in (1, 2, 4):
            build = lll_schedule(
                paths, message_length=L, B=B,
                rng=np.random.default_rng(B), mode="direct",
            )
            res = execute_schedule(net, paths, build.schedule, B=B)
            assert res.all_delivered
            assert res.total_blocked_steps == 0
            assert res.makespan <= build.length_bound

    def test_schedule_beats_greedy_blocking(self, workload):
        """The schedule's guarantee costs makespan but eliminates
        blocking entirely versus greedy injection."""
        net, paths = workload
        L = 12
        greedy = WormholeSimulator(net, 2, seed=0).run(paths, L)
        build = lll_schedule(paths, L, B=2, mode="direct")
        scheduled = execute_schedule(net, paths, build.schedule, B=2)
        assert greedy.total_blocked_steps > 0
        assert scheduled.total_blocked_steps == 0

    def test_lll_beats_naive_at_scale(self, workload):
        """At B >= 2 the LLL schedule's bound undercuts footnote 5's."""
        net, paths = workload
        L = 12
        naive = naive_coloring_schedule(paths, L)
        for B in (2, 4):
            build = lll_schedule(
                paths, L, B=B, rng=np.random.default_rng(0), mode="direct"
            )
            assert build.length_bound < naive.length_bound


class TestSuperlinearSpeedup:
    def test_hard_instance_speedup_exceeds_b(self):
        """Section 1.4's headline on the Theorem 2.2.1 instance: going
        from B = 1 to B = 2 speeds the *schedule bound* up by more than
        2x (the measured factor B D^(1-1/B) shape)."""
        inst = build_hard_instance(C=8, D=15, B=1)
        L = inst.recommended_length()
        lengths = {}
        for B in (1, 2):
            build = lll_schedule(
                inst.paths, L, B=B, rng=np.random.default_rng(1), mode="direct"
            )
            res = execute_schedule(inst.network, inst.paths, build.schedule, B=B)
            assert res.all_delivered
            lengths[B] = res.makespan
        assert lengths[1] / lengths[2] > 2.0

    def test_measured_time_between_bounds(self):
        """Greedy routing of the hard instance sits between the Omega
        bound and a constant times the upper-bound formula."""
        for B in (1, 2):
            inst = build_hard_instance(C=3 * (B + 1), D=15, B=B)
            L = inst.recommended_length()
            res = WormholeSimulator(inst.network, B, seed=0).run(
                inst.paths, message_length=L
            )
            assert res.all_delivered
            lb = hard_instance_lower_bound(inst, L)
            ub = bounds.general_upper_bound(L, inst.congestion, inst.dilation, B)
            assert lb <= res.makespan <= 10 * ub


class TestRouterComparison:
    def test_three_router_ordering_unobstructed(self):
        """Single worm: wormhole == cut-through < store-and-forward."""
        from repro.network.random_networks import chain_bundle

        net, walks = chain_bundle(1, 8, 1)
        paths = paths_from_node_walks(net, walks)
        L = 16
        wh = WormholeSimulator(net, 1).run(paths, L).makespan
        ct = CutThroughSimulator(net, 4).run(paths, L).makespan
        sf = StoreForwardSimulator(net, 1).run(paths, L).makespan
        assert wh == ct == L + 8 - 1
        assert sf == L * 8

    def test_store_forward_wins_when_c_dominates(self):
        """Section 1.3.2: with C >> D and B = 1, store-and-forward's
        L(C+D) beats wormhole's LCD behaviour on the hard instance."""
        inst = build_hard_instance(C=8, D=7, B=1)
        L = inst.recommended_length(3.0)
        wh = WormholeSimulator(inst.network, 1, seed=0).run(inst.paths, L)
        sf = StoreForwardSimulator(inst.network, 1, seed=0).run(inst.paths, L)
        assert sf.all_delivered and wh.all_delivered
        assert sf.makespan < wh.makespan


class TestSection2MeetsSection3:
    def test_offline_scheduler_on_butterfly_workloads(self):
        """Bridge the paper's two halves: apply the Theorem 2.1.6
        offline scheduler to a butterfly q-relation's two-pass paths and
        compare with the specialized Section 3.1 algorithm.

        Both must deliver; the offline schedule is block-free by
        construction, while the randomized algorithm needs no global
        knowledge — the paper's offline/online trade in one test.
        """
        from repro import ButterflyRouter

        n, q, L, B = 32, 4, 8, 2
        inst = random_q_relation(n, q, np.random.default_rng(0))
        bf = Butterfly(n, passes=2)
        rng = np.random.default_rng(1)
        mids = rng.integers(0, n, inst.num_messages)
        edges = bf.two_pass_path_edges_batch(inst.sources, mids, inst.dests)
        paths = [list(r) for r in edges]

        build = lll_schedule(paths, L, B=B, rng=np.random.default_rng(2), mode="direct")
        offline = execute_schedule(bf, paths, build.schedule, B=B)
        assert offline.all_delivered
        assert offline.total_blocked_steps == 0

        online = ButterflyRouter(n, B=B, message_length=L, seed=3).route(inst)
        assert online.all_delivered
        # Same order of magnitude; neither should be absurdly off.
        ratio = offline.makespan / online.total_flit_steps
        assert 0.05 < ratio < 20


class TestButterflyPipeline:
    def test_router_vs_bound_shape(self):
        """Measured butterfly routing time stays within a constant of the
        Theorem 3.1.1 formula across n."""
        ratios = []
        for n in (16, 64, 256):
            q = max(1, int(np.log2(n)) // 2)
            inst = random_q_relation(n, q, np.random.default_rng(n))
            router = ButterflyRouter(n, B=1, message_length=8, seed=0)
            out = router.route(inst)
            assert out.all_delivered
            ratios.append(
                out.total_flit_steps / bounds.butterfly_upper_bound(8, q, n, 1)
            )
        assert max(ratios) / min(ratios) < 12

    def test_pipelined_subrounds_never_interfere(self):
        """Section 3.1's pipelining claim, mechanically: launching one
        subround's survivors every L+1 flit steps, worms of different
        subrounds never contend.

        (The +1 over the paper's L accounts for the head-of-edge buffer
        being vacated one step after the last flit crosses — the same
        conservative synchronous reading validated against Waksman
        pipelining in the Benes tests.)
        """
        from repro.core.butterfly_routing import arbitrate_levels

        n, B, L = 16, 2, 5
        bf = Butterfly(n, passes=2)
        rng = np.random.default_rng(9)
        num_colors = 4
        all_paths, releases = [], []
        for c in range(num_colors):
            src = rng.integers(0, n, 20)
            mid = rng.integers(0, n, 20)
            dst = rng.integers(0, n, 20)
            edges = bf.two_pass_path_edges_batch(src, mid, dst)
            alive = arbitrate_levels(edges, B, rng)
            for row in edges[alive]:
                all_paths.append(list(row))
                releases.append(c * (L + 1))
        sim = WormholeSimulator(bf, B, seed=0)
        res = sim.run(
            all_paths,
            message_length=L,
            release_times=np.asarray(releases, dtype=np.int64),
        )
        assert res.all_delivered
        assert res.total_blocked_steps == 0
        expected = (num_colors - 1) * (L + 1) + L + 2 * bf.log_n - 1
        assert res.makespan == expected

    def test_cross_validation_against_flit_simulator(self):
        """A full subround's survivors, replayed through the generic
        flit-level simulator, are delivered with zero blocking in exactly
        L + 2 log n - 1 steps."""
        n, B, L = 32, 2, 6
        bf = Butterfly(n, passes=2)
        rng = np.random.default_rng(3)
        src = rng.integers(0, n, 40)
        mid = rng.integers(0, n, 40)
        dst = rng.integers(0, n, 40)
        edges = bf.two_pass_path_edges_batch(src, mid, dst)
        from repro.core.butterfly_routing import arbitrate_levels

        alive = arbitrate_levels(edges, B, rng)
        assert alive.any()
        sim = WormholeSimulator(bf, B, seed=0)
        res = sim.run([list(r) for r in edges[alive]], message_length=L)
        assert res.all_delivered
        assert res.total_blocked_steps == 0
        assert res.makespan == L + 2 * bf.log_n - 1
