"""Cross-simulator consistency: independent engines must agree where the
models coincide.

* Virtual cut-through with 1-flit buffers and the wormhole router at
  ``B = 1`` are the *same model* (exclusive edge ownership, lock-step
  pipeline, strict release) — their makespans must match exactly under
  deterministic arbitration.
* The restricted model at ``B = 1`` is also the same model for a single
  worm per edge, and equals the full model whenever no edge ever hosts
  two messages.
* The Section 3.1 arbitration fast path must agree with the flit-level
  simulator on survivor dynamics (already covered in integration tests;
  here we check the conservation laws of the continuous harness).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    Butterfly,
    CutThroughSimulator,
    RestrictedWormholeSimulator,
    WormholeSimulator,
)
from repro.network.random_networks import chain_bundle, layered_network, random_walk_paths
from repro.routing.paths import paths_from_node_walks
from repro.sim.continuous import ContinuousWormholeSimulator


@given(
    st.integers(1, 3),  # chains
    st.integers(1, 5),  # depth
    st.integers(1, 4),  # per chain
    st.integers(1, 7),  # L
)
@settings(max_examples=30, deadline=None)
def test_cut_through_buf1_equals_wormhole_b1(chains, depth, per_chain, L):
    """Same model, two engines: equality of completion times under
    index-priority arbitration on chain workloads."""
    net, walks = chain_bundle(chains, depth, per_chain)
    paths = paths_from_node_walks(net, walks)
    wh = WormholeSimulator(net, 1, priority="index").run(paths, L)
    ct = CutThroughSimulator(net, 1, priority="index").run(paths, L)
    assert np.array_equal(wh.completion_times, ct.completion_times)


def test_cut_through_buf1_equals_wormhole_b1_layered():
    rng = np.random.default_rng(5)
    net = layered_network(6, 5, 2, rng)
    walks = random_walk_paths(net, 6, 5, 40, rng)
    paths = paths_from_node_walks(net, walks)
    L = 6
    wh = WormholeSimulator(net, 1, priority="index").run(paths, L)
    ct = CutThroughSimulator(net, 1, priority="index").run(paths, L)
    assert wh.all_delivered and ct.all_delivered
    assert np.array_equal(wh.completion_times, ct.completion_times)


@given(st.integers(2, 6), st.integers(1, 8))
@settings(max_examples=25, deadline=None)
def test_all_models_agree_unobstructed(depth, L):
    """A lone worm: every engine reports exactly L + D - 1."""
    net, walks = chain_bundle(1, depth, 1)
    paths = paths_from_node_walks(net, walks)
    expected = L + depth - 1
    assert WormholeSimulator(net, 1).run(paths, L).makespan == expected
    assert CutThroughSimulator(net, 3).run(paths, L).makespan == expected
    assert RestrictedWormholeSimulator(net, 2).run(paths, L).makespan == expected


def test_restricted_b1_equals_full_b1_on_chains():
    """At B = 1 a shared chain serializes identically in both models
    (one message per edge; bandwidth restriction is then irrelevant)."""
    net, walks = chain_bundle(1, 4, 3)
    paths = paths_from_node_walks(net, walks)
    L = 5
    full = WormholeSimulator(net, 1, priority="index").run(paths, L)
    restricted = RestrictedWormholeSimulator(net, 1, seed=0).run(paths, L)
    assert full.makespan == restricted.makespan


class TestContinuousConservation:
    def test_message_conservation(self):
        """generated == delivered + backlog at every horizon."""
        bf = Butterfly(16)

        def path_of(source, rng):
            return list(bf.path_edges(source, int(rng.integers(16))))

        for rate in (0.05, 0.4):
            sim = ContinuousWormholeSimulator(bf, 16, 1, seed=3)
            res = sim.run(rate, 5, path_of, horizon=800)
            assert res.generated == res.delivered + res.final_backlog

    def test_throughput_never_exceeds_generation_rate(self):
        bf = Butterfly(16)

        def path_of(source, rng):
            return list(bf.path_edges(source, int(rng.integers(16))))

        sim = ContinuousWormholeSimulator(bf, 16, 4, seed=4)
        res = sim.run(0.1, 4, path_of, horizon=1000)
        assert res.throughput <= res.generated / res.horizon + 1e-12
