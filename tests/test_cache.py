"""Unit tests for the shared content-hash result cache (repro.cache)."""

import json

import pytest

from repro.cache import CACHE_VERSION, ResultCache, load_entry, store_entry
from repro.sim.sweep import TrialSpec, run_sweep

WORKLOAD_PARAMS = {"chains": 2, "depth": 4, "messages": 3}


def _spec(B=2, repeat=0):
    return TrialSpec.make(
        "chain-bundle",
        "wormhole",
        B=B,
        workload_params=WORKLOAD_PARAMS,
        message_length=8,
        repeat=repeat,
    )


def test_roundtrip_and_counters(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    spec = _spec()
    key = spec.cache_key(root_seed=7)
    metrics = {"makespan": 42, "delivered": 6}

    assert cache.load(key, spec.key()) is None  # cold miss
    cache.store(key, spec.key(), metrics, root_seed=7)
    assert cache.load(key, spec.key()) == metrics
    assert len(cache) == 1
    snap = cache.snapshot()
    assert snap["hits"] == 1 and snap["misses"] == 1 and snap["stores"] == 1
    assert snap["hit_rate"] == pytest.approx(0.5)


def test_identity_mismatch_is_a_miss_not_a_wrong_answer(tmp_path):
    """The hash-collision fallback: stored identity must match exactly."""
    cache = ResultCache(tmp_path)
    spec, other = _spec(B=2), _spec(B=4)
    key = spec.cache_key(root_seed=0)
    cache.store(key, spec.key(), {"makespan": 1}, root_seed=0)
    # Same file looked up under a different identity (a collision).
    assert cache.load(key, other.key()) is None
    assert cache.load(key, spec.key()) == {"makespan": 1}


def test_stale_version_and_corrupt_files_are_misses(tmp_path):
    spec = _spec()
    key = spec.cache_key(root_seed=0)
    path = tmp_path / f"{key}.json"

    store_entry(path, spec.key(), {"makespan": 3}, root_seed=0)
    payload = json.loads(path.read_text())
    assert payload["v"] == CACHE_VERSION
    payload["v"] = CACHE_VERSION + 1
    path.write_text(json.dumps(payload))
    assert load_entry(path, spec.key()) is None  # stale format

    path.write_text("{not json")
    assert load_entry(path, spec.key()) is None  # corrupt

    path.write_text(json.dumps({"v": CACHE_VERSION, "spec": spec.key()}))
    assert load_entry(path, spec.key()) is None  # metrics missing

    assert load_entry(tmp_path / "absent.json", spec.key()) is None


def test_sweep_entries_are_readable_through_result_cache(tmp_path):
    """Cross-consumer compatibility: the sweep writes, the cluster reads.

    ``run_sweep(cache_dir=...)`` and :class:`ResultCache` must agree on
    keying and on-disk format — that agreement is what makes the
    router's cache a *cross-worker* tier rather than a private one.
    """
    specs = [_spec(B=1), _spec(B=2)]
    results = run_sweep(specs, root_seed=5, cache_dir=tmp_path)

    cache = ResultCache(tmp_path)
    for spec, result in zip(specs, results):
        assert cache.load(spec.cache_key(5), spec.key()) == result.metrics
    # And the reverse: an entry stored via ResultCache is a sweep hit.
    extra = _spec(B=4)
    cache.store(extra.cache_key(5), extra.key(), {"makespan": 9}, root_seed=5)
    rerun = run_sweep([*specs, extra], root_seed=5, cache_dir=tmp_path)
    assert [r.cached for r in rerun] == [True, True, True]
    assert rerun.trials[2].metrics == {"makespan": 9}
