"""Unit tests for the Section 3.2 lower-bound machinery."""

import numpy as np
import pytest

from repro.core.bounds import butterfly_subset_size
from repro.core.butterfly_lower_bound import (
    collides,
    one_pass_route,
    phase_partition,
    subset_collision_rate,
    truncated_paths,
)
from repro.network.graph import NetworkError
from repro.routing.problems import random_destinations


class TestTruncatedPaths:
    def test_depth_is_min_L_logn(self):
        inst = random_destinations(16, 2, np.random.default_rng(0))
        bf, edges = truncated_paths(16, inst, L=2)
        assert bf.depth == 2
        assert edges.shape == (32, 2)
        bf2, edges2 = truncated_paths(16, inst, L=100)
        assert bf2.depth == 4

    def test_rejects_zero_depth(self):
        inst = random_destinations(16, 1, np.random.default_rng(0))
        with pytest.raises(NetworkError):
            truncated_paths(16, inst, L=0)


class TestCollides:
    def test_no_collision_disjoint(self):
        m = np.array([[0, 1], [2, 3]])
        assert not collides(m, B=1)

    def test_collision_when_b_plus_1_share(self):
        m = np.array([[0, 1], [0, 2], [0, 3]])
        assert collides(m, B=1)
        assert collides(m, B=2)
        assert not collides(m, B=3)

    def test_duplicate_edges_within_row_count_once(self):
        # Message 0 uses edge 0 twice; that is still only one message on
        # the edge, so no B=2 collision (which needs 3 distinct messages).
        m = np.array([[0, 0], [0, 1]])
        assert collides(m, B=1)  # two distinct messages share edge 0
        assert not collides(m, B=2)

    def test_empty(self):
        assert not collides(np.empty((0, 3), dtype=np.int64), B=1)


class TestSubsetCollisionRate:
    def test_rate_bounds(self, rng):
        inst = random_destinations(16, 4, rng)
        _, edges = truncated_paths(16, inst, L=4)
        rate = subset_collision_rate(edges, s=20, B=1, trials=30, rng=rng)
        assert 0.0 <= rate <= 1.0

    def test_large_subsets_collide_more(self, rng):
        inst = random_destinations(32, 4, rng)
        _, edges = truncated_paths(32, inst, L=5)
        small = subset_collision_rate(edges, s=3, B=1, trials=60, rng=np.random.default_rng(0))
        large = subset_collision_rate(edges, s=60, B=1, trials=60, rng=np.random.default_rng(0))
        assert large >= small

    def test_whole_set_must_collide_beyond_capacity(self, rng):
        """nq messages over n log n edges with nq >> B e: full set collides."""
        inst = random_destinations(16, 8, rng)
        _, edges = truncated_paths(16, inst, L=4)
        assert collides(edges, B=1)

    def test_rejects_oversized_subset(self, rng):
        inst = random_destinations(8, 1, rng)
        _, edges = truncated_paths(8, inst, L=3)
        with pytest.raises(NetworkError):
            subset_collision_rate(edges, s=100, B=1, trials=5, rng=rng)


class TestStripDecomposition:
    def test_strips_cover_depth(self):
        from repro.core.butterfly_lower_bound import strip_decomposition
        from repro.network.butterfly import Butterfly

        bf = Butterfly(256, depth=8)
        strips = strip_decomposition(bf)
        assert strips[0][0] == 0
        assert strips[-1][1] == 8
        for (a, b), (c, d) in zip(strips[:-1], strips[1:]):
            assert b == c
            assert b > a

    def test_strip_widths_are_log_m(self):
        from repro.core.butterfly_lower_bound import strip_decomposition
        from repro.network.butterfly import Butterfly

        bf = Butterfly(256)  # log n = 8, m = log n -> log m = 3
        strips = strip_decomposition(bf)
        widths = [b - a for a, b in strips]
        assert widths[0] == 3
        assert sum(widths) == 8

    def test_collision_counts_grow_with_load(self, rng):
        from repro.core.butterfly_lower_bound import strip_collision_counts

        light = random_destinations(64, 1, np.random.default_rng(0))
        heavy = random_destinations(64, 8, np.random.default_rng(0))
        bf_l, e_l = truncated_paths(64, light, L=6)
        bf_h, e_h = truncated_paths(64, heavy, L=6)
        light_counts = strip_collision_counts(bf_l, e_l, B=1)
        heavy_counts = strip_collision_counts(bf_h, e_h, B=1)
        assert sum(heavy_counts) > sum(light_counts)

    def test_no_collisions_when_disjoint(self):
        from repro.core.butterfly_lower_bound import strip_collision_counts
        from repro.network.butterfly import Butterfly

        bf = Butterfly(16)
        idx = np.arange(16, dtype=np.int64)
        edges = bf.path_edges_batch(idx, idx)  # straight-through, disjoint
        assert strip_collision_counts(bf, edges, B=1) == [0, 0]


class TestPhasePartition:
    def test_buckets(self):
        t = np.array([3, 3 + 7, 3 + 14, -1])
        phases = phase_partition(t, l=3, L=7)
        assert list(phases) == [0, 1, 2, -1]

    def test_early_arrivals_clamped(self):
        phases = phase_partition(np.array([1]), l=5, L=4)
        assert phases[0] == 0


class TestOnePassRoute:
    def test_runs_and_delivers(self):
        inst = random_destinations(16, 2, np.random.default_rng(1))
        out = one_pass_route(16, inst, B=1, L=6, seed=0)
        assert out.result.all_delivered
        assert out.l == 4
        assert out.s_bound == butterfly_subset_size(16, 2, 6, 1)

    def test_measured_time_exceeds_serial_floor(self):
        """Random destinations at q = 4 congest heavily; the one-pass
        time must exceed the unobstructed L + l - 1."""
        inst = random_destinations(16, 4, np.random.default_rng(2))
        out = one_pass_route(16, inst, B=1, L=6, seed=0)
        assert out.measured_time > 6 + out.l - 1

    def test_more_channels_faster(self):
        inst = random_destinations(32, 4, np.random.default_rng(3))
        t1 = one_pass_route(32, inst, B=1, L=8, seed=0).measured_time
        t3 = one_pass_route(32, inst, B=3, L=8, seed=0).measured_time
        assert t3 < t1
