"""Statistical validation of the Section 3.1 lemmas.

The correctness of Theorem 3.1.1 rests on a chain of w.h.p. lemmas; we
validate each empirically with seed sweeps:

* **Invariant 3.1.2** — after the copying step of each round, at most
  ``q`` messages originate at any input / target any output;
* **Lemma 3.1.4** — with ``Delta = beta q log^(1/B) n / B`` colors, at
  least ``3q/4`` of each input's ``q`` messages pick distinct colors;
* **Lemma 3.1.5 / Theorem 3.1.6** — at most ``q/2`` messages per input
  remain undelivered after a round (so copying preserves the invariant);
* **Theorem 3.1.1 (w.h.p. delivery)** — every message is delivered
  within the paper's ``2 log log(nq) + 1`` rounds across many seeds.
"""

import numpy as np

from repro.core.bounds import num_colors, num_rounds
from repro.core.butterfly_routing import ButterflyRouter
from repro.routing.problems import random_q_relation

N, Q = 64, 6


class TestInvariant312:
    def test_per_input_output_load_bounded(self):
        """Max copies per input/output never exceed q after copying.

        The lemma needs a "sufficiently large" color constant beta; at
        simulator scale beta = 3 suffices (beta = 1 is borderline: a few
        inputs occasionally retain > q/2 undelivered copies).
        """
        violations = 0
        for seed in range(10):
            inst = random_q_relation(N, Q, np.random.default_rng(seed))
            router = ButterflyRouter(N, B=1, message_length=4, beta=3.0, seed=seed)
            out = router.route(inst)
            assert out.all_delivered
            for r in out.rounds:
                if r.max_copies_per_input > Q or r.max_copies_per_output > Q:
                    violations += 1
        assert violations == 0

    def test_small_beta_breaks_the_invariant(self):
        """Sanity: beta = 1 occasionally violates the invariant — the
        constant genuinely matters, as the proof's "sufficiently large
        beta" indicates."""
        worst = 0
        for seed in range(10):
            inst = random_q_relation(N, Q, np.random.default_rng(seed))
            out = ButterflyRouter(N, B=1, message_length=4, beta=1.0, seed=seed).route(inst)
            for r in out.rounds:
                worst = max(worst, r.max_copies_per_input)
        assert worst > Q


class TestLemma314:
    def test_three_quarters_distinct_colors(self):
        """q messages picking from Delta colors: >= 3q/4 distinct w.h.p."""
        delta = num_colors(N, Q, B=1)
        rng = np.random.default_rng(0)
        failures = 0
        trials = 400
        for _ in range(trials):
            colors = rng.integers(0, delta, size=Q)
            if np.unique(colors).size < (3 * Q) // 4:
                failures += 1
        assert failures / trials < 0.05

    def test_small_delta_fails_the_lemma(self):
        """Sanity: with too few colors the property breaks down —
        the lemma genuinely needs Delta ~ q log^(1/B) n."""
        rng = np.random.default_rng(1)
        q, delta = 8, 2
        failures = sum(
            np.unique(rng.integers(0, delta, size=q)).size < (3 * q) // 4
            for _ in range(200)
        )
        assert failures == 200  # 2 colors can never give 6 distinct


class TestLemma315:
    def test_half_clear_per_round(self):
        """At most q/2 per input remain after each round, w.h.p."""
        bad_rounds = 0
        total_rounds = 0
        for seed in range(8):
            inst = random_q_relation(N, Q, np.random.default_rng(100 + seed))
            router = ButterflyRouter(N, B=1, message_length=4, beta=3.0, seed=seed)
            out = router.route(inst)
            for prev, cur in zip(out.rounds[:-1], out.rounds[1:]):
                total_rounds += 1
                # Copies entering round i+1 = 2 * remaining after round i;
                # the invariant needs remaining <= q/2 per input, i.e.
                # copies <= q per input — already checked via max_copies.
                if cur.max_copies_per_input > Q:
                    bad_rounds += 1
        assert bad_rounds == 0
        assert total_rounds > 0


class TestTheorem311Whp:
    def test_delivery_within_paper_rounds_across_seeds(self):
        paper_rounds = num_rounds(N, Q)
        for seed in range(15):
            inst = random_q_relation(N, Q, np.random.default_rng(200 + seed))
            router = ButterflyRouter(N, B=2, message_length=6, seed=seed)
            out = router.route(inst, max_rounds=paper_rounds)
            assert out.all_delivered, f"seed {seed} failed within paper rounds"

    def test_round_count_far_below_paper_bound_in_practice(self):
        paper_rounds = num_rounds(N, Q)
        inst = random_q_relation(N, Q, np.random.default_rng(7))
        out = ButterflyRouter(N, B=2, message_length=6, seed=0).route(inst)
        assert out.num_rounds_used <= max(3, paper_rounds // 2)
