"""Unit tests for the Benes routing facade (Waksman [48])."""

import numpy as np
import pytest

from repro.core.benes_routing import (
    route_permutation_benes,
    route_q_relation_benes,
)
from repro.network.graph import NetworkError


class TestPermutation:
    @pytest.mark.parametrize("n", [4, 16, 32])
    def test_exact_unobstructed_time(self, n, rng):
        perm = rng.permutation(n)
        L = 7
        res = route_permutation_benes(perm, message_length=L)
        log_n = n.bit_length() - 1
        assert res.makespan == L + 2 * log_n - 1
        assert res.total_blocked_steps == 0

    def test_identity(self):
        res = route_permutation_benes(np.arange(8), message_length=3)
        assert res.all_delivered

    def test_works_with_extra_channels(self, rng):
        perm = rng.permutation(16)
        res = route_permutation_benes(perm, message_length=5, B=3)
        assert res.all_delivered

    def test_validation(self):
        with pytest.raises(NetworkError):
            route_permutation_benes(np.arange(8), message_length=0)


class TestQRelation:
    def test_batches_pipeline(self, rng):
        n, q, L = 8, 3, 5
        perms = [rng.permutation(n) for _ in range(q)]
        res = route_q_relation_benes(perms, message_length=L)
        assert res.num_messages == q * n
        assert res.all_delivered
        # Pipelined batches: last batch starts (q-1)(L+1) late.
        log_n = n.bit_length() - 1
        assert res.makespan == (q - 1) * (L + 1) + L + 2 * log_n - 1

    def test_pipelined_batches_never_block(self, rng):
        perms = [rng.permutation(16) for _ in range(4)]
        res = route_q_relation_benes(perms, message_length=6)
        assert res.total_blocked_steps == 0

    def test_validation(self, rng):
        with pytest.raises(NetworkError):
            route_q_relation_benes([], message_length=3)
        with pytest.raises(NetworkError):
            route_q_relation_benes(
                [rng.permutation(8), rng.permutation(4)], message_length=3
            )
