"""Unit tests for multibutterfly wormhole routing ([3])."""

import numpy as np
import pytest

from repro.core.multibutterfly_routing import MultibutterflyRouter
from repro.network.graph import NetworkError
from repro.network.multibutterfly import Multibutterfly
from repro.routing.problems import random_permutation, transpose_permutation


@pytest.fixture
def mbf16():
    return Multibutterfly(16, d=2, rng=np.random.default_rng(0))


class TestRouting:
    def test_permutation_delivered(self, mbf16):
        inst = random_permutation(16, np.random.default_rng(1))
        router = MultibutterflyRouter(mbf16, 1, seed=0)
        res = router.run(inst, message_length=5)
        assert res.all_delivered

    def test_single_message_unobstructed(self, mbf16):
        from repro.routing.problems import RoutingInstance

        inst = RoutingInstance(
            16, np.array([3], dtype=np.int64), np.array([11], dtype=np.int64)
        )
        res = MultibutterflyRouter(mbf16, 1).run(inst, message_length=6)
        assert res.makespan == 6 + 4 - 1  # L + log n - 1

    def test_time_near_l_plus_logn(self):
        """[3]'s O(L + log n) shape across n at d = 2, B = 1."""
        L = 8
        ratios = []
        for n in (16, 64, 256):
            mbf = Multibutterfly(n, d=2, rng=np.random.default_rng(n))
            inst = random_permutation(n, np.random.default_rng(n + 1))
            res = MultibutterflyRouter(mbf, 1, seed=0).run(inst, L)
            assert res.all_delivered
            ratios.append(res.makespan / (L + mbf.log_n))
        assert max(ratios) < 6.0
        assert max(ratios) / min(ratios) < 3.0

    def test_diversity_beats_d1(self):
        """d = 2 path diversity lowers blocking vs a randomly-wired
        d = 1 'butterfly' on the same traffic."""
        n, L = 64, 8
        inst = transpose_permutation(n)
        spans = {}
        for d in (1, 2, 3):
            mbf = Multibutterfly(n, d=d, rng=np.random.default_rng(4))
            res = MultibutterflyRouter(mbf, 1, seed=0).run(inst, L)
            assert res.all_delivered
            spans[d] = res.makespan
        assert spans[2] <= spans[1]
        assert spans[3] <= spans[1]

    def test_more_channels_help(self, mbf16):
        inst = random_permutation(16, np.random.default_rng(3))
        t1 = MultibutterflyRouter(mbf16, 1, seed=0).run(inst, 8).makespan
        t2 = MultibutterflyRouter(mbf16, 2, seed=0).run(inst, 8).makespan
        assert t2 <= t1

    def test_validation(self, mbf16):
        inst = random_permutation(8, np.random.default_rng(0))
        with pytest.raises(NetworkError):
            MultibutterflyRouter(mbf16).run(inst, 4)
        inst16 = random_permutation(16, np.random.default_rng(0))
        with pytest.raises(NetworkError):
            MultibutterflyRouter(mbf16).run(inst16, 0)
        with pytest.raises(NetworkError):
            MultibutterflyRouter(mbf16, 0)

    def test_reproducible(self, mbf16):
        inst = random_permutation(16, np.random.default_rng(5))
        a = MultibutterflyRouter(mbf16, 1, seed=9).run(inst, 4)
        b = MultibutterflyRouter(mbf16, 1, seed=9).run(inst, 4)
        assert np.array_equal(a.completion_times, b.completion_times)
