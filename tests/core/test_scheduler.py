"""Unit tests for the Theorem 2.1.6 scheduler and the footnote-5 baseline."""

import numpy as np
import pytest

from repro.core import bounds
from repro.core.schedule import execute_schedule
from repro.core.scheduler import (
    greedy_conflict_coloring,
    lll_schedule,
    naive_coloring_schedule,
)
from repro.network.random_networks import chain_bundle, layered_network, random_walk_paths
from repro.routing.paths import congestion, dilation, paths_from_node_walks


class TestGreedyConflictColoring:
    def test_conflicting_worms_get_distinct_colors(self):
        net, walks = chain_bundle(1, 3, 4)
        paths = paths_from_node_walks(net, walks)
        colors = greedy_conflict_coloring(paths)
        assert len(set(colors)) == 4  # all share every edge

    def test_disjoint_worms_share_colors(self):
        net, walks = chain_bundle(4, 3, 1)
        paths = paths_from_node_walks(net, walks)
        colors = greedy_conflict_coloring(paths)
        assert set(colors) == {0}

    def test_color_count_within_footnote5_bound(self, layered_workload):
        net, paths = layered_workload
        colors = greedy_conflict_coloring(paths)
        C, D = congestion(paths), dilation(paths)
        assert colors.max() + 1 <= D * (C - 1) + 1


class TestNaiveSchedule:
    def test_executes_validly_at_b1(self, layered_workload):
        net, paths = layered_workload
        build = naive_coloring_schedule(paths, message_length=8)
        res = execute_schedule(net, paths, build.schedule, B=1)
        assert res.all_delivered
        assert res.total_blocked_steps == 0

    def test_length_within_footnote5_bound(self, layered_workload):
        net, paths = layered_workload
        build = naive_coloring_schedule(paths, message_length=8)
        C, D = build.congestion, build.dilation
        assert build.length_bound <= (8 + D) * (D * (C - 1) + 1)


class TestLllSchedule:
    @pytest.mark.parametrize("B", [1, 2, 3])
    def test_schedule_validates_on_simulator(self, B, layered_workload):
        net, paths = layered_workload
        build = lll_schedule(paths, message_length=8, B=B, mode="direct")
        res = execute_schedule(net, paths, build.schedule, B=B)
        assert res.all_delivered
        assert res.total_blocked_steps == 0
        assert res.makespan <= build.length_bound

    def test_trivial_when_c_below_b(self):
        net, walks = chain_bundle(3, 4, 2)
        paths = paths_from_node_walks(net, walks)
        build = lll_schedule(paths, message_length=5, B=2)
        assert build.num_classes == 1
        assert build.length_bound == 5 + 4 - 1

    def test_more_channels_shorter_schedules(self, rng):
        """The paper's point: B shrinks the schedule superlinearly."""
        net = layered_network(10, 8, 3, rng)
        walks = random_walk_paths(net, 10, 8, 120, rng)
        paths = paths_from_node_walks(net, walks)
        lengths = {}
        for B in (1, 2, 4):
            build = lll_schedule(
                paths, message_length=16, B=B,
                rng=np.random.default_rng(0), mode="direct",
            )
            lengths[B] = build.length_bound
        assert lengths[1] > lengths[2] > lengths[4]

    def test_class_count_within_theorem_bound(self, rng):
        """kappa <= O(C (D log D)^(1/B) / B) with a generous constant."""
        net = layered_network(10, 8, 3, rng)
        walks = random_walk_paths(net, 10, 8, 100, rng)
        paths = paths_from_node_walks(net, walks)
        C, D = congestion(paths), dilation(paths)
        for B in (1, 2):
            build = lll_schedule(
                paths, message_length=8, B=B,
                rng=np.random.default_rng(1), mode="direct",
            )
            assert build.num_classes <= 8 * bounds.color_classes_bound(C, D, B)

    def test_theory_mode_also_validates(self):
        net, walks = chain_bundle(1, 4, 3)
        paths = paths_from_node_walks(net, walks)
        build = lll_schedule(
            paths, message_length=5, B=1,
            rng=np.random.default_rng(2), mode="theory",
        )
        res = execute_schedule(net, paths, build.schedule, B=1)
        assert res.all_delivered and res.total_blocked_steps == 0

    def test_provenance_fields(self, layered_workload):
        net, paths = layered_workload
        build = lll_schedule(paths, message_length=8, B=1, mode="direct")
        assert build.congestion == congestion(paths)
        assert build.dilation == dilation(paths)
        assert build.trace is not None
        assert build.num_classes == build.schedule.num_classes

    def test_raw_edge_lists_accepted(self):
        build = lll_schedule([[0, 1], [0, 1], [2, 3]], message_length=4, B=1)
        assert build.congestion == 2
        assert build.num_classes == 2


class TestGreedyColoringVectorization:
    """The vectorized coloring must equal the set-based formulation."""

    @staticmethod
    def _reference(paths):
        from collections import defaultdict

        from repro.core.coloring import MessageEdgeIncidence

        inc = MessageEdgeIncidence.from_paths(paths)
        M = inc.num_messages
        by_edge = defaultdict(list)
        for m, e in zip(inc.message_ids, inc.edge_ids):
            by_edge[int(e)].append(int(m))
        neighbors = [set() for _ in range(M)]
        for msgs in by_edge.values():
            for i, a in enumerate(msgs):
                for b in msgs[i + 1 :]:
                    neighbors[a].add(b)
                    neighbors[b].add(a)
        colors = np.full(M, -1, dtype=np.int64)
        for m in sorted(range(M), key=lambda m: -len(neighbors[m])):
            used = {int(colors[v]) for v in neighbors[m] if colors[v] >= 0}
            c = 0
            while c in used:
                c += 1
            colors[m] = c
        return colors

    def test_matches_reference_on_random_instances(self):
        rng = np.random.default_rng(7)
        for _ in range(60):
            M = int(rng.integers(0, 20))
            paths = [
                list(rng.choice(10, size=int(rng.integers(0, 6)), replace=False))
                for _ in range(M)
            ]
            got = greedy_conflict_coloring(paths)
            want = self._reference(paths)
            assert np.array_equal(got, want), paths

    def test_matches_reference_on_layered_workload(self, layered_workload):
        _, paths = layered_workload
        assert np.array_equal(
            greedy_conflict_coloring(paths), self._reference(paths)
        )

    def test_degenerate_shapes(self):
        assert greedy_conflict_coloring([]).tolist() == []
        assert greedy_conflict_coloring([[]]).tolist() == [0]
        assert greedy_conflict_coloring([[0], [0], [0]]).tolist() == [0, 1, 2]
