"""Unit tests for randomized two-phase hypercube routing ([1]-style)."""

import numpy as np
import pytest

from repro.core.hypercube_routing import route_hypercube_permutation
from repro.network.graph import NetworkError
from repro.network.hypercube import Hypercube
from repro.routing.problems import random_permutation, transpose_permutation


class TestRouting:
    def test_permutation_delivered(self):
        cube = Hypercube(32)
        inst = random_permutation(32, np.random.default_rng(0))
        out = route_hypercube_permutation(cube, inst, message_length=6, B=2)
        assert out.all_delivered

    def test_identity_is_fast(self):
        """Identity permutation: phase 2 retraces phase 1; both phases
        behave like random one-phase problems."""
        cube = Hypercube(16)
        inst = random_permutation(16, np.random.default_rng(1))
        # Replace with identity.
        inst = type(inst)(16, inst.sources, inst.sources.copy())
        out = route_hypercube_permutation(cube, inst, message_length=4, B=2)
        assert out.all_delivered

    def test_time_scales_like_l_plus_logn(self):
        """Total time stays within a constant of L + 2 log n across n."""
        L = 8
        ratios = []
        for n in (16, 64, 256):
            cube = Hypercube(n)
            inst = random_permutation(n, np.random.default_rng(n))
            out = route_hypercube_permutation(cube, inst, L, B=2, seed=3)
            assert out.all_delivered
            ratios.append(out.total_flit_steps / (L + 2 * cube.dimension))
        assert max(ratios) / min(ratios) < 3.0
        assert max(ratios) < 8.0

    def test_adversarial_transpose_tamed(self):
        """Transpose is adversarial for one-phase bit-fixing (congestion
        sqrt(n)); random intermediates bring congestion down."""
        n = 256
        cube = Hypercube(n)
        inst = transpose_permutation(n)
        out = route_hypercube_permutation(
            cube, inst, message_length=4, B=2, rng=np.random.default_rng(5)
        )
        assert out.all_delivered
        # One-phase transpose congestion is sqrt(n) = 16 on some edge;
        # each random phase stays well below that.
        assert out.congestion_phase1 < 12
        assert out.congestion_phase2 < 12

    def test_more_channels_never_slower(self):
        cube = Hypercube(64)
        inst = random_permutation(64, np.random.default_rng(7))
        t2 = route_hypercube_permutation(cube, inst, 8, B=2, seed=0).total_flit_steps
        t4 = route_hypercube_permutation(cube, inst, 8, B=4, seed=0).total_flit_steps
        assert t4 <= t2

    def test_validation(self):
        cube = Hypercube(16)
        inst = random_permutation(8, np.random.default_rng(0))
        with pytest.raises(NetworkError):
            route_hypercube_permutation(cube, inst, 4)
        inst16 = random_permutation(16, np.random.default_rng(0))
        with pytest.raises(NetworkError):
            route_hypercube_permutation(cube, inst16, 0)

    def test_reproducible(self):
        cube = Hypercube(32)
        inst = random_permutation(32, np.random.default_rng(2))
        a = route_hypercube_permutation(
            cube, inst, 6, B=2, rng=np.random.default_rng(9), seed=1
        )
        b = route_hypercube_permutation(
            cube, inst, 6, B=2, rng=np.random.default_rng(9), seed=1
        )
        assert a.total_flit_steps == b.total_flit_steps
