"""Unit tests for the online random-delay protocol ([13] contrast)."""

import numpy as np
import pytest

from repro.core.online_routing import online_window, route_online_random_delays
from repro.network.random_networks import chain_bundle, layered_network, random_walk_paths
from repro.routing.paths import congestion, dilation, paths_from_node_walks


class TestWindow:
    def test_shape(self):
        assert online_window(C=16, D=16, B=1) == 256
        assert online_window(C=16, D=16, B=2) == 32
        assert online_window(C=16, D=16, B=4) == 8

    def test_monotone_decreasing_in_b(self):
        vals = [online_window(20, 32, B) for B in (1, 2, 3, 4)]
        assert vals == sorted(vals, reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            online_window(0, 1, 1)
        with pytest.raises(ValueError):
            online_window(1, 1, 1, alpha=0)


class TestProtocol:
    @pytest.fixture
    def workload(self, rng):
        net = layered_network(8, 8, 2, rng)
        walks = random_walk_paths(net, 8, 8, 90, rng)
        return net, paths_from_node_walks(net, walks)

    def test_delivers_everything(self, workload):
        net, paths = workload
        res = route_online_random_delays(net, paths, message_length=6, B=2)
        assert res.all_delivered

    def test_within_window_plus_routing_bound(self, workload):
        net, paths = workload
        L = 6
        C, D = congestion(paths), dilation(paths)
        for B in (1, 2):
            res = route_online_random_delays(net, paths, L, B=B, seed=0)
            W = online_window(C, D, B)
            # Start delay <= W*L; then routing finishes in O(LCD) worst case.
            assert res.makespan <= W * L + L * C * D

    def test_explicit_window(self, workload):
        net, paths = workload
        res = route_online_random_delays(
            net, paths, message_length=4, window=1, seed=0
        )
        # Window 1 means no delays at all: equals greedy injection.
        from repro.sim.wormhole import WormholeSimulator

        greedy = WormholeSimulator(net, 1, seed=0).run(paths, 4)
        assert res.makespan == greedy.makespan

    def test_smoothing_reduces_blocking(self):
        net, walks = chain_bundle(2, 6, 10)
        paths = paths_from_node_walks(net, walks)
        plain = route_online_random_delays(
            net, paths, 6, window=1, seed=0
        )
        smoothed = route_online_random_delays(
            net, paths, 6, alpha=1.0, rng=np.random.default_rng(3), seed=0
        )
        assert smoothed.total_blocked_steps < plain.total_blocked_steps

    def test_raw_edge_lists(self):
        net, walks = chain_bundle(1, 3, 4)
        raw = [[e for e in p] for p in
               (pp.edges for pp in paths_from_node_walks(net, walks))]
        res = route_online_random_delays(net, raw, message_length=3, B=2)
        assert res.all_delivered

    def test_reproducible(self, workload):
        net, paths = workload
        a = route_online_random_delays(
            net, paths, 5, rng=np.random.default_rng(1), seed=2
        )
        b = route_online_random_delays(
            net, paths, 5, rng=np.random.default_rng(1), seed=2
        )
        assert np.array_equal(a.completion_times, b.completion_times)
