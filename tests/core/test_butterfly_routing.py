"""Unit tests for the Section 3.1 butterfly algorithm."""

import numpy as np
import pytest

from repro.core.butterfly_routing import ButterflyRouter, arbitrate_levels
from repro.network.butterfly import Butterfly
from repro.network.graph import NetworkError
from repro.routing.problems import (
    random_destinations,
    random_permutation,
    random_q_relation,
)
from repro.sim.wormhole import WormholeSimulator


class TestArbitrateLevels:
    def test_no_contention_all_survive(self, rng):
        edges = np.array([[0, 10], [1, 11], [2, 12]])
        alive = arbitrate_levels(edges, B=1, rng=rng)
        assert alive.all()

    def test_contention_keeps_b_per_edge(self, rng):
        edges = np.array([[5, 10], [5, 11], [5, 12]])
        alive = arbitrate_levels(edges, B=2, rng=rng)
        assert alive.sum() == 2

    def test_sequential_levels_compound(self, rng):
        # Two survive level 0, but they clash again at level 1.
        edges = np.array([[5, 9], [5, 9], [5, 9]])
        alive = arbitrate_levels(edges, B=1, rng=rng)
        assert alive.sum() == 1

    def test_empty(self, rng):
        alive = arbitrate_levels(np.empty((0, 4), dtype=np.int64), 1, rng)
        assert alive.size == 0

    def test_matches_flit_simulator_on_multiplex_bound(self, rng):
        """If at most B same-subround worms share each edge, the generic
        simulator delivers all of them unblocked — the claim that makes
        level-synchronized arbitration exact."""
        n, B, L = 16, 2, 5
        bf = Butterfly(n, passes=2)
        src = rng.integers(0, n, 12)
        mid = rng.integers(0, n, 12)
        dst = rng.integers(0, n, 12)
        edges = bf.two_pass_path_edges_batch(src, mid, dst)
        alive = arbitrate_levels(edges, B, np.random.default_rng(0))
        survivors = edges[alive]
        sim = WormholeSimulator(bf, num_virtual_channels=B, seed=1)
        res = sim.run([list(r) for r in survivors], message_length=L)
        assert res.all_delivered
        assert res.total_blocked_steps == 0
        assert res.makespan == L + 2 * bf.log_n - 1


class TestButterflyRouter:
    def test_permutation_delivered(self):
        router = ButterflyRouter(32, B=1, message_length=4, seed=0)
        inst = random_permutation(32, np.random.default_rng(1))
        out = router.route(inst)
        assert out.all_delivered

    @pytest.mark.parametrize("B", [1, 2, 3])
    def test_q_relation_delivered(self, B):
        router = ButterflyRouter(32, B=B, message_length=4, seed=0)
        inst = random_q_relation(32, 4, np.random.default_rng(2))
        out = router.route(inst)
        assert out.all_delivered

    def test_random_problem_delivered(self):
        router = ButterflyRouter(64, B=2, message_length=8, seed=3)
        inst = random_destinations(64, 3, np.random.default_rng(4))
        out = router.route(inst)
        assert out.all_delivered

    def test_round_accounting(self):
        router = ButterflyRouter(32, B=1, message_length=4, seed=0)
        inst = random_q_relation(32, 2, np.random.default_rng(5))
        out = router.route(inst)
        assert out.num_rounds_used == len(out.rounds)
        assert out.total_flit_steps == sum(r.flit_steps for r in out.rounds)
        # Round cost: (L + 1) * Delta + 2 * 2 log n (subrounds pipeline
        # L + 1 apart; see the pipelining integration test).
        r0 = out.rounds[0]
        assert r0.flit_steps == (4 + 1) * r0.num_colors + 4 * 5

    def test_copies_double_each_round(self):
        router = ButterflyRouter(16, B=1, message_length=2, seed=0)
        inst = random_q_relation(16, 4, np.random.default_rng(6))
        out = router.route(inst)
        for prev, cur in zip(out.rounds[:-1], out.rounds[1:]):
            assert cur.num_candidates == 2 * prev.originals_remaining

    def test_more_channels_fewer_flit_steps(self):
        """The headline: B speeds the router up (fewer colors needed)."""
        inst = random_q_relation(64, 8, np.random.default_rng(7))
        steps = {}
        for B in (1, 2, 4):
            router = ButterflyRouter(64, B=B, message_length=16, seed=0)
            steps[B] = router.route(inst).total_flit_steps
        assert steps[1] > steps[2] > steps[4]

    def test_wrong_instance_size_rejected(self):
        router = ButterflyRouter(16, seed=0)
        inst = random_permutation(8, np.random.default_rng(0))
        with pytest.raises(NetworkError):
            router.route(inst)

    def test_validation(self):
        with pytest.raises(NetworkError):
            ButterflyRouter(16, B=0)
        with pytest.raises(NetworkError):
            ButterflyRouter(16, message_length=0)

    def test_theorem_b_range_flag(self):
        assert ButterflyRouter(1 << 16, B=1).b_within_theorem
        assert not ButterflyRouter(16, B=5).b_within_theorem

    def test_reproducible(self):
        inst = random_q_relation(32, 3, np.random.default_rng(9))
        a = ButterflyRouter(32, B=2, seed=11).route(inst)
        b = ButterflyRouter(32, B=2, seed=11).route(inst)
        assert a.total_flit_steps == b.total_flit_steps
        assert [r.num_survivors for r in a.rounds] == [
            r.num_survivors for r in b.rounds
        ]

    def test_max_rounds_cap(self):
        router = ButterflyRouter(16, B=1, message_length=2, seed=0)
        inst = random_q_relation(16, 8, np.random.default_rng(10))
        out = router.route(inst, max_rounds=1)
        assert out.num_rounds_used == 1

    def test_duplicate_small_q_replicates_traffic(self):
        """Literal duplication (the paper's q < log n treatment): a
        permutation on n=64 is replicated to ~log n copies per input,
        raising round-0 candidate counts and per-round success odds."""
        inst = random_permutation(64, np.random.default_rng(3))
        plain = ButterflyRouter(64, B=1, seed=0).route(
            inst, duplicate_small_q=False
        )
        dup = ButterflyRouter(64, B=1, seed=0).route(
            inst, duplicate_small_q=True
        )
        assert dup.all_delivered
        assert dup.rounds[0].num_candidates == 6 * plain.rounds[0].num_candidates
        assert dup.num_rounds_used <= plain.num_rounds_used

    def test_pad_small_q_affects_colors(self):
        inst = random_permutation(64, np.random.default_rng(11))
        padded = ButterflyRouter(64, B=1, seed=0).route(inst, pad_small_q=True)
        raw = ButterflyRouter(64, B=1, seed=0).route(inst, pad_small_q=False)
        assert padded.rounds[0].num_colors >= raw.rounds[0].num_colors
