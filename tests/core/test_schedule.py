"""Unit tests for the schedule object and its simulator validation."""

import numpy as np
import pytest

from repro.core.schedule import ColorClassSchedule, execute_schedule
from repro.network.graph import NetworkError
from repro.network.random_networks import chain_bundle
from repro.routing.paths import paths_from_node_walks


def chain_setup(per_chain, depth=4):
    net, walks = chain_bundle(1, depth, per_chain)
    return net, paths_from_node_walks(net, walks)


class TestColorClassSchedule:
    def test_canonical_phase(self):
        s = ColorClassSchedule.from_colors(np.array([0, 1, 2]), 5, 4)
        assert s.phase_length == 5 + 4 - 1
        assert s.num_classes == 3
        assert s.length_bound == 24
        assert list(s.release_times()) == [0, 8, 16]

    def test_zero_dilation(self):
        s = ColorClassSchedule.from_colors(np.array([0]), 5, 0)
        assert s.phase_length == 5

    def test_validation(self):
        with pytest.raises(NetworkError):
            ColorClassSchedule(np.array([-1]), 3, 2, 4)
        with pytest.raises(NetworkError):
            ColorClassSchedule(np.array([0]), 3, 2, 0)

    def test_empty(self):
        s = ColorClassSchedule.from_colors(np.zeros(0, np.int64), 3, 2)
        assert s.num_classes == 0
        assert s.length_bound == 0


class TestExecuteSchedule:
    def test_valid_schedule_runs_unblocked(self):
        net, paths = chain_setup(per_chain=3)
        s = ColorClassSchedule.from_colors(np.array([0, 1, 2]), 6, 4)
        res = execute_schedule(net, paths, s, B=1)
        assert res.all_delivered
        assert res.total_blocked_steps == 0
        assert res.makespan <= s.length_bound

    def test_b2_packs_two_per_class(self):
        net, paths = chain_setup(per_chain=4)
        s = ColorClassSchedule.from_colors(np.array([0, 0, 1, 1]), 6, 4)
        res = execute_schedule(net, paths, s, B=2)
        assert res.makespan == 2 * (6 + 4 - 1)

    def test_invalid_schedule_rejected(self):
        """Two same-class worms on one edge at B = 1 must block."""
        net, paths = chain_setup(per_chain=2)
        s = ColorClassSchedule.from_colors(np.array([0, 0]), 6, 4)
        with pytest.raises(NetworkError, match="blocked"):
            execute_schedule(net, paths, s, B=1)

    def test_unblocked_check_optional(self):
        net, paths = chain_setup(per_chain=2)
        s = ColorClassSchedule.from_colors(np.array([0, 0]), 6, 4)
        res = execute_schedule(net, paths, s, B=1, require_unblocked=False)
        assert res.all_delivered  # blocked but eventually done
        assert res.total_blocked_steps > 0
