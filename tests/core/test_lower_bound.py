"""Unit tests for the Theorem 2.2.1 hard instance."""

import math
from itertools import combinations

import numpy as np
import pytest

from repro.core.lower_bound import (
    build_hard_instance,
    hard_instance_lower_bound,
    max_m_prime,
)
from repro.network.graph import NetworkError
from repro.routing.paths import Path
from repro.sim.wormhole import WormholeSimulator
from repro.telemetry import TraceSnapshotCollector


class TestMaxMPrime:
    def test_b1_values(self):
        """B = 1: 2 C(M'-1, 1) - 1 <= D means M' <= (D+1)/2 + 1."""
        assert max_m_prime(D=9, B=1) == 6
        assert max_m_prime(D=10, B=1) == 6
        assert max_m_prime(D=11, B=1) == 7

    def test_b2_values(self):
        # 2 C(M'-1, 2) - 1 <= D
        assert max_m_prime(D=11, B=2) == 5  # 2*C(4,2)-1 = 11
        assert max_m_prime(D=19, B=2) == 6  # 2*C(5,2)-1 = 19

    def test_feasibility_invariant(self):
        for B in (1, 2, 3):
            for D in range(B + 1, 40):
                m = max_m_prime(D, B)
                assert 2 * math.comb(m - 1, B) - 1 <= D
                assert 2 * math.comb(m, B) - 1 > D

    def test_requires_d_at_least_b_plus_1(self):
        with pytest.raises(NetworkError):
            max_m_prime(D=2, B=2)


class TestConstruction:
    @pytest.mark.parametrize("B", [1, 2])
    def test_parameters_met(self, B):
        C, D = 3 * (B + 1), 15
        inst = build_hard_instance(C=C, D=D, B=B)
        assert inst.congestion == C
        assert inst.dilation == D  # padded
        assert inst.num_messages == (C // (B + 1)) * inst.m_prime

    def test_actual_congestion_matches(self):
        inst = build_hard_instance(C=6, D=11, B=1)
        from collections import Counter

        counts = Counter()
        for p in inst.paths:
            counts.update(p)
        assert max(counts.values()) == 6
        # Primary edges carry exactly C messages.
        for e in inst.primary_edges:
            assert counts[e] == 6

    def test_every_subset_shares_a_primary_edge(self):
        """The defining property: every B+1 base messages meet somewhere."""
        for B in (1, 2):
            inst = build_hard_instance(C=B + 1, D=15, B=B)
            base_paths = {}
            for path, base in zip(inst.paths, inst.base_message_of):
                base_paths.setdefault(int(base), set(path))
            for subset in combinations(range(inst.m_prime), B + 1):
                shared = set.intersection(*(base_paths[m] for m in subset))
                assert shared & set(inst.primary_edges)

    def test_paths_edge_simple_and_valid(self):
        inst = build_hard_instance(C=4, D=11, B=1)
        for edges in inst.paths:
            assert len(set(edges)) == len(edges)
            Path.from_edges(inst.network, edges)  # validates continuity

    def test_unpadded_dilation(self):
        inst = build_hard_instance(C=4, D=11, B=1, pad_to_dilation=False)
        m = inst.m_prime
        assert inst.dilation == 2 * math.comb(m - 1, 1) - 1

    def test_network_is_acyclic(self):
        """Lexicographic subset order makes the construction deadlock-free."""
        inst = build_hard_instance(C=4, D=11, B=1)
        assert inst.network.is_acyclic()

    def test_congestion_floor(self):
        with pytest.raises(NetworkError):
            build_hard_instance(C=1, D=10, B=1)


class TestLowerBoundBehavior:
    def test_bound_formula(self):
        inst = build_hard_instance(C=4, D=11, B=1)
        L = 22
        assert hard_instance_lower_bound(inst, L) == (22 - 11) * inst.num_messages

    def test_requires_long_messages(self):
        inst = build_hard_instance(C=4, D=11, B=1)
        with pytest.raises(NetworkError):
            hard_instance_lower_bound(inst, L=11)

    @pytest.mark.parametrize("B", [1, 2])
    def test_simulation_respects_bound(self, B):
        """Measured routing time meets the Omega bound (any schedule must)."""
        inst = build_hard_instance(C=2 * (B + 1), D=15, B=B)
        L = inst.recommended_length()
        sim = WormholeSimulator(inst.network, num_virtual_channels=B, seed=0)
        res = sim.run(inst.paths, message_length=L)
        assert res.all_delivered
        assert res.makespan >= hard_instance_lower_bound(inst, L)

    @pytest.mark.parametrize("B", [1, 2])
    def test_progress_argument_holds_mechanically(self, B):
        """The proof's central claim, verified on the simulator trace:
        at most B messages *make progress* in any flit step.

        A message makes progress when it moves and one of its first
        ``L - D`` flits reaches the destination — i.e. its move counter
        lands in ``[D, L-1]``.  Such a worm occupies every edge of its
        path, and every ``B+1`` messages share a primary edge with only
        ``B`` slots, so at most ``B`` can progress simultaneously.
        """
        inst = build_hard_instance(C=2 * (B + 1), D=11, B=B)
        L = inst.recommended_length()
        sim = WormholeSimulator(inst.network, num_virtual_channels=B, seed=0)
        snapshot = TraceSnapshotCollector()
        res = sim.run(inst.paths, message_length=L, telemetry=[snapshot])
        assert res.all_delivered
        trace = snapshot.matrix
        D = inst.dilation
        prev = np.zeros(trace.shape[1], dtype=np.int64)
        worst = 0
        for row in trace:
            moved = row > prev
            in_window = (row >= D) & (row <= L - 1)
            worst = max(worst, int((moved & in_window).sum()))
            prev = np.maximum(row, prev)
        assert worst <= B

    def test_extra_channels_beat_the_b_instance(self):
        """Routing the B=1 hard instance with more VCs is much faster —
        the superlinear speedup the paper quantifies."""
        inst = build_hard_instance(C=6, D=15, B=1)
        L = inst.recommended_length()
        t = {}
        for B_run in (1, 2, 3):
            sim = WormholeSimulator(inst.network, B_run, seed=0)
            t[B_run] = sim.run(inst.paths, message_length=L).makespan
        assert t[1] > t[2] > t[3]
