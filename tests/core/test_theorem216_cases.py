"""The Theorem 2.1.6 case analysis, exercised path by path.

The theorem's proof splits on how ``C`` compares with ``log D`` and
``D``:

* **Case 1** (``C <= log D``): one refinement stage straight to ``B``;
* **Case 2a** (``log D < C <= D``): two stages, ``C -> log D -> B``;
* **Case 2** (``C > D``): iterate case 3 down to ``<= D``, then case 2,
  then case 1.

These tests run the paper's ``theory``-mode cascade on instances sized
into each regime and assert the executed stage sequence matches the
proof's, with the final multiplex size ``<= B`` always.
"""

import numpy as np
import pytest

from repro.core.coloring import (
    MessageEdgeIncidence,
    multiplex_size,
    reduce_multiplex_size,
)
from repro.network.random_networks import chain_bundle
from repro.routing.paths import paths_from_node_walks


def chain_paths(depth, per_chain):
    net, walks = chain_bundle(1, depth, per_chain)
    return paths_from_node_walks(net, walks)


def run_theory(paths, B, seed=0):
    return reduce_multiplex_size(
        paths, B=B, rng=np.random.default_rng(seed), mode="theory"
    )


class TestCase1:
    def test_c_below_log_d_single_stage(self):
        """C = 3 <= log D = 3 (D = 8): exactly one case-1 stage."""
        paths = chain_paths(depth=8, per_chain=3)
        trace = run_theory(paths, B=1)
        assert [s.case for s in trace.stages] == [1]
        inc = MessageEdgeIncidence.from_paths(paths)
        assert multiplex_size(inc, trace.colors) <= 1

    def test_case1_r_is_paper_formula(self):
        """The executed r equals 3e (D ms)^(1/B) ms / B (no doublings)."""
        import math

        paths = chain_paths(depth=8, per_chain=3)
        trace = run_theory(paths, B=1)
        stage = trace.stages[0]
        expected = math.ceil(3 * math.e * (8 * 3) * 3)
        assert stage.r == expected
        assert stage.resample_doublings == 0


class TestCase2a:
    def test_logd_below_c_below_d_starts_with_case2(self):
        """log D = 3 < C = 6 <= D = 8: the cascade starts at case 2 with
        target log D.  (The paper's generous r often *overshoots* the
        target on small instances — the stage may land below B directly,
        making the follow-up case-1 stage unnecessary; the proof only
        needs each stage to reach *at most* its target.)"""
        paths = chain_paths(depth=8, per_chain=6)
        trace = run_theory(paths, B=1)
        first = trace.stages[0]
        assert first.case == 2
        assert first.mf_target == 3  # floor(log2 8)
        assert first.ms_after <= first.mf_target
        inc = MessageEdgeIncidence.from_paths(paths)
        assert multiplex_size(inc, trace.colors) <= 1


class TestCase2Full:
    def test_c_above_d_cascades_through_case3(self):
        """C = 12 > D = 4: the cascade starts with case-3 stages and the
        case sequence never goes backwards (3s, then 2s, then possibly
        1s — later cases may be skipped when a stage overshoots)."""
        paths = chain_paths(depth=4, per_chain=12)
        trace = run_theory(paths, B=1)
        cases = [s.case for s in trace.stages]
        assert cases[0] == 3
        order = {3: 0, 2: 1, 1: 2}
        ranks = [order[c] for c in cases]
        assert ranks == sorted(ranks)
        # Every stage meets its own target.
        for s in trace.stages:
            assert s.ms_after <= s.mf_target
        inc = MessageEdgeIncidence.from_paths(paths)
        assert multiplex_size(inc, trace.colors) <= 1

    def test_multiplex_monotone_through_cascade(self):
        paths = chain_paths(depth=4, per_chain=12)
        trace = run_theory(paths, B=1)
        values = [trace.stages[0].ms_before] + [s.ms_after for s in trace.stages]
        assert values == sorted(values, reverse=True)
        assert values[0] == 12
        assert values[-1] <= 1


class TestTrivialCase:
    def test_c_at_most_b_needs_no_stages(self):
        paths = chain_paths(depth=4, per_chain=2)
        trace = run_theory(paths, B=2)
        assert trace.stages == ()


class TestCaseBoundaries:
    @pytest.mark.parametrize("B", [1, 2])
    def test_every_regime_ends_at_b(self, B):
        for depth, per_chain in [(8, 3), (8, 6), (4, 12)]:
            if per_chain <= B:
                continue
            paths = chain_paths(depth, per_chain)
            trace = run_theory(paths, B=B, seed=B)
            inc = MessageEdgeIncidence.from_paths(paths)
            assert multiplex_size(inc, trace.colors) <= B
