"""Unit tests for the closed-form theorem bounds."""

import math

import pytest

from repro.core import bounds


class TestHelpers:
    def test_log2c_clamps(self):
        assert bounds.log2c(0.5) == 1.0
        assert bounds.log2c(2.0) == 1.0
        assert bounds.log2c(8.0) == 3.0

    def test_unobstructed(self):
        assert bounds.unobstructed_time(L=5, D=3) == 7


class TestGeneralBounds:
    def test_upper_bound_b1_is_lcd_logd(self):
        """At B = 1 the bound collapses to (L+D) C D log D."""
        v = bounds.general_upper_bound(L=32, C=16, D=32, B=1)
        assert v == pytest.approx((32 + 32) * 16 * 32 * 5)

    def test_upper_bound_small_c_case(self):
        """C <= log D uses (D C)^(1/B)."""
        v = bounds.general_upper_bound(L=8, C=2, D=256, B=2)
        assert v == pytest.approx((8 + 256) * 2 * math.sqrt(256 * 2) / 2)

    def test_lower_bound_formula(self):
        assert bounds.general_lower_bound(L=10, C=6, D=16, B=2) == pytest.approx(
            10 * 6 * 4 / 2
        )

    def test_upper_dominates_lower(self):
        """Theorem 2.1.6's bound always covers Theorem 2.2.1's."""
        for B in (1, 2, 3, 4):
            for D in (8, 64, 512):
                for C in (4, 32, 128):
                    up = bounds.general_upper_bound(2 * D, C, D, B)
                    lo = bounds.general_lower_bound(2 * D, C, D, B)
                    assert up >= lo

    def test_bounds_decrease_in_b(self):
        for fn in (bounds.general_upper_bound, bounds.general_lower_bound):
            vals = [fn(64, 32, 32, B) for B in (1, 2, 3, 4)]
            assert vals == sorted(vals, reverse=True)

    def test_param_validation(self):
        with pytest.raises(ValueError):
            bounds.general_upper_bound(0, 1, 1, 1)
        with pytest.raises(ValueError):
            bounds.general_lower_bound(1, 1, 0, 1)


class TestSpeedup:
    def test_superlinear(self):
        """Section 1.4: speedup B D^(1-1/B) exceeds B for D > 1, B > 1."""
        for B in (2, 3, 4):
            for D in (16, 256):
                assert bounds.virtual_channel_speedup(D, B) > B

    def test_b1_is_unity(self):
        assert bounds.virtual_channel_speedup(100, 1) == pytest.approx(1.0)

    def test_grows_with_d(self):
        assert bounds.virtual_channel_speedup(256, 2) > bounds.virtual_channel_speedup(16, 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            bounds.virtual_channel_speedup(0, 1)


class TestBaselines:
    def test_naive(self):
        assert bounds.naive_coloring_bound(4, 3, 5) == 9 * 3 * 5

    def test_store_forward(self):
        assert bounds.store_forward_bound(4, 3, 5) == 4 * 8

    def test_ordering_when_c_large(self):
        """For C >> D and B = 1, store-and-forward beats wormhole (Sec 1.3.2)."""
        L, C, D = 64, 64, 8
        assert bounds.store_forward_bound(L, C, D) < bounds.general_lower_bound(
            L, C, D, 1
        )


class TestButterflyBounds:
    def test_upper_decreases_in_b(self):
        vals = [bounds.butterfly_upper_bound(16, 16, 1024, B) for B in (1, 2, 3)]
        assert vals == sorted(vals, reverse=True)

    def test_lower_below_upper(self):
        for B in (1, 2, 3):
            for n in (64, 1024):
                q = int(bounds.log2c(n))
                L = q
                assert bounds.butterfly_lower_bound(
                    L, q, n, B
                ) <= bounds.butterfly_upper_bound(L, q, n, B)

    def test_subset_size_ratio_shrinks_asymptotically(self):
        """s / (n q) must fall with n for the lower bound to bite; the
        paper's constants put the crossover beyond simulator scales, so
        we check the trend."""
        ratios = []
        for exp in (8, 16, 32, 64):
            n = 1 << exp
            q = exp
            s = bounds.butterfly_subset_size(n, q, L=q, B=1)
            assert s > 0
            ratios.append(s / (n * q))
        assert ratios == sorted(ratios, reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            bounds.butterfly_upper_bound(0, 1, 4, 1)
        with pytest.raises(ValueError):
            bounds.butterfly_lower_bound(1, 1, 1, 1)
        with pytest.raises(ValueError):
            bounds.butterfly_subset_size(4, 0, 1, 1)


class TestContextualLowerBounds:
    """Section 1.3.2's oblivious-routing bounds (Borodin-Hopcroft,
    Kaklamanis et al., Aiello et al.) and the Ranade B=1 butterfly form."""

    def test_borodin_hopcroft_grows_with_n(self):
        vals = [bounds.borodin_hopcroft_oblivious(n, 4) for n in (64, 1024, 1 << 16)]
        assert vals == sorted(vals)

    def test_oblivious_wormhole_translation(self):
        """Flit-step form = L / B times the message-step form."""
        assert bounds.oblivious_wormhole_lower_bound(
            1024, 4, 16, 2
        ) == pytest.approx(16 * bounds.borodin_hopcroft_oblivious(1024, 4) / 2)

    def test_aiello_decreases_in_b(self):
        vals = [bounds.aiello_randomized_oblivious(1 << 16, 4, 16, B) for B in (1, 2, 4)]
        assert vals == sorted(vals, reverse=True)

    def test_ranade_b1_nearly_cubic(self):
        """The form sits between log^2 n and log^3 n."""
        n = 1 << 32
        v = bounds.ranade_b1_butterfly_lower(n)
        assert bounds.log2c(n) ** 2 < v < bounds.log2c(n) ** 3

    def test_butterfly_transpose_congestion_matches_oblivious_bound(self):
        """A concrete witness: the transpose permutation's congestion on
        the butterfly's unique paths is Theta(sqrt(n)), the mechanism
        behind the oblivious lower bounds."""
        from repro import Butterfly, transpose_permutation
        import numpy as np

        for n in (16, 64, 256):
            bf = Butterfly(n)
            inst = transpose_permutation(n)
            edges = bf.path_edges_batch(inst.sources, inst.dests)
            flat = edges.ravel()
            load = np.bincount(flat).max()
            # With our LSB-first bit order the peak load is sqrt(n)/2 —
            # Theta(sqrt(n)), the oblivious-bound mechanism.
            assert load == int(np.sqrt(n)) // 2

    def test_validation(self):
        with pytest.raises(ValueError):
            bounds.borodin_hopcroft_oblivious(0, 1)
        with pytest.raises(ValueError):
            bounds.oblivious_wormhole_lower_bound(4, 1, 0, 1)
        with pytest.raises(ValueError):
            bounds.aiello_randomized_oblivious(1, 1, 1, 1)
        with pytest.raises(ValueError):
            bounds.ranade_b1_butterfly_lower(1)


class TestKochAndAlgorithmParams:
    def test_koch_monotone_in_b(self):
        vals = [bounds.koch_circuit_throughput(1024, B) for B in (1, 2, 3)]
        assert vals == sorted(vals)

    def test_koch_b1(self):
        assert bounds.koch_circuit_throughput(1024, 1) == pytest.approx(102.4)

    def test_num_rounds(self):
        # 2 log log(nq) + 1 with n=256, q=8: log(2048)=11, loglog ~ 3.46 -> 4.
        assert bounds.num_rounds(256, 8) == 9

    def test_num_colors_positive(self):
        for B in (1, 2, 3):
            assert bounds.num_colors(256, 8, B) >= 1

    def test_num_colors_decreases_in_b(self):
        vals = [bounds.num_colors(4096, 12, B) for B in (1, 2, 3, 4)]
        assert vals == sorted(vals, reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            bounds.koch_circuit_throughput(1, 1)
        with pytest.raises(ValueError):
            bounds.num_colors(4, 1, 0)
