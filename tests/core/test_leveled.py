"""Unit tests for leveled-network routing ([41])."""

import numpy as np
import pytest

from repro.core.leveled import (
    leveled_bound,
    random_delay_release,
    route_leveled_greedy,
)
from repro.network.graph import Network, NetworkError
from repro.network.random_networks import layered_network, random_walk_paths
from repro.routing.paths import congestion, dilation, paths_from_node_walks


@pytest.fixture
def workload(rng):
    net = layered_network(8, 6, 2, rng)
    walks = random_walk_paths(net, 8, 6, 80, rng)
    return net, paths_from_node_walks(net, walks)


class TestBound:
    def test_value(self):
        assert leveled_bound(4, 3, 5) == 60.0

    def test_validation(self):
        with pytest.raises(ValueError):
            leveled_bound(0, 1, 1)


class TestRandomDelay:
    def test_multiples_of_l(self, rng):
        rel = random_delay_release(50, message_length=7, C=5, rng=rng)
        assert (rel % 7 == 0).all()
        assert rel.max() <= 7 * 4

    def test_validation(self, rng):
        with pytest.raises(NetworkError):
            random_delay_release(5, 0, 3, rng)


class TestGreedyRouting:
    def test_delivers_within_lcd(self, workload):
        net, paths = workload
        L = 8
        C, D = congestion(paths), dilation(paths)
        res = route_leveled_greedy(net, paths, L, B=1, seed=0)
        assert res.all_delivered
        assert not res.deadlocked
        assert res.makespan <= leveled_bound(L, C, D)

    def test_rejects_non_leveled(self):
        net = Network()
        a, b, c = net.add_nodes("abc")
        net.add_edge(a, b)
        net.add_edge(b, c)
        net.add_edge(a, c)  # skips a level
        with pytest.raises(NetworkError, match="not leveled"):
            route_leveled_greedy(net, [[0, 1]], 2)

    def test_check_can_be_skipped(self):
        net = Network()
        a, b, c = net.add_nodes("abc")
        e1 = net.add_edge(a, b)
        net.add_edge(b, c)
        net.add_edge(a, c)
        res = route_leveled_greedy(net, [[e1]], 2, check_leveled=False)
        assert res.all_delivered

    def test_random_delays_do_not_break_delivery(self, workload, rng):
        net, paths = workload
        L = 8
        C = congestion(paths)
        rel = random_delay_release(len(paths), L, C, rng)
        res = route_leveled_greedy(net, paths, L, B=1, release_times=rel, seed=0)
        assert res.all_delivered

    def test_random_delays_reduce_blocking(self, workload):
        """Smoothing spreads contention: total blocked steps drop."""
        net, paths = workload
        L = 8
        C = congestion(paths)
        plain = route_leveled_greedy(net, paths, L, B=1, seed=0)
        rel = random_delay_release(
            len(paths), L, C, np.random.default_rng(4)
        )
        smoothed = route_leveled_greedy(
            net, paths, L, B=1, release_times=rel, seed=0
        )
        assert smoothed.total_blocked_steps < plain.total_blocked_steps
