"""Unit tests for LLL color refinement (Lemma 2.1.5, Section 2.1)."""

import numpy as np
import pytest

from repro.core.coloring import (
    MessageEdgeIncidence,
    lemma_2_1_5_parameters,
    merge_color_classes,
    multiplex_size,
    reduce_multiplex_size,
    refine_colors,
)
from repro.network.graph import NetworkError
from repro.network.random_networks import chain_bundle
from repro.routing.paths import paths_from_node_walks


def chain_paths(chains, depth, per_chain):
    net, walks = chain_bundle(chains, depth, per_chain)
    return paths_from_node_walks(net, walks)


class TestIncidence:
    def test_from_paths(self):
        paths = chain_paths(2, 3, 2)
        inc = MessageEdgeIncidence.from_paths(paths)
        assert inc.num_messages == 4
        assert inc.message_ids.size == 4 * 3

    def test_raw_edge_lists(self):
        inc = MessageEdgeIncidence.from_paths([[0, 1], [1, 2]])
        assert inc.num_edges == 3

    def test_rejects_non_edge_simple(self):
        with pytest.raises(NetworkError, match="edge-simple"):
            MessageEdgeIncidence.from_paths([[0, 0]])

    def test_empty_paths_allowed(self):
        inc = MessageEdgeIncidence.from_paths([[], []])
        assert inc.num_messages == 2
        assert inc.num_edges == 0


class TestMultiplexSize:
    def test_single_color_is_congestion(self):
        """Definition 2.1.4: one color class -> multiplex size = C."""
        paths = chain_paths(1, 4, 5)
        inc = MessageEdgeIncidence.from_paths(paths)
        assert multiplex_size(inc, np.zeros(5, dtype=np.int64)) == 5

    def test_distinct_colors_reduce(self):
        paths = chain_paths(1, 4, 4)
        inc = MessageEdgeIncidence.from_paths(paths)
        assert multiplex_size(inc, np.arange(4)) == 1
        assert multiplex_size(inc, np.array([0, 0, 1, 1])) == 2

    def test_empty(self):
        inc = MessageEdgeIncidence.from_paths([])
        assert multiplex_size(inc, np.zeros(0, dtype=np.int64)) == 0


class TestLemmaParameters:
    def test_case1_selected(self):
        """log D >= ms > B picks case 1 with mf = B."""
        case, mf, r = lemma_2_1_5_parameters(ms=4, D=1 << 10, B=2)
        assert case == 1
        assert mf == 2
        assert r >= 2

    def test_case2_selected(self):
        """D >= ms > log D picks case 2 with mf = log D."""
        case, mf, r = lemma_2_1_5_parameters(ms=100, D=256, B=1)
        assert case == 2
        assert mf == 8

    def test_case3_selected(self):
        case, mf, r = lemma_2_1_5_parameters(ms=1000, D=16, B=1)
        assert case == 3
        assert mf >= 16

    def test_rejects_ms_below_b(self):
        with pytest.raises(ValueError):
            lemma_2_1_5_parameters(ms=2, D=8, B=2)

    def test_case1_r_matches_paper(self):
        """r = 3e (D ms)^(1/B) ms / B, rounded up."""
        import math

        _, _, r = lemma_2_1_5_parameters(ms=3, D=1 << 20, B=1)
        expected = 3 * math.e * ((1 << 20) * 3) * 3
        assert r == math.ceil(expected)


class TestRefineColors:
    def test_refinement_respects_parent_classes(self, rng):
        paths = chain_paths(2, 3, 4)
        inc = MessageEdgeIncidence.from_paths(paths)
        colors = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        new = refine_colors(inc, colors, r=4, mf=1, rng=rng)
        assert new is not None
        assert np.array_equal(new // 4, colors)

    def test_refinement_achieves_target(self, rng):
        paths = chain_paths(1, 4, 8)
        inc = MessageEdgeIncidence.from_paths(paths)
        colors = np.zeros(8, dtype=np.int64)
        new = refine_colors(inc, colors, r=8, mf=2, rng=rng)
        assert new is not None
        assert multiplex_size(inc, new) <= 2

    def test_infeasible_budget_returns_none(self, rng):
        """r = 1 cannot reduce multiplex size below C."""
        paths = chain_paths(1, 3, 4)
        inc = MessageEdgeIncidence.from_paths(paths)
        new = refine_colors(
            inc, np.zeros(4, dtype=np.int64), r=1, mf=2, rng=rng, max_rounds=50
        )
        assert new is None

    def test_validation(self, rng):
        inc = MessageEdgeIncidence.from_paths([[0]])
        with pytest.raises(ValueError):
            refine_colors(inc, np.zeros(1, dtype=np.int64), r=0, mf=1, rng=rng)

    def test_no_edges_trivial(self, rng):
        inc = MessageEdgeIncidence.from_paths([[], []])
        new = refine_colors(inc, np.zeros(2, dtype=np.int64), r=3, mf=1, rng=rng)
        assert new is not None


class TestReduceMultiplexSize:
    @pytest.mark.parametrize("mode", ["adaptive", "direct"])
    @pytest.mark.parametrize("B", [1, 2, 3])
    def test_reaches_b(self, mode, B, rng):
        paths = chain_paths(2, 5, 9)
        trace = reduce_multiplex_size(paths, B=B, rng=rng, mode=mode)
        inc = MessageEdgeIncidence.from_paths(paths)
        assert multiplex_size(inc, trace.colors) <= B
        assert trace.final_multiplex <= B

    def test_theory_mode_small_instance(self, rng):
        paths = chain_paths(1, 4, 3)
        trace = reduce_multiplex_size(paths, B=1, rng=rng, mode="theory")
        inc = MessageEdgeIncidence.from_paths(paths)
        assert multiplex_size(inc, trace.colors) <= 1

    def test_direct_mode_uses_single_stage(self, rng):
        paths = chain_paths(1, 4, 10)
        trace = reduce_multiplex_size(paths, B=2, rng=rng, mode="direct")
        assert len(trace.stages) == 1
        assert trace.stages[0].mf_target == 2

    def test_c_below_b_no_stages(self, rng):
        paths = chain_paths(2, 3, 2)
        trace = reduce_multiplex_size(paths, B=5, rng=rng)
        assert trace.stages == ()
        assert trace.num_color_classes == 1

    def test_stage_bookkeeping_monotone(self, rng):
        paths = chain_paths(1, 6, 30)
        trace = reduce_multiplex_size(paths, B=1, rng=rng, mode="adaptive")
        ms_values = [s.ms_before for s in trace.stages] + [
            trace.stages[-1].ms_after
        ]
        assert ms_values == sorted(ms_values, reverse=True)
        assert ms_values[0] == 30

    def test_colors_dense(self, rng):
        paths = chain_paths(2, 4, 6)
        trace = reduce_multiplex_size(paths, B=2, rng=rng)
        assert set(np.unique(trace.colors)) == set(range(trace.num_color_classes))

    def test_num_classes_grows_as_b_shrinks(self, rng):
        paths = chain_paths(1, 6, 12)
        classes = {}
        for B in (1, 2, 3):
            trace = reduce_multiplex_size(
                paths, B=B, rng=np.random.default_rng(0), mode="direct"
            )
            classes[B] = trace.num_color_classes
        assert classes[1] >= classes[2] >= classes[3]
        assert classes[1] >= 12  # B=1 on a shared chain needs >= C classes

    def test_mode_validation(self, rng):
        with pytest.raises(ValueError):
            reduce_multiplex_size([[0]], B=1, rng=rng, mode="bogus")
        with pytest.raises(ValueError):
            reduce_multiplex_size([[0]], B=0, rng=rng)


class TestMergeColorClasses:
    def test_merges_disjoint_classes(self):
        """Messages on disjoint edges can all share one class."""
        paths = chain_paths(4, 3, 1)
        inc = MessageEdgeIncidence.from_paths(paths)
        merged = merge_color_classes(inc, np.arange(4), B=1)
        assert set(merged) == {0}

    def test_never_violates_b(self, rng):
        paths = chain_paths(2, 4, 6)
        inc = MessageEdgeIncidence.from_paths(paths)
        for B in (1, 2, 3):
            trace = reduce_multiplex_size(paths, B=B, rng=rng, merge=False)
            merged = merge_color_classes(inc, trace.colors, B)
            assert multiplex_size(inc, merged) <= B
            assert merged.max() <= trace.colors.max()

    def test_shared_chain_cannot_merge_below_c_over_b(self):
        paths = chain_paths(1, 3, 6)
        inc = MessageEdgeIncidence.from_paths(paths)
        merged = merge_color_classes(inc, np.arange(6), B=2)
        assert merged.max() + 1 == 3  # exactly C / B classes

    def test_single_class_untouched(self):
        paths = chain_paths(1, 2, 1)
        inc = MessageEdgeIncidence.from_paths(paths)
        merged = merge_color_classes(inc, np.zeros(1, dtype=np.int64), B=1)
        assert list(merged) == [0]

    def test_merge_flag_in_reduce(self, rng):
        paths = chain_paths(2, 4, 8)
        merged = reduce_multiplex_size(
            paths, B=2, rng=np.random.default_rng(0), merge=True
        )
        raw = reduce_multiplex_size(
            paths, B=2, rng=np.random.default_rng(0), merge=False
        )
        assert merged.num_color_classes <= raw.num_color_classes
