"""Unit tests for the Network container."""

import numpy as np
import pytest

from repro.network.graph import EdgeView, Network, NetworkError


class TestConstruction:
    def test_add_node_returns_dense_ids(self):
        net = Network()
        assert net.add_node("x") == 0
        assert net.add_node("y") == 1
        assert net.num_nodes == 2

    def test_default_labels_are_ids(self):
        net = Network()
        a = net.add_node()
        assert net.label(a) == a

    def test_duplicate_label_rejected(self):
        net = Network()
        net.add_node("x")
        with pytest.raises(NetworkError, match="duplicate"):
            net.add_node("x")

    def test_add_nodes_bulk(self):
        net = Network()
        ids = net.add_nodes("abc")
        assert ids == [0, 1, 2]
        assert net.node_id("b") == 1

    def test_add_edge(self):
        net = Network()
        a, b = net.add_nodes("ab")
        e = net.add_edge(a, b)
        assert e == 0
        assert net.tail(e) == a
        assert net.head(e) == b

    def test_self_loop_rejected(self):
        net = Network()
        a = net.add_node()
        with pytest.raises(NetworkError, match="self-loop"):
            net.add_edge(a, a)

    def test_edge_to_unknown_node_rejected(self):
        net = Network()
        a = net.add_node()
        with pytest.raises(NetworkError, match="unknown node"):
            net.add_edge(a, 5)

    def test_parallel_edges_allowed(self):
        net = Network()
        a, b = net.add_nodes("ab")
        e1 = net.add_edge(a, b)
        e2 = net.add_edge(a, b)
        assert e1 != e2
        assert net.num_edges == 2
        # edge_between returns the first one.
        assert net.edge_between(a, b) == e1

    def test_bidirectional_edge(self):
        net = Network()
        a, b = net.add_nodes("ab")
        fwd, bwd = net.add_bidirectional_edge(a, b)
        assert net.tail(fwd) == a and net.head(fwd) == b
        assert net.tail(bwd) == b and net.head(bwd) == a


class TestQueries:
    @pytest.fixture
    def diamond(self):
        """a -> b, a -> c, b -> d, c -> d."""
        net = Network()
        a, b, c, d = net.add_nodes("abcd")
        net.add_edge(a, b)
        net.add_edge(a, c)
        net.add_edge(b, d)
        net.add_edge(c, d)
        return net

    def test_degrees(self, diamond):
        assert diamond.out_degree(0) == 2
        assert diamond.in_degree(3) == 2
        assert diamond.in_degree(0) == 0

    def test_successors_predecessors(self, diamond):
        assert sorted(diamond.successors(0)) == [1, 2]
        assert sorted(diamond.predecessors(3)) == [1, 2]

    def test_out_edges_in_edges(self, diamond):
        assert set(diamond.out_edges(0)) == {0, 1}
        assert set(diamond.in_edges(3)) == {2, 3}

    def test_edge_view(self, diamond):
        view = diamond.edge(0)
        assert view == EdgeView(0, 0, 1)

    def test_edge_between_absent(self, diamond):
        assert diamond.edge_between(1, 2) is None

    def test_node_id_unknown_label(self, diamond):
        with pytest.raises(NetworkError, match="no node"):
            diamond.node_id("zzz")

    def test_out_of_range_checks(self, diamond):
        with pytest.raises(NetworkError):
            diamond.tail(99)
        with pytest.raises(NetworkError):
            diamond.out_edges(99)

    def test_iter_edges(self, diamond):
        views = list(diamond.iter_edges())
        assert len(views) == 4
        assert views[0].index == 0

    def test_arrays(self, diamond):
        assert np.array_equal(diamond.tails_array(), [0, 0, 1, 2])
        assert np.array_equal(diamond.heads_array(), [1, 2, 3, 3])


class TestStructure:
    def test_bfs_distances(self, small_line):
        dist = small_line.bfs_distances(0)
        assert list(dist) == [0, 1, 2, 3, 4]

    def test_bfs_unreachable(self):
        net = Network()
        net.add_nodes("ab")
        dist = net.bfs_distances(0)
        assert dist[1] == -1

    def test_line_is_leveled(self, small_line):
        assert small_line.is_leveled()
        levels = small_line.level_assignment()
        assert list(levels) == [0, 1, 2, 3, 4]

    def test_cycle_is_not_leveled(self):
        net = Network()
        a, b, c = net.add_nodes("abc")
        net.add_edge(a, b)
        net.add_edge(b, c)
        net.add_edge(c, a)
        assert not net.is_leveled()

    def test_skip_edge_breaks_leveling(self):
        net = Network()
        a, b, c = net.add_nodes("abc")
        net.add_edge(a, b)
        net.add_edge(b, c)
        net.add_edge(a, c)  # spans two levels
        assert net.level_assignment() is None

    def test_level_assignment_normalizes_components(self):
        net = Network()
        a, b, c, d = net.add_nodes("abcd")
        net.add_edge(a, b)
        net.add_edge(c, d)
        levels = net.level_assignment()
        assert levels[a] == 0 and levels[b] == 1
        assert levels[c] == 0 and levels[d] == 1

    def test_acyclic(self, small_line):
        assert small_line.is_acyclic()

    def test_cyclic_detected(self):
        net = Network()
        a, b = net.add_nodes("ab")
        net.add_edge(a, b)
        net.add_edge(b, a)
        assert not net.is_acyclic()

    def test_to_networkx_roundtrip(self, small_line):
        g = small_line.to_networkx()
        assert g.number_of_nodes() == 5
        assert g.number_of_edges() == 4
        assert g.nodes[0]["label"] == "a"
