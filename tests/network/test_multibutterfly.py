"""Unit tests for multibutterfly networks ([3])."""

import numpy as np
import pytest

from repro.network.graph import NetworkError
from repro.network.multibutterfly import Multibutterfly


class TestConstruction:
    def test_sizes(self):
        mbf = Multibutterfly(16, d=2, rng=np.random.default_rng(0))
        assert mbf.log_n == 4
        assert mbf.network.num_nodes == 16 * 5
        # Every non-output node has d up + d down edges.
        assert mbf.network.num_edges == 16 * 4 * 2 * 2

    def test_out_degrees(self):
        mbf = Multibutterfly(8, d=3, rng=np.random.default_rng(1))
        for level in range(3):
            for w in range(8):
                v = level * 8 + w
                assert mbf.network.out_degree(v) == 6

    def test_in_degrees_balanced(self):
        mbf = Multibutterfly(16, d=2, rng=np.random.default_rng(2))
        for level in range(1, 5):
            for w in range(16):
                v = level * 16 + w
                assert mbf.network.in_degree(v) == 4

    def test_network_is_leveled(self):
        mbf = Multibutterfly(8, d=2, rng=np.random.default_rng(3))
        assert mbf.network.is_leveled()

    def test_validation(self):
        with pytest.raises(NetworkError):
            Multibutterfly(6)
        with pytest.raises(NetworkError):
            Multibutterfly(2)
        with pytest.raises(NetworkError):
            Multibutterfly(8, d=0)


class TestCandidateEdges:
    def test_count_is_d(self):
        mbf = Multibutterfly(16, d=2, rng=np.random.default_rng(4))
        for node in range(16 * 4):  # all non-output nodes
            edges = mbf.candidate_edges(node, dest_column=5)
            assert len(edges) == 2

    def test_candidates_lead_to_correct_block(self):
        """Following any candidate at every level reaches the dest."""
        mbf = Multibutterfly(16, d=2, rng=np.random.default_rng(5))
        rng = np.random.default_rng(6)
        for src in range(16):
            dst = int(rng.integers(16))
            node = src
            for _level in range(4):
                edges = mbf.candidate_edges(node, dst)
                node = mbf.network.head(edges[int(rng.integers(len(edges)))])
            assert node == mbf.output_of(dst)

    def test_output_has_no_candidates(self):
        mbf = Multibutterfly(8, d=1, rng=np.random.default_rng(7))
        with pytest.raises(NetworkError):
            mbf.candidate_edges(mbf.output_of(0), 0)

    def test_output_of_validation(self):
        mbf = Multibutterfly(8, d=1, rng=np.random.default_rng(8))
        with pytest.raises(NetworkError):
            mbf.output_of(8)

    def test_inputs_outputs(self):
        mbf = Multibutterfly(8, d=1, rng=np.random.default_rng(9))
        assert list(mbf.inputs()) == list(range(8))
        assert list(mbf.outputs()) == list(range(24, 32))
