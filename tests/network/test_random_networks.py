"""Unit tests for the synthetic benchmark networks."""

import numpy as np
import pytest

from repro.network.graph import NetworkError
from repro.network.random_networks import (
    chain_bundle,
    layered_network,
    random_walk_paths,
)
from repro.routing.paths import congestion, dilation, paths_from_node_walks


class TestLayeredNetwork:
    def test_sizes(self, rng):
        net = layered_network(width=6, depth=4, out_degree=2, rng=rng)
        assert net.num_nodes == 6 * 5
        assert net.num_edges == 6 * 4 * 2

    def test_is_leveled(self, rng):
        net = layered_network(width=5, depth=3, out_degree=3, rng=rng)
        assert net.is_leveled()

    def test_out_degree_exact_and_distinct(self, rng):
        net = layered_network(width=6, depth=3, out_degree=3, rng=rng)
        for level in range(3):
            for w in range(6):
                v = level * 6 + w
                succ = net.successors(v)
                assert len(succ) == 3
                assert len(set(succ)) == 3

    def test_reproducible(self):
        a = layered_network(4, 3, 2, np.random.default_rng(9))
        b = layered_network(4, 3, 2, np.random.default_rng(9))
        assert list(a.heads_array()) == list(b.heads_array())

    def test_bad_params(self, rng):
        with pytest.raises(NetworkError):
            layered_network(0, 3, 1, rng)
        with pytest.raises(NetworkError):
            layered_network(4, 3, 5, rng)


class TestRandomWalkPaths:
    def test_walk_shape(self, rng):
        net = layered_network(5, 4, 2, rng)
        walks = random_walk_paths(net, 5, 4, 10, rng)
        assert len(walks) == 10
        for w in walks:
            assert len(w) == 5
            assert 0 <= w[0] < 5  # starts at level 0

    def test_walks_follow_edges(self, rng):
        net = layered_network(5, 4, 2, rng)
        walks = random_walk_paths(net, 5, 4, 10, rng)
        paths = paths_from_node_walks(net, walks)  # raises if invalid
        assert dilation(paths) == 4


class TestChainBundle:
    def test_exact_c_and_d(self):
        net, walks = chain_bundle(num_chains=3, depth=5, messages_per_chain=4)
        paths = paths_from_node_walks(net, walks)
        assert congestion(paths) == 4
        assert dilation(paths) == 5
        assert len(paths) == 12

    def test_chains_are_disjoint(self):
        net, walks = chain_bundle(2, 3, 1)
        paths = paths_from_node_walks(net, walks)
        assert set(paths[0].edges).isdisjoint(paths[1].edges)

    def test_bad_params(self):
        with pytest.raises(NetworkError):
            chain_bundle(0, 3, 1)
