"""Unit tests for Benes networks and Waksman routing (Section 1.3.3)."""

import numpy as np
import pytest

from repro.network.benes import Benes, looping_assignment, waksman_paths
from repro.network.graph import NetworkError


class TestBenesStructure:
    def test_sizes(self):
        b = Benes(8)
        assert b.depth == 6
        assert b.num_levels == 7
        assert b.num_nodes == 8 * 7
        assert b.num_edges == 2 * 8 * 6

    def test_cross_bits_mirror(self):
        b = Benes(8)
        assert [b.cross_bit(l) for l in range(6)] == [0, 1, 2, 2, 1, 0]

    def test_cross_bit_out_of_range(self):
        with pytest.raises(NetworkError):
            Benes(4).cross_bit(4)

    def test_invalid_n(self):
        with pytest.raises(NetworkError):
            Benes(6)

    def test_to_network_matches_arithmetic(self):
        b = Benes(4)
        net = b.to_network()
        assert net.num_nodes == b.num_nodes
        assert net.num_edges == b.num_edges
        for col in range(4):
            for lvl in range(b.depth):
                e = b.edge(col, lvl, cross=True)
                _, head = net.tail(e), net.head(e)
                w2, l2 = net.label(head)
                assert l2 == lvl + 1
                assert w2 == col ^ (1 << b.cross_bit(lvl))

    def test_network_is_leveled(self):
        assert Benes(8).to_network().is_leveled()

    def test_columns_to_edges_validation(self):
        b = Benes(4)
        with pytest.raises(NetworkError):
            b.columns_to_edges(np.zeros((2, 3), dtype=np.int64))


class TestLoopingAssignment:
    def test_partners_get_different_subnets(self, rng):
        for n in (4, 8, 16, 32):
            perm = rng.permutation(n)
            sub = looping_assignment(perm)
            for i in range(0, n, 2):
                assert sub[i] != sub[i + 1]

    def test_output_switch_constraint(self, rng):
        for n in (4, 8, 16, 32):
            perm = rng.permutation(n)
            sub = looping_assignment(perm)
            inv = np.empty(n, dtype=np.int64)
            inv[perm] = np.arange(n)
            for o in range(0, n, 2):
                a, b = inv[o], inv[o + 1]
                assert sub[a] != sub[b]

    def test_identity(self):
        sub = looping_assignment(np.arange(4))
        assert set(np.unique(sub)) <= {0, 1}

    def test_rejects_non_permutation(self):
        with pytest.raises(NetworkError, match="not a permutation"):
            looping_assignment(np.array([0, 0, 1, 2]))

    def test_rejects_odd_n(self):
        with pytest.raises(NetworkError, match="even"):
            looping_assignment(np.array([0, 1, 2]))


class TestWaksman:
    @pytest.mark.parametrize("n", [2, 4, 8, 16, 32, 64, 128])
    def test_random_permutations_edge_disjoint(self, n, rng):
        perm = rng.permutation(n)
        cols = waksman_paths(perm)
        assert cols.shape == (n, 2 * (n.bit_length() - 1) + 1)
        assert np.array_equal(cols[:, 0], np.arange(n))
        assert np.array_equal(cols[:, -1], perm)
        edges = Benes(n).columns_to_edges(cols)
        flat = edges.ravel()
        assert np.unique(flat).size == flat.size  # Beizer/Benes/Waksman claim

    def test_columns_move_one_bit_per_level(self, rng):
        n = 16
        b = Benes(n)
        cols = waksman_paths(rng.permutation(n))
        for lvl in range(b.depth):
            diff = cols[:, lvl] ^ cols[:, lvl + 1]
            allowed = 1 << b.cross_bit(lvl)
            assert np.all((diff == 0) | (diff == allowed))

    def test_identity_permutation(self):
        cols = waksman_paths(np.arange(8))
        assert np.array_equal(cols[:, -1], np.arange(8))

    def test_reversal_permutation(self):
        n = 16
        perm = np.arange(n)[::-1].copy()
        cols = waksman_paths(perm)
        edges = Benes(n).columns_to_edges(cols)
        assert np.unique(edges.ravel()).size == edges.size

    def test_swap_n2(self):
        cols = waksman_paths(np.array([1, 0]))
        assert np.array_equal(cols[:, -1], [1, 0])
        edges = Benes(2).columns_to_edges(cols)
        assert np.unique(edges.ravel()).size == edges.size

    def test_all_permutations_n4(self):
        """Exhaustive check: every 4-permutation routes edge-disjointly."""
        from itertools import permutations

        b = Benes(4)
        for perm in permutations(range(4)):
            cols = waksman_paths(np.array(perm))
            assert np.array_equal(cols[:, -1], perm)
            edges = b.columns_to_edges(cols)
            assert np.unique(edges.ravel()).size == edges.size

    def test_rejects_bad_sizes(self):
        with pytest.raises(NetworkError):
            waksman_paths(np.array([0, 1, 2]))  # not power of two
        with pytest.raises(NetworkError):
            waksman_paths(np.array([1, 1]))  # not a permutation

    def test_wormhole_time_is_unobstructed(self, rng):
        """Waksman routes give L + D - 1 wormhole time at B = 1 ([48])."""
        from repro.sim.wormhole import WormholeSimulator

        n, L = 16, 10
        b = Benes(n)
        cols = waksman_paths(rng.permutation(n))
        edges = b.columns_to_edges(cols)
        sim = WormholeSimulator(b.to_network(), num_virtual_channels=1)
        res = sim.run([list(r) for r in edges], message_length=L)
        assert res.all_delivered
        assert res.total_blocked_steps == 0
        assert res.makespan == L + b.depth - 1
