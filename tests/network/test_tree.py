"""Unit tests for complete trees (Section 1.3.4)."""

import pytest

from repro.network.graph import NetworkError
from repro.network.tree import CompleteTree, tree_path


class TestCompleteTree:
    def test_binary_sizes(self):
        t = CompleteTree(arity=2, height=3)
        assert t.num_nodes == 15
        assert t.network.num_edges == 2 * 14

    def test_ternary_sizes(self):
        t = CompleteTree(arity=3, height=2)
        assert t.num_nodes == 13

    def test_parent_child(self):
        t = CompleteTree(arity=2, height=3)
        assert t.parent(1) == 0
        assert t.parent(2) == 0
        assert t.parent(6) == 2
        with pytest.raises(NetworkError):
            t.parent(0)

    def test_depth(self):
        t = CompleteTree(arity=2, height=3)
        assert t.depth(0) == 0
        assert t.depth(1) == 1
        assert t.depth(7) == 3

    def test_leaves(self):
        t = CompleteTree(arity=2, height=2)
        assert list(t.leaves()) == [3, 4, 5, 6]

    def test_bad_params(self):
        with pytest.raises(NetworkError):
            CompleteTree(arity=1, height=2)
        with pytest.raises(NetworkError):
            CompleteTree(arity=2, height=0)


class TestTreePath:
    @pytest.fixture
    def t(self):
        return CompleteTree(arity=2, height=3)

    def test_leaf_to_leaf_through_root(self, t):
        nodes = tree_path(t, 7, 14)
        assert nodes[0] == 7 and nodes[-1] == 14
        assert 0 in nodes  # opposite subtrees meet at the root

    def test_same_subtree_avoids_root(self, t):
        nodes = tree_path(t, 7, 8)  # siblings under node 3
        assert nodes == [7, 3, 8]

    def test_ancestor_descendant(self, t):
        nodes = tree_path(t, 1, 9)
        assert nodes == [1, 4, 9]
        nodes = tree_path(t, 9, 1)
        assert nodes == [9, 4, 1]

    def test_trivial(self, t):
        assert tree_path(t, 5, 5) == [5]

    def test_every_hop_is_an_edge(self, t):
        for src in range(t.num_nodes):
            for dst in range(t.num_nodes):
                nodes = tree_path(t, src, dst)
                for u, v in zip(nodes[:-1], nodes[1:]):
                    assert t.network.edge_between(u, v) is not None

    def test_path_is_node_simple(self, t):
        for src, dst in [(7, 14), (7, 8), (0, 14), (12, 3)]:
            nodes = tree_path(t, src, dst)
            assert len(set(nodes)) == len(nodes)
