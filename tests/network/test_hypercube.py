"""Unit tests for the hypercube (Section 1.3.4)."""

import pytest

from repro.network.graph import NetworkError
from repro.network.hypercube import Hypercube, bit_fixing_path


class TestHypercube:
    def test_sizes(self):
        h = Hypercube(16)
        assert h.dimension == 4
        assert h.network.num_nodes == 16
        assert h.network.num_edges == 16 * 4  # directed

    def test_neighbors_differ_in_one_bit(self):
        h = Hypercube(8)
        for e in h.network.iter_edges():
            diff = e.tail ^ e.head
            assert diff != 0 and (diff & (diff - 1)) == 0

    def test_uniform_degree(self):
        h = Hypercube(32)
        for v in h.network.nodes():
            assert h.network.out_degree(v) == 5

    def test_invalid_n(self):
        with pytest.raises(NetworkError):
            Hypercube(12)


class TestBitFixing:
    def test_endpoints(self):
        nodes = bit_fixing_path(0b0000, 0b1011, 4)
        assert nodes[0] == 0 and nodes[-1] == 0b1011

    def test_length_is_hamming_distance(self):
        assert len(bit_fixing_path(0b0101, 0b1010, 4)) - 1 == 4
        assert len(bit_fixing_path(3, 3, 4)) - 1 == 0

    def test_fixes_low_bits_first(self):
        nodes = bit_fixing_path(0b00, 0b11, 2)
        assert nodes == [0b00, 0b01, 0b11]

    def test_each_hop_is_an_edge(self):
        h = Hypercube(16)
        nodes = bit_fixing_path(5, 10, 4)
        for u, v in zip(nodes[:-1], nodes[1:]):
            assert h.network.edge_between(u, v) is not None

    def test_out_of_range(self):
        with pytest.raises(NetworkError):
            bit_fixing_path(0, 16, 4)
