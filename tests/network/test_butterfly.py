"""Unit tests for the butterfly networks (Section 1.2, Fig. 1)."""

import numpy as np
import pytest

from repro.network.butterfly import Butterfly, is_power_of_two, wrapped_butterfly
from repro.network.graph import NetworkError


class TestSizes:
    def test_paper_node_count(self):
        """An n-input butterfly has n(log n + 1) nodes (Section 1.2)."""
        for n in (2, 4, 8, 16):
            bf = Butterfly(n)
            assert bf.num_nodes == n * (bf.log_n + 1)

    def test_fig1_eight_input(self):
        """Fig. 1: 8 inputs, 4 levels of 8 nodes, 2 out-edges per non-output."""
        bf = Butterfly(8)
        assert bf.log_n == 3
        assert bf.num_levels == 4
        assert bf.num_nodes == 32
        assert bf.num_edges == 2 * 8 * 3

    def test_invalid_n(self):
        for n in (0, 1, 3, 6):
            with pytest.raises(NetworkError):
                Butterfly(n)

    def test_invalid_depth(self):
        with pytest.raises(NetworkError):
            Butterfly(4, depth=0)

    def test_is_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(64)
        assert not is_power_of_two(0)
        assert not is_power_of_two(12)
        assert not is_power_of_two(-4)


class TestStructure:
    def test_edge_endpoints_straight(self, butterfly8):
        e = butterfly8.edge(column=5, level=1, cross=False)
        tail, head = butterfly8.edge_endpoints(e)
        assert tail == butterfly8.node(5, 1)
        assert head == butterfly8.node(5, 2)

    def test_edge_endpoints_cross_flips_level_bit(self, butterfly8):
        """Cross edges from level i flip the bit of weight 2**i."""
        e = butterfly8.edge(column=5, level=1, cross=True)
        _, head = butterfly8.edge_endpoints(e)
        assert butterfly8.column_of(head) == 5 ^ 2
        assert butterfly8.level_of(head) == 2

    def test_paper_adjacency_rule(self, butterfly8):
        """(w, i) links to (w', i+1) iff w == w' or they differ in bit i+1."""
        net = butterfly8.to_network()
        for e in net.iter_edges():
            w, i = net.label(e.tail)
            w2, i2 = net.label(e.head)
            assert i2 == i + 1
            assert w == w2 or (w ^ w2) == 1 << i

    def test_to_network_ids_match_arithmetic(self, butterfly8):
        net = butterfly8.to_network()
        assert net.num_nodes == butterfly8.num_nodes
        assert net.num_edges == butterfly8.num_edges
        for col in range(8):
            for level in range(3):
                for cross in (False, True):
                    e = butterfly8.edge(col, level, cross)
                    tail, head = butterfly8.edge_endpoints(e)
                    assert net.tail(e) == tail
                    assert net.head(e) == head

    def test_network_is_leveled(self, butterfly8):
        assert butterfly8.to_network().is_leveled()

    def test_inputs_outputs(self, butterfly8):
        assert list(butterfly8.inputs()) == list(range(8))
        assert list(butterfly8.outputs()) == list(range(24, 32))

    def test_node_bounds(self, butterfly8):
        with pytest.raises(NetworkError):
            butterfly8.node(8, 0)
        with pytest.raises(NetworkError):
            butterfly8.node(0, 4)
        with pytest.raises(NetworkError):
            butterfly8.edge(0, 3, False)  # no edges out of the last level
        with pytest.raises(NetworkError):
            butterfly8.edge_endpoints(butterfly8.num_edges)


class TestPaths:
    def test_unique_path_fixes_bits(self, butterfly8):
        cols = butterfly8.path_columns(src_col=0b101, dst_col=0b010)
        assert cols[0] == 0b101
        assert cols[-1] == 0b010
        # Bit i is fixed when crossing level i.
        assert cols[1] == 0b100  # bit 0 set to dst
        assert cols[2] == 0b110  # bit 1 set to dst
        assert cols[3] == 0b010  # bit 2 set to dst

    def test_path_edges_consistent_with_columns(self, butterfly8):
        src, dst = 3, 6
        cols = butterfly8.path_columns(src, dst)
        edges = butterfly8.path_edges(src, dst)
        for lvl, e in enumerate(edges):
            tail, head = butterfly8.edge_endpoints(int(e))
            assert butterfly8.column_of(tail) == cols[lvl]
            assert butterfly8.column_of(head) == cols[lvl + 1]

    def test_all_pairs_reach_destination(self):
        bf = Butterfly(16)
        src = np.repeat(np.arange(16), 16)
        dst = np.tile(np.arange(16), 16)
        cols = bf.path_columns_batch(src, dst)
        assert np.array_equal(cols[:, 0], src)
        assert np.array_equal(cols[:, -1], dst)

    def test_batch_shape_validation(self, butterfly8):
        with pytest.raises(NetworkError):
            butterfly8.path_columns_batch(np.zeros(3), np.zeros(4))
        with pytest.raises(NetworkError):
            butterfly8.path_columns_batch(np.array([9]), np.array([0]))

    def test_straight_path_all_straight_edges(self, butterfly8):
        edges = butterfly8.path_edges(5, 5)
        for e in edges:
            assert int(e) % 2 == 0  # straight edges have even ids


class TestCascade:
    def test_two_pass_depth(self):
        bf = Butterfly(8, passes=2)
        assert bf.depth == 6
        assert bf.cross_bit(3) == 0  # second pass restarts bit order

    def test_two_pass_paths_via_intermediate(self):
        bf = Butterfly(8, passes=2)
        src = np.array([0, 1, 2])
        mid = np.array([7, 0, 5])
        dst = np.array([3, 3, 3])
        edges = bf.two_pass_path_edges_batch(src, mid, dst)
        assert edges.shape == (3, 6)
        # Verify endpoint continuity and the intermediate visit.
        for row, (s, m, d) in zip(edges, zip(src, mid, dst)):
            tail0, _ = bf.edge_endpoints(int(row[0]))
            assert bf.column_of(tail0) == s and bf.level_of(tail0) == 0
            _, mid_node = bf.edge_endpoints(int(row[2]))
            assert bf.column_of(mid_node) == m and bf.level_of(mid_node) == 3
            _, final = bf.edge_endpoints(int(row[-1]))
            assert bf.column_of(final) == d and bf.level_of(final) == 6
            for a, b in zip(row[:-1], row[1:]):
                _, head = bf.edge_endpoints(int(a))
                tail, _ = bf.edge_endpoints(int(b))
                assert head == tail

    def test_two_pass_requires_cascade(self, butterfly8):
        with pytest.raises(NetworkError, match="two-pass"):
            butterfly8.two_pass_path_edges_batch(
                np.array([0]), np.array([0]), np.array([0])
            )

    def test_truncated_butterfly(self):
        bf = Butterfly(16, depth=2)
        assert bf.num_levels == 3
        assert bf.num_edges == 2 * 16 * 2
        cols = bf.path_columns(0b1111, 0b0000)
        # Only bits 0 and 1 are fixed in two levels.
        assert cols[-1] == 0b1100


class TestWrapped:
    def test_wrap_around_sizes(self):
        """Wrapped butterfly identifies level log n with level 0."""
        net = wrapped_butterfly(8)
        assert net.num_nodes == 8 * 3
        assert net.num_edges == 2 * 8 * 3

    def test_wrap_edges_reenter_level_zero(self):
        net = wrapped_butterfly(4)
        # Edges out of level 1 (the last) land on level 0.
        for e in net.iter_edges():
            w, lvl = net.label(e.tail)
            w2, lvl2 = net.label(e.head)
            assert lvl2 == (lvl + 1) % 2

    def test_wrap_invalid_n(self):
        with pytest.raises(NetworkError):
            wrapped_butterfly(3)

    def test_wrapped_uniform_degree(self):
        net = wrapped_butterfly(8)
        for v in net.nodes():
            assert net.out_degree(v) == 2
            assert net.in_degree(v) == 2
