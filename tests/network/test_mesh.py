"""Unit tests for k-ary n-cubes (Section 1.3.4)."""

import pytest

from repro.network.graph import NetworkError
from repro.network.mesh import KAryNCube, dimension_order_path


class TestCoordinates:
    def test_roundtrip(self):
        cube = KAryNCube(k=4, n=3)
        for node in range(cube.num_nodes):
            assert cube.node(cube.coords(node)) == node

    def test_node_of_coords(self):
        cube = KAryNCube(k=3, n=2)
        assert cube.node((0, 0)) == 0
        assert cube.node((0, 1)) == 1
        assert cube.node((1, 0)) == 3
        assert cube.node((2, 2)) == 8

    def test_bad_coords(self):
        cube = KAryNCube(k=3, n=2)
        with pytest.raises(NetworkError):
            cube.node((3, 0))
        with pytest.raises(NetworkError):
            cube.node((0, 0, 0))
        with pytest.raises(NetworkError):
            cube.coords(9)

    def test_bad_params(self):
        with pytest.raises(NetworkError):
            KAryNCube(k=1, n=2)
        with pytest.raises(NetworkError):
            KAryNCube(k=3, n=0)


class TestTopology:
    def test_mesh_edge_count(self):
        """A k x k mesh has 2*2*k*(k-1) directed edges."""
        mesh = KAryNCube(k=4, n=2, wrap=False)
        assert mesh.network.num_edges == 2 * 2 * 4 * 3

    def test_torus_edge_count(self):
        """A k-ary n-cube (k > 2) has 2*n*k^n directed edges."""
        torus = KAryNCube(k=4, n=2, wrap=True)
        assert torus.network.num_edges == 2 * 2 * 16

    def test_k2_torus_avoids_duplicate_wrap(self):
        """At k = 2 the wrap link coincides with the +1 link."""
        torus = KAryNCube(k=2, n=3, wrap=True)
        # Exactly the 3-dimensional hypercube: 8 * 3 = 24 directed edges.
        assert torus.network.num_edges == 24

    def test_mesh_corner_degree(self):
        mesh = KAryNCube(k=3, n=2, wrap=False)
        corner = mesh.node((0, 0))
        assert mesh.network.out_degree(corner) == 2

    def test_torus_uniform_degree(self):
        torus = KAryNCube(k=4, n=2, wrap=True)
        for v in torus.network.nodes():
            assert torus.network.out_degree(v) == 4


class TestDimensionOrderRouting:
    def test_path_endpoints(self):
        cube = KAryNCube(k=4, n=2, wrap=False)
        src, dst = cube.node((0, 0)), cube.node((3, 2))
        nodes = dimension_order_path(cube, src, dst)
        assert nodes[0] == src and nodes[-1] == dst

    def test_mesh_path_length_is_manhattan(self):
        cube = KAryNCube(k=5, n=2, wrap=False)
        src, dst = cube.node((1, 1)), cube.node((4, 3))
        nodes = dimension_order_path(cube, src, dst)
        assert len(nodes) - 1 == 3 + 2

    def test_dimension_order_is_monotone(self):
        cube = KAryNCube(k=4, n=3, wrap=False)
        src, dst = cube.node((3, 0, 2)), cube.node((0, 3, 0))
        nodes = dimension_order_path(cube, src, dst)
        coords = [cube.coords(v) for v in nodes]
        # Once dimension d+1 starts changing, dimension d is final.
        last_active = -1
        for a, b in zip(coords[:-1], coords[1:]):
            changed = [d for d in range(3) if a[d] != b[d]]
            assert len(changed) == 1
            assert changed[0] >= last_active
            last_active = changed[0]

    def test_torus_takes_short_way_around(self):
        cube = KAryNCube(k=8, n=1, wrap=True)
        nodes = dimension_order_path(cube, cube.node((0,)), cube.node((6,)))
        assert len(nodes) - 1 == 2  # 0 -> 7 -> 6, not six steps forward

    def test_path_edges_exist(self):
        cube = KAryNCube(k=4, n=2, wrap=True)
        nodes = dimension_order_path(cube, 0, cube.num_nodes - 1)
        for u, v in zip(nodes[:-1], nodes[1:]):
            assert cube.network.edge_between(u, v) is not None

    def test_trivial_path(self):
        cube = KAryNCube(k=3, n=2, wrap=False)
        assert dimension_order_path(cube, 4, 4) == [4]
