"""Unit tests for de Bruijn / shuffle-exchange (Section 1.3.4)."""

import pytest

from repro.network.debruijn import DeBruijn, ShuffleExchange, debruijn_path
from repro.network.graph import NetworkError


class TestDeBruijn:
    def test_sizes(self):
        g = DeBruijn(8)
        assert g.dimension == 3
        # 2 out-edges per node minus the two self-loops skipped.
        assert g.network.num_edges == 2 * 8 - 2

    def test_shift_structure(self):
        g = DeBruijn(8)
        for e in g.network.iter_edges():
            assert e.head in ((2 * e.tail) % 8, (2 * e.tail + 1) % 8)

    def test_invalid_n(self):
        with pytest.raises(NetworkError):
            DeBruijn(2)
        with pytest.raises(NetworkError):
            DeBruijn(10)

    def test_path_endpoints(self):
        for src in range(8):
            for dst in range(8):
                nodes = debruijn_path(src, dst, 3)
                assert nodes[0] == src and nodes[-1] == dst

    def test_path_length_at_most_dimension(self):
        for src in range(16):
            for dst in range(16):
                nodes = debruijn_path(src, dst, 4)
                assert len(nodes) - 1 <= 4

    def test_path_hops_are_edges(self):
        g = DeBruijn(16)
        for src, dst in [(0, 15), (5, 10), (7, 7), (1, 8)]:
            nodes = debruijn_path(src, dst, 4)
            for u, v in zip(nodes[:-1], nodes[1:]):
                assert g.network.edge_between(u, v) is not None

    def test_path_out_of_range(self):
        with pytest.raises(NetworkError):
            debruijn_path(0, 8, 3)


class TestShuffleExchange:
    def test_sizes(self):
        g = ShuffleExchange(8)
        # shuffle edges (minus fixed points 0 and 7) + exchange edges.
        assert g.network.num_nodes == 8

    def test_exchange_edges_flip_low_bit(self):
        g = ShuffleExchange(8)
        for u in range(8):
            assert g.network.edge_between(u, u ^ 1) is not None

    def test_shuffle_edges_rotate(self):
        g = ShuffleExchange(8)
        # 0b011 -> 0b110
        assert g.network.edge_between(0b011, 0b110) is not None
        # 0b110 -> 0b101
        assert g.network.edge_between(0b110, 0b101) is not None

    def test_invalid_n(self):
        with pytest.raises(NetworkError):
            ShuffleExchange(6)
