"""Backend contract tests: resolution, stats, and bit-equivalence.

The load-bearing property is the last one: the execution substrate may
move *where* a unit runs but never what it computes, so a fixed sweep
grid must produce byte-identical metrics on every backend.
"""

import pytest

from repro.exec import (
    BACKENDS,
    ExecutionBackend,
    InlineBackend,
    ProcessPoolBackend,
    ThreadBackend,
    create_backend,
)
from repro.sim.sweep import run_sweep, sweep_grid


def _double(x):
    return 2 * x


def _boom(x):
    raise ValueError(f"bad unit {x}")


@pytest.fixture(scope="module")
def process_backend():
    backend = ProcessPoolBackend(workers=2)
    yield backend
    backend.close()


def _fresh_backends():
    """One instance of each backend; caller closes."""
    return [InlineBackend(), ThreadBackend(workers=2)]


class TestCreateBackend:
    def test_names_resolve(self):
        for name in BACKENDS:
            kwargs = {"prewarm": False} if name == "process" else {}
            backend = create_backend(name, workers=2, **kwargs)
            try:
                assert backend.name == name
                assert isinstance(backend, ExecutionBackend)
            finally:
                backend.close()

    def test_none_means_inline(self):
        backend = create_backend(None)
        assert backend.name == "inline"
        backend.close()

    def test_instance_passes_through(self):
        inst = InlineBackend()
        assert create_backend(inst) is inst
        inst.close()

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            create_backend("quantum")


class TestRunAndMap:
    def test_run_and_map_results(self, process_backend):
        for backend in _fresh_backends() + [process_backend]:
            assert backend.run(_double, 21) == 42
            assert backend.map(_double, [1, 2, 3]) == [2, 4, 6]
            if backend is not process_backend:
                backend.close()

    def test_stats_count_units(self):
        backend = InlineBackend()
        backend.run(_double, 1)
        backend.map(_double, [2, 3])
        snap = backend.stats_snapshot()
        assert snap["submitted"] == 3
        assert snap["completed"] == 3
        assert snap["backend"] == snap["mode"] == "inline"
        backend.close()

    def test_fn_exception_propagates_unretried(self, process_backend):
        for backend in _fresh_backends() + [process_backend]:
            with pytest.raises(ValueError, match="bad unit 7"):
                backend.run(_boom, 7)
            snap = backend.stats_snapshot()
            assert snap["retried"] == 0, backend.name
            assert snap["worker_restarts"] == 0, backend.name
            if backend is not process_backend:
                backend.close()

    def test_context_manager_closes(self):
        with ThreadBackend(workers=1) as backend:
            assert backend.run(_double, 5) == 10
        assert backend._closed


class TestBitEquivalence:
    """Every backend yields the serial sweep's exact metrics."""

    @pytest.fixture(scope="class")
    def grid(self):
        return sweep_grid(
            "chain-bundle",
            ["wormhole", "store_forward"],
            (1, 2),
            workload_params={"chains": 2, "depth": 6, "messages": 4},
            message_length=8,
            repeats=2,
        )

    @pytest.fixture(scope="class")
    def serial_metrics(self, grid):
        out = run_sweep(grid, root_seed=42, backend="inline")
        return [t.metrics for t in out]

    @pytest.mark.parametrize("name", BACKENDS)
    def test_backend_matches_serial(self, grid, serial_metrics, name):
        out = run_sweep(grid, root_seed=42, workers=2, backend=name)
        assert [t.metrics for t in out] == serial_metrics

    def test_backend_instance_accepted(self, grid, serial_metrics):
        with ThreadBackend(workers=2) as backend:
            out = run_sweep(grid, root_seed=42, backend=backend)
        assert [t.metrics for t in out] == serial_metrics
