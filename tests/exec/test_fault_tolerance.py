"""Failure-path tests for the process backend.

Crash functions must stay harmless when they execute *in this process*
(after degradation, or under the inline fallback), so each one takes
the parent PID in its payload and only misbehaves inside a worker.
"""

import os
import signal
import time

import pytest

from repro.exec import ExecutionError, ProcessPoolBackend


def _echo(x):
    return x


def _suicide_once(payload):
    """Die the first time a worker runs this; succeed on retry."""
    flag, value = payload
    if not os.path.exists(flag):
        with open(flag, "w") as fh:
            fh.write("died")
        os._exit(1)
    return value * 10


def _die_in_worker(payload):
    """Always kill the hosting process — unless it is the parent."""
    parent_pid, value = payload
    if os.getpid() != parent_pid:
        os._exit(1)
    return value + 100


def _sleep_in_worker(payload):
    parent_pid, duration = payload
    if os.getpid() != parent_pid:
        time.sleep(duration)
    return "done"


def test_prewarm_spawns_workers_immediately():
    backend = ProcessPoolBackend(workers=2)
    try:
        pids = backend.worker_pids()
        assert len(pids) == 2
        assert all(p != os.getpid() for p in pids)
    finally:
        backend.close()


def test_crash_mid_unit_is_retried_and_pool_restarted(tmp_path):
    backend = ProcessPoolBackend(workers=2, backoff_base_s=0.01)
    try:
        flag = str(tmp_path / "crash-once")
        assert backend.run(_suicide_once, (flag, 7)) == 70
        snap = backend.stats_snapshot()
        assert snap["retried"] >= 1
        assert snap["worker_restarts"] >= 1
        assert snap["completed"] == 1
        assert not backend.degraded
    finally:
        backend.close()


def test_map_survives_crash_with_no_dropped_units(tmp_path):
    backend = ProcessPoolBackend(workers=2, backoff_base_s=0.01)
    try:
        flag = str(tmp_path / "crash-once-map")
        payloads = [(flag, v) for v in range(6)]
        assert backend.map(_suicide_once, payloads) == [
            v * 10 for v in range(6)
        ]
        snap = backend.stats_snapshot()
        assert snap["worker_restarts"] >= 1
    finally:
        backend.close()


def test_external_worker_kill_recovers():
    backend = ProcessPoolBackend(workers=2, backoff_base_s=0.01)
    try:
        os.kill(backend.worker_pids()[0], signal.SIGKILL)
        # Every unit admitted after the kill still completes.
        assert backend.map(_echo, list(range(4))) == [0, 1, 2, 3]
        assert backend.stats_snapshot()["worker_restarts"] >= 1
        assert len(backend.worker_pids()) == 2
    finally:
        backend.close()


def test_degrades_to_inline_after_repeated_crashes():
    backend = ProcessPoolBackend(
        workers=2, max_retries=3, degrade_after=2, backoff_base_s=0.01
    )
    try:
        parent = os.getpid()
        # Two consecutive infrastructure failures trip degradation; the
        # unit then executes inline (where _die_in_worker is harmless).
        assert backend.run(_die_in_worker, (parent, 1)) == 101
        assert backend.degraded
        snap = backend.stats_snapshot()
        assert snap["degradations"] == 1
        assert snap["mode"] == "inline"
        assert snap["mode_transitions"] == 1
        # Degraded backend keeps serving — availability over parallelism.
        assert backend.run(_echo, 5) == 5
        assert backend.map(_echo, [1, 2]) == [1, 2]
        assert backend.worker_pids() == []
    finally:
        backend.close()


def test_retries_exhausted_raises_with_degradation_disabled():
    backend = ProcessPoolBackend(
        workers=1, max_retries=1, degrade_after=0, backoff_base_s=0.01
    )
    try:
        with pytest.raises(ExecutionError, match="retries exhausted"):
            backend.run(_die_in_worker, (os.getpid(), 0))
        snap = backend.stats_snapshot()
        assert snap["failures"] == 1
        assert snap["retried"] == 1
        assert not backend.degraded
    finally:
        backend.close()


def test_unit_timeout_counts_and_retries():
    backend = ProcessPoolBackend(
        workers=1,
        timeout_s=0.2,
        max_retries=1,
        degrade_after=0,
        backoff_base_s=0.01,
    )
    try:
        with pytest.raises(ExecutionError):
            backend.run(_sleep_in_worker, (os.getpid(), 30.0))
        snap = backend.stats_snapshot()
        assert snap["timeouts"] >= 1
        assert snap["worker_restarts"] >= 1
    finally:
        backend.close()


def test_success_resets_strike_counter(tmp_path):
    backend = ProcessPoolBackend(
        workers=2, degrade_after=2, backoff_base_s=0.01
    )
    try:
        for i in range(3):
            flag = str(tmp_path / f"crash-{i}")
            assert backend.run(_suicide_once, (flag, i)) == i * 10
        # Three crashes happened, but never two *consecutive* failures:
        # each retry succeeded, so degradation must not have tripped.
        assert not backend.degraded
        assert backend.stats_snapshot()["degradations"] == 0
    finally:
        backend.close()
