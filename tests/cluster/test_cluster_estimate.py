"""``mode="estimate"`` through a live cluster router.

The acceptance property: the router answers estimates locally — no
forward, no cache lookup, no worker batcher involvement — and the
answers are bit-stable with the local estimator, interleaved freely
with exact traffic that still shards out to the workers.
"""

import asyncio
import contextlib

from repro.analysis.estimate import estimate_spec
from repro.cluster import ClusterConfig, ClusterRouter, ClusterWorkerConfig
from repro.service import LoadgenConfig, ServiceClient, run_loadgen

WORKLOAD_PARAMS = {"chains": 2, "depth": 4, "messages": 3}


def run_async(coro, timeout=240):
    return asyncio.run(asyncio.wait_for(coro, timeout))


@contextlib.asynccontextmanager
async def cluster(workers=2, **overrides):
    overrides.setdefault("port", 0)
    overrides.setdefault("worker", ClusterWorkerConfig(workers=workers))
    router = ClusterRouter(ClusterConfig(workers=workers, **overrides))
    task = asyncio.create_task(router.run())
    await router.started.wait()
    try:
        yield router
    finally:
        router.request_shutdown()
        await task


def test_router_answers_estimates_without_touching_workers():
    async def drive():
        async with cluster(workers=2) as router:
            est_cfg = LoadgenConfig(
                workload="chain-bundle",
                workload_params=WORKLOAD_PARAMS,
                simulators=("wormhole", "cut_through"),
                lengths=(8,),
                channels=(1, 2),
                requests=12,
                concurrency=4,
                mode="estimate",
            )
            report = await run_loadgen("127.0.0.1", router.port, est_cfg)
            assert report["ok"] == 12
            assert report["bit_exact"] is True  # matches local estimator

            stats = report["server"]
            counters = stats["counters"]
            assert counters["estimated"] == 12
            assert counters["forwarded"] == 0
            assert counters["cache_served"] == 0
            # The shared cache was never consulted.
            assert stats["cache"]["cache_hits"] == 0
            assert stats["cache"]["cache_misses"] == 0
            # No worker ran anything, let alone batched anything.
            for worker in stats["workers"]:
                assert worker["counters"]["completed"] == 0
                assert worker["batches"]["count"] == 0

            # Exact traffic through the same tier still shards + verifies.
            async with await ServiceClient.connect(
                "127.0.0.1", router.port
            ) as client:
                from repro.sim.sweep import TrialSpec

                spec = TrialSpec.make(
                    "chain-bundle",
                    "wormhole",
                    B=2,
                    workload_params=WORKLOAD_PARAMS,
                    message_length=8,
                )
                exact = await client.run_trial(spec)
                est = await client.run_trial(spec, mode="estimate", req_id="e")
                assert exact["status"] == est["status"] == "ok"
                assert est["metrics"] == estimate_spec(spec).to_metrics()
                lower = est["metrics"]["makespan_lower"]
                upper = est["metrics"]["makespan_upper"]
                assert lower <= exact["metrics"]["makespan"] <= upper
                stats2 = await client.stats()
            assert stats2["counters"]["forwarded"] == 1  # just the exact run
            assert stats2["counters"]["estimated"] == 13

    run_async(drive())
