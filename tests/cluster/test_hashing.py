"""Unit tests for the consistent-hash ring (shard placement layer)."""

import pytest

from repro.cluster.hashing import DEFAULT_REPLICAS, HashRing

KEYS = [f"('chain-bundle', 'wormhole', {i})" for i in range(400)]


def test_replicas_must_be_positive():
    with pytest.raises(ValueError, match="replicas"):
        HashRing(replicas=0)


def test_deterministic_across_instances_and_insertion_order():
    """Placement depends only on the member set, never process state."""
    a = HashRing([0, 1, 2, 3])
    b = HashRing([3, 1, 0, 2])  # different insertion order
    assert a.nodes == b.nodes
    for key in KEYS:
        assert a.node_for(key) == b.node_for(key)


def test_every_node_owns_a_share():
    """64 vnodes/node spread 400 keys over all 4 members."""
    ring = HashRing(range(4), replicas=DEFAULT_REPLICAS)
    owners = {ring.node_for(key) for key in KEYS}
    assert owners == {0, 1, 2, 3}


def test_removal_remaps_only_the_removed_nodes_keys():
    """The consistent-hashing contract: ~1/N of keys move, and every
    key that moves belonged to the removed node."""
    full = HashRing(range(4))
    before = {key: full.node_for(key) for key in KEYS}
    reduced = HashRing(range(4))
    reduced.remove(2)
    for key in KEYS:
        after = reduced.node_for(key)
        if before[key] != 2:
            assert after == before[key], key  # untouched keys stay put
        else:
            assert after != 2
    moved = sum(1 for key in KEYS if before[key] == 2)
    # Node 2 owned a real share (roughly 1/4; loose bounds for hash noise).
    assert 0.1 * len(KEYS) < moved < 0.45 * len(KEYS)


def test_exclude_is_a_fallback_not_a_remap():
    """Excluding a down node picks its ring successor without touching
    any other key's placement — and without mutating the ring."""
    ring = HashRing(range(4))
    for key in KEYS[:50]:
        home = ring.node_for(key)
        fallback = ring.node_for(key, exclude={home})
        assert fallback != home
        assert fallback in ring.nodes
        # Matches actually removing the node (same successor walk)...
        reduced = HashRing(set(range(4)) - {home})
        assert fallback == reduced.node_for(key)
        # ...and the ring itself is unchanged: home is restored.
        assert ring.node_for(key) == home


def test_all_excluded_raises():
    ring = HashRing(range(2))
    with pytest.raises(ValueError, match="no eligible nodes"):
        ring.node_for("k", exclude={0, 1})
    with pytest.raises(ValueError, match="no eligible nodes"):
        HashRing().node_for("k")


def test_membership_operations_are_idempotent():
    ring = HashRing()
    ring.add(0)
    ring.add(0)
    assert len(ring) == 1 and 0 in ring
    ring.remove(0)
    ring.remove(0)
    assert len(ring) == 0 and 0 not in ring
