"""End-to-end cluster tests: sharded bit-exactness, cache, crash loss-freedom.

These spin up a real :class:`ClusterRouter` — which itself spawns real
``repro serve`` worker subprocesses on ephemeral ports — so they cover
the full stack: wire protocol through the router, consistent-hash
placement, worker DynamicBatcher execution, the shared result cache,
and supervisor-driven crash recovery.  Subprocess spawns are expensive,
so each test drives one tier hard rather than many tiers lightly.
"""

import asyncio
import contextlib
import os
import signal

from repro.cluster import ClusterConfig, ClusterRouter, ClusterWorkerConfig
from repro.service import LoadgenConfig, ServiceClient, run_loadgen

WORKLOAD_PARAMS = {"chains": 2, "depth": 4, "messages": 3}


def run_async(coro, timeout=240):
    return asyncio.run(asyncio.wait_for(coro, timeout))


@contextlib.asynccontextmanager
async def cluster(workers=2, **overrides):
    """A live router + worker tier on an ephemeral port."""
    overrides.setdefault("port", 0)
    overrides.setdefault("worker", ClusterWorkerConfig(workers=workers))
    router = ClusterRouter(ClusterConfig(workers=workers, **overrides))
    task = asyncio.create_task(router.run())
    await router.started.wait()
    try:
        yield router
    finally:
        router.request_shutdown()
        await task


def _loadcfg(requests=18, root_seed=3):
    """Multi-key traffic: 3 simulators -> 3 distinct compat keys."""
    return LoadgenConfig(
        workload="chain-bundle",
        workload_params=WORKLOAD_PARAMS,
        channels=(1, 2),
        message_length=8,
        simulators=("wormhole", "cut_through", "store_forward"),
        requests=requests,
        concurrency=6,
        root_seed=root_seed,
        verify=True,
    )


def test_sharded_tier_is_bit_exact_caches_and_drains():
    """The headline run: one 2-worker tier, driven twice, then drained.

    Pass 1 must be bit-exact against serial replays with the requests
    actually spread across both workers (consistent hashing on the
    compat key); pass 2 (same seed) must be answered from the shared
    cache; stats must aggregate the tier; shutdown must ack, reject a
    late run as draining, and exit cleanly.
    """

    async def drive():
        async with cluster(workers=2) as router:
            config = _loadcfg()
            first = await run_loadgen("127.0.0.1", router.port, config)
            second = await run_loadgen("127.0.0.1", router.port, config)
            health = router._health()
            stats = await router._stats_snapshot()

            control = await ServiceClient.connect("127.0.0.1", router.port)
            try:
                ack = await control.shutdown()
                late = await control.run_trial(
                    {
                        "workload": "chain-bundle",
                        "workload_params": WORKLOAD_PARAMS,
                        "B": 2,
                    }
                )
            finally:
                await control.close()
        return first, second, health, stats, ack, late, router

    first, second, health, stats, ack, late, router = run_async(drive())

    # Pass 1: every request executed, every answer bit-exact.
    assert first["ok"] == 18, first["statuses"]
    assert first["bit_exact"] is True, first["mismatches"]
    # Sharding really happened: both slots served traffic (placement is
    # deterministic, so this cannot flake).
    assert stats["counters"]["forwarded"] >= 18
    per_worker = [w for w in stats["workers"] if w]
    assert len(per_worker) == 2
    assert all(
        w["counters"]["completed"] > 0 for w in per_worker
    ), [w["counters"]["completed"] for w in per_worker]

    # Pass 2: answered from the shared cache, still bit-exact.
    assert second["ok"] == 18, second["statuses"]
    assert second["bit_exact"] is True, second["mismatches"]
    assert health["cache"]["hits"] >= 18
    assert health["cache"]["stores"] == 18
    assert router.stats.counters["cache_served"] >= 18

    # Aggregated introspection.
    assert health["backend_mode"] == "cluster"
    assert health["workers_alive"] == 2
    assert health["worker_restarts"] == 0
    assert stats["batches"]["count"] > 0
    assert stats["batches"]["mean_occupancy"] >= 1.0

    # Drain discipline at the router.
    assert ack["status"] == "ok" and ack["draining"] is True
    assert late["status"] == "rejected"
    assert late["error"] == "draining"
    assert late["retry_after_ms"] >= 1


def test_worker_sigkill_mid_run_loses_no_accepted_request():
    """Crash loss-freedom: SIGKILL one worker while loadgen is running.

    Every request must still be answered ``ok`` and bit-exact (the
    router retries the dead slot's forwards on the surviving ring
    neighbour), the supervisor must restart the slot
    (``worker_restarts >= 1``), and a follow-up run against the healed
    tier must use both workers again.
    """

    async def drive():
        async with cluster(workers=2) as router:
            config = _loadcfg(requests=24, root_seed=11)

            async def kill_one_worker():
                await asyncio.sleep(0.2)
                victim = router.supervisor.handles[0]
                os.kill(victim.process.pid, signal.SIGKILL)

            report, _ = await asyncio.gather(
                run_loadgen("127.0.0.1", router.port, config),
                kill_one_worker(),
            )

            # The supervisor must notice and respawn slot 0.
            async def wait_for_respawn():
                handle = router.supervisor.handles[0]
                while not (handle.generation >= 2 and handle.alive):
                    await asyncio.sleep(0.05)

            await asyncio.wait_for(wait_for_respawn(), 60)
            health_after_kill = router._health()

            follow_up = await run_loadgen(
                "127.0.0.1", router.port, _loadcfg(requests=12, root_seed=12)
            )
            return report, health_after_kill, follow_up

    report, health, follow_up = run_async(drive())

    # Zero loss: nothing missing, nothing dropped on the floor; every
    # accepted request was answered (retried elsewhere) and verified.
    assert report["ok"] == 24, report["statuses"]
    assert report["statuses"].get("missing", 0) == 0
    assert report["statuses"].get("connection_error", 0) == 0
    assert report["bit_exact"] is True, report["mismatches"]

    assert health["worker_restarts"] >= 1
    assert health["workers_alive"] == 2
    assert health["backend_mode"] == "cluster"

    assert follow_up["ok"] == 12, follow_up["statuses"]
    assert follow_up["bit_exact"] is True, follow_up["mismatches"]


def test_router_rejects_invalid_specs_like_a_worker_would():
    """Protocol errors are answered at the router, never forwarded."""

    async def drive():
        async with cluster(workers=1) as router:
            async with await ServiceClient.connect(
                "127.0.0.1", router.port
            ) as c:
                bad_spec = await c.run_trial({"workload": "no-such-workload"})
                bad_op = await c.request({"op": "frobnicate", "id": "x"})
                health = await c.health()
        return bad_spec, bad_op, health, router

    bad_spec, bad_op, health, router = run_async(drive())
    assert bad_spec["status"] == "error"
    assert "unknown workload" in bad_spec["error"]
    assert bad_op["status"] == "error"
    assert "unknown op" in bad_op["error"]
    assert health["status"] == "ok" and health["workers_alive"] == 1
    # Nothing reached a worker.
    assert router.stats.counters["forwarded"] == 0
    assert router.stats.counters["protocol_errors"] == 2
