"""Flit-level wormhole router with ``B`` virtual channels (Section 1.1).

This simulator implements the paper's machine model exactly:

* Each edge (physical channel) multiplexes ``B`` virtual channels.  The
  buffer at the head of each edge holds up to ``B`` flits, **each
  belonging to a different message**.
* In one flit step, one flit can cross each of the ``B`` virtual channels
  of an edge — so up to ``B`` flits per edge per step, at most one per
  message.
* The header flit cannot cross an edge whose buffer has no free slot;
  while it is stalled, every flit behind it stalls too (switches buffer
  only one flit per message).
* Messages start in external injection buffers and are injected one flit
  per step; flits reaching the destination are removed immediately into
  external delivery buffers.

Because each virtual-channel buffer holds exactly one flit, an unblocked
worm advances in lock-step: in a step where the worm moves, *every* edge
currently holding one of its flits forwards that flit.  The simulator
therefore keeps one integer per message — the number of completed moves
``k`` — instead of per-flit state, which is bit-exact with flit-level
simulation of this model:

* during its move ``k`` (1-indexed) the worm's flit ``j`` crosses edge
  ``k - j`` of its path (when ``0 <= k - j <= D_m - 1``);
* the worm acquires a virtual channel (buffer slot) on path edge ``k - 1``
  at move ``k`` (for ``k <= D_m``) and releases the slot on edge
  ``k - L - 1`` after move ``k``: the last flit ``L`` crosses edge ``i``
  during move ``i + L`` and *leaves its head buffer* during move
  ``i + L + 1``, so only then is the slot free for another header.  Slots
  on the final edge are released at completion (delivered flits are
  removed from the network immediately);
* the worm finishes after ``L + D_m - 1`` moves, matching the paper's
  unobstructed latency ``D + L - 1``.

The per-step state update is fully vectorized with NumPy.
"""

from __future__ import annotations

import warnings
from collections.abc import Iterable, Sequence

import numpy as np

from ..network.graph import Network, NetworkError
from ..routing.paths import Path
from ..telemetry.probe import Probe, ProbeSet, RunMeta
from .stats import SimulationResult

__all__ = ["WormholeSimulator", "check_edge_simple", "pad_paths"]

_PRIORITIES = ("random", "age", "index", "rank")


def check_edge_simple(
    padded: np.ndarray, what: str = "path of message {m} is not edge-simple"
) -> None:
    """Raise unless every padded path row is free of repeated edge ids.

    A single sort over the padded matrix replaces the former per-message
    ``np.unique`` loop: after sorting each row, a duplicate edge shows
    up as two equal adjacent entries (the ``-1`` padding is masked out),
    so the whole check is one vectorized pass regardless of ``M``.
    """
    if padded.shape[0] == 0 or padded.shape[1] < 2:
        return
    srt = np.sort(padded, axis=1)
    dup = (srt[:, 1:] == srt[:, :-1]) & (srt[:, 1:] >= 0)
    bad = np.flatnonzero(dup.any(axis=1))
    if bad.size:
        raise NetworkError(what.format(m=int(bad[0])))


def pad_paths(paths: Sequence[Path] | Sequence[Sequence[int]]) -> tuple[np.ndarray, np.ndarray]:
    """Pack ragged per-message edge-id lists into a padded matrix.

    Returns ``(padded, lengths)`` where ``padded`` has shape
    ``(M, max_len)`` with ``-1`` padding and ``lengths[m]`` is message
    ``m``'s path length ``D_m``.
    """
    edge_lists = [
        list(p.edges) if isinstance(p, Path) else list(p) for p in paths
    ]
    lengths = np.asarray([len(e) for e in edge_lists], dtype=np.int64)
    max_len = int(lengths.max()) if lengths.size else 0
    padded = np.full((len(edge_lists), max_len), -1, dtype=np.int64)
    for m, edges in enumerate(edge_lists):
        padded[m, : len(edges)] = edges
    return padded, lengths


class WormholeSimulator:
    """Synchronous flit-level wormhole simulator.

    Parameters
    ----------
    net:
        The network; only its edge count is needed for channel state, so
        arithmetic topologies may pass a pre-built :class:`Network` or any
        object with a ``num_edges`` attribute.
    num_virtual_channels:
        The paper's ``B >= 1``.
    priority:
        Arbitration among header flits contending for the free slots of
        the same edge: ``"random"`` (fresh random priorities each step),
        ``"age"`` (earlier-released message wins, ties by index),
        ``"index"`` (message index order, fully deterministic), or
        ``"rank"`` (a random rank drawn once per message and kept for the
        whole run — the fixed-priority discipline of Greenberg and Oh's
        universal wormhole algorithm [19]).
    seed:
        Seed for ``"random"`` arbitration (ignored otherwise).

    Notes
    -----
    Virtual-channel slots freed in step ``t`` become available in step
    ``t + 1`` (conservative synchronous semantics): a header never chases
    the tail of another worm through an edge within a single flit step.
    """

    def __init__(
        self,
        net: Network,
        num_virtual_channels: int = 1,
        priority: str = "random",
        seed: int | None = 0,
    ) -> None:
        if num_virtual_channels < 1:
            raise NetworkError(
                f"need at least one virtual channel, got {num_virtual_channels}"
            )
        if priority not in _PRIORITIES:
            raise NetworkError(f"priority must be one of {_PRIORITIES}")
        self.net = net
        self.num_edges = net.num_edges
        self.B = int(num_virtual_channels)
        self.priority = priority
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def run(
        self,
        paths: Sequence[Path] | Sequence[Sequence[int]],
        message_length: int | np.ndarray,
        release_times: np.ndarray | None = None,
        max_steps: int | None = None,
        record_trace: bool = False,
        vc_ids: np.ndarray | Sequence[Sequence[int]] | None = None,
        record_contention: bool = False,
        telemetry: "ProbeSet | Probe | Iterable[Probe] | None" = None,
    ) -> SimulationResult:
        """Route all messages; returns a :class:`SimulationResult`.

        Parameters
        ----------
        paths:
            Per-message routes — :class:`Path` objects or raw edge-id
            sequences.  Paths must be edge-simple (a worm cannot hold two
            virtual channels on one edge).
        message_length:
            The paper's ``L`` (>= 1 flits), scalar or per-message array.
        release_times:
            Flit step at which each message becomes available for
            injection (default: all 0; injection is attempted from step
            ``release + 1`` on).  This is how Theorem 2.1.6 schedules are
            executed.
        max_steps:
            Safety cap; defaults to a generous bound that any live
            simulation finishes under.
        record_trace:
            Deprecated — attach a :class:`~repro.telemetry.collectors
            .TraceSnapshotCollector` via ``telemetry=`` instead.  Stores
            each message's completed-move count after every flit step in
            ``result.extra["trace"]`` (shape ``(steps, M)``, ``-1``
            before release).
        vc_ids:
            Optional per-hop virtual-channel *class* assignment — the
            Dally-Seitz mechanism proper.  Ragged per-message sequences
            (same lengths as ``paths``) of integers in ``[0, B)``; a
            header may then only enter the *assigned* virtual channel of
            each edge (one buffer slot per (edge, class)).  Without it,
            the ``B`` slots of an edge are interchangeable (the paper's
            Section 1.1 reading).  Class assignments are what make
            deadlock-freedom *provable* (acyclic CDG); interchangeable
            slots merely make deadlock unlikely.
        record_contention:
            Deprecated — attach a :class:`~repro.telemetry.collectors
            .EdgeContentionCollector` via ``telemetry=`` instead.
            Stores, per physical edge, how many header requests were
            denied over the run in ``result.extra["edge_contention"]``.
        telemetry:
            Probes to instrument the run — a
            :class:`~repro.telemetry.probe.ProbeSet`, a single
            :class:`~repro.telemetry.probe.Probe`, or an iterable of
            probes (see :mod:`repro.telemetry`).  With nothing attached
            the hot loop performs no probe dispatch at all, and attached
            collectors never perturb the simulation (no RNG draws, no
            state writes), so results are bit-identical either way.
        """
        padded, D = pad_paths(paths)
        M = D.size
        L = np.broadcast_to(
            np.asarray(message_length, dtype=np.int64), (M,)
        ).copy()
        if M and L.min() < 1:
            raise NetworkError("message length L must be >= 1")
        check_edge_simple(
            padded,
            "path of message {m} is not edge-simple; a worm cannot "
            "hold two virtual channels on one edge",
        )
        release = (
            np.zeros(M, dtype=np.int64)
            if release_times is None
            else np.asarray(release_times, dtype=np.int64).copy()
        )
        if release.shape != (M,):
            raise NetworkError(f"release_times must have shape ({M},)")
        if M and release.min() < 0:
            raise NetworkError("release times must be >= 0")

        # Legacy recording kwargs become collector probes (satellite of
        # the telemetry subsystem); the result keys stay byte-identical.
        legacy: list[Probe] = []
        trace_probe = contention_probe = None
        if record_trace:
            warnings.warn(
                "record_trace is deprecated; attach a repro.telemetry."
                "TraceSnapshotCollector via telemetry= instead",
                DeprecationWarning,
                stacklevel=2,
            )
            from ..telemetry.collectors import TraceSnapshotCollector

            trace_probe = TraceSnapshotCollector()
            legacy.append(trace_probe)
        if record_contention:
            warnings.warn(
                "record_contention is deprecated; attach a repro.telemetry."
                "EdgeContentionCollector via telemetry= instead",
                DeprecationWarning,
                stacklevel=2,
            )
            from ..telemetry.collectors import EdgeContentionCollector

            contention_probe = EdgeContentionCollector()
            legacy.append(contention_probe)
        probes = ProbeSet.coerce(telemetry, extra=legacy)
        if probes is not None:
            probes.on_run_start(
                RunMeta(
                    simulator="wormhole",
                    num_messages=M,
                    num_edges=self.num_edges,
                    num_virtual_channels=self.B,
                    paths=padded,
                    lengths=D,
                    message_length=L,
                    release=release,
                )
            )

        total_moves = L + D - 1  # moves needed to deliver the whole worm
        completion = np.full(M, -1, dtype=np.int64)
        blocked = np.zeros(M, dtype=np.int64)
        if M == 0:
            result = SimulationResult(
                completion_times=completion,
                makespan=-1,
                steps_executed=0,
                blocked_steps=blocked,
            )
            if probes is not None:
                probes.on_run_end(result)
            return result

        # Zero-length paths (source == destination): delivered at release.
        trivial = D == 0
        completion[trivial] = release[trivial]

        if max_steps is None:
            # Every step, at least one pending message moves (else
            # deadlock is declared), and each message needs L+D-1 moves.
            max_steps = int(release.max() + total_moves[~trivial].sum() + 1) if (~trivial).any() else 0

        # Slot model: without VC classes, a slot is an edge with capacity
        # B; with classes, a slot is an (edge, class) pair with capacity 1.
        if vc_ids is None:
            slot_keys = padded
            capacity = self.B
            num_slots = self.num_edges
        else:
            vc_padded, vc_lengths = pad_paths(
                [list(v) for v in vc_ids]
            )
            if not np.array_equal(vc_lengths, D):
                raise NetworkError("vc_ids must match the path lengths")
            valid = padded >= 0
            if valid.any() and (
                vc_padded[valid].min() < 0 or vc_padded[valid].max() >= self.B
            ):
                raise NetworkError(f"vc ids must lie in [0, {self.B})")
            slot_keys = np.where(valid, padded * self.B + vc_padded, -1)
            capacity = 1
            num_slots = self.num_edges * self.B

        k = np.zeros(M, dtype=np.int64)  # completed moves per message
        occupancy = np.zeros(num_slots, dtype=np.int64)
        done = trivial.copy()
        pending = int(M - done.sum())
        age_priority = np.lexsort((np.arange(M), release)).argsort()
        rank_priority = (
            self._rng.permutation(M) if self.priority == "rank" else None
        )

        t = 0
        while pending and t < max_steps:
            t += 1
            active = ~done & (release < t)
            if not active.any():
                # Jump to the next release to avoid idling through gaps.
                future = release[~done]
                t = int(future.min())
                continue
            idx = np.flatnonzero(active)
            k_a = k[idx]
            needs_edge = k_a < D[idx]
            movers_local = np.zeros(idx.size, dtype=bool)
            movers_local[~needs_edge] = True  # draining worms always move

            if needs_edge.any():
                contenders = idx[needs_edge]
                edges = slot_keys[contenders, k[contenders]]
                raw_edges = padded[contenders, k[contenders]]
                if self.priority == "random":
                    prio = self._rng.random(contenders.size)
                elif self.priority == "age":
                    prio = age_priority[contenders]
                elif self.priority == "rank":
                    prio = rank_priority[contenders]
                else:
                    prio = contenders
                order = np.lexsort((prio, edges))
                sorted_edges = edges[order]
                # Rank of each contender within its edge group.
                group_start = np.empty(order.size, dtype=np.int64)
                new_group = np.empty(order.size, dtype=bool)
                new_group[0] = True
                new_group[1:] = sorted_edges[1:] != sorted_edges[:-1]
                group_start = np.maximum.accumulate(
                    np.where(new_group, np.arange(order.size), 0)
                )
                rank = np.arange(order.size) - group_start
                free = capacity - occupancy[sorted_edges]
                granted_sorted = rank < free
                granted = np.empty(order.size, dtype=bool)
                granted[order] = granted_sorted
                movers_local[needs_edge] = granted
                # Acquire the newly entered edges.
                acquired = edges[granted]
                np.add.at(occupancy, acquired, 1)
                blocked_ids = contenders[~granted]
                blocked[blocked_ids] += 1
                if probes is not None:
                    probes.on_grant(t, contenders[granted], raw_edges[granted])
                    if blocked_ids.size:
                        probes.on_block(t, blocked_ids, raw_edges[~granted])

            movers = idx[movers_local]
            k[movers] += 1
            # Release the buffer the tail just vacated: after move k the
            # last flit has left the head buffer of edge k - L - 1 (it
            # crossed the *next* edge this step).  The final edge's slot
            # is released at completion instead — delivered flits never
            # occupy a buffer.
            rel_idx = k[movers] - L[movers] - 1
            sel = (rel_idx >= 0) & (rel_idx < D[movers] - 1)
            if sel.any():
                rel_msgs = movers[sel]
                rel_edges = slot_keys[rel_msgs, rel_idx[sel]]
                np.add.at(occupancy, rel_edges, -1)
                if probes is not None:
                    probes.on_release(t, rel_msgs, padded[rel_msgs, rel_idx[sel]])
            finished = movers[k[movers] == total_moves[movers]]
            if finished.size:
                completion[finished] = t
                done[finished] = True
                pending -= finished.size
                last_edges = slot_keys[finished, D[finished] - 1]
                np.add.at(occupancy, last_edges, -1)
                if probes is not None:
                    probes.on_release(t, finished, padded[finished, D[finished] - 1])
                    probes.on_complete(t, finished)

            if probes is not None:
                probes.on_step(t, movers, k)
                if probes.aborted:
                    break

            if movers.size == 0:
                # Nothing moved.  If every pending message is already
                # released, the configuration can never change: deadlock.
                if bool((release[~done] < t).all()):
                    result = SimulationResult(
                        completion_times=completion,
                        makespan=int(completion.max()),
                        steps_executed=t,
                        blocked_steps=blocked,
                        deadlocked=True,
                        extra=self._legacy_extra(trace_probe, contention_probe),
                    )
                    if probes is not None:
                        probes.on_deadlock(t, np.flatnonzero(~done))
                        probes.on_run_end(result)
                    return result

        result = SimulationResult(
            completion_times=completion,
            makespan=int(completion.max()),
            steps_executed=t,
            blocked_steps=blocked,
            hit_step_cap=pending > 0,
            extra=self._legacy_extra(trace_probe, contention_probe),
        )
        if probes is not None:
            if probes.aborted:
                result.extra["telemetry_abort"] = probes.abort_reason
            probes.on_run_end(result)
        return result

    @staticmethod
    def _legacy_extra(trace_probe, contention_probe) -> dict:
        """``extra`` keys for the deprecated record_* kwargs."""
        extra: dict = {}
        if trace_probe is not None:
            extra["trace"] = trace_probe.matrix
        if contention_probe is not None:
            extra["edge_contention"] = contention_probe.denied
        return extra

    # ------------------------------------------------------------------
    @staticmethod
    def _check_edge_simple(padded: np.ndarray, lengths: np.ndarray) -> None:
        """Back-compat alias for :func:`check_edge_simple`."""
        del lengths  # encoded by the -1 padding already
        check_edge_simple(
            padded,
            "path of message {m} is not edge-simple; a worm cannot "
            "hold two virtual channels on one edge",
        )
