"""Flit-level wormhole router with ``B`` virtual channels (Section 1.1).

This simulator implements the paper's machine model exactly:

* Each edge (physical channel) multiplexes ``B`` virtual channels.  The
  buffer at the head of each edge holds up to ``B`` flits, **each
  belonging to a different message**.
* In one flit step, one flit can cross each of the ``B`` virtual channels
  of an edge — so up to ``B`` flits per edge per step, at most one per
  message.
* The header flit cannot cross an edge whose buffer has no free slot;
  while it is stalled, every flit behind it stalls too (switches buffer
  only one flit per message).
* Messages start in external injection buffers and are injected one flit
  per step; flits reaching the destination are removed immediately into
  external delivery buffers.

Because each virtual-channel buffer holds exactly one flit, an unblocked
worm advances in lock-step: in a step where the worm moves, *every* edge
currently holding one of its flits forwards that flit.  The simulator
therefore keeps one integer per message — the number of completed moves
``k`` — instead of per-flit state, which is bit-exact with flit-level
simulation of this model:

* during its move ``k`` (1-indexed) the worm's flit ``j`` crosses edge
  ``k - j`` of its path (when ``0 <= k - j <= D_m - 1``);
* the worm acquires a virtual channel (buffer slot) on path edge ``k - 1``
  at move ``k`` (for ``k <= D_m``) and releases the slot on edge
  ``k - L - 1`` after move ``k``: the last flit ``L`` crosses edge ``i``
  during move ``i + L`` and *leaves its head buffer* during move
  ``i + L + 1``, so only then is the slot free for another header.  Slots
  on the final edge are released at completion (delivered flits are
  removed from the network immediately);
* the worm finishes after ``L + D_m - 1`` moves, matching the paper's
  unobstructed latency ``D + L - 1``.

The per-step state update is fully vectorized and built on the shared
:mod:`repro.sim.engine` core: the :class:`~repro.sim.engine.SlotArbiter`
owns the contend/rank/grant kernel and slot occupancy, and the
:class:`~repro.sim.engine.StepLoop` owns release gating, step caps,
deadlock declaration, and result assembly.
"""

from __future__ import annotations

import functools
from collections.abc import Iterable, Sequence

import numpy as np

from ..network.graph import Network, NetworkError
from ..routing.paths import Path
from ..telemetry.probe import Probe, ProbeSet, RunMeta
from .engine import (
    PaddedPaths,
    StepLoop,
    compat_check_edge_simple,
    legacy_extra,
    legacy_record_probes,
    resolve_step_cap,
)
from .kernels import WormholeKernel, serial_state, validate_vc_ids
from .stats import SimulationResult

__all__ = ["PaddedPaths", "WormholeSimulator"]

_PRIORITIES = ("random", "age", "index", "rank")

_EDGE_SIMPLE_WHAT = (
    "path of message {m} is not edge-simple; a worm cannot "
    "hold two virtual channels on one edge"
)


class WormholeSimulator:
    """Synchronous flit-level wormhole simulator.

    Parameters
    ----------
    net:
        The network; only its edge count is needed for channel state, so
        arithmetic topologies may pass a pre-built :class:`Network` or any
        object with a ``num_edges`` attribute.
    num_virtual_channels:
        The paper's ``B >= 1``.
    priority:
        Arbitration among header flits contending for the free slots of
        the same edge: ``"random"`` (fresh random priorities each step),
        ``"age"`` (earlier-released message wins, ties by index),
        ``"index"`` (message index order, fully deterministic), or
        ``"rank"`` (a random rank drawn once per message and kept for the
        whole run — the fixed-priority discipline of Greenberg and Oh's
        universal wormhole algorithm [19]).
    seed:
        Seed for ``"random"`` arbitration (ignored otherwise).

    Notes
    -----
    Virtual-channel slots freed in step ``t`` become available in step
    ``t + 1`` (conservative synchronous semantics): a header never chases
    the tail of another worm through an edge within a single flit step.
    """

    def __init__(
        self,
        net: Network,
        num_virtual_channels: int = 1,
        priority: str = "random",
        seed: int | None = 0,
    ) -> None:
        if num_virtual_channels < 1:
            raise NetworkError(
                f"need at least one virtual channel, got {num_virtual_channels}"
            )
        if priority not in _PRIORITIES:
            raise NetworkError(f"priority must be one of {_PRIORITIES}")
        self.net = net
        self.num_edges = net.num_edges
        self.B = int(num_virtual_channels)
        self.priority = priority
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def run(
        self,
        paths: Sequence[Path] | Sequence[Sequence[int]] | PaddedPaths,
        message_length: int | np.ndarray,
        release_times: np.ndarray | None = None,
        max_steps: int | None = None,
        record_trace: bool = False,
        vc_ids: np.ndarray | Sequence[Sequence[int]] | None = None,
        record_contention: bool = False,
        telemetry: "ProbeSet | Probe | Iterable[Probe] | None" = None,
    ) -> SimulationResult:
        """Route all messages; returns a :class:`SimulationResult`.

        Parameters
        ----------
        paths:
            Per-message routes — :class:`Path` objects, raw edge-id
            sequences, or a pre-packed
            :class:`~repro.sim.engine.PaddedPaths` (which skips the
            per-run re-pack and caches the edge-simplicity check across
            runs).  Paths must be edge-simple (a worm cannot hold two
            virtual channels on one edge).
        message_length:
            The paper's ``L`` (>= 1 flits), scalar or per-message array.
        release_times:
            Flit step at which each message becomes available for
            injection (default: all 0; injection is attempted from step
            ``release + 1`` on).  This is how Theorem 2.1.6 schedules are
            executed.
        max_steps:
            Safety cap; defaults to the engine's documented wormhole
            bound (see :func:`repro.sim.engine.default_step_cap`).
        record_trace:
            Deprecated — attach a :class:`~repro.telemetry.collectors
            .TraceSnapshotCollector` via ``telemetry=`` instead.  Stores
            each message's completed-move count after every flit step in
            ``result.extra["trace"]`` (shape ``(steps, M)``, ``-1``
            before release).
        vc_ids:
            Optional per-hop virtual-channel *class* assignment — the
            Dally-Seitz mechanism proper.  Ragged per-message sequences
            (same lengths as ``paths``) of integers in ``[0, B)``; a
            header may then only enter the *assigned* virtual channel of
            each edge (one buffer slot per (edge, class)).  Without it,
            the ``B`` slots of an edge are interchangeable (the paper's
            Section 1.1 reading).  Class assignments are what make
            deadlock-freedom *provable* (acyclic CDG); interchangeable
            slots merely make deadlock unlikely.
        record_contention:
            Deprecated — attach a :class:`~repro.telemetry.collectors
            .EdgeContentionCollector` via ``telemetry=`` instead.
            Stores, per physical edge, how many header requests were
            denied over the run in ``result.extra["edge_contention"]``.
        telemetry:
            Probes to instrument the run — a
            :class:`~repro.telemetry.probe.ProbeSet`, a single
            :class:`~repro.telemetry.probe.Probe`, or an iterable of
            probes (see :mod:`repro.telemetry`).  With nothing attached
            the hot loop performs no probe dispatch at all, and attached
            collectors never perturb the simulation (no RNG draws, no
            state writes), so results are bit-identical either way.
        """
        pp = PaddedPaths.from_paths(paths)
        padded, D = pp.padded, pp.lengths
        M = D.size
        L = np.broadcast_to(
            np.asarray(message_length, dtype=np.int64), (M,)
        ).copy()
        if M and L.min() < 1:
            raise NetworkError("message length L must be >= 1")
        pp.require_edge_simple(_EDGE_SIMPLE_WHAT)
        release = (
            np.zeros(M, dtype=np.int64)
            if release_times is None
            else np.asarray(release_times, dtype=np.int64).copy()
        )
        if release.shape != (M,):
            raise NetworkError(f"release_times must have shape ({M},)")
        if M and release.min() < 0:
            raise NetworkError("release times must be >= 0")

        legacy, trace_probe, contention_probe = legacy_record_probes(
            record_trace, record_contention
        )
        probes = ProbeSet.coerce(telemetry, extra=legacy)
        if probes is not None:
            probes.on_run_start(
                RunMeta(
                    simulator="wormhole",
                    num_messages=M,
                    num_edges=self.num_edges,
                    num_virtual_channels=self.B,
                    paths=padded,
                    lengths=D,
                    message_length=L,
                    release=release,
                )
            )

        total_moves = L + D - 1  # moves needed to deliver the whole worm
        if M == 0:
            result = SimulationResult(
                completion_times=np.full(0, -1, dtype=np.int64),
                makespan=-1,
                steps_executed=0,
                blocked_steps=np.zeros(0, dtype=np.int64),
            )
            if probes is not None:
                probes.on_run_end(result)
            return result

        # Zero-length paths (source == destination): delivered at release.
        trivial = D == 0
        max_steps = resolve_step_cap(
            max_steps,
            "wormhole",
            release=release,
            total_moves=total_moves,
            trivial=trivial,
        )

        # Slot model: without VC classes, a slot is an edge with capacity
        # B; with classes, a slot is an (edge, class) pair with capacity 1.
        vc_padded = (
            None if vc_ids is None else validate_vc_ids(padded, D, vc_ids, self.B)
        )

        loop = StepLoop(M, release, max_steps, probes)
        loop.mark_trivial(trivial, release)

        kernel = WormholeKernel(
            serial_state(loop),
            num_edges=self.num_edges,
            padded=padded,
            lengths=D,
            message_length=L,
            release=release,
            capacities=np.full(1, self.B, dtype=np.int64),
            priority=self.priority,
            rngs=[self._rng],
            vc_padded=vc_padded,
            probes=probes,
        )
        return loop.run(
            kernel.serial_body, lambda: legacy_extra(trace_probe, contention_probe)
        )

    # ------------------------------------------------------------------
    # Back-compat aliases (single engine shims behind the old names).
    _legacy_extra = staticmethod(legacy_extra)
    _check_edge_simple = staticmethod(
        functools.partial(compat_check_edge_simple, what=_EDGE_SIMPLE_WHAT)
    )
