"""Virtual cut-through router (Kermani-Kleinrock [21]; Section 1.4).

Section 1.4 compares, for a fixed buffer budget, a wormhole router whose
per-edge buffer holds one flit from each of ``B`` different messages
against a virtual cut-through router whose per-edge buffer holds ``B``
flits *of a single message*.  The paper observes the cut-through router
performs roughly like a wormhole router without virtual channels routing
messages of length ``L / B`` — a *linear* speedup in ``B``, versus the
*superlinear* ``B * D**(1 - 1/B)`` available to virtual channels.

Model implemented here (single channel per edge, bandwidth one flit per
flit step):

* each edge's head buffer is owned by at most one message at a time, from
  the step its header crosses until its last flit has moved on;
* up to ``buffer_flits`` flits of the owning message may sit in the
  buffer, so a blocked worm *compresses* instead of stalling flat;
* a flit crosses edge ``i`` when its predecessor flit has left room (or
  it is the header), the message owns (or can claim) the edge, and the
  buffer at the head of ``i`` has space (delivery removes flits
  instantly, as in the wormhole model).

State per message is the vector ``c[i]`` = number of its flits that have
crossed path edge ``i``; the buffer at the head of edge ``i`` holds
``c[i] - c[i+1]`` flits.  One flit may cross each owned edge per step.

The step protocol (release gating, gap skipping, deadlock declaration,
step caps, result assembly) comes from the shared
:class:`~repro.sim.engine.StepLoop`; only the ownership-based advance
rule lives here.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from ..network.graph import Network, NetworkError
from ..routing.paths import Path
from ..telemetry.probe import Probe, ProbeSet, RunMeta
from .engine import (
    PaddedPaths,
    StepLoop,
    compat_check_edge_simple,
    resolve_step_cap,
)
from .kernels import CutThroughKernel, serial_state
from .stats import SimulationResult

__all__ = ["CutThroughSimulator"]


class CutThroughSimulator:
    """Synchronous virtual cut-through simulator.

    Parameters
    ----------
    net:
        The network.
    buffer_flits:
        Per-edge buffer capacity in flits (the comparison's ``B``).
    priority:
        Arbitration among headers contending for a free edge:
        ``"random"`` or ``"index"``.
    seed:
        Seed for random arbitration.
    """

    def __init__(
        self,
        net: Network,
        buffer_flits: int = 1,
        priority: str = "random",
        seed: int | None = 0,
    ) -> None:
        if buffer_flits < 1:
            raise NetworkError("buffer must hold at least one flit")
        if priority not in ("random", "index"):
            raise NetworkError("priority must be 'random' or 'index'")
        self.net = net
        self.num_edges = net.num_edges
        self.buffer_flits = int(buffer_flits)
        self.priority = priority
        self._rng = np.random.default_rng(seed)

    def run(
        self,
        paths: Sequence[Path] | Sequence[Sequence[int]],
        message_length: int | np.ndarray,
        release_times: np.ndarray | None = None,
        max_steps: int | None = None,
        telemetry: "ProbeSet | Probe | Iterable[Probe] | None" = None,
    ) -> SimulationResult:
        """Route all messages; returns flit-step times.

        ``message_length`` may be a scalar or a per-message array.
        ``telemetry`` attaches :mod:`repro.telemetry` probes; grants
        are edge-ownership claims (each implying the owning message's
        ``L`` flits will stream across the edge), releases fire when
        ownership is surrendered.
        """
        pp = PaddedPaths.from_paths(paths)
        padded, D = pp.padded, pp.lengths
        M = D.size
        L_arr = np.broadcast_to(
            np.asarray(message_length, dtype=np.int64), (M,)
        ).copy()
        if M and L_arr.min() < 1:
            raise NetworkError("message length L must be >= 1")
        if M == 0:
            return SimulationResult(
                np.full(0, -1, dtype=np.int64), -1, 0, np.zeros(0, dtype=np.int64)
            )
        pp.require_edge_simple()

        release = (
            np.zeros(M, dtype=np.int64)
            if release_times is None
            else np.asarray(release_times, dtype=np.int64).copy()
        )
        probes = ProbeSet.coerce(telemetry)
        if probes is not None:
            probes.on_run_start(
                RunMeta(
                    simulator="cut_through",
                    num_messages=M,
                    num_edges=self.num_edges,
                    num_virtual_channels=1,
                    paths=padded,
                    lengths=D,
                    message_length=L_arr,
                    release=release,
                    extra={"flits_per_grant": L_arr},
                )
            )
        trivial = D == 0
        max_steps = resolve_step_cap(
            max_steps,
            "cut_through",
            release=release,
            lengths=D,
            message_length=L_arr,
            num_messages=M,
        )

        loop = StepLoop(M, release, max_steps, probes)
        loop.mark_trivial(trivial, release)

        kernel = CutThroughKernel(
            serial_state(loop),
            num_edges=self.num_edges,
            padded=padded,
            lengths=D,
            message_length=L_arr,
            buffer_flits=np.full(1, self.buffer_flits, dtype=np.int64),
            priority=self.priority,
            rngs=[self._rng],
            probes=probes,
        )
        return loop.run(kernel.serial_body)

    # Back-compat alias: the single engine shim behind the old name.
    _check_edge_simple = staticmethod(compat_check_edge_simple)
