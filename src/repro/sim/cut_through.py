"""Virtual cut-through router (Kermani-Kleinrock [21]; Section 1.4).

Section 1.4 compares, for a fixed buffer budget, a wormhole router whose
per-edge buffer holds one flit from each of ``B`` different messages
against a virtual cut-through router whose per-edge buffer holds ``B``
flits *of a single message*.  The paper observes the cut-through router
performs roughly like a wormhole router without virtual channels routing
messages of length ``L / B`` — a *linear* speedup in ``B``, versus the
*superlinear* ``B * D**(1 - 1/B)`` available to virtual channels.

Model implemented here (single channel per edge, bandwidth one flit per
flit step):

* each edge's head buffer is owned by at most one message at a time, from
  the step its header crosses until its last flit has moved on;
* up to ``buffer_flits`` flits of the owning message may sit in the
  buffer, so a blocked worm *compresses* instead of stalling flat;
* a flit crosses edge ``i`` when its predecessor flit has left room (or
  it is the header), the message owns (or can claim) the edge, and the
  buffer at the head of ``i`` has space (delivery removes flits
  instantly, as in the wormhole model).

State per message is the vector ``c[i]`` = number of its flits that have
crossed path edge ``i``; the buffer at the head of edge ``i`` holds
``c[i] - c[i+1]`` flits.  One flit may cross each owned edge per step.

The step protocol (release gating, gap skipping, deadlock declaration,
step caps, result assembly) comes from the shared
:class:`~repro.sim.engine.StepLoop`; only the ownership-based advance
rule lives here.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from ..network.graph import Network, NetworkError
from ..routing.paths import Path
from ..telemetry.probe import Probe, ProbeSet, RunMeta
from .engine import (
    PaddedPaths,
    StepLoop,
    compat_check_edge_simple,
    resolve_step_cap,
)
from .stats import SimulationResult

__all__ = ["CutThroughSimulator"]

#: Back-compat re-exports now served lazily with a deprecation warning;
#: their canonical home is :mod:`repro.sim.engine`.
_MOVED_TO_ENGINE = ("check_edge_simple", "pad_paths")


def __getattr__(name: str):
    if name in _MOVED_TO_ENGINE:
        import warnings

        warnings.warn(
            f"importing {name!r} from repro.sim.cut_through is deprecated; "
            f"use repro.sim.engine.{name}",
            DeprecationWarning,
            stacklevel=2,
        )
        from . import engine

        return getattr(engine, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


class CutThroughSimulator:
    """Synchronous virtual cut-through simulator.

    Parameters
    ----------
    net:
        The network.
    buffer_flits:
        Per-edge buffer capacity in flits (the comparison's ``B``).
    priority:
        Arbitration among headers contending for a free edge:
        ``"random"`` or ``"index"``.
    seed:
        Seed for random arbitration.
    """

    def __init__(
        self,
        net: Network,
        buffer_flits: int = 1,
        priority: str = "random",
        seed: int | None = 0,
    ) -> None:
        if buffer_flits < 1:
            raise NetworkError("buffer must hold at least one flit")
        if priority not in ("random", "index"):
            raise NetworkError("priority must be 'random' or 'index'")
        self.net = net
        self.num_edges = net.num_edges
        self.buffer_flits = int(buffer_flits)
        self.priority = priority
        self._rng = np.random.default_rng(seed)

    def run(
        self,
        paths: Sequence[Path] | Sequence[Sequence[int]],
        message_length: int | np.ndarray,
        release_times: np.ndarray | None = None,
        max_steps: int | None = None,
        telemetry: "ProbeSet | Probe | Iterable[Probe] | None" = None,
    ) -> SimulationResult:
        """Route all messages; returns flit-step times.

        ``message_length`` may be a scalar or a per-message array.
        ``telemetry`` attaches :mod:`repro.telemetry` probes; grants
        are edge-ownership claims (each implying the owning message's
        ``L`` flits will stream across the edge), releases fire when
        ownership is surrendered.
        """
        pp = PaddedPaths.from_paths(paths)
        padded, D = pp.padded, pp.lengths
        M = D.size
        L_arr = np.broadcast_to(
            np.asarray(message_length, dtype=np.int64), (M,)
        ).copy()
        if M and L_arr.min() < 1:
            raise NetworkError("message length L must be >= 1")
        if M == 0:
            return SimulationResult(
                np.full(0, -1, dtype=np.int64), -1, 0, np.zeros(0, dtype=np.int64)
            )
        pp.require_edge_simple()

        release = (
            np.zeros(M, dtype=np.int64)
            if release_times is None
            else np.asarray(release_times, dtype=np.int64).copy()
        )
        probes = ProbeSet.coerce(telemetry)
        if probes is not None:
            probes.on_run_start(
                RunMeta(
                    simulator="cut_through",
                    num_messages=M,
                    num_edges=self.num_edges,
                    num_virtual_channels=1,
                    paths=padded,
                    lengths=D,
                    message_length=L_arr,
                    release=release,
                    extra={"flits_per_grant": L_arr},
                )
            )
        trivial = D == 0
        max_steps = resolve_step_cap(
            max_steps,
            "cut_through",
            release=release,
            lengths=D,
            message_length=L_arr,
            num_messages=M,
        )

        # crossed[m, i] = flits of m that have crossed path edge i.
        max_D = padded.shape[1]
        crossed = np.zeros((M, max_D), dtype=np.int64)
        owner = np.full(self.num_edges, -1, dtype=np.int64)

        loop = StepLoop(M, release, max_steps, probes)
        loop.mark_trivial(trivial, release)
        completion, done = loop.completion, loop.done

        def body(t: int, active_mask: np.ndarray) -> bool:
            active = np.flatnonzero(active_mask)
            moved_any = False
            progressed = np.zeros(M, dtype=bool)
            # Header claims: messages whose next flit would enter an
            # unowned edge contend for ownership first.
            claimers: list[int] = []
            claim_edges: list[int] = []
            for m in active:
                i = self._header_edge(crossed[m], D[m])
                if i is not None and owner[padded[m, i]] < 0:
                    claimers.append(int(m))
                    claim_edges.append(int(padded[m, i]))
            granted_claims: list[tuple[int, int]] = []
            if claimers:
                order = np.argsort(
                    self._rng.random(len(claimers))
                    if self.priority == "random"
                    else np.arange(len(claimers), dtype=np.float64)
                )
                for j in order:
                    e = claim_edges[j]
                    if owner[e] < 0:
                        owner[e] = claimers[j]
                        if probes is not None:
                            granted_claims.append((claimers[j], e))
            # Flit movement: one flit per owned edge per step.  Edges are
            # serviced head-first (descending index) so a buffer slot
            # vacated this step can be refilled this step — the same
            # lock-step pipeline behaviour as the wormhole model.  Flit
            # *availability* upstream uses the start-of-step snapshot (a
            # flit cannot cross two edges in one step).
            snapshot = crossed.copy()
            released_slots: list[tuple[int, int]] = []
            finished: list[int] = []
            for m in active:
                d = int(D[m])
                c = snapshot[m]
                advanced = False
                for i in range(d - 1, -1, -1):
                    e = padded[m, i]
                    if owner[e] != m:
                        continue
                    upstream = int(L_arr[m]) if i == 0 else int(c[i - 1])
                    if int(c[i]) >= upstream:
                        continue  # no flit waiting to cross edge i
                    # Space at the head of edge i (instant delivery at the
                    # destination, bounded buffer elsewhere); downstream
                    # counts may already include this step's departures.
                    if i < d - 1:
                        in_buffer = int(crossed[m, i]) - int(crossed[m, i + 1])
                        if in_buffer >= self.buffer_flits:
                            continue
                    crossed[m, i] += 1
                    advanced = True
                    # Release ownership once the last flit moves on.
                    if crossed[m, i] == L_arr[m]:
                        if i > 0:
                            prev = padded[m, i - 1]
                            if owner[prev] == m:
                                owner[prev] = -1
                                if probes is not None:
                                    released_slots.append((int(m), int(prev)))
                        if i == d - 1:
                            owner[e] = -1
                            if probes is not None:
                                released_slots.append((int(m), int(e)))
                if advanced:
                    moved_any = True
                    progressed[m] = True
                if crossed[m, d - 1] == L_arr[m]:
                    completion[m] = t
                    done[m] = True
                    finished.append(int(m))
            loop.blocked[active] += ~progressed[active]

            if probes is not None:
                self._emit_step_events(
                    probes, t, granted_claims, released_slots, finished,
                    active, progressed, crossed, padded, D,
                )
            return moved_any

        return loop.run(body)

    def _emit_step_events(
        self,
        probes: ProbeSet,
        t: int,
        granted_claims: list[tuple[int, int]],
        released_slots: list[tuple[int, int]],
        finished: list[int],
        active: np.ndarray,
        progressed: np.ndarray,
        crossed: np.ndarray,
        padded: np.ndarray,
        D: np.ndarray,
    ) -> None:
        """Dispatch one step's events (only called with probes attached)."""
        if granted_claims:
            g = np.asarray(granted_claims, dtype=np.int64)
            probes.on_grant(t, g[:, 0], g[:, 1])
        stalled = active[~progressed[active]]
        if stalled.size:
            wanted = np.full(stalled.size, -1, dtype=np.int64)
            for j, m in enumerate(stalled):
                i = self._header_edge(crossed[m], D[m])
                if i is not None:
                    wanted[j] = padded[m, i]
            probes.on_block(t, stalled, wanted)
        if released_slots:
            r = np.asarray(released_slots, dtype=np.int64)
            probes.on_release(t, r[:, 0], r[:, 1])
        if finished:
            probes.on_complete(t, np.asarray(finished, dtype=np.int64))
        movers = active[progressed[active]]
        probes.on_step(t, movers, (crossed > 0).sum(axis=1))

    @staticmethod
    def _header_edge(c: np.ndarray, d: int) -> int | None:
        """Index of the next unclaimed path edge the header wants, if any.

        The header flit is flit 1; it wants to cross the first edge whose
        ``crossed`` count is still 0 (edges are crossed in order).
        """
        for i in range(int(d)):
            if c[i] == 0:
                return i
        return None

    # Back-compat alias: the single engine shim behind the old name.
    _check_edge_simple = staticmethod(compat_check_edge_simple)
