"""Store-and-forward router (Section 1, baseline for E5).

In a store-and-forward router a switch must buffer an *entire* message
before forwarding it, so a message makes discrete hops; the time to cross
one link is a *message step* of ``ceil(L / B)`` flit steps (an edge can
push ``B`` flits per flit step when it supports ``B`` virtual channels,
and the classic ``B = 1`` case gives ``L`` flit steps per hop).

The scheduler here is the greedy online protocol analyzed in the
literature the paper builds on (Leighton-Maggs-Rao [27] proved optimal
``O(C + D)`` schedules exist; Mansour and Patt-Shamir [33] bound greedy
shortest-path schedules): each edge forwards one waiting message per
message step, with a configurable priority — ``"random"``,
``"age"`` (earliest injected first) or ``"farthest"`` (longest remaining
distance first, the classic greedy rule).

An optional initial random delay in ``[0, delay_range)`` message steps per
message implements the random-delay smoothing trick behind the
``O(C + D log n)`` online algorithm of [27].

Unlike every other router, store-and-forward performs **no**
edge-simplicity validation — deliberately.  A slot-holding router (worm
spanning several edges) can self-deadlock on a path that repeats an
edge, so those routers reject such paths; here an edge is held only
within the message step it transmits and queues are unbounded, so a
repeated edge simply means the message queues at that edge twice.  The
exemption is part of the engine's validation contract (see
:mod:`repro.sim.engine`).

The greedy protocol also cannot deadlock — every contended edge forwards
exactly one message per message step — so the shared
:class:`~repro.sim.engine.StepLoop` runs with deadlock detection off.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from ..network.graph import Network, NetworkError
from ..routing.paths import Path
from ..telemetry.probe import Probe, ProbeSet, RunMeta
from .engine import StepLoop, pad_paths, resolve_step_cap
from .kernels import StoreForwardKernel, serial_state
from .stats import SimulationResult

__all__ = ["StoreForwardSimulator"]

_PRIORITIES = ("random", "age", "farthest")


class StoreForwardSimulator:
    """Greedy synchronous store-and-forward simulator.

    Queues at the tail of each edge are unbounded (buffer growth is
    reported in ``extra["max_queue"]`` so experiments can check the
    constant-buffer claims of [27, 42] empirically).  Each edge transmits
    at most one message per message step.

    Parameters
    ----------
    net:
        The network (only edge count and structure via paths are used).
    bandwidth_flits_per_step:
        ``B`` in footnote 4; one hop costs ``ceil(L / B)`` flit steps.
    priority:
        Arbitration rule among messages queued on the same edge.
    seed:
        Seed for random arbitration / delays.
    """

    def __init__(
        self,
        net: Network,
        bandwidth_flits_per_step: int = 1,
        priority: str = "farthest",
        seed: int | None = 0,
    ) -> None:
        if bandwidth_flits_per_step < 1:
            raise NetworkError("bandwidth must be >= 1 flit per step")
        if priority not in _PRIORITIES:
            raise NetworkError(f"priority must be one of {_PRIORITIES}")
        self.net = net
        self.bandwidth = int(bandwidth_flits_per_step)
        self.priority = priority
        self._rng = np.random.default_rng(seed)

    def run(
        self,
        paths: Sequence[Path] | Sequence[Sequence[int]],
        message_length: int,
        release_times: np.ndarray | None = None,
        delay_range: int = 0,
        max_steps: int | None = None,
        telemetry: "ProbeSet | Probe | Iterable[Probe] | None" = None,
    ) -> SimulationResult:
        """Route all messages; times are reported in **flit steps**.

        ``release_times`` are in flit steps and are rounded up to message
        steps.  ``delay_range > 0`` adds an extra uniform random delay of
        ``[0, delay_range)`` message steps per message.

        ``telemetry`` attaches :mod:`repro.telemetry` probes.  Events
        use the simulator's native **message steps** as the time axis
        (``meta.extra["flit_steps_per_step"]`` converts); each grant
        means the whole ``L``-flit message crosses the edge this step.
        """
        if message_length < 1:
            raise NetworkError("message length L must be >= 1")
        padded, D = pad_paths(paths)
        M = D.size
        hop = -(-message_length // self.bandwidth)  # ceil(L / B) flit steps
        if M == 0:
            return SimulationResult(
                np.full(0, -1, dtype=np.int64), -1, 0, np.zeros(0, dtype=np.int64)
            )

        release_fs = (
            np.zeros(M, dtype=np.int64)
            if release_times is None
            else np.asarray(release_times, dtype=np.int64)
        )
        # Convert to message steps, rounding release up to a step boundary.
        release = -(-release_fs // hop)
        if delay_range > 0:
            release = release + self._rng.integers(0, delay_range, size=M)

        trivial = D == 0
        max_steps = resolve_step_cap(
            max_steps, "store_forward", release=release, lengths=D
        )

        probes = ProbeSet.coerce(telemetry)
        if probes is not None:
            probes.on_run_start(
                RunMeta(
                    simulator="store_forward",
                    num_messages=M,
                    num_edges=self.net.num_edges,
                    num_virtual_channels=1,
                    paths=padded,
                    lengths=D,
                    message_length=np.full(M, message_length, dtype=np.int64),
                    release=release,
                    extra={
                        "flits_per_grant": int(message_length),
                        "flit_steps_per_step": hop,
                    },
                )
            )

        # Greedy store-and-forward cannot deadlock: every contended edge
        # forwards one message per step, so progress is unconditional.
        loop = StepLoop(
            M, release, max_steps, probes, detect_deadlock=False, time_scale=hop
        )
        loop.done |= trivial
        loop.completion[trivial] = release[trivial] * hop

        kernel = StoreForwardKernel(
            serial_state(loop),
            num_edges=self.net.num_edges,
            padded=padded,
            lengths=D,
            release=release,
            hop=np.full(1, hop, dtype=np.int64),
            priority=self.priority,
            rngs=[self._rng],
            probes=probes,
        )
        return loop.run(
            kernel.serial_body,
            lambda: {
                "max_queue": int(kernel.max_queue[0]),
                "message_step_flits": hop,
            },
        )
