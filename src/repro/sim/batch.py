"""Batched lockstep wormhole simulation: whole trial grids as stacked state.

Every sweep in this repository (E1/E2/E5, ``repro sweep``) runs many
*independent* wormhole trials over the same workload — one per
``(B, seed)`` grid cell — and each trial's engine state is nothing but
flat integer arrays per message.  Running them one at a time pays full
Python dispatch and small-array NumPy overhead per trial per step.  This
module stacks ``T`` such trials into ``(T, M)`` state arrays and steps
them in lockstep:

* one vectorized contend/rank/grant arbitration per step over the
  combined ``(trial, slot)`` key space
  (:class:`~repro.sim.engine.BatchSlotArbiter`);
* one stacked acquire/release/completion update per step;
* one shared clock with per-trial completion / deadlock / step-cap
  masking (:class:`~repro.sim.engine.BatchStepLoop`), so finished trials
  drop out of the active set without stalling the batch.

Bit-exactness contract
----------------------
``run_wormhole_batch(...)[i]`` is bit-identical to
``WormholeSimulator(net, B[i], priority, seed=seeds[i]).run(...)`` —
same completion times, makespan, executed steps, blocked counts,
deadlock flags, and step-cap flags.  The load-bearing facts:

* trials are independent: trial ``i``'s state is read and written only
  where trial ``i`` has active messages, and the combined arbitration
  key space keeps slot groups of different trials disjoint;
* each trial keeps its **own** RNG (``np.random.default_rng(seeds[i])``)
  and draws from it exactly as its serial run would: for ``"random"``
  arbitration, one ``rng.random(n_contenders)`` call per step in which
  the trial has contenders (none otherwise); for ``"rank"``, one
  ``rng.permutation(M)`` at startup.  Contenders are ordered by message
  index within each trial, matching the serial contender order;
* the shared clock visits every step at which any trial acts; a trial's
  state does not change during steps where it merely waits, so running
  through another trial's steps is observationally identical to the
  serial loop's idle-gap skipping (see :class:`BatchStepLoop`).

The batch-vs-serial equivalence suite (``tests/sim/test_batch.py``)
pins this contract over the golden-case shapes and a randomized
property sweep.

Telemetry probes are deliberately **not** supported here: per-trial
probe streams would serialize the batch (defeating its purpose) and
collectors never perturb results, so profile single trials with
:class:`~repro.sim.wormhole.WormholeSimulator` instead.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..network.graph import Network, NetworkError
from ..routing.paths import Path
from .engine import (
    BatchSlotArbiter,
    BatchStepLoop,
    PaddedPaths,
    age_priorities,
    pad_paths,
    resolve_step_cap,
)
from .stats import SimulationResult
from .wormhole import _EDGE_SIMPLE_WHAT, _PRIORITIES

__all__ = ["batch_compat_key", "run_wormhole_batch"]


def batch_compat_key(spec) -> tuple:
    """What makes two sweep cells / service requests lockstep-compatible.

    Trials sharing this key can ride in one :func:`run_wormhole_batch`
    call: they share the workload (hence the path matrix), ``L``, and
    the sim params (hence the priority discipline), while ``B`` varies
    per trial via the batch engine's per-trial capacities and seeds stay
    per-trial by construction.  ``repeat`` only separates derived seeds,
    so it never splits a batch.

    Both packers — :func:`repro.sim.sweep.run_sweep` and the
    :class:`repro.service.batcher.DynamicBatcher` — key on this one
    helper, so "compatible" cannot drift between the offline and online
    paths.  ``spec`` is any object with the :class:`~repro.sim.sweep
    .TrialSpec` identity fields.
    """
    return (
        spec.simulator,
        spec.workload,
        spec.workload_params,
        spec.message_length,
        spec.sim_params,
    )


def _per_trial(value, T: int, name: str) -> np.ndarray:
    """Broadcast a scalar or per-trial sequence to a ``(T,)`` array."""
    arr = np.asarray(value, dtype=np.int64)
    if arr.ndim == 0:
        return np.full(T, int(arr), dtype=np.int64)
    if arr.shape != (T,):
        raise NetworkError(
            f"{name} must be a scalar or match the {T} seeds "
            f"(one entry per trial), got shape {arr.shape}"
        )
    return arr.copy()


def run_wormhole_batch(
    net: Network,
    paths: Sequence[Path] | Sequence[Sequence[int]] | PaddedPaths,
    message_length: int | np.ndarray,
    *,
    seeds: Sequence,
    num_virtual_channels: int | Sequence[int] = 1,
    priority: str = "random",
    release_times: np.ndarray | None = None,
    max_steps: int | None = None,
    vc_ids: np.ndarray | Sequence[Sequence[int]] | None = None,
) -> list[SimulationResult]:
    """Simulate ``T = len(seeds)`` independent wormhole trials in lockstep.

    Parameters
    ----------
    net:
        The shared network (only ``num_edges`` is used).
    paths:
        The shared per-message routes (or a pre-packed
        :class:`~repro.sim.engine.PaddedPaths`); every trial routes the
        same workload — batch *grids* over workloads by batching each
        workload's cells separately (see :func:`repro.sim.sweep.run_sweep`).
    message_length:
        The paper's ``L`` (scalar or per-message), shared by all trials.
    seeds:
        One entry per trial (at least one) — anything
        ``np.random.default_rng`` accepts (int, ``SeedSequence``,
        ``Generator``, ``None``).  Each trial draws from its own
        generator in serial order.
    num_virtual_channels:
        The ``B`` of each trial — a scalar or a per-trial sequence, so
        one batch can cover a whole ``B`` sweep of a grid.
    priority:
        The arbitration discipline, shared by the batch (``"random"``,
        ``"age"``, ``"index"``, or ``"rank"`` — see
        :class:`~repro.sim.wormhole.WormholeSimulator`).
    release_times / max_steps / vc_ids:
        As in :meth:`WormholeSimulator.run`, shared by all trials.  With
        ``vc_ids``, every trial's ``B`` must exceed the largest assigned
        class id.

    Returns
    -------
    list[SimulationResult]
        Per-trial results, bit-identical to each trial's serial run.
    """
    seeds = list(seeds)
    T = len(seeds)
    if T == 0:
        raise NetworkError(
            "seeds is empty: a batch needs at least one trial "
            "(run_wormhole_batch simulates one trial per seed)"
        )
    B = _per_trial(num_virtual_channels, T, "num_virtual_channels")
    if B.min() < 1:
        raise NetworkError(
            f"need at least one virtual channel, got {int(B.min())}"
        )
    if priority not in _PRIORITIES:
        raise NetworkError(f"priority must be one of {_PRIORITIES}")
    num_edges = net.num_edges

    pp = PaddedPaths.from_paths(paths)
    padded, D = pp.padded, pp.lengths
    M = int(D.size)
    try:
        L = np.broadcast_to(
            np.asarray(message_length, dtype=np.int64), (M,)
        ).copy()
    except ValueError:
        raise NetworkError(
            f"message_length must be a scalar or have shape ({M},), got "
            f"shape {np.asarray(message_length).shape}"
        ) from None
    if M and L.min() < 1:
        raise NetworkError("message length L must be >= 1")
    pp.require_edge_simple(_EDGE_SIMPLE_WHAT)
    release = (
        np.zeros(M, dtype=np.int64)
        if release_times is None
        else np.asarray(release_times, dtype=np.int64).copy()
    )
    if release.shape != (M,):
        raise NetworkError(f"release_times must have shape ({M},)")
    if M and release.min() < 0:
        raise NetworkError("release times must be >= 0")

    if M == 0:
        return [
            SimulationResult(
                completion_times=np.full(0, -1, dtype=np.int64),
                makespan=-1,
                steps_executed=0,
                blocked_steps=np.zeros(0, dtype=np.int64),
            )
            for _ in range(T)
        ]

    total_moves = L + D - 1
    trivial = D == 0
    caps = resolve_step_cap(
        max_steps,
        "wormhole",
        release=release,
        total_moves=total_moves,
        trivial=trivial,
    )

    # Slot model per trial: without VC classes a slot is an edge with
    # capacity B[i]; with classes, an (edge, class) pair with capacity 1.
    if vc_ids is None:
        vc_padded = None
        arbiter = BatchSlotArbiter(
            np.full(T, num_edges, dtype=np.int64), B
        )
    else:
        vc_padded, vc_lengths = pad_paths([list(v) for v in vc_ids])
        if not np.array_equal(vc_lengths, D):
            raise NetworkError("vc_ids must match the path lengths")
        valid = padded >= 0
        if valid.any() and (
            vc_padded[valid].min() < 0 or vc_padded[valid].max() >= B.min()
        ):
            raise NetworkError(f"vc ids must lie in [0, {int(B.min())})")
        arbiter = BatchSlotArbiter(
            num_edges * B, np.ones(T, dtype=np.int64)
        )

    rngs = [np.random.default_rng(s) for s in seeds]
    age_priority = age_priorities(release) if priority == "age" else None
    rank_priority = (
        np.stack([rng.permutation(M) for rng in rngs])
        if priority == "rank"
        else None
    )

    k = np.zeros((T, M), dtype=np.int64)  # completed moves per (trial, msg)
    loop = BatchStepLoop(T, M, release, caps)
    loop.mark_trivial(trivial, release)

    def _slots(trials: np.ndarray, msgs: np.ndarray, hop: np.ndarray):
        """Per-trial slot ids for the given (trial, message, hop) picks."""
        edges = padded[msgs, hop]
        if vc_padded is None:
            return edges
        return edges * B[trials] + vc_padded[msgs, hop]

    def body(t: int, active: np.ndarray) -> np.ndarray:
        rows, cols = np.nonzero(active)
        k_ac = k[rows, cols]
        needs_edge = k_ac < D[cols]
        movers_local = np.zeros(rows.size, dtype=bool)
        movers_local[~needs_edge] = True  # draining worms always move

        if needs_edge.any():
            crows = rows[needs_edge]
            ccols = cols[needs_edge]
            slots = _slots(crows, ccols, k_ac[needs_edge])
            if priority == "random":
                # One draw per trial with contenders, from that trial's
                # own stream — np.nonzero ordering keeps each trial's
                # contenders contiguous and in message-index order, the
                # serial draw order.
                counts = np.bincount(crows, minlength=T)
                prio = np.empty(crows.size, dtype=np.float64)
                pos = 0
                for tr in np.flatnonzero(counts):
                    n = int(counts[tr])
                    prio[pos : pos + n] = rngs[tr].random(n)
                    pos += n
            elif priority == "age":
                prio = age_priority[ccols]
            elif priority == "rank":
                prio = rank_priority[crows, ccols]
            else:
                prio = ccols
            granted = arbiter.contend(crows, slots, prio)
            movers_local[needs_edge] = granted
            arbiter.acquire(crows[granted], slots[granted])
            loop.blocked[crows[~granted], ccols[~granted]] += 1

        mrows, mcols = rows[movers_local], cols[movers_local]
        k[mrows, mcols] += 1
        new_k = k[mrows, mcols]
        # Release the buffer the tail just vacated; the final edge's
        # slot is released at completion instead (same rule as serial).
        rel_idx = new_k - L[mcols] - 1
        sel = (rel_idx >= 0) & (rel_idx < D[mcols] - 1)
        if sel.any():
            arbiter.vacate(
                mrows[sel], _slots(mrows[sel], mcols[sel], rel_idx[sel])
            )
        finished = new_k == total_moves[mcols]
        if finished.any():
            frows, fcols = mrows[finished], mcols[finished]
            loop.completion[frows, fcols] = t
            loop.done[frows, fcols] = True
            arbiter.vacate(frows, _slots(frows, fcols, D[fcols] - 1))
        return np.bincount(mrows, minlength=T) > 0

    loop.run(body)
    return loop.results()
