"""Batched lockstep simulation: whole trial grids as stacked state.

Every sweep in this repository (E1/E2/E5, ``repro sweep``) runs many
*independent* trials over the same workload — one per ``(B, seed)``
grid cell — and each trial's engine state is nothing but flat integer
arrays per message.  Running them one at a time pays full Python
dispatch and small-array NumPy overhead per trial per step.  This
module stacks ``T`` such trials into ``(T, M)`` state arrays and steps
them in lockstep, for **every** router model:

======================  =============================================
runner                  serial counterpart
======================  =============================================
:func:`run_wormhole_batch`       :class:`~repro.sim.wormhole.WormholeSimulator`
:func:`run_cut_through_batch`    :class:`~repro.sim.cut_through.CutThroughSimulator`
:func:`run_store_forward_batch`  :class:`~repro.sim.store_forward.StoreForwardSimulator`
:func:`run_restricted_batch`     :class:`~repro.sim.restricted.RestrictedWormholeSimulator`
:func:`run_adaptive_batch`       :class:`~repro.sim.adaptive.AdaptiveMeshRouter`
======================  =============================================

Each runner validates like its serial counterpart, builds the matching
:mod:`repro.sim.kernels` kernel at ``T`` trials — the *same* body the
serial wrapper drives at ``T = 1`` — and steps a shared
:class:`~repro.sim.engine.BatchStepLoop`:

* one vectorized contend/rank/grant arbitration per step over the
  combined ``(trial, slot)`` key space
  (:class:`~repro.sim.engine.BatchSlotArbiter`);
* one stacked acquire/release/completion update per step;
* one shared clock with per-trial completion / deadlock / step-cap
  masking, so finished trials drop out of the active set without
  stalling the batch.

Bit-exactness contract
----------------------
``run_<model>_batch(...)[i]`` is bit-identical to the serial simulator
constructed with the same parameters and ``seed=seeds[i]`` — same
completion times, makespan, executed steps, blocked counts, deadlock
flags, step-cap flags, and per-trial ``extra`` keys (and, for
adaptive, the same taken paths).  The load-bearing facts:

* trials are independent: trial ``i``'s state is read and written only
  where trial ``i`` has active messages, and the combined arbitration
  key space keeps slot groups of different trials disjoint;
* each trial keeps its **own** RNG (``np.random.default_rng(seeds[i])``)
  and draws from it exactly as its serial run would — per-step draws
  happen only in steps where that trial acts, setup-time draws (rank
  permutations, rotating-service offsets, injection delays) happen once
  per trial at startup;
* the shared clock visits every step at which any trial acts; a trial's
  state does not change during steps where it merely waits, so running
  through another trial's steps is observationally identical to the
  serial loop's idle-gap skipping (see :class:`BatchStepLoop`).

The batch-vs-serial equivalence suites (``tests/sim/test_batch.py``
and ``tests/sim/test_batch_models.py``) pin this contract over the
golden-case shapes and randomized property sweeps, and the
:mod:`repro.fuzz` invariant guards it nightly.

Telemetry probes are deliberately **not** supported here: per-trial
probe streams would serialize the batch (defeating its purpose) and
collectors never perturb results, so profile single trials with the
serial simulator classes instead.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..network.graph import Network, NetworkError
from ..network.mesh import KAryNCube
from ..routing.paths import Path
from .adaptive import _POLICIES, AdaptiveRunResult
from .engine import (
    BatchStepLoop,
    PaddedPaths,
    pad_paths,
    resolve_step_cap,
)
from .kernels import (
    AdaptiveKernel,
    CutThroughKernel,
    RestrictedKernel,
    StoreForwardKernel,
    WormholeKernel,
    validate_vc_ids,
)
from .stats import SimulationResult
from .store_forward import _PRIORITIES as _SF_PRIORITIES
from .wormhole import _EDGE_SIMPLE_WHAT, _PRIORITIES

__all__ = [
    "BATCHED_MODELS",
    "batch_compat_key",
    "run_adaptive_batch",
    "run_cut_through_batch",
    "run_restricted_batch",
    "run_store_forward_batch",
    "run_wormhole_batch",
]

#: Models with a lockstep batch runner (all of them — the sweep packer,
#: the service batcher, and the facade key off this set).
BATCHED_MODELS = frozenset(
    {"wormhole", "cut_through", "store_forward", "restricted", "adaptive"}
)


def batch_compat_key(spec) -> tuple:
    """What makes two sweep cells / service requests lockstep-compatible.

    Trials sharing this key can ride in one ``run_<model>_batch`` call:
    they share the model, the workload (hence the path matrix), ``L``,
    and the sim params (hence the priority discipline), while the
    per-trial knob (``B``, buffer size, bandwidth) varies per trial via
    the batch engine's per-trial capacities and seeds stay per-trial by
    construction.  ``repeat`` only separates derived seeds, so it never
    splits a batch.

    Both packers — :func:`repro.sim.sweep.run_sweep` and the
    :class:`repro.service.batcher.DynamicBatcher` — key on this one
    helper, so "compatible" cannot drift between the offline and online
    paths.  ``spec`` is any object with the :class:`~repro.sim.sweep
    .TrialSpec` identity fields.
    """
    return (
        spec.simulator,
        spec.workload,
        spec.workload_params,
        spec.message_length,
        spec.sim_params,
    )


def _per_trial(value, T: int, name: str) -> np.ndarray:
    """Broadcast a scalar or per-trial sequence to a ``(T,)`` array."""
    arr = np.asarray(value, dtype=np.int64)
    if arr.ndim == 0:
        return np.full(T, int(arr), dtype=np.int64)
    if arr.shape != (T,):
        raise NetworkError(
            f"{name} must be a scalar or match the {T} seeds "
            f"(one entry per trial), got shape {arr.shape}"
        )
    return arr.copy()


def _seed_rngs(seeds, runner: str) -> list:
    """One independent generator per trial, or raise on an empty batch."""
    seeds = list(seeds)
    if not seeds:
        raise NetworkError(
            "seeds is empty: a batch needs at least one trial "
            f"({runner} simulates one trial per seed)"
        )
    return [np.random.default_rng(s) for s in seeds]


def _shared_lengths(message_length, M: int) -> np.ndarray:
    """Per-message ``L`` shared by all trials, validated like serial."""
    try:
        L = np.broadcast_to(
            np.asarray(message_length, dtype=np.int64), (M,)
        ).copy()
    except ValueError:
        raise NetworkError(
            f"message_length must be a scalar or have shape ({M},), got "
            f"shape {np.asarray(message_length).shape}"
        ) from None
    if M and L.min() < 1:
        raise NetworkError("message length L must be >= 1")
    return L


def _shared_release(release_times, M: int) -> np.ndarray:
    """Per-message release times shared by all trials."""
    release = (
        np.zeros(M, dtype=np.int64)
        if release_times is None
        else np.asarray(release_times, dtype=np.int64).copy()
    )
    if release.shape != (M,):
        raise NetworkError(f"release_times must have shape ({M},)")
    if M and release.min() < 0:
        raise NetworkError("release times must be >= 0")
    return release


def _empty_results(T: int) -> list[SimulationResult]:
    return [
        SimulationResult(
            completion_times=np.full(0, -1, dtype=np.int64),
            makespan=-1,
            steps_executed=0,
            blocked_steps=np.zeros(0, dtype=np.int64),
        )
        for _ in range(T)
    ]


# ----------------------------------------------------------------------
# Wormhole (Section 1.1: B virtual channels per edge).
# ----------------------------------------------------------------------


def run_wormhole_batch(
    net: Network,
    paths: Sequence[Path] | Sequence[Sequence[int]] | PaddedPaths,
    message_length: int | np.ndarray,
    *,
    seeds: Sequence,
    num_virtual_channels: int | Sequence[int] = 1,
    priority: str = "random",
    release_times: np.ndarray | None = None,
    max_steps: int | None = None,
    vc_ids: np.ndarray | Sequence[Sequence[int]] | None = None,
) -> list[SimulationResult]:
    """Simulate ``T = len(seeds)`` independent wormhole trials in lockstep.

    Parameters
    ----------
    net:
        The shared network (only ``num_edges`` is used).
    paths:
        The shared per-message routes (or a pre-packed
        :class:`~repro.sim.engine.PaddedPaths`); every trial routes the
        same workload — batch *grids* over workloads by batching each
        workload's cells separately (see :func:`repro.sim.sweep.run_sweep`).
    message_length:
        The paper's ``L`` (scalar or per-message), shared by all trials.
    seeds:
        One entry per trial (at least one) — anything
        ``np.random.default_rng`` accepts (int, ``SeedSequence``,
        ``Generator``, ``None``).  Each trial draws from its own
        generator in serial order.
    num_virtual_channels:
        The ``B`` of each trial — a scalar or a per-trial sequence, so
        one batch can cover a whole ``B`` sweep of a grid.
    priority:
        The arbitration discipline, shared by the batch (``"random"``,
        ``"age"``, ``"index"``, or ``"rank"`` — see
        :class:`~repro.sim.wormhole.WormholeSimulator`).
    release_times / max_steps / vc_ids:
        As in :meth:`WormholeSimulator.run`, shared by all trials.  With
        ``vc_ids``, every trial's ``B`` must exceed the largest assigned
        class id.

    Returns
    -------
    list[SimulationResult]
        Per-trial results, bit-identical to each trial's serial run.
    """
    rngs = _seed_rngs(seeds, "run_wormhole_batch")
    T = len(rngs)
    B = _per_trial(num_virtual_channels, T, "num_virtual_channels")
    if B.min() < 1:
        raise NetworkError(
            f"need at least one virtual channel, got {int(B.min())}"
        )
    if priority not in _PRIORITIES:
        raise NetworkError(f"priority must be one of {_PRIORITIES}")

    pp = PaddedPaths.from_paths(paths)
    padded, D = pp.padded, pp.lengths
    M = int(D.size)
    L = _shared_lengths(message_length, M)
    pp.require_edge_simple(_EDGE_SIMPLE_WHAT)
    release = _shared_release(release_times, M)
    if M == 0:
        return _empty_results(T)

    total_moves = L + D - 1
    trivial = D == 0
    caps = resolve_step_cap(
        max_steps,
        "wormhole",
        release=release,
        total_moves=total_moves,
        trivial=trivial,
    )
    vc_padded = (
        None
        if vc_ids is None
        else validate_vc_ids(padded, D, vc_ids, int(B.min()))
    )

    loop = BatchStepLoop(T, M, release, caps)
    loop.mark_trivial(trivial, release)
    kernel = WormholeKernel(
        loop,
        num_edges=net.num_edges,
        padded=padded,
        lengths=D,
        message_length=L,
        release=release,
        capacities=B,
        priority=priority,
        rngs=rngs,
        vc_padded=vc_padded,
    )
    loop.run(kernel.body)
    return loop.results()


# ----------------------------------------------------------------------
# Virtual cut-through (Section 1.4: B flits of one message per edge).
# ----------------------------------------------------------------------


def run_cut_through_batch(
    net: Network,
    paths: Sequence[Path] | Sequence[Sequence[int]] | PaddedPaths,
    message_length: int | np.ndarray,
    *,
    seeds: Sequence,
    buffer_flits: int | Sequence[int] = 1,
    priority: str = "random",
    release_times: np.ndarray | None = None,
    max_steps: int | None = None,
) -> list[SimulationResult]:
    """Lockstep batch of :class:`~repro.sim.cut_through.CutThroughSimulator`
    trials — one per seed, with per-trial ``buffer_flits``."""
    rngs = _seed_rngs(seeds, "run_cut_through_batch")
    T = len(rngs)
    B = _per_trial(buffer_flits, T, "buffer_flits")
    if B.min() < 1:
        raise NetworkError("buffer must hold at least one flit")
    if priority not in ("random", "index"):
        raise NetworkError("priority must be 'random' or 'index'")

    pp = PaddedPaths.from_paths(paths)
    padded, D = pp.padded, pp.lengths
    M = int(D.size)
    L = _shared_lengths(message_length, M)
    if M == 0:
        return _empty_results(T)
    pp.require_edge_simple()
    release = _shared_release(release_times, M)

    trivial = D == 0
    caps = resolve_step_cap(
        max_steps,
        "cut_through",
        release=release,
        lengths=D,
        message_length=L,
        num_messages=M,
    )
    loop = BatchStepLoop(T, M, release, caps)
    loop.mark_trivial(trivial, release)
    kernel = CutThroughKernel(
        loop,
        num_edges=net.num_edges,
        padded=padded,
        lengths=D,
        message_length=L,
        buffer_flits=B,
        priority=priority,
        rngs=rngs,
    )
    loop.run(kernel.body)
    return loop.results()


# ----------------------------------------------------------------------
# Store-and-forward (Section 1: whole-message hops).
# ----------------------------------------------------------------------


def run_store_forward_batch(
    net: Network,
    paths: Sequence[Path] | Sequence[Sequence[int]] | PaddedPaths,
    message_length: int,
    *,
    seeds: Sequence,
    bandwidth_flits_per_step: int | Sequence[int] = 1,
    priority: str = "farthest",
    delay_range: int = 0,
    release_times: np.ndarray | None = None,
    max_steps: int | None = None,
) -> list[SimulationResult]:
    """Lockstep batch of :class:`~repro.sim.store_forward
    .StoreForwardSimulator` trials — one per seed, with per-trial
    bandwidth ``B`` (so the shared clock counts *message steps* whose
    flit-step length ``ceil(L / B)`` differs per trial; per-trial
    results are reported in flit steps, exactly like serial runs)."""
    rngs = _seed_rngs(seeds, "run_store_forward_batch")
    T = len(rngs)
    BW = _per_trial(bandwidth_flits_per_step, T, "bandwidth_flits_per_step")
    if BW.min() < 1:
        raise NetworkError("bandwidth must be >= 1 flit per step")
    if priority not in _SF_PRIORITIES:
        raise NetworkError(f"priority must be one of {_SF_PRIORITIES}")
    if message_length < 1:
        raise NetworkError("message length L must be >= 1")

    # Deliberately no edge-simplicity check: see the store_forward
    # module docstring (an edge is held only within the step it
    # transmits, so repeated edges just queue twice).
    padded, D = pad_paths(paths)
    M = int(D.size)
    hop = -(-int(message_length) // BW)  # per-trial ceil(L / B)
    if M == 0:
        return _empty_results(T)

    release_fs = _shared_release(release_times, M)
    # Convert to per-trial message steps, rounding up to a boundary.
    release = -(-release_fs[None, :] // hop[:, None])
    if delay_range > 0:
        release = release + np.stack(
            [rng.integers(0, delay_range, size=M) for rng in rngs]
        )

    trivial = D == 0
    caps = np.asarray(
        [
            resolve_step_cap(
                max_steps, "store_forward", release=release[i], lengths=D
            )
            for i in range(T)
        ],
        dtype=np.int64,
    )
    loop = BatchStepLoop(
        T, M, release, caps, detect_deadlock=False, time_scale=hop
    )
    loop.done[:, trivial] = True
    loop.completion[:, trivial] = (release * hop[:, None])[:, trivial]

    kernel = StoreForwardKernel(
        loop,
        num_edges=net.num_edges,
        padded=padded,
        lengths=D,
        release=release,
        hop=hop,
        priority=priority,
        rngs=rngs,
    )
    loop.run(kernel.body)
    return loop.results(
        lambda i: {
            "max_queue": int(kernel.max_queue[i]),
            "message_step_flits": int(hop[i]),
        }
    )


# ----------------------------------------------------------------------
# Restricted multiplexing (Section 1.4 Remarks: buffers without wires).
# ----------------------------------------------------------------------


def run_restricted_batch(
    net: Network,
    paths: Sequence[Path] | Sequence[Sequence[int]] | PaddedPaths,
    message_length: int | np.ndarray,
    *,
    seeds: Sequence,
    num_buffers: int | Sequence[int] = 1,
    release_times: np.ndarray | None = None,
    max_steps: int | None = None,
) -> list[SimulationResult]:
    """Lockstep batch of :class:`~repro.sim.restricted
    .RestrictedWormholeSimulator` trials — one per seed, with per-trial
    buffer counts ``B``."""
    rngs = _seed_rngs(seeds, "run_restricted_batch")
    T = len(rngs)
    B = _per_trial(num_buffers, T, "num_buffers")
    if B.min() < 1:
        raise NetworkError("need at least one buffer slot per edge")

    pp = PaddedPaths.from_paths(paths)
    padded, D = pp.padded, pp.lengths
    M = int(D.size)
    L = _shared_lengths(message_length, M)
    if M == 0:
        return _empty_results(T)
    pp.require_edge_simple()
    release = _shared_release(release_times, M)

    trivial = D == 0
    caps = resolve_step_cap(
        max_steps,
        "restricted",
        release=release,
        lengths=D,
        message_length=L,
        num_messages=M,
    )
    loop = BatchStepLoop(T, M, release, caps)
    loop.mark_trivial(trivial, release)
    kernel = RestrictedKernel(
        loop,
        num_edges=net.num_edges,
        padded=padded,
        lengths=D,
        message_length=L,
        capacities=B,
        rngs=rngs,
    )
    loop.run(kernel.body)
    return loop.results()


# ----------------------------------------------------------------------
# Adaptive mesh routing (Section 1.3.4's category).
# ----------------------------------------------------------------------


def run_adaptive_batch(
    cube: KAryNCube,
    demands: list[tuple[int, int]],
    message_length: int,
    *,
    seeds: Sequence,
    num_virtual_channels: int | Sequence[int] = 1,
    policy: str = "west-first",
    release_times: np.ndarray | None = None,
    max_steps: int | None = None,
) -> list[AdaptiveRunResult]:
    """Lockstep batch of :class:`~repro.sim.adaptive.AdaptiveMeshRouter`
    trials — one per seed, with per-trial ``B``.  Returns
    :class:`~repro.sim.adaptive.AdaptiveRunResult` objects so each
    trial's adaptively chosen routes stay inspectable."""
    rngs = _seed_rngs(seeds, "run_adaptive_batch")
    T = len(rngs)
    if cube.n != 2 or cube.wrap:
        raise NetworkError("adaptive routing is implemented for 2-D meshes")
    B = _per_trial(num_virtual_channels, T, "num_virtual_channels")
    if B.min() < 1:
        raise NetworkError("need at least one virtual channel")
    if policy not in _POLICIES:
        raise NetworkError(f"policy must be one of {_POLICIES}")
    L = int(message_length)
    if L < 1:
        raise NetworkError("message length L must be >= 1")

    M = len(demands)
    if M == 0:
        return [AdaptiveRunResult(r, []) for r in _empty_results(T)]
    release = _shared_release(release_times, M)
    dists = np.asarray(
        [
            sum(
                abs(a - b)
                for a, b in zip(cube.coords(s), cube.coords(d))
            )
            for s, d in demands
        ],
        dtype=np.int64,
    )
    caps = resolve_step_cap(
        max_steps, "adaptive", release=release, lengths=dists, message_length=L
    )
    loop = BatchStepLoop(T, M, release, caps)
    loop.mark_trivial(dists == 0, release)
    kernel = AdaptiveKernel(
        loop,
        cube=cube,
        demands=demands,
        message_length=L,
        dists=dists,
        capacities=B,
        policy=policy,
        rngs=rngs,
    )
    loop.run(kernel.body)
    return [
        AdaptiveRunResult(res, kernel.taken_paths(i))
        for i, res in enumerate(loop.results())
    ]
