"""Adaptive wormhole routing on 2-D meshes (Section 1.3.4's category).

The paper surveys *adaptive* deadlock-free wormhole algorithms (Glass-Ni
turn models, fully-adaptive minimal schemes [39], ...) as the third big
strand of wormhole research.  This simulator routes worms whose next hop
is chosen **online** among the minimal (productive) directions, under a
configurable restriction:

``"dimension"``
    Deterministic XY routing (correct X first, then Y) — deadlock-free
    because no turn from Y back to X ever occurs.
``"west-first"``
    The Glass-Ni turn model: if the destination lies to the west, the
    worm first moves fully west (no adaptivity); otherwise it may choose
    adaptively among the productive {east, north, south} moves.  The
    model forbids the two turns into "west", which breaks all cycles —
    deadlock-free on a mesh with a single (virtual) channel.
``"fully-adaptive"``
    Any productive direction, no restriction — *can deadlock* at
    ``B = 1``; included to demonstrate why the restrictions exist.

Worm mechanics are identical to :class:`~repro.sim.wormhole
.WormholeSimulator` (B slots per edge, lock-step motion, strict buffer
release) except the head extends its path one chosen edge at a time.  A
head is *blocked* only when every direction its policy allows is full;
this is where adaptivity pays — the worm routes around congestion.

Slot occupancy lives in a shared :class:`~repro.sim.engine.SlotArbiter`
(scalar claim path — grants happen sequentially in a random order as
each head picks among its free directions) and the step protocol in the
shared :class:`~repro.sim.engine.StepLoop`.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np

from ..network.graph import NetworkError
from ..network.mesh import KAryNCube
from ..telemetry.probe import Probe, ProbeSet, RunMeta
from .engine import StepLoop, resolve_step_cap
from .kernels import AdaptiveKernel, serial_state
from .stats import SimulationResult

__all__ = ["AdaptiveMeshRouter", "AdaptiveRunResult"]

_POLICIES = ("dimension", "west-first", "fully-adaptive")


@dataclass
class AdaptiveRunResult:
    """A :class:`SimulationResult` plus the adaptively chosen routes."""

    result: SimulationResult
    taken_paths: list[list[int]]  # edge ids actually traversed per message

    @property
    def all_delivered(self) -> bool:
        return self.result.all_delivered


class AdaptiveMeshRouter:
    """Online adaptive wormhole router for a 2-D mesh.

    Parameters
    ----------
    cube:
        A :class:`~repro.network.mesh.KAryNCube` with ``n == 2`` and
        ``wrap=False`` (turn models are stated for meshes).
    num_virtual_channels:
        Slots per edge, as in the main model.
    policy:
        One of ``"dimension"``, ``"west-first"``, ``"fully-adaptive"``.
    seed:
        Random tie-breaking among allowed free directions and among
        contending headers.
    """

    def __init__(
        self,
        cube: KAryNCube,
        num_virtual_channels: int = 1,
        policy: str = "west-first",
        seed: int | None = 0,
    ) -> None:
        if cube.n != 2 or cube.wrap:
            raise NetworkError("adaptive routing is implemented for 2-D meshes")
        if num_virtual_channels < 1:
            raise NetworkError("need at least one virtual channel")
        if policy not in _POLICIES:
            raise NetworkError(f"policy must be one of {_POLICIES}")
        self.cube = cube
        self.net = cube.network
        self.B = int(num_virtual_channels)
        self.policy = policy
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def _allowed_moves(self, node: int, dst: int) -> list[int]:
        """Edge ids of the productive moves this policy allows at ``node``.

        Coordinates are (x, y) with dimension 0 = x; "west" decreases x.
        """
        x, y = self.cube.coords(node)
        dx_, dy_ = self.cube.coords(dst)
        dx, dy = dx_ - x, dy_ - y
        moves: list[tuple[int, int]] = []
        if self.policy == "dimension":
            if dx != 0:
                moves = [(1 if dx > 0 else -1, 0)]
            elif dy != 0:
                moves = [(0, 1 if dy > 0 else -1)]
        elif self.policy == "west-first":
            if dx < 0:
                moves = [(-1, 0)]  # go fully west first, deterministically
            else:
                if dx > 0:
                    moves.append((1, 0))
                if dy != 0:
                    moves.append((0, 1 if dy > 0 else -1))
        else:  # fully-adaptive
            if dx != 0:
                moves.append((1 if dx > 0 else -1, 0))
            if dy != 0:
                moves.append((0, 1 if dy > 0 else -1))
        edges = []
        for mx, my in moves:
            nxt = self.cube.node((x + mx, y + my))
            e = self.net.edge_between(node, nxt)
            assert e is not None
            edges.append(e)
        return edges

    # ------------------------------------------------------------------
    def run(
        self,
        demands: list[tuple[int, int]],
        message_length: int,
        release_times: np.ndarray | None = None,
        max_steps: int | None = None,
        telemetry: "ProbeSet | Probe | Iterable[Probe] | None" = None,
    ) -> AdaptiveRunResult:
        """Route ``(source, destination)`` node-id demands adaptively.

        ``telemetry`` attaches :mod:`repro.telemetry` probes.  Because
        routes are chosen online, ``meta.paths`` is ``None``; a blocked
        head reports the first edge its policy allowed as the edge it
        wanted.
        """
        L = int(message_length)
        if L < 1:
            raise NetworkError("message length L must be >= 1")
        M = len(demands)
        release = (
            np.zeros(M, dtype=np.int64)
            if release_times is None
            else np.asarray(release_times, dtype=np.int64)
        )
        if M == 0:
            return AdaptiveRunResult(
                SimulationResult(
                    np.full(0, -1, dtype=np.int64),
                    -1,
                    0,
                    np.zeros(0, dtype=np.int64),
                ),
                [],
            )

        # Minimal routes all have the Manhattan length.
        dists = np.asarray(
            [
                sum(
                    abs(a - b)
                    for a, b in zip(self.cube.coords(s), self.cube.coords(d))
                )
                for s, d in demands
            ],
            dtype=np.int64,
        )
        max_steps = resolve_step_cap(
            max_steps,
            "adaptive",
            release=release,
            lengths=dists,
            message_length=L,
        )

        probes = ProbeSet.coerce(telemetry)
        if probes is not None:
            probes.on_run_start(
                RunMeta(
                    simulator="adaptive",
                    num_messages=M,
                    num_edges=self.net.num_edges,
                    num_virtual_channels=self.B,
                    paths=None,
                    lengths=dists,
                    message_length=np.full(M, L, dtype=np.int64),
                    release=release,
                    extra={"flits_per_grant": L, "policy": self.policy},
                )
            )

        loop = StepLoop(M, release, max_steps, probes)
        loop.done |= dists == 0
        loop.completion[dists == 0] = release[dists == 0]

        kernel = AdaptiveKernel(
            serial_state(loop),
            cube=self.cube,
            demands=demands,
            message_length=L,
            dists=dists,
            capacities=np.full(1, self.B, dtype=np.int64),
            policy=self.policy,
            rngs=[self._rng],
            probes=probes,
        )
        result = loop.run(kernel.serial_body)
        return AdaptiveRunResult(result, kernel.taken_paths(0))
