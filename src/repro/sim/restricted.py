"""The restricted virtual-channel model of the Section 1.4 Remarks.

The paper's main model lets an edge transmit ``B`` flits per flit step
(one per virtual channel).  The Remarks consider a *restricted* model:
each switch still buffers ``B`` flits per edge (one per message), but the
edge forwards only **one** flit per step — buffering is increased by a
factor of ``B`` while link bandwidth stays fixed.  The paper notes the
main algorithms emulate this model with a slowdown of ``B``, so
increasing *buffering alone* still cuts the schedule length by about
``D^(1 - 1/B)`` — potentially more than ``B``, a superlinear return on
buffers with no extra wires.

Worms here no longer move in lock-step (different flits of one worm can
advance in different steps as the shared link serves one resident message
at a time), so the simulator tracks per-message, per-edge crossing counts
like the cut-through engine:

* ``crossed[m][i]`` = flits of ``m`` that have crossed path edge ``i``;
* a message is *resident* on edge ``i`` (holding one of its ``B`` buffer
  slots) from its header crossing until its last flit vacates the head
  buffer (crosses edge ``i + 1``; the final edge delivers instantly);
* per step, each edge forwards one flit among its residents' ready flits
  and admissible new headers (rotating service order for fairness);
* a header may cross edge ``i`` only if a slot is free
  (``residents < B``).

The rotating-service advance rule is this router's contribution; the
step protocol (release gating, gap skipping, deadlock declaration, step
caps, result assembly) comes from the shared
:class:`~repro.sim.engine.StepLoop`.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..network.graph import Network, NetworkError
from ..routing.paths import Path
from .engine import (
    PaddedPaths,
    StepLoop,
    resolve_step_cap,
)
from .kernels import RestrictedKernel, serial_state
from .stats import SimulationResult

__all__ = ["RestrictedWormholeSimulator"]


class RestrictedWormholeSimulator:
    """Synchronous simulator for the Remarks' buffering-only model.

    Parameters
    ----------
    net:
        The network (only ``num_edges`` is used).
    num_buffers:
        Buffer slots per edge (``B``); each slot holds one flit of a
        distinct message.  Bandwidth is one flit per edge per step
        regardless of ``B``.
    seed:
        Seed for the rotating service order.
    """

    def __init__(
        self,
        net: Network,
        num_buffers: int = 1,
        seed: int | None = 0,
    ) -> None:
        if num_buffers < 1:
            raise NetworkError("need at least one buffer slot per edge")
        self.net = net
        self.num_edges = net.num_edges
        self.B = int(num_buffers)
        self._rng = np.random.default_rng(seed)

    def run(
        self,
        paths: Sequence[Path] | Sequence[Sequence[int]],
        message_length: int | np.ndarray,
        release_times: np.ndarray | None = None,
        max_steps: int | None = None,
    ) -> SimulationResult:
        """Route all messages; times in flit steps.

        ``message_length`` may be a scalar or a per-message array.
        """
        pp = PaddedPaths.from_paths(paths)
        padded, D = pp.padded, pp.lengths
        M = D.size
        L_arr = np.broadcast_to(
            np.asarray(message_length, dtype=np.int64), (M,)
        ).copy()
        if M and L_arr.min() < 1:
            raise NetworkError("message length L must be >= 1")
        if M == 0:
            return SimulationResult(
                np.full(0, -1, dtype=np.int64), -1, 0, np.zeros(0, dtype=np.int64)
            )
        pp.require_edge_simple()

        release = (
            np.zeros(M, dtype=np.int64)
            if release_times is None
            else np.asarray(release_times, dtype=np.int64).copy()
        )
        trivial = D == 0
        max_steps = resolve_step_cap(
            max_steps,
            "restricted",
            release=release,
            lengths=D,
            message_length=L_arr,
            num_messages=M,
        )

        loop = StepLoop(M, release, max_steps)
        loop.mark_trivial(trivial, release)

        kernel = RestrictedKernel(
            serial_state(loop),
            num_edges=self.num_edges,
            padded=padded,
            lengths=D,
            message_length=L_arr,
            capacities=np.full(1, self.B, dtype=np.int64),
            rngs=[self._rng],
        )
        return loop.run(kernel.serial_body)
