"""The restricted virtual-channel model of the Section 1.4 Remarks.

The paper's main model lets an edge transmit ``B`` flits per flit step
(one per virtual channel).  The Remarks consider a *restricted* model:
each switch still buffers ``B`` flits per edge (one per message), but the
edge forwards only **one** flit per step — buffering is increased by a
factor of ``B`` while link bandwidth stays fixed.  The paper notes the
main algorithms emulate this model with a slowdown of ``B``, so
increasing *buffering alone* still cuts the schedule length by about
``D^(1 - 1/B)`` — potentially more than ``B``, a superlinear return on
buffers with no extra wires.

Worms here no longer move in lock-step (different flits of one worm can
advance in different steps as the shared link serves one resident message
at a time), so the simulator tracks per-message, per-edge crossing counts
like the cut-through engine:

* ``crossed[m][i]`` = flits of ``m`` that have crossed path edge ``i``;
* a message is *resident* on edge ``i`` (holding one of its ``B`` buffer
  slots) from its header crossing until its last flit vacates the head
  buffer (crosses edge ``i + 1``; the final edge delivers instantly);
* per step, each edge forwards one flit among its residents' ready flits
  and admissible new headers (rotating service order for fairness);
* a header may cross edge ``i`` only if a slot is free
  (``residents < B``).

The rotating-service advance rule is this router's contribution; the
step protocol (release gating, gap skipping, deadlock declaration, step
caps, result assembly) comes from the shared
:class:`~repro.sim.engine.StepLoop`.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..network.graph import Network, NetworkError
from ..routing.paths import Path
from .engine import (
    PaddedPaths,
    StepLoop,
    resolve_step_cap,
)
from .stats import SimulationResult

__all__ = ["RestrictedWormholeSimulator"]

#: Back-compat re-exports now served lazily with a deprecation warning;
#: their canonical home is :mod:`repro.sim.engine`.
_MOVED_TO_ENGINE = ("check_edge_simple", "pad_paths")


def __getattr__(name: str):
    if name in _MOVED_TO_ENGINE:
        import warnings

        warnings.warn(
            f"importing {name!r} from repro.sim.restricted is deprecated; "
            f"use repro.sim.engine.{name}",
            DeprecationWarning,
            stacklevel=2,
        )
        from . import engine

        return getattr(engine, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


class RestrictedWormholeSimulator:
    """Synchronous simulator for the Remarks' buffering-only model.

    Parameters
    ----------
    net:
        The network (only ``num_edges`` is used).
    num_buffers:
        Buffer slots per edge (``B``); each slot holds one flit of a
        distinct message.  Bandwidth is one flit per edge per step
        regardless of ``B``.
    seed:
        Seed for the rotating service order.
    """

    def __init__(
        self,
        net: Network,
        num_buffers: int = 1,
        seed: int | None = 0,
    ) -> None:
        if num_buffers < 1:
            raise NetworkError("need at least one buffer slot per edge")
        self.net = net
        self.num_edges = net.num_edges
        self.B = int(num_buffers)
        self._rng = np.random.default_rng(seed)

    def run(
        self,
        paths: Sequence[Path] | Sequence[Sequence[int]],
        message_length: int | np.ndarray,
        release_times: np.ndarray | None = None,
        max_steps: int | None = None,
    ) -> SimulationResult:
        """Route all messages; times in flit steps.

        ``message_length`` may be a scalar or a per-message array.
        """
        pp = PaddedPaths.from_paths(paths)
        padded, D = pp.padded, pp.lengths
        M = D.size
        L_arr = np.broadcast_to(
            np.asarray(message_length, dtype=np.int64), (M,)
        ).copy()
        if M and L_arr.min() < 1:
            raise NetworkError("message length L must be >= 1")
        if M == 0:
            return SimulationResult(
                np.full(0, -1, dtype=np.int64), -1, 0, np.zeros(0, dtype=np.int64)
            )
        pp.require_edge_simple()

        release = (
            np.zeros(M, dtype=np.int64)
            if release_times is None
            else np.asarray(release_times, dtype=np.int64).copy()
        )
        trivial = D == 0
        max_steps = resolve_step_cap(
            max_steps,
            "restricted",
            release=release,
            lengths=D,
            message_length=L_arr,
            num_messages=M,
        )

        max_D = padded.shape[1]
        crossed = np.zeros((M, max_D), dtype=np.int64)
        # residents[e]: message -> its path index for edge e.
        residents: list[dict[int, int]] = [dict() for _ in range(self.num_edges)]
        # Next path-edge each message's header wants (== D[m] once inside).
        head_edge = np.zeros(M, dtype=np.int64)
        rr_offset = self._rng.integers(0, 1 << 30, size=self.num_edges)

        loop = StepLoop(M, release, max_steps)
        loop.mark_trivial(trivial, release)
        completion, done = loop.completion, loop.done

        def body(t: int, active_mask: np.ndarray) -> bool:
            snapshot = crossed.copy()
            moved_any = False
            progressed = np.zeros(M, dtype=bool)

            # Edges with any potential work this step.
            touched: set[int] = set()
            active = np.flatnonzero(active_mask)
            for m in active:
                for i in range(int(D[m])):
                    if snapshot[m, i] < L_arr[m]:
                        touched.add(int(padded[m, i]))

            # Service edges to a fixpoint so a message's own buffer slot
            # vacated this step can be refilled this step (lock-step
            # pipelining, as in the full model): flit *availability* uses
            # the start-of-step snapshot — a flit crosses at most one
            # edge per step — while per-message buffer *space* uses
            # current counts.  Cross-message slot handover stays
            # conservative like the full model: header admission checks
            # the start-of-step resident count, so a slot freed by a
            # departing worm only admits a new worm next step.  Each edge
            # forwards at most one flit per step.
            start_residents = {e: len(residents[e]) for e in touched}
            serviced: set[int] = set()
            order = sorted(touched)
            changed = True
            while changed:
                changed = False
                for e in order:
                    if e in serviced:
                        continue
                    cands: list[tuple[int, int, bool]] = []
                    for m, i in residents[e].items():
                        if done[m] or release[m] >= t:
                            continue
                        upstream = int(L_arr[m]) if i == 0 else int(snapshot[m, i - 1])
                        if int(snapshot[m, i]) >= upstream:
                            continue  # no flit waiting to cross this edge
                        if i < D[m] - 1:
                            in_buf = int(crossed[m, i]) - int(crossed[m, i + 1])
                            if in_buf >= 1:
                                continue  # the message's slot is occupied
                        cands.append((m, i, False))
                    if start_residents[e] < self.B and len(residents[e]) < self.B:
                        for m in active:
                            i = int(head_edge[m])
                            if i < D[m] and int(padded[m, i]) == e:
                                upstream = int(L_arr[m]) if i == 0 else int(snapshot[m, i - 1])
                                if upstream >= 1:
                                    cands.append((m, i, True))
                    if not cands:
                        continue
                    m, i, is_header = cands[int((rr_offset[e] + t) % len(cands))]
                    if is_header:
                        residents[e][m] = i
                        start_residents[e] += 1
                        head_edge[m] += 1
                    crossed[m, i] += 1
                    serviced.add(e)
                    changed = True
                    moved_any = True
                    progressed[m] = True
                    if crossed[m, i] == L_arr[m]:
                        # Last flit left the upstream buffer for good.
                        if i > 0:
                            prev = int(padded[m, i - 1])
                            residents[prev].pop(m, None)
                        if i == int(D[m]) - 1:
                            residents[e].pop(m, None)  # delivered instantly
                            completion[m] = t
                            done[m] = True

            loop.blocked[active] += ~progressed[active]
            return moved_any

        return loop.run(body)
