"""Shared result types and statistics for the router simulators.

All simulators (wormhole, store-and-forward, virtual cut-through) report a
:class:`SimulationResult` measured in **flit steps**, the paper's time
unit: "a flit step is the time taken to transmit one flit across a single
link" — and when each link supports ``B`` virtual channels, the time to
transmit ``B`` flits, one per virtual channel (footnote 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["SimulationResult", "summarize_latencies"]


@dataclass
class SimulationResult:
    """Outcome of one routing simulation.

    Attributes
    ----------
    completion_times:
        Per-message flit step at which the last flit reached the delivery
        buffer; ``-1`` for undelivered messages (deadlock or step cap).
    makespan:
        Largest completion time (``-1`` when nothing was delivered).
    steps_executed:
        Number of flit steps simulated.
    blocked_steps:
        Per-message count of flit steps spent blocked (wanting to move but
        denied a virtual channel / buffer).
    deadlocked:
        True iff the simulator proved no further progress was possible
        while undelivered messages remained.
    hit_step_cap:
        True iff simulation stopped at ``max_steps`` with messages pending.
    """

    completion_times: np.ndarray
    makespan: int
    steps_executed: int
    blocked_steps: np.ndarray
    deadlocked: bool = False
    hit_step_cap: bool = False
    extra: dict = field(default_factory=dict)

    @property
    def num_messages(self) -> int:
        return int(self.completion_times.size)

    @property
    def delivered(self) -> np.ndarray:
        """Boolean mask of delivered messages."""
        return self.completion_times >= 0

    @property
    def all_delivered(self) -> bool:
        return bool(self.delivered.all()) if self.num_messages else True

    @property
    def num_delivered(self) -> int:
        return int(self.delivered.sum())

    @property
    def total_blocked_steps(self) -> int:
        return int(self.blocked_steps.sum())

    def latencies(self, release_times: np.ndarray | None = None) -> np.ndarray:
        """Delivered messages' completion minus release times."""
        mask = self.delivered
        times = self.completion_times[mask].astype(np.float64)
        if release_times is not None:
            times = times - np.asarray(release_times, dtype=np.float64)[mask]
        return times


def summarize_latencies(latencies: np.ndarray) -> dict[str, float]:
    """Mean / median / p95 / max of a latency sample (empty-safe)."""
    if latencies.size == 0:
        return {"mean": 0.0, "median": 0.0, "p95": 0.0, "max": 0.0}
    return {
        "mean": float(np.mean(latencies)),
        "median": float(np.median(latencies)),
        "p95": float(np.percentile(latencies, 95)),
        "max": float(np.max(latencies)),
    }
