"""Optional JIT build of the inner contend/rank/grant step.

The single hottest primitive in :mod:`repro.sim` is the segmented grant
scan at the heart of :func:`repro.sim.engine.grant_free_slots`: given
contenders sorted by ``(slot, priority)``, rank each contender within
its slot group and grant the first ``capacity - occupancy`` of every
group.  This module provides two interchangeable builds of that scan:

``"numpy"``
    The pure-NumPy segmented scan (group boundaries via a shifted
    compare, ranks via ``maximum.accumulate``).  This is the **semantic
    reference**: it is always available and always correct.
``"numba"``
    A ``@njit``-compiled linear scan over the same sorted order.  The
    scan is a single O(n) integer loop, which a JIT executes without
    the five intermediate arrays the NumPy build allocates per call.

Both builds consume the *same* lexsort order computed by the caller and
perform the same integer comparisons in the same sequence, so their
grant masks are bit-identical — the backend choice can never change a
simulation result.  The suite in ``tests/sim/test_fastpath.py`` pins
both against a naive per-slot reference.

Backend selection
-----------------
At import time the module tries ``import numba``; if it imports
cleanly the jitted build is used, otherwise the NumPy build.  The
``REPRO_FASTPATH`` environment variable forces the choice:

* ``REPRO_FASTPATH=numpy`` — always use the NumPy reference (even with
  numba installed);
* ``REPRO_FASTPATH=numba`` — require the jitted build; raise
  immediately if numba is not importable (instead of silently running
  slow);
* unset / empty — auto-select.

:func:`active_backend` reports the resolved choice (``"numpy"`` or
``"numba"``) so benchmarks and CI can record / assert it.

Importing this module never requires numba: the jit decoration happens
only after a successful ``import numba``.
"""

from __future__ import annotations

import os

import numpy as np

__all__ = [
    "active_backend",
    "segmented_grant",
    "segmented_grant_numpy",
]

_ENV_VAR = "REPRO_FASTPATH"
_CHOICES = ("", "auto", "numpy", "numba")


def _resolve_backend() -> str:
    """Pick the scan build from the environment + numba availability."""
    forced = os.environ.get(_ENV_VAR, "").strip().lower()
    if forced not in _CHOICES:
        raise RuntimeError(
            f"{_ENV_VAR} must be one of 'numba' or 'numpy' (or unset), "
            f"got {forced!r}"
        )
    if forced == "numpy":
        return "numpy"
    try:
        import numba  # noqa: F401
    except Exception as exc:  # pragma: no cover - depends on environment
        if forced == "numba":
            raise RuntimeError(
                f"{_ENV_VAR}=numba but numba is not importable: {exc}"
            ) from exc
        return "numpy"
    return "numba"


def segmented_grant_numpy(
    sorted_slots: np.ndarray,
    sorted_caps: np.ndarray,
    occupancy: np.ndarray | None,
) -> np.ndarray:
    """The NumPy reference build of the segmented grant scan.

    ``sorted_slots`` holds the contenders' slot ids in lexsorted
    ``(slot, priority)`` order, ``sorted_caps`` the per-contender slot
    capacity in the same order (constant within a slot group).  Returns
    the granted mask *in sorted order*: contender ``i`` is granted iff
    its rank within its slot group is below the group's free capacity
    (``capacity - occupancy[slot]``).
    """
    n = sorted_slots.size
    if n == 0:
        return np.zeros(0, dtype=bool)
    new_group = np.empty(n, dtype=bool)
    new_group[0] = True
    np.not_equal(sorted_slots[1:], sorted_slots[:-1], out=new_group[1:])
    arange = np.arange(n)
    group_start = np.maximum.accumulate(np.where(new_group, arange, 0))
    rank = arange - group_start
    if occupancy is None:
        return rank < sorted_caps
    return rank < sorted_caps - occupancy[sorted_slots]


def _build_numba_scan():  # pragma: no cover - exercised on the numba CI leg
    """Compile the linear-scan build (called only when numba imports)."""
    import numba

    @numba.njit(cache=True)
    def _scan(sorted_slots, sorted_caps, occupancy, use_occ, out):
        rank = np.int64(0)
        prev = np.int64(-1)
        free = np.int64(0)
        first = True
        for i in range(sorted_slots.size):
            s = sorted_slots[i]
            if first or s != prev:
                rank = 0
                prev = s
                free = sorted_caps[i]
                if use_occ:
                    free -= occupancy[s]
                first = False
            out[i] = rank < free
            rank += 1
        return out

    _empty_occ = np.zeros(0, dtype=np.int64)

    def segmented_grant_numba(sorted_slots, sorted_caps, occupancy):
        out = np.empty(sorted_slots.size, dtype=np.bool_)
        # Callers may pass a stride-0 broadcast of a scalar capacity;
        # the jitted scan wants a real contiguous array.
        sorted_caps = np.ascontiguousarray(sorted_caps)
        if occupancy is None:
            _scan(sorted_slots, sorted_caps, _empty_occ, False, out)
        else:
            _scan(sorted_slots, sorted_caps, occupancy, True, out)
        return out

    return segmented_grant_numba


_BACKEND = _resolve_backend()

if _BACKEND == "numba":  # pragma: no cover - exercised on the numba CI leg
    try:
        segmented_grant = _build_numba_scan()
    except Exception:
        # numba imported but jit compilation is unavailable (e.g. broken
        # LLVM); fall back unless the user explicitly demanded numba.
        if os.environ.get(_ENV_VAR, "").strip().lower() == "numba":
            raise
        _BACKEND = "numpy"
        segmented_grant = segmented_grant_numpy
else:
    segmented_grant = segmented_grant_numpy


def active_backend() -> str:
    """The resolved scan build: ``"numpy"`` or ``"numba"``."""
    return _BACKEND
