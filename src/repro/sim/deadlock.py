"""Deadlock analysis for wormhole routing (Dally-Seitz [14]).

A wormhole algorithm can deadlock when every header is blocked on a buffer
held by another worm.  Dally and Seitz's classic criterion: a routing
relation is deadlock-free iff its **channel dependency graph** (CDG) is
acyclic — the CDG has a vertex per (virtual) channel and an arc from
channel ``a`` to channel ``b`` whenever some route uses ``b`` immediately
after ``a``.  Their fix — the reason virtual channels exist at all — is to
split each physical channel into virtual channels and restrict routes so
the virtual network's CDG is acyclic.

This module provides:

* :func:`channel_dependency_graph` / :func:`is_deadlock_free` over a set
  of paths, with an optional per-hop virtual-channel assignment;
* :func:`dateline_vc_assignment` — the classic torus escape scheme: start
  on VC 0, switch to VC 1 after crossing each ring's dateline, which
  breaks every ring cycle;
* :func:`wait_for_graph` — the runtime wait-for relation of a stuck
  wormhole configuration, for post-mortem diagnosis of simulator
  deadlocks.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from ..network.mesh import KAryNCube
from ..routing.paths import Path

__all__ = [
    "channel_dependency_graph",
    "is_deadlock_free",
    "dateline_vc_assignment",
    "wait_for_graph",
    "has_cycle",
]

VcAssignment = Callable[[Path, int], int]
"""Maps (path, hop index) -> virtual channel id for that hop."""


def channel_dependency_graph(
    paths: Sequence[Path],
    vc_of: VcAssignment | None = None,
) -> dict[tuple[int, int], set[tuple[int, int]]]:
    """Adjacency of the channel dependency graph.

    Vertices are ``(edge id, vc id)`` pairs; with ``vc_of`` omitted all
    hops use VC 0 and the CDG collapses to the physical-channel CDG.
    """
    adj: dict[tuple[int, int], set[tuple[int, int]]] = {}
    for p in paths:
        for hop in range(p.length - 1):
            a = (p.edges[hop], vc_of(p, hop) if vc_of else 0)
            b = (p.edges[hop + 1], vc_of(p, hop + 1) if vc_of else 0)
            adj.setdefault(a, set()).add(b)
            adj.setdefault(b, set())
        if p.length == 1:
            only = (p.edges[0], vc_of(p, 0) if vc_of else 0)
            adj.setdefault(only, set())
    return adj


def has_cycle(adj: dict) -> bool:
    """Iterative DFS cycle detection on a dict-of-sets adjacency."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {v: WHITE for v in adj}
    for root in adj:
        if color[root] != WHITE:
            continue
        stack: list[tuple[object, object]] = [(root, iter(adj[root]))]
        color[root] = GRAY
        while stack:
            v, it = stack[-1]
            advanced = False
            for w in it:
                if color.get(w, WHITE) == GRAY:
                    return True
                if color.get(w, WHITE) == WHITE:
                    color[w] = GRAY
                    stack.append((w, iter(adj.get(w, ()))))
                    advanced = True
                    break
            if not advanced:
                color[v] = BLACK
                stack.pop()
    return False


def is_deadlock_free(
    paths: Sequence[Path],
    vc_of: VcAssignment | None = None,
) -> bool:
    """Dally-Seitz criterion: the routes' CDG is acyclic.

    This is a *sufficient* condition for freedom from deadlock under any
    injection pattern using these routes.
    """
    return not has_cycle(channel_dependency_graph(paths, vc_of))


def dateline_vc_assignment(cube: KAryNCube) -> VcAssignment:
    """Dateline virtual-channel assignment for torus rings.

    Each hop starts on VC 0; a message switches to VC 1 for the rest of
    its traversal of a dimension once it crosses that dimension's dateline
    (the wrap link between coordinate ``k-1`` and 0, in either direction).
    With dimension-order routes this makes the per-dimension ring CDG
    acyclic, the textbook Dally-Seitz construction.
    """

    def hop_dimension(path: Path, hop: int) -> int | None:
        a = cube.coords(path.nodes[hop])
        b = cube.coords(path.nodes[hop + 1])
        dims = [d for d in range(cube.n) if a[d] != b[d]]
        return dims[0] if len(dims) == 1 else None

    def is_wrap(path: Path, hop: int, dim: int) -> bool:
        a = cube.coords(path.nodes[hop])
        b = cube.coords(path.nodes[hop + 1])
        return {a[dim], b[dim]} == {0, cube.k - 1}

    def vc_of(path: Path, hop: int) -> int:
        dim = hop_dimension(path, hop)
        if dim is None:
            return 0
        crossed = any(
            hop_dimension(path, h) == dim and is_wrap(path, h, dim)
            for h in range(hop + 1)
        )
        return 1 if crossed else 0

    return vc_of


def wait_for_graph(
    paths: Sequence[Path],
    head_edge_index: np.ndarray,
    occupancy_of: dict[int, list[int]],
) -> dict[int, set[int]]:
    """Message-level wait-for relation of a stuck configuration.

    ``head_edge_index[m]`` is the path-edge index message ``m``'s header
    wants next (or ``-1`` if draining); ``occupancy_of[e]`` lists the
    messages currently holding virtual channels on edge ``e``.  Message
    ``a`` waits for ``b`` if ``b`` holds a channel on the edge ``a``'s
    header wants.  A cycle in this graph certifies deadlock.
    """
    adj: dict[int, set[int]] = {}
    for m, p in enumerate(paths):
        k = int(head_edge_index[m])
        if k < 0 or k >= p.length:
            continue
        wanted = p.edges[k]
        holders = occupancy_of.get(wanted, [])
        adj[m] = {h for h in holders if h != m}
    return adj
