"""Circuit switching on the butterfly (Kruskal-Snir [24], Koch [22]).

Koch's result is the paper's direct ancestor: in a circuit-switched
butterfly where each edge can carry ``B`` circuits, the expected number of
messages that succeed in locking down a path from a random-destination
problem is ``Theta(n / log**(1/B) n)`` — the first observation that a
constant-factor capacity increase buys a superlinear performance increase
(Section 1.3.3).  Experiment E6 regenerates this curve.

Model: every input holds one message with a chosen output; messages extend
their circuits level by level (all in lock-step).  At each level, each
edge admits at most ``capacity`` circuits; surplus messages are dropped on
the spot and release nothing (the classic "kill on blocked" analysis
model used by Kruskal-Snir and Koch).  The whole sweep is vectorized: a
message's path is determined by its (input, output) pair via greedy
bit-fixing, so level ``i`` only needs a bincount over edge ids.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..network.butterfly import Butterfly
from ..network.graph import NetworkError
from .engine import grant_free_slots

__all__ = ["CircuitSwitchResult", "circuit_switch_butterfly"]


@dataclass(frozen=True)
class CircuitSwitchResult:
    """Outcome of one lock-down sweep."""

    survived: np.ndarray  # bool per message
    dropped_per_level: np.ndarray  # messages dropped at each edge-level

    @property
    def num_survivors(self) -> int:
        return int(self.survived.sum())

    @property
    def fraction(self) -> float:
        return float(self.survived.mean()) if self.survived.size else 0.0


def circuit_switch_butterfly(
    bf: Butterfly,
    dests: np.ndarray,
    capacity: int,
    rng: np.random.Generator,
    sources: np.ndarray | None = None,
) -> CircuitSwitchResult:
    """Lock down circuits for messages ``sources[i] -> dests[i]``.

    Parameters
    ----------
    bf:
        The butterfly (single pass; ``depth == log2(n)`` unless a
        truncated experiment is intended).
    dests:
        Output column per message.
    capacity:
        Circuits per edge (Koch's ``B``); must be >= 1.
    rng:
        Arbitration: losers at an over-subscribed edge are chosen
        uniformly among its contenders.
    sources:
        Input column per message; defaults to one message per input
        (``arange(n)``) which requires ``len(dests) == n``.

    Returns
    -------
    :class:`CircuitSwitchResult` with the surviving messages.
    """
    if capacity < 1:
        raise NetworkError("capacity must be >= 1")
    dests = np.asarray(dests, dtype=np.int64)
    if sources is None:
        if dests.size != bf.n:
            raise NetworkError(
                f"default sources need one message per input ({bf.n}), "
                f"got {dests.size}"
            )
        sources = np.arange(bf.n, dtype=np.int64)
    else:
        sources = np.asarray(sources, dtype=np.int64)
    edges = bf.path_edges_batch(sources, dests)  # (M, depth)
    M = edges.shape[0]
    alive = np.ones(M, dtype=bool)
    dropped = np.zeros(bf.depth, dtype=np.int64)
    for level in range(bf.depth):
        idx = np.flatnonzero(alive)
        if idx.size == 0:
            break
        lvl_edges = edges[idx, level]
        # Random arbitration: shuffle, then keep the first `capacity`
        # contenders per edge (the engine's shared grant kernel).
        prio = rng.random(idx.size)
        keep = grant_free_slots(lvl_edges, prio, capacity)
        dropped[level] = int((~keep).sum())
        alive[idx[~keep]] = False
    return CircuitSwitchResult(survived=alive, dropped_per_level=dropped)
