"""Router substrate: flit-level simulators and deadlock analysis."""

from .adaptive import AdaptiveMeshRouter, AdaptiveRunResult
from .batch import (
    BATCHED_MODELS,
    run_adaptive_batch,
    run_cut_through_batch,
    run_restricted_batch,
    run_store_forward_batch,
    run_wormhole_batch,
)
from .circuit import CircuitSwitchResult, circuit_switch_butterfly
from .continuous import ContinuousResult, ContinuousWormholeSimulator
from .cut_through import CutThroughSimulator
from .deadlock import (
    channel_dependency_graph,
    dateline_vc_assignment,
    has_cycle,
    is_deadlock_free,
    wait_for_graph,
)
from .engine import (
    BatchSlotArbiter,
    BatchStepLoop,
    PaddedPaths,
    SlotArbiter,
    StepLoop,
    check_edge_simple,
    default_step_cap,
    grant_free_slots,
    pad_paths,
    resolve_step_cap,
)
from .restricted import RestrictedWormholeSimulator
from .stats import SimulationResult, summarize_latencies
from .store_forward import StoreForwardSimulator
from .sweep import SweepResult, TrialResult, TrialSpec, run_sweep, sweep_grid
from .wormhole import WormholeSimulator

__all__ = [
    "AdaptiveMeshRouter",
    "AdaptiveRunResult",
    "BATCHED_MODELS",
    "BatchSlotArbiter",
    "BatchStepLoop",
    "CircuitSwitchResult",
    "ContinuousResult",
    "ContinuousWormholeSimulator",
    "CutThroughSimulator",
    "PaddedPaths",
    "RestrictedWormholeSimulator",
    "SimulationResult",
    "SlotArbiter",
    "StepLoop",
    "StoreForwardSimulator",
    "SweepResult",
    "TrialResult",
    "TrialSpec",
    "WormholeSimulator",
    "channel_dependency_graph",
    "check_edge_simple",
    "circuit_switch_butterfly",
    "dateline_vc_assignment",
    "default_step_cap",
    "grant_free_slots",
    "has_cycle",
    "is_deadlock_free",
    "pad_paths",
    "resolve_step_cap",
    "run_adaptive_batch",
    "run_cut_through_batch",
    "run_restricted_batch",
    "run_store_forward_batch",
    "run_sweep",
    "run_wormhole_batch",
    "summarize_latencies",
    "sweep_grid",
    "wait_for_graph",
]
