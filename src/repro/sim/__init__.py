"""Router substrate: flit-level simulators and deadlock analysis."""

from .adaptive import AdaptiveMeshRouter, AdaptiveRunResult
from .circuit import CircuitSwitchResult, circuit_switch_butterfly
from .continuous import ContinuousResult, ContinuousWormholeSimulator
from .cut_through import CutThroughSimulator
from .deadlock import (
    channel_dependency_graph,
    dateline_vc_assignment,
    has_cycle,
    is_deadlock_free,
    wait_for_graph,
)
from .restricted import RestrictedWormholeSimulator
from .stats import SimulationResult, summarize_latencies
from .store_forward import StoreForwardSimulator
from .wormhole import WormholeSimulator, check_edge_simple, pad_paths

__all__ = [
    "AdaptiveMeshRouter",
    "AdaptiveRunResult",
    "CircuitSwitchResult",
    "ContinuousResult",
    "ContinuousWormholeSimulator",
    "CutThroughSimulator",
    "RestrictedWormholeSimulator",
    "SimulationResult",
    "StoreForwardSimulator",
    "WormholeSimulator",
    "channel_dependency_graph",
    "check_edge_simple",
    "circuit_switch_butterfly",
    "dateline_vc_assignment",
    "has_cycle",
    "is_deadlock_free",
    "pad_paths",
    "summarize_latencies",
    "wait_for_graph",
]
