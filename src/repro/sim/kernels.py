"""Model-parameterized batched kernels: one body per router, two drivers.

Every router in :mod:`repro.sim` advances the same struct-of-arrays
state shape — per-(trial, message) integers stacked as ``(T, M)``
arrays — and differs only in its *buffer semantics*: per-edge
capacity-``B`` slots for interchangeable virtual channels (wormhole),
``(edge, class)`` capacity-1 slots for the Dally-Seitz mechanism,
single-owner edges with ``B``-flit compression for cut-through,
whole-packet hops for store-and-forward, one-flit-per-edge rotating
service for the restricted model, and mask-based online route selection
for adaptive meshes.  This module holds those semantics as five kernel
classes, each exposing one vectorized ``body(t, active)`` over ``(T, M)``
state.

The same body drives both execution paths:

* **batched** — :mod:`repro.sim.batch` builds the kernel at ``T`` trials
  over a :class:`~repro.sim.engine.BatchStepLoop` and steps all trials
  in lockstep (one contend/rank/grant call per step over the combined
  ``(trial, slot)`` key space);
* **serial** — each legacy simulator class builds the kernel at
  ``T = 1`` over the scalar :class:`~repro.sim.engine.StepLoop` (which
  owns the probe lifecycle) through :func:`serial_state`, a ``(1, M)``
  view of the loop's flat arrays.  There is exactly one arbitration
  implementation per model.

Bit-exactness contract
----------------------
Trial ``i`` of a batch is bit-identical to the serial simulator run with
the same parameters and ``seeds[i]``: each trial draws from its **own**
RNG in exactly the serial order (draws happen only in steps/phases where
that trial acts), the combined arbitration key space keeps trials'
slot groups disjoint, and a trial's state is only read or written where
it has active messages.  Telemetry probes are supported at ``T = 1``
only (the serial path), where each kernel reproduces the legacy event
stream call for call, in the same order.
"""

from __future__ import annotations

import numpy as np

from ..network.graph import NetworkError
from .engine import (
    BatchSlotArbiter,
    age_priorities,
    grant_free_slots,
    pad_paths,
)

__all__ = [
    "AdaptiveKernel",
    "CutThroughKernel",
    "RestrictedKernel",
    "StoreForwardKernel",
    "WormholeKernel",
    "serial_state",
    "validate_vc_ids",
]

_FAR = np.iinfo(np.int64).max


class _SerialState:
    """``(1, M)`` views of a serial :class:`StepLoop`'s state arrays.

    Basic-indexing views, so kernel writes propagate straight into the
    loop's ``completion`` / ``done`` / ``blocked`` arrays.
    """

    __slots__ = ("completion", "done", "blocked")

    def __init__(self, loop) -> None:
        self.completion = loop.completion[None, :]
        self.done = loop.done[None, :]
        self.blocked = loop.blocked[None, :]


def serial_state(loop) -> _SerialState:
    """Adapt a scalar :class:`~repro.sim.engine.StepLoop` for a kernel."""
    return _SerialState(loop)


def validate_vc_ids(
    padded: np.ndarray, lengths: np.ndarray, vc_ids, b_min: int
) -> np.ndarray:
    """Validate and pack per-hop virtual-channel class assignments."""
    vc_padded, vc_lengths = pad_paths([list(v) for v in vc_ids])
    if not np.array_equal(vc_lengths, lengths):
        raise NetworkError("vc_ids must match the path lengths")
    valid = padded >= 0
    if valid.any() and (
        vc_padded[valid].min() < 0 or vc_padded[valid].max() >= b_min
    ):
        raise NetworkError(f"vc ids must lie in [0, {b_min})")
    return vc_padded


class _Kernel:
    """Common driver plumbing: a ``(T,) -> bool`` adapter for ``T = 1``."""

    probes = None

    def serial_body(self, t: int, active: np.ndarray) -> bool:
        return bool(self.body(t, active[None, :])[0])

    def _trial_draws(self, rows: np.ndarray, draw) -> np.ndarray:
        """One RNG draw per trial that has contenders, in trial order.

        ``rows`` is the trial id per contender, sorted (``np.nonzero``
        order), so each trial's contenders are contiguous and in
        message-index order — the serial draw order.  ``draw(rng, n)``
        produces that trial's ``n`` values from its own stream; trials
        without contenders draw nothing, exactly like their serial runs.
        """
        counts = np.bincount(rows, minlength=len(self.rngs))
        out = np.empty(rows.size, dtype=np.float64)
        pos = 0
        for tr in np.flatnonzero(counts):
            n = int(counts[tr])
            out[pos : pos + n] = draw(self.rngs[tr], n)
            pos += n
        return out


# ----------------------------------------------------------------------
# Wormhole: per-edge capacity-B slots (or (edge, class) capacity-1).
# ----------------------------------------------------------------------


class WormholeKernel(_Kernel):
    """Lockstep worms over capacity-``B`` virtual-channel slots.

    State is one integer per (trial, message): the completed-move count
    ``k``.  Headers contend for the slot on path edge ``k`` each step;
    granted worms advance, the tail's vacated slot frees after move
    ``k - L - 1``, and the final edge's slot frees at completion.
    """

    def __init__(
        self,
        state,
        *,
        num_edges: int,
        padded: np.ndarray,
        lengths: np.ndarray,
        message_length: np.ndarray,
        release: np.ndarray,
        capacities: np.ndarray,
        priority: str,
        rngs: list,
        vc_padded: np.ndarray | None = None,
        probes=None,
    ) -> None:
        T, M = len(rngs), int(lengths.size)
        assert probes is None or T == 1
        self.state = state
        self.T, self.M = T, M
        self.padded = padded
        self.D = lengths
        self.L = message_length
        self.B = capacities
        self.priority = priority
        self.rngs = rngs
        self.probes = probes
        self.vc_padded = vc_padded
        # Slot model per trial: without VC classes a slot is an edge with
        # capacity B[i]; with classes, an (edge, class) pair, capacity 1.
        if vc_padded is None:
            self.arbiter = BatchSlotArbiter(
                np.full(T, num_edges, dtype=np.int64), capacities
            )
        else:
            self.arbiter = BatchSlotArbiter(
                num_edges * capacities, np.ones(T, dtype=np.int64)
            )
        self.total_moves = message_length + lengths - 1
        self.k = np.zeros((T, M), dtype=np.int64)
        self.age_priority = (
            age_priorities(release) if priority == "age" else None
        )
        self.rank_priority = (
            np.stack([rng.permutation(M) for rng in rngs])
            if priority == "rank"
            else None
        )

    def _slots(
        self, trials: np.ndarray, msgs: np.ndarray, hop: np.ndarray
    ) -> np.ndarray:
        """Per-trial slot ids for the given (trial, message, hop) picks."""
        edges = self.padded[msgs, hop]
        if self.vc_padded is None:
            return edges
        return edges * self.B[trials] + self.vc_padded[msgs, hop]

    def body(self, t: int, active: np.ndarray) -> np.ndarray:
        k, D, L, probes = self.k, self.D, self.L, self.probes
        rows, cols = np.nonzero(active)
        k_ac = k[rows, cols]
        needs_edge = k_ac < D[cols]
        movers_local = np.zeros(rows.size, dtype=bool)
        movers_local[~needs_edge] = True  # draining worms always move

        if needs_edge.any():
            crows = rows[needs_edge]
            ccols = cols[needs_edge]
            hop = k_ac[needs_edge]
            slots = self._slots(crows, ccols, hop)
            if self.priority == "random":
                prio = self._trial_draws(crows, lambda rng, n: rng.random(n))
            elif self.priority == "age":
                prio = self.age_priority[ccols]
            elif self.priority == "rank":
                prio = self.rank_priority[crows, ccols]
            else:
                prio = ccols
            granted = self.arbiter.contend(crows, slots, prio)
            movers_local[needs_edge] = granted
            self.arbiter.acquire(crows[granted], slots[granted])
            self.state.blocked[crows[~granted], ccols[~granted]] += 1
            if probes is not None:
                raw = self.padded[ccols, hop]
                probes.on_grant(t, ccols[granted], raw[granted])
                if (~granted).any():
                    probes.on_block(t, ccols[~granted], raw[~granted])

        mrows, mcols = rows[movers_local], cols[movers_local]
        k[mrows, mcols] += 1
        new_k = k[mrows, mcols]
        # Release the buffer the tail just vacated; the final edge's
        # slot is released at completion instead (same rule as serial).
        rel_idx = new_k - L[mcols] - 1
        sel = (rel_idx >= 0) & (rel_idx < D[mcols] - 1)
        if sel.any():
            self.arbiter.vacate(
                mrows[sel], self._slots(mrows[sel], mcols[sel], rel_idx[sel])
            )
            if probes is not None:
                probes.on_release(
                    t, mcols[sel], self.padded[mcols[sel], rel_idx[sel]]
                )
        finished = new_k == self.total_moves[mcols]
        if finished.any():
            frows, fcols = mrows[finished], mcols[finished]
            self.state.completion[frows, fcols] = t
            self.state.done[frows, fcols] = True
            self.arbiter.vacate(
                frows, self._slots(frows, fcols, D[fcols] - 1)
            )
            if probes is not None:
                probes.on_release(t, fcols, self.padded[fcols, D[fcols] - 1])
                probes.on_complete(t, fcols)
        if probes is not None:
            probes.on_step(t, mcols, k[0])
        return np.bincount(mrows, minlength=self.T) > 0


# ----------------------------------------------------------------------
# Cut-through: single-owner edges with B-flit compression.
# ----------------------------------------------------------------------


class CutThroughKernel(_Kernel):
    """Ownership-based cut-through advance over ``(T, M, maxD)`` counts.

    ``crossed[t, m, i]`` is the number of trial ``t``'s message ``m``
    flits that crossed path edge ``i``; the buffer at the head of edge
    ``i`` holds ``crossed[i] - crossed[i+1]`` flits (capped at ``B``).
    Headers claim unowned edges via one capacity-1 grant per step; owned
    edges each forward one flit, serviced head-first (descending path
    index) so a slot vacated this step refills this step.
    """

    def __init__(
        self,
        state,
        *,
        num_edges: int,
        padded: np.ndarray,
        lengths: np.ndarray,
        message_length: np.ndarray,
        buffer_flits: np.ndarray,
        priority: str,
        rngs: list,
        probes=None,
    ) -> None:
        T, M = len(rngs), int(lengths.size)
        assert probes is None or T == 1
        self.state = state
        self.T, self.M = T, M
        self.num_edges = int(num_edges)
        self.padded = padded
        self.D = lengths
        self.L = message_length
        self.B = buffer_flits
        self.priority = priority
        self.rngs = rngs
        self.probes = probes
        self.max_D = int(padded.shape[1])
        self.crossed = np.zeros((T, M, self.max_D), dtype=np.int64)
        self.owner = np.full((T, num_edges), -1, dtype=np.int64)
        self.msg_ids = np.arange(M)
        self.last_idx = np.maximum(lengths - 1, 0)

    def _header_idx(self, crossed: np.ndarray) -> np.ndarray:
        """Per-(trial, message) index of the next uncrossed path edge.

        ``crossed`` is non-increasing along the path (flits cross edges
        in order), so the header index is the count of positive entries;
        it equals ``D`` once the header has crossed every edge.
        """
        return (crossed > 0).sum(axis=2)

    def body(self, t: int, active: np.ndarray) -> np.ndarray:
        crossed, owner = self.crossed, self.owner
        padded, D, L, probes = self.padded, self.D, self.L, self.probes
        T, M = self.T, self.M
        trows = np.arange(T)[:, None]

        # -- header claims: contend for unowned edges, capacity 1 -------
        h = self._header_idx(crossed)
        wants = active & (h < D[None, :])
        h_safe = np.minimum(h, self.last_idx[None, :])
        want_edge = np.where(
            wants, padded[self.msg_ids[None, :], h_safe], 0
        )
        claim = wants & (owner[trows, want_edge] < 0)
        if claim.any():
            c_t, c_m = np.nonzero(claim)
            c_e = want_edge[c_t, c_m]
            if self.priority == "random":
                prio = self._trial_draws(c_t, lambda rng, n: rng.random(n))
            else:  # "index": claimer-list position, ascending m per trial
                prio = c_m.astype(np.float64)
            granted = grant_free_slots(
                c_t * self.num_edges + c_e, prio, 1
            )
            owner[c_t[granted], c_e[granted]] = c_m[granted]
            if probes is not None and granted.any():
                # Serial appends grants in ascending-priority order.
                order = np.argsort(prio[granted], kind="stable")
                probes.on_grant(
                    t, c_m[granted][order], c_e[granted][order]
                )

        # -- flit movement: one flit per owned edge, head-first ---------
        snapshot = crossed.copy()
        progressed = np.zeros((T, M), dtype=bool)
        rel_events: list[tuple[int, int, int]] = []  # (phase, m, e), T=1
        for i in range(self.max_D - 1, -1, -1):
            valid = i < D  # (M,)
            if not valid.any():
                continue
            e_col = np.where(valid, padded[:, i], 0)
            own = (
                active
                & valid[None, :]
                & (owner[trows, e_col[None, :]] == self.msg_ids[None, :])
            )
            if not own.any():
                continue
            upstream = L[None, :] if i == 0 else snapshot[:, :, i - 1]
            has_flit = snapshot[:, :, i] < upstream
            not_last = valid & (i < D - 1)
            if i + 1 < self.max_D:
                in_buf = crossed[:, :, i] - crossed[:, :, i + 1]
                room = ~not_last[None, :] | (in_buf < self.B[:, None])
            else:
                room = True
            adv = own & has_flit & room
            if not adv.any():
                continue
            crossed[:, :, i] += adv
            progressed |= adv
            # Release ownership once the last flit moves on: the
            # previous edge's buffer is drained for good, and the final
            # edge delivers instantly.
            newly = adv & (crossed[:, :, i] == L[None, :])
            if not newly.any():
                continue
            if i > 0:
                nt, nm = np.nonzero(newly)
                prev_e = padded[nm, i - 1]
                ok = owner[nt, prev_e] == nm
                owner[nt[ok], prev_e[ok]] = -1
                if probes is not None:
                    rel_events.extend(
                        (0, int(m), int(e))
                        for m, e in zip(nm[ok], prev_e[ok])
                    )
            last = newly & (D[None, :] == i + 1)
            if last.any():
                lt, lm = np.nonzero(last)
                le = padded[lm, i]
                owner[lt, le] = -1
                if probes is not None:
                    rel_events.extend(
                        (1, int(m), int(e)) for m, e in zip(lm, le)
                    )

        lastc = crossed[:, self.msg_ids, self.last_idx]
        fin = active & (lastc == L[None, :])
        ft, fm = np.nonzero(fin)
        self.state.completion[ft, fm] = t
        self.state.done[ft, fm] = True
        self.state.blocked += active & ~progressed

        if probes is not None:
            self._emit_step_events(t, active, progressed, rel_events, fm)
        return progressed.any(axis=1)

    def _emit_step_events(self, t, active, progressed, rel_events, finished):
        """Reproduce the serial per-step event stream (T = 1 only)."""
        probes, crossed, padded, D = (
            self.probes, self.crossed[0], self.padded, self.D,
        )
        stalled = np.flatnonzero(active[0] & ~progressed[0])
        if stalled.size:
            h = (crossed[stalled] > 0).sum(axis=1)
            wanted = np.where(
                h < D[stalled],
                padded[stalled, np.minimum(h, self.last_idx[stalled])],
                -1,
            )
            probes.on_block(t, stalled, wanted)
        if rel_events:
            # Serial order: ascending message, prev-edge release before
            # the final-edge release (at most one of each per message).
            rel_events.sort(key=lambda ev: (ev[1], ev[0]))
            r = np.asarray(rel_events, dtype=np.int64)
            probes.on_release(t, r[:, 1], r[:, 2])
        if finished.size:
            probes.on_complete(t, finished)
        movers = np.flatnonzero(progressed[0])
        probes.on_step(t, movers, (crossed > 0).sum(axis=1))


# ----------------------------------------------------------------------
# Store-and-forward: whole-packet hops, one message per edge per step.
# ----------------------------------------------------------------------


class StoreForwardKernel(_Kernel):
    """Greedy whole-packet advancement: one hop per granted message.

    The arbiter holds nothing across steps (an edge is owned only within
    the message step it transmits), so every round is a capacity-1 grant
    against empty occupancy.  Times scale by the per-trial message-step
    length ``hop[i] = ceil(L / B[i])`` flit steps.
    """

    def __init__(
        self,
        state,
        *,
        num_edges: int,
        padded: np.ndarray,
        lengths: np.ndarray,
        release: np.ndarray,
        hop: np.ndarray,
        priority: str,
        rngs: list,
        probes=None,
    ) -> None:
        T, M = len(rngs), int(lengths.size)
        assert probes is None or T == 1
        self.state = state
        self.T, self.M = T, M
        self.num_edges = int(num_edges)
        self.padded = padded
        self.D = lengths
        # Release times in *message steps*, per trial: (T, M) or (M,).
        self.release = np.broadcast_to(
            np.asarray(release, dtype=np.int64), (T, M)
        )
        self.hop = hop
        self.priority = priority
        self.rngs = rngs
        self.probes = probes
        self.hops_done = np.zeros((T, M), dtype=np.int64)
        self.max_queue = np.zeros(T, dtype=np.int64)

    def body(self, t: int, active: np.ndarray) -> np.ndarray:
        D, probes = self.D, self.probes
        rows, cols = np.nonzero(active)
        hd = self.hops_done[rows, cols]
        edges = self.padded[cols, hd]
        if self.priority == "random":
            prio = self._trial_draws(rows, lambda rng, n: rng.random(n))
        elif self.priority == "age":
            prio = self.release[rows, cols].astype(np.float64)
        else:  # farthest to go first
            prio = -(D[cols] - hd).astype(np.float64)
        keys = rows * self.num_edges + edges
        winners = grant_free_slots(keys, prio, 1)  # one message per edge
        # Queue-depth bookkeeping: contenders per edge this step.
        counts = np.bincount(keys)
        np.maximum.at(self.max_queue, rows, counts[keys])

        mrows, mcols = rows[winners], cols[winners]
        self.hops_done[mrows, mcols] += 1
        self.state.blocked[rows[~winners], cols[~winners]] += self.hop[
            rows[~winners]
        ]
        fin = self.hops_done[mrows, mcols] == D[mcols]
        if fin.any():
            frows, fcols = mrows[fin], mcols[fin]
            self.state.completion[frows, fcols] = t * self.hop[frows]
            self.state.done[frows, fcols] = True

        if probes is not None:
            probes.on_grant(t, mcols, edges[winners])
            if (~winners).any():
                probes.on_block(t, cols[~winners], edges[~winners])
            # A store-and-forward edge is held only within the step it
            # transmits, so the grant's slot frees immediately.
            probes.on_release(t, mcols, edges[winners])
            if fin.any():
                probes.on_complete(t, mcols[fin])
            probes.on_step(t, mcols, self.hops_done[0])
        # A contended edge always forwards someone.
        return np.bincount(rows, minlength=self.T) > 0


# ----------------------------------------------------------------------
# Restricted: one flit per edge per step over B buffer slots.
# ----------------------------------------------------------------------


class RestrictedKernel(_Kernel):
    """Rotating-service advance for the buffering-only model.

    Each edge holds ``B`` one-flit slots (one per resident message) but
    forwards a single flit per step, chosen round-robin among its
    eligible residents (in admission order) and admissible new headers
    (in message order).  Edges are serviced to a fixpoint each step so a
    slot vacated this step can refill this step; header admission stays
    conservative (start-of-step resident counts), as in the full model.

    Trials are swept together: each pass visits the sorted union of all
    trials' touched edges and fires at most one flit per (trial, edge);
    a trial's own sub-sequence of fires is exactly its serial fixpoint
    (extra visits to edges it has no candidates on are no-ops).
    """

    def __init__(
        self,
        state,
        *,
        num_edges: int,
        padded: np.ndarray,
        lengths: np.ndarray,
        message_length: np.ndarray,
        capacities: np.ndarray,
        rngs: list,
        probes=None,
    ) -> None:
        T, M = len(rngs), int(lengths.size)
        assert probes is None, "restricted model has no telemetry hooks"
        self.state = state
        self.T, self.M = T, M
        self.num_edges = int(num_edges)
        self.padded = padded
        self.D = lengths
        self.L = message_length
        self.B = capacities
        self.rngs = rngs
        self.max_D = int(padded.shape[1])
        # Flattened (message, path-index) sites, grouped per edge and
        # sorted by message id — edge-simplicity makes each (edge,
        # message) pair unique, so one static list serves both resident
        # and header candidate enumeration.
        site_m, site_i = np.nonzero(padded >= 0)
        site_e = padded[site_m, site_i]
        self.site_m, self.site_i, self.site_e = site_m, site_i, site_e
        order = np.lexsort((site_m, site_e))
        se, sm, si = site_e[order], site_m[order], site_i[order]
        self._sites: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        starts = np.searchsorted(se, np.arange(num_edges + 1))
        for e in np.unique(se):
            lo, hi = starts[e], starts[e + 1]
            self._sites[int(e)] = (sm[lo:hi], si[lo:hi])
        # Rotating service offsets: the only RNG use of this model.
        self.rr_offset = np.stack(
            [rng.integers(0, 1 << 30, size=num_edges) for rng in rngs]
        )
        self.crossed = np.zeros((T, M, self.max_D), dtype=np.int64)
        self.resident = np.zeros((T, M, self.max_D), dtype=bool)
        # Admission stamps order each edge's residents like the serial
        # dict's insertion order (a global per-trial counter suffices:
        # stamps on one edge are mutually ordered by admission time).
        self.stamp = np.full((T, M, self.max_D), _FAR, dtype=np.int64)
        self.counter = np.zeros(T, dtype=np.int64)
        self.head_edge = np.zeros((T, M), dtype=np.int64)
        self.res_count = np.zeros((T, num_edges), dtype=np.int64)

    def body(self, t: int, active: np.ndarray) -> np.ndarray:
        crossed, padded, D, L = self.crossed, self.padded, self.D, self.L
        T = self.T
        snapshot = crossed.copy()
        progressed = np.zeros((T, self.M), dtype=bool)

        # Union of edges with any potential work in any trial.
        alive = (
            active[:, self.site_m]
            & (snapshot[:, self.site_m, self.site_i] < L[self.site_m])
        ).any(axis=0)
        order_edges = np.unique(self.site_e[alive])

        res0 = self.res_count.copy()  # start-of-step counts gate headers
        serviced = np.zeros((T, self.num_edges), dtype=bool)
        done = self.state.done
        changed = True
        while changed:
            changed = False
            for e in order_edges:
                e = int(e)
                notserv = ~serviced[:, e]
                if not notserv.any():
                    continue
                sm, si = self._sites[e]
                k = sm.size
                # Resident candidates: a waiting flit (start-of-step
                # availability) and a free own-message slot downstream
                # (live counts — lock-step pipelining).
                act = active[:, sm]
                res = self.resident[:, sm, si]
                snap_i = snapshot[:, sm, si]
                up = np.where(
                    (si == 0)[None, :],
                    L[sm][None, :],
                    snapshot[:, sm, np.maximum(si - 1, 0)],
                )
                has_flit = snap_i < up
                is_last = si == D[sm] - 1
                si_next = np.where(is_last, si, si + 1)
                in_buf = crossed[:, sm, si] - crossed[:, sm, si_next]
                room = is_last[None, :] | (in_buf < 1)
                elig_r = (
                    res
                    & act
                    & ~done[:, sm]
                    & has_flit
                    & room
                    & notserv[:, None]
                )
                # Header candidates: an admissible slot (start-of-step
                # AND live counts below B) and an injectable flit.
                can_admit = (
                    (res0[:, e] < self.B)
                    & (self.res_count[:, e] < self.B)
                    & notserv
                )
                elig_h = (
                    act
                    & (self.head_edge[:, sm] == si[None, :])
                    & (up >= 1)
                    & can_admit[:, None]
                )
                n_r = elig_r.sum(axis=1)
                n = n_r + elig_h.sum(axis=1)
                has = n > 0
                if not has.any():
                    continue
                # Candidate order: residents by admission stamp, then
                # headers by message id; rotate by (offset + t).
                pick = (self.rr_offset[:, e] + t) % np.where(has, n, 1)
                stamps = np.where(elig_r, self.stamp[:, sm, si], _FAR)
                r_rank = np.argsort(stamps, axis=1, kind="stable")
                h_rank = np.argsort(~elig_h, axis=1, kind="stable")
                from_r = pick < n_r
                pick_r = np.minimum(pick, k - 1)
                pick_h = np.minimum(np.maximum(pick - n_r, 0), k - 1)
                j = np.where(
                    from_r,
                    np.take_along_axis(r_rank, pick_r[:, None], axis=1)[:, 0],
                    np.take_along_axis(h_rank, pick_h[:, None], axis=1)[:, 0],
                )
                tt = np.flatnonzero(has)
                jj = j[tt]
                msel, isel = sm[jj], si[jj]
                is_h = ~from_r[tt]
                if is_h.any():
                    at, am, ai = tt[is_h], msel[is_h], isel[is_h]
                    self.resident[at, am, ai] = True
                    self.stamp[at, am, ai] = self.counter[at]
                    self.counter[at] += 1
                    res0[at, e] += 1
                    self.res_count[at, e] += 1
                    self.head_edge[at, am] += 1
                crossed[tt, msel, isel] += 1
                serviced[tt, e] = True
                progressed[tt, msel] = True
                changed = True
                doneL = crossed[tt, msel, isel] == L[msel]
                if not doneL.any():
                    continue
                dt, dm, di = tt[doneL], msel[doneL], isel[doneL]
                # Last flit left the upstream buffer for good.
                inner = di > 0
                if inner.any():
                    pt, pm = dt[inner], dm[inner]
                    pi = di[inner] - 1
                    was = self.resident[pt, pm, pi]
                    self.resident[pt[was], pm[was], pi[was]] = False
                    self.res_count[
                        pt[was], padded[pm[was], pi[was]]
                    ] -= 1
                last = di == D[dm] - 1
                if last.any():
                    ct, cm, ci = dt[last], dm[last], di[last]
                    was = self.resident[ct, cm, ci]
                    self.resident[ct, cm, ci] = False  # delivered instantly
                    self.res_count[ct[was], e] -= 1
                    self.state.completion[ct, cm] = t
                    done[ct, cm] = True

        self.state.blocked += active & ~progressed
        return progressed.any(axis=1)


# ----------------------------------------------------------------------
# Adaptive: online minimal routing with mask-based misroute selection.
# ----------------------------------------------------------------------

_DIRS = ((1, 0), (-1, 0), (0, 1), (0, -1))  # +x, -x, +y, -y


class AdaptiveKernel(_Kernel):
    """Round-based adaptive mesh routing over per-trial head orders.

    Each step, every trial shuffles its active messages with its own
    RNG (the serial head-service order); round ``r`` then processes each
    trial's ``r``-th message across all trials at once — the geometric
    option masks (productive directions allowed by the turn-model
    policy) are computed vectorized from precomputed coordinate and
    direction-edge tables, while the per-head free-channel draw consumes
    each trial's RNG exactly as its serial run would (one
    ``integers(n_free)`` per head with a non-empty free set).
    """

    def __init__(
        self,
        state,
        *,
        cube,
        demands,
        message_length: int,
        dists: np.ndarray,
        capacities: np.ndarray,
        policy: str,
        rngs: list,
        probes=None,
    ) -> None:
        T, M = len(rngs), len(demands)
        assert probes is None or T == 1
        self.state = state
        self.T, self.M = T, M
        self.L = int(message_length)
        self.dists = dists
        self.B = capacities
        self.policy = policy
        self.rngs = rngs
        self.probes = probes
        net = cube.network
        V = cube.num_nodes
        kk = cube.k
        self.cx = np.empty(V, dtype=np.int64)
        self.cy = np.empty(V, dtype=np.int64)
        self.dir_edge = np.full((V, 4), -1, dtype=np.int64)
        self.dir_node = np.full((V, 4), -1, dtype=np.int64)
        for v in range(V):
            x, y = cube.coords(v)
            self.cx[v], self.cy[v] = x, y
            for d, (dx, dy) in enumerate(_DIRS):
                x2, y2 = x + dx, y + dy
                if 0 <= x2 < kk and 0 <= y2 < kk:
                    u = cube.node((x2, y2))
                    e = net.edge_between(v, u)
                    assert e is not None
                    self.dir_edge[v, d] = e
                    self.dir_node[v, d] = u
        src = np.asarray([s for s, _ in demands], dtype=np.int64)
        self.dest = np.asarray([d for _, d in demands], dtype=np.int64)
        self.position = np.tile(src, (T, 1))
        self.k = np.zeros((T, M), dtype=np.int64)
        self.occ = np.zeros((T, net.num_edges), dtype=np.int64)
        max_d = int(dists.max()) if M else 0
        self.taken = np.zeros((T, M, max(max_d, 1)), dtype=np.int64)
        self.tlen = np.zeros((T, M), dtype=np.int64)

    def taken_paths(self, trial: int) -> list[list[int]]:
        """The edge ids trial ``trial``'s messages actually traversed."""
        return [
            self.taken[trial, m, : self.tlen[trial, m]].tolist()
            for m in range(self.M)
        ]

    def _options(self, trs: np.ndarray, ms: np.ndarray):
        """Vectorized policy-allowed productive moves, in serial order.

        Returns ``(o1e, o1n, o2e, o2n)`` — the first and second option's
        edge and node ids (``-1`` = absent).  The serial option list
        appends the x-move before the y-move, so option 1 is the x-move
        whenever the policy allows one.
        """
        pos = self.position[trs, ms]
        dst = self.dest[ms]
        dx = self.cx[dst] - self.cx[pos]
        dy = self.cy[dst] - self.cy[pos]
        xi = np.where(dx > 0, 0, 1)
        yi = np.where(dy > 0, 2, 3)
        xe = np.where(dx != 0, self.dir_edge[pos, xi], -1)
        xn = np.where(dx != 0, self.dir_node[pos, xi], -1)
        ye = np.where(dy != 0, self.dir_edge[pos, yi], -1)
        yn = np.where(dy != 0, self.dir_node[pos, yi], -1)
        if self.policy == "dimension":
            o1e = np.where(dx != 0, xe, ye)
            o1n = np.where(dx != 0, xn, yn)
            o2e = np.full_like(o1e, -1)
            o2n = o2e
        elif self.policy == "west-first":
            # Destination west: go fully west, deterministically.
            west = dx < 0
            o1e, o1n = xe, xn
            o2e = np.where(west, -1, ye)
            o2n = np.where(west, -1, yn)
        else:  # fully-adaptive
            o1e, o1n, o2e, o2n = xe, xn, ye, yn
        return o1e, o1n, o2e, o2n

    def body(self, t: int, active: np.ndarray) -> np.ndarray:
        T, M, L = self.T, self.M, self.L
        dists, probes = self.dists, self.probes
        # Per-trial head-service order, drawn from each trial's own RNG
        # only in steps where that trial has active messages.
        orders: list[np.ndarray | None] = []
        max_len = 0
        for tr in range(T):
            act = np.flatnonzero(active[tr])
            if act.size:
                orders.append(act[np.argsort(self.rngs[tr].random(act.size))])
                max_len = max(max_len, act.size)
            else:
                orders.append(None)
        movers: list[list[int]] = [[] for _ in range(T)]
        grants: list[tuple[int, int]] = []
        blocks: list[tuple[int, int]] = []

        for r in range(max_len):
            trs = np.asarray(
                [
                    tr
                    for tr in range(T)
                    if orders[tr] is not None and orders[tr].size > r
                ],
                dtype=np.int64,
            )
            ms = np.asarray(
                [int(orders[tr][r]) for tr in trs], dtype=np.int64
            )
            heads = self.k[trs, ms] < dists[ms]
            ht, hm = trs[heads], ms[heads]
            if ht.size:
                o1e, o1n, o2e, o2n = self._options(ht, hm)
                f1 = (o1e >= 0) & (
                    self.occ[ht, np.maximum(o1e, 0)] < self.B[ht]
                )
                f2 = (o2e >= 0) & (
                    self.occ[ht, np.maximum(o2e, 0)] < self.B[ht]
                )
                for i in range(ht.size):
                    tr, m = int(ht[i]), int(hm[i])
                    n_free = int(f1[i]) + int(f2[i])
                    if n_free == 0:
                        self.state.blocked[tr, m] += 1
                        if probes is not None:
                            first = int(o1e[i]) if o1e[i] >= 0 else int(o2e[i])
                            blocks.append((m, first))
                        continue
                    c = int(self.rngs[tr].integers(n_free))
                    if f1[i] and c == 0:
                        e, nd = int(o1e[i]), int(o1n[i])
                    else:
                        e, nd = int(o2e[i]), int(o2n[i])
                    self.occ[tr, e] += 1
                    self.taken[tr, m, self.tlen[tr, m]] = e
                    self.tlen[tr, m] += 1
                    self.position[tr, m] = nd
                    movers[tr].append(m)
                    if probes is not None:
                        grants.append((m, e))
            for tr, m in zip(trs[~heads], ms[~heads]):
                movers[int(tr)].append(int(m))  # draining

        # -- movement: lock-step advance, strict buffer release ---------
        mov = np.zeros((T, M), dtype=bool)
        for tr in range(T):
            if movers[tr]:
                mov[tr, movers[tr]] = True
        pre_k = self.k[0].copy() if probes is not None else None
        self.k += mov
        rel = self.k - L - 1
        vac = mov & (rel >= 0) & (rel < dists[None, :] - 1)
        if vac.any():
            vt, vm = np.nonzero(vac)
            np.subtract.at(
                self.occ, (vt, self.taken[vt, vm, rel[vt, vm]]), 1
            )
        fin = mov & (self.k == L + dists[None, :] - 1)
        if fin.any():
            ft, fm = np.nonzero(fin)
            np.subtract.at(
                self.occ, (ft, self.taken[ft, fm, dists[fm] - 1]), 1
            )
            self.state.completion[ft, fm] = t
            self.state.done[ft, fm] = True

        if probes is not None:
            self._emit_step_events(t, movers[0], pre_k, grants, blocks)
        return mov.any(axis=1)

    def _emit_step_events(self, t, movers0, pre_k, grants, blocks):
        """Reproduce the serial per-step event stream (T = 1 only)."""
        probes, L = self.probes, self.L
        releases: list[tuple[int, int]] = []
        finished: list[int] = []
        for m in movers0:
            km = int(pre_k[m]) + 1
            d = int(self.dists[m])
            rel_i = km - L - 1
            if 0 <= rel_i < d - 1:
                releases.append((m, int(self.taken[0, m, rel_i])))
            if km == L + d - 1:
                releases.append((m, int(self.taken[0, m, d - 1])))
                finished.append(m)
        if grants:
            g = np.asarray(grants, dtype=np.int64)
            probes.on_grant(t, g[:, 0], g[:, 1])
        if blocks:
            b = np.asarray(blocks, dtype=np.int64)
            probes.on_block(t, b[:, 0], b[:, 1])
        if releases:
            r = np.asarray(releases, dtype=np.int64)
            probes.on_release(t, r[:, 0], r[:, 1])
        if finished:
            probes.on_complete(t, np.asarray(finished, dtype=np.int64))
        probes.on_step(t, np.asarray(movers0, dtype=np.int64), self.k[0])
