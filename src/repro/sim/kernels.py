"""Model-parameterized batched kernels: one body per router, two drivers.

Every router in :mod:`repro.sim` advances the same struct-of-arrays
state shape — per-(trial, message) integers stacked as ``(T, M)``
arrays — and differs only in its *buffer semantics*: per-edge
capacity-``B`` slots for interchangeable virtual channels (wormhole),
``(edge, class)`` capacity-1 slots for the Dally-Seitz mechanism,
single-owner edges with ``B``-flit compression for cut-through,
whole-packet hops for store-and-forward, one-flit-per-edge rotating
service for the restricted model, and mask-based online route selection
for adaptive meshes.  This module holds those semantics as five kernel
classes, each exposing one vectorized ``body(t, active)`` over ``(T, M)``
state.

The same body drives both execution paths:

* **batched** — :mod:`repro.sim.batch` builds the kernel at ``T`` trials
  over a :class:`~repro.sim.engine.BatchStepLoop` and steps all trials
  in lockstep (one contend/rank/grant call per step over the combined
  ``(trial, slot)`` key space);
* **serial** — each legacy simulator class builds the kernel at
  ``T = 1`` over the scalar :class:`~repro.sim.engine.StepLoop` (which
  owns the probe lifecycle) through :func:`serial_state`, a ``(1, M)``
  view of the loop's flat arrays.  There is exactly one arbitration
  implementation per model.

Bit-exactness contract
----------------------
Trial ``i`` of a batch is bit-identical to the serial simulator run with
the same parameters and ``seeds[i]``: each trial draws from its **own**
RNG in exactly the serial order (draws happen only in steps/phases where
that trial acts), the combined arbitration key space keeps trials'
slot groups disjoint, and a trial's state is only read or written where
it has active messages.  Telemetry probes are supported at ``T = 1``
only (the serial path), where each kernel reproduces the legacy event
stream call for call, in the same order.
"""

from __future__ import annotations

import numpy as np

from ..network.graph import NetworkError
from .engine import (
    BatchSlotArbiter,
    age_priorities,
    grant_free_slots,
    pad_paths,
)

__all__ = [
    "AdaptiveKernel",
    "CutThroughKernel",
    "RestrictedKernel",
    "StoreForwardKernel",
    "WormholeKernel",
    "serial_state",
    "validate_vc_ids",
]

_FAR = np.iinfo(np.int64).max

# Shared empty index vector for "no events this step" fancy assignments.
_EMPTY_IDX = np.zeros(0, dtype=np.int64)
# Combined candidate-key space for the restricted rotating service:
# admission stamps sort below _HDR_BASE, header keys at _HDR_BASE + site,
# ineligible entries at _FAR.
_HDR_BASE = np.int64(1) << 40


class _SerialState:
    """``(1, M)`` views of a serial :class:`StepLoop`'s state arrays.

    Basic-indexing views, so kernel writes propagate straight into the
    loop's ``completion`` / ``done`` / ``blocked`` arrays.
    """

    __slots__ = ("completion", "done", "blocked")

    def __init__(self, loop) -> None:
        self.completion = loop.completion[None, :]
        self.done = loop.done[None, :]
        self.blocked = loop.blocked[None, :]


def serial_state(loop) -> _SerialState:
    """Adapt a scalar :class:`~repro.sim.engine.StepLoop` for a kernel."""
    return _SerialState(loop)


def validate_vc_ids(
    padded: np.ndarray, lengths: np.ndarray, vc_ids, b_min: int
) -> np.ndarray:
    """Validate and pack per-hop virtual-channel class assignments."""
    vc_padded, vc_lengths = pad_paths([list(v) for v in vc_ids])
    if not np.array_equal(vc_lengths, lengths):
        raise NetworkError("vc_ids must match the path lengths")
    valid = padded >= 0
    if valid.any() and (
        vc_padded[valid].min() < 0 or vc_padded[valid].max() >= b_min
    ):
        raise NetworkError(f"vc ids must lie in [0, {b_min})")
    return vc_padded


def _check_serial_probes(probes, T: int) -> None:
    """Probes are a serial-path (``T = 1``) contract; hard-fail otherwise.

    A bare ``assert`` here would vanish under ``python -O`` and silently
    emit a garbled multi-trial event stream instead.
    """
    if probes is not None and T != 1:
        raise NetworkError(
            "telemetry probes are supported on the serial path only "
            f"(T = 1), got T = {T}"
        )


class _RandomBlock:
    """Buffered per-trial uniform draws, bit-identical to per-call draws.

    ``Generator.random`` is *split-exact*: ``random(a)`` followed by
    ``random(b)`` yields exactly the values of one ``random(a + b)``
    call, because PCG64 consumes one fixed stream increment per double.
    Buffering a block per trial and serving later requests from it
    therefore preserves every served value bit for bit while replacing
    the per-trial Python draw loop with one vectorized gather per
    arbitration round.  Refills shift the unconsumed tail down and top
    the block up (split-exactness again), so they stay O(T) Python work
    but amortize over ~``block / M`` rounds.

    Only used at ``T > 1``: batch RNGs are created per batch run and
    discarded, so the over-drawn tail is unobservable.  The serial path
    keeps its one-draw-per-round call — serial simulator instances can
    be run twice on one continuing stream.
    """

    __slots__ = ("rngs", "T", "block", "buf", "cur")

    def __init__(self, rngs: list, block: int) -> None:
        self.rngs = rngs
        self.T = len(rngs)
        self.block = int(block)
        self.buf = np.empty((self.T, self.block), dtype=np.float64)
        self.cur = np.full(self.T, self.block, dtype=np.int64)

    def draw(self, rows: np.ndarray, counts: np.ndarray) -> np.ndarray:
        """Serve ``counts[tr]`` values per trial along sorted ``rows``."""
        cur = self.cur
        lack = np.flatnonzero(cur + counts > self.block)
        for tr in lack:
            rem = self.block - cur[tr]
            if rem:
                self.buf[tr, :rem] = self.buf[tr, cur[tr] :]
            self.buf[tr, rem:] = self.rngs[tr].random(self.block - rem)
            cur[tr] = 0
        starts = np.zeros(self.T + 1, dtype=np.int64)
        np.cumsum(counts, out=starts[1:])
        within = np.arange(rows.size) - starts[rows]
        vals = self.buf[rows, cur[rows] + within]
        cur += counts
        return vals


class _Kernel:
    """Common driver plumbing: a ``(T,) -> bool`` adapter for ``T = 1``."""

    probes = None
    _rand_block: "_RandomBlock | None" = None

    def serial_body(self, t: int, active: np.ndarray) -> bool:
        return bool(self.body(t, active[None, :])[0])

    def _random_prio(self, rows: np.ndarray) -> np.ndarray:
        """One uniform priority per contender, in serial draw order.

        ``rows`` is the trial id per contender, sorted (``np.nonzero``
        order), so each trial's contenders are contiguous and in
        message-index order — the serial draw order.  Trials without
        contenders draw nothing, exactly like their serial runs.
        """
        if self.T == 1:
            return self.rngs[0].random(rows.size)
        if self._rand_block is None:
            self._rand_block = _RandomBlock(
                self.rngs, max(4 * self.M, 64)
            )
        counts = np.bincount(rows, minlength=self.T)
        return self._rand_block.draw(rows, counts)


# ----------------------------------------------------------------------
# Wormhole: per-edge capacity-B slots (or (edge, class) capacity-1).
# ----------------------------------------------------------------------


class WormholeKernel(_Kernel):
    """Lockstep worms over capacity-``B`` virtual-channel slots.

    State is one integer per (trial, message): the completed-move count
    ``k``.  Headers contend for the slot on path edge ``k`` each step;
    granted worms advance, the tail's vacated slot frees after move
    ``k - L - 1``, and the final edge's slot frees at completion.
    """

    def __init__(
        self,
        state,
        *,
        num_edges: int,
        padded: np.ndarray,
        lengths: np.ndarray,
        message_length: np.ndarray,
        release: np.ndarray,
        capacities: np.ndarray,
        priority: str,
        rngs: list,
        vc_padded: np.ndarray | None = None,
        probes=None,
    ) -> None:
        T, M = len(rngs), int(lengths.size)
        _check_serial_probes(probes, T)
        self.state = state
        self.T, self.M = T, M
        self.padded = padded
        self.D = lengths
        self.L = message_length
        self.B = capacities
        self.priority = priority
        self.rngs = rngs
        self.probes = probes
        self.vc_padded = vc_padded
        self._moved = np.zeros(T, dtype=bool)
        # Slot model per trial: without VC classes a slot is an edge with
        # capacity B[i]; with classes, an (edge, class) pair, capacity 1.
        if vc_padded is None:
            self.arbiter = BatchSlotArbiter(
                np.full(T, num_edges, dtype=np.int64), capacities
            )
        else:
            self.arbiter = BatchSlotArbiter(
                num_edges * capacities, np.ones(T, dtype=np.int64)
            )
        self.total_moves = message_length + lengths - 1
        self.k = np.zeros((T, M), dtype=np.int64)
        self.age_priority = (
            age_priorities(release) if priority == "age" else None
        )
        self.rank_priority = (
            np.stack([rng.permutation(M) for rng in rngs])
            if priority == "rank"
            else None
        )

    def _slots(
        self, trials: np.ndarray, msgs: np.ndarray, hop: np.ndarray
    ) -> np.ndarray:
        """Per-trial slot ids for the given (trial, message, hop) picks."""
        edges = self.padded[msgs, hop]
        if self.vc_padded is None:
            return edges
        return edges * self.B[trials] + self.vc_padded[msgs, hop]

    def body(self, t: int, active: np.ndarray) -> np.ndarray:
        k, D, L, probes = self.k, self.D, self.L, self.probes
        rows, cols = np.nonzero(active)
        k_ac = k[rows, cols]
        needs_edge = k_ac < D[cols]
        movers_local = np.zeros(rows.size, dtype=bool)
        movers_local[~needs_edge] = True  # draining worms always move

        if needs_edge.any():
            crows = rows[needs_edge]
            ccols = cols[needs_edge]
            hop = k_ac[needs_edge]
            slots = self._slots(crows, ccols, hop)
            if self.priority == "random":
                prio = self._random_prio(crows)
            elif self.priority == "age":
                prio = self.age_priority[ccols]
            elif self.priority == "rank":
                prio = self.rank_priority[crows, ccols]
            else:
                prio = ccols
            granted = self.arbiter.contend(crows, slots, prio)
            movers_local[needs_edge] = granted
            self.arbiter.acquire(crows[granted], slots[granted])
            self.state.blocked[crows[~granted], ccols[~granted]] += 1
            if probes is not None:
                raw = self.padded[ccols, hop]
                probes.on_grant(t, ccols[granted], raw[granted])
                if (~granted).any():
                    probes.on_block(t, ccols[~granted], raw[~granted])

        mrows, mcols = rows[movers_local], cols[movers_local]
        k[mrows, mcols] += 1
        new_k = k[mrows, mcols]
        # Release the buffer the tail just vacated; the final edge's
        # slot is released at completion instead (same rule as serial).
        rel_idx = new_k - L[mcols] - 1
        sel = (rel_idx >= 0) & (rel_idx < D[mcols] - 1)
        if sel.any():
            self.arbiter.vacate(
                mrows[sel], self._slots(mrows[sel], mcols[sel], rel_idx[sel])
            )
            if probes is not None:
                probes.on_release(
                    t, mcols[sel], self.padded[mcols[sel], rel_idx[sel]]
                )
        finished = new_k == self.total_moves[mcols]
        if finished.any():
            frows, fcols = mrows[finished], mcols[finished]
            self.state.completion[frows, fcols] = t
            self.state.done[frows, fcols] = True
            self.arbiter.vacate(
                frows, self._slots(frows, fcols, D[fcols] - 1)
            )
            if probes is not None:
                probes.on_release(t, fcols, self.padded[fcols, D[fcols] - 1])
                probes.on_complete(t, fcols)
        if probes is not None:
            probes.on_step(t, mcols, k[0])
        moved = self._moved
        moved[:] = False
        moved[mrows] = True
        return moved


# ----------------------------------------------------------------------
# Cut-through: single-owner edges with B-flit compression.
# ----------------------------------------------------------------------


class CutThroughKernel(_Kernel):
    """Ownership-based cut-through advance over ``(maxD, T, M)`` counts.

    ``crossed[r, t, m]`` is the number of trial ``t``'s message ``m``
    flits that crossed path edge ``i = maxD - 1 - r`` (tail-first); the
    buffer at the head of edge ``i`` holds ``crossed[i] - crossed[i+1]``
    flits (capped at ``B``).  Headers claim unowned edges via one
    capacity-1 grant per step; owned edges each forward one flit,
    serviced head-first (descending path index) so a slot vacated this
    step refills this step.  The scan axis leads the layout so every
    per-step ufunc touches ``maxD`` contiguous ``T * M`` slabs instead
    of ``T * M`` tiny ``maxD`` segments.
    """

    def __init__(
        self,
        state,
        *,
        num_edges: int,
        padded: np.ndarray,
        lengths: np.ndarray,
        message_length: np.ndarray,
        buffer_flits: np.ndarray,
        priority: str,
        rngs: list,
        probes=None,
    ) -> None:
        T, M = len(rngs), int(lengths.size)
        _check_serial_probes(probes, T)
        self.state = state
        self.T, self.M = T, M
        self.num_edges = int(num_edges)
        self.padded = padded
        self.D = lengths
        self.L = message_length
        self.B = buffer_flits
        self.priority = priority
        self.rngs = rngs
        self.probes = probes
        self.max_D = int(padded.shape[1])
        maxD = self.max_D
        # The movement phase runs in TAIL-FIRST, SCAN-AXIS-FIRST layout:
        # axis 0 position r is path index i = maxD-1-r, so the
        # head-first suffix recurrence becomes a prefix scan along axis
        # 0 and every elementwise op streams maxD contiguous (T, M)
        # slabs.  Counts fit comfortably in int32; narrow dtypes matter
        # at batch width, where the phase is memory-bound.
        self.crossed = np.zeros((maxD, T, M), dtype=np.int32)
        self.owner = np.full((T, num_edges), -1, dtype=np.int64)
        self.msg_ids = np.arange(M)
        self.last_idx = np.maximum(lengths - 1, 0)
        # Per-trial / per-message constants are pre-broadcast to full
        # (T, M) (or (maxD, T, M)) slabs: a stride-0 axis in the middle
        # of an operand defeats numpy's loop-merging and reintroduces
        # the tiny-segment overhead the layout exists to avoid.
        self.L32 = np.ascontiguousarray(
            np.broadcast_to(message_length.astype(np.int32)[None, :], (T, M))
        )
        self.B32 = np.ascontiguousarray(
            np.broadcast_to(buffer_flits.astype(np.int32)[:, None], (T, M))
        )
        # Static per-(message, path-index) tables plus preallocated
        # (max_D, T, M) scratch so the body allocates nothing
        # proportional to the state per step.  Ownership and the header
        # index are maintained incrementally (updated at the sparse
        # claim/release/advance events) instead of being re-derived
        # from `owner`/`crossed` every step.
        idx = np.arange(maxD)
        self.rev_last = maxD - lengths  # r of each message's last edge
        self.is_last_rev = np.ascontiguousarray(
            np.broadcast_to(
                (idx[:, None, None] == self.rev_last[None, None, :]),
                (maxD, T, M),
            )
        )
        self.padded_rev = np.ascontiguousarray(padded[:, ::-1])
        shape = (maxD, T, M)
        self._owned = np.zeros(shape, dtype=bool)
        self._trows = np.arange(T)[:, None]
        self._h = np.zeros((T, M), dtype=np.int64)
        self._hsafe = np.empty((T, M), dtype=np.int64)
        self._hrev = np.empty((T, M), dtype=np.int64)
        self._hmask = np.empty((T, M), dtype=bool)
        self._hflat = np.empty((T, M), dtype=np.int64)
        self._mrow = np.arange(T)[:, None] * M + self.msg_ids[None, :]
        self._c = np.empty(shape, dtype=bool)
        self._open = np.empty(shape, dtype=bool)
        self._s = np.empty(shape, dtype=bool)
        self._newly = np.empty(shape, dtype=bool)
        self._prog = np.empty((T, M), dtype=bool)
        self._inbuf = np.zeros(shape, dtype=np.int32)
        # Parity-encoded prefix scan (see body): v must hold 2*maxD + 1.
        vdt = np.int16 if 2 * maxD + 1 < np.iinfo(np.int16).max else np.int64
        self._v = np.empty(shape, dtype=vdt)
        self._htake = np.empty((T, M), dtype=vdt)
        self._idx2 = (2 * idx).astype(vdt)[:, None, None]

    def body(self, t: int, active: np.ndarray) -> np.ndarray:
        crossed, owner, owned = self.crossed, self.owner, self._owned
        padded, D, probes = self.padded, self.D, self.probes

        # -- header claims: contend for unowned edges, capacity 1 -------
        # `h` (next uncrossed path index) is maintained incrementally:
        # counts are non-increasing along the path, so an advance can
        # turn a zero count positive only at the header's own edge.
        hi = self._active_hi(active)
        h = self._h
        h_safe = np.minimum(
            h[:hi], self.last_idx[None, :], out=self._hsafe[:hi]
        )
        np.subtract(self.max_D - 1, h_safe, out=self._hrev[:hi])
        wants = np.less(h[:hi], D[None, :], out=self._hmask[:hi])
        wants &= active[:hi]
        want_edge = np.where(
            wants, padded[self.msg_ids[None, :], h_safe], 0
        )
        claim = wants & (owner[self._trows[:hi], want_edge] < 0)
        if claim.any():
            c_t, c_m = np.nonzero(claim)
            c_e = want_edge[c_t, c_m]
            if self.priority == "random":
                prio = self._random_prio(c_t)
            else:  # "index": claimer-list position, ascending m per trial
                prio = c_m.astype(np.float64)
            granted = grant_free_slots(
                c_t * self.num_edges + c_e, prio, 1
            )
            g_t, g_m = c_t[granted], c_m[granted]
            owner[g_t, c_e[granted]] = g_m
            owned[self._hrev[g_t, g_m], g_t, g_m] = True
            if probes is not None and granted.any():
                # Serial appends grants in ascending-priority order.
                order = np.argsort(prio[granted], kind="stable")
                probes.on_grant(
                    t, g_m[order], c_e[granted][order]
                )

        # -- flit movement: one flit per owned edge, head-first ---------
        # The descending-index service loop is a pure suffix recurrence:
        # with c = owned & has_flit (a movable flit, start-of-step
        # counts), open = last-edge or start-of-step buffer slack, and
        # full = buffer exactly at B (open and full are disjoint and
        # exhaustive because a buffer never exceeds B),
        #
        #     adv[i] = c[i] & (open[i] | (full[i] & adv[i+1]))
        #
        # so adv[i] = s[j(i)] with s = c & open, g = c & full, and j(i)
        # the first index >= i where g does not propagate.  In the
        # tail-first layout (r = maxD-1-i) that lookup is one prefix
        # running maximum along axis 0: each non-g site scores 2r + s
        # and each g site 0, so the running max at r is dominated by
        # j's score and its low bit is exactly s[j(i)] = adv[i] (sites
        # with no movable flit score even, so no c-gate is needed on
        # the result).  The serial loop's mid-iteration ownership
        # releases are provably no-ops for adv: a release of edge i-1
        # requires snapshot[i-1] == L, which leaves no movable flit
        # there.  Work is sliced to the rows that still have active
        # trials (trials never reactivate into movement; `active`
        # gates everything row-wise).
        snap = crossed[:, :hi]  # start-of-step counts (updated below)
        c = self._c[:, :hi]
        np.less(snap[:-1], snap[1:], out=c[:-1])
        np.less(snap[-1], self.L32[:hi], out=c[-1])
        np.logical_and(c, owned[:, :hi], out=c)
        np.logical_and(c, active[None, :hi], out=c)
        inbuf = self._inbuf[:, :hi]
        np.subtract(snap[1:], snap[:-1], out=inbuf[1:])
        open_ = self._open[:, :hi]
        np.less(inbuf, self.B32[None, :hi], out=open_)
        np.logical_or(open_, self.is_last_rev[:, :hi], out=open_)
        s = self._s[:, :hi]
        np.logical_and(c, open_, out=s)
        g = open_  # reused: g = c & ~open
        np.logical_not(open_, out=g)
        np.logical_and(g, c, out=g)
        v = self._v[:, :hi]
        np.add(self._idx2, s, out=v)
        notg = c  # reused: c is folded into s and g already
        np.logical_not(g, out=notg)
        np.multiply(v, notg, out=v)
        # Running max along axis 0.  ufunc.accumulate scans one lane at
        # a time, so at batch width the explicit slab-by-slab maximum
        # (identical result: integer max, same order) is far faster;
        # serial keeps the single fused call.
        if hi * self.M >= 512:
            for r in range(1, self.max_D):
                np.maximum(v[r], v[r - 1], out=v[r])
        else:
            np.maximum.accumulate(v, axis=0, out=v)
        np.bitwise_and(v, 1, out=v)  # v is now adv as 0/1 ints
        np.add(snap, v, out=snap)
        progressed = self._prog[:hi]
        np.any(v, axis=0, out=progressed)

        # Header advance for next step (uses this step's pre-move h).
        # Flat C-order index of (r, t, m) in the full (maxD, T, M)
        # scratch; rows beyond hi are never referenced.
        hflat = np.multiply(
            self._hrev[:hi], self.T * self.M, out=self._hflat[:hi]
        )
        hflat += self._mrow[:hi]
        moved_h = np.take(self._v.reshape(-1), hflat, out=self._htake[:hi])
        hmask = np.less(h[:hi], D[None, :], out=self._hmask[:hi])
        np.logical_and(hmask, moved_h, out=hmask)
        h[:hi] += hmask

        # Release ownership once the last flit moves on: the previous
        # edge's buffer is drained for good, and the final edge
        # delivers instantly.  At most one edge per message newly
        # reaches L per step (the unique snapshot L-to-(L-1) boundary).
        rel_events: list[tuple[int, int, int]] = []  # (phase, m, e), T=1
        newly = self._newly[:, :hi]
        np.equal(snap, self.L32[:hi], out=newly)
        np.logical_and(newly, v, out=newly)
        delivered_t = delivered_m = _EMPTY_IDX
        if newly.any():
            padded_rev = self.padded_rev
            nr, nt, nm = np.nonzero(newly)
            inner = nr < self.max_D - 1  # path index i = maxD-1-r > 0
            if inner.any():
                pt, pm = nt[inner], nm[inner]
                pr = nr[inner] + 1  # upstream edge i-1 sits at r+1
                prev_e = padded_rev[pm, pr]
                ok = owner[pt, prev_e] == pm
                owner[pt[ok], prev_e[ok]] = -1
                # `owned` stays in sync unconditionally: where the ok
                # guard fails, the message's claim there is already
                # cleared, so re-clearing is a no-op.
                owned[pr, pt, pm] = False
                if probes is not None:
                    rel_events.extend(
                        (0, int(m), int(e))
                        for m, e in zip(pm[ok], prev_e[ok])
                    )
            last = nr == self.rev_last[nm]
            if last.any():
                lt, lm = nt[last], nm[last]
                lr = nr[last]
                le = padded_rev[lm, lr]
                owner[lt, le] = -1
                owned[lr, lt, lm] = False
                # Reaching L on the final edge IS delivery: the old
                # active & (last count == L) scan finds exactly these.
                delivered_t, delivered_m = lt, lm
                if probes is not None:
                    rel_events.extend(
                        (1, int(m), int(e)) for m, e in zip(lm, le)
                    )

        self.state.completion[delivered_t, delivered_m] = t
        self.state.done[delivered_t, delivered_m] = True
        self.state.blocked[:hi] += active[:hi] & ~progressed

        if probes is not None:
            self._emit_step_events(
                t, active, progressed, rel_events, delivered_m
            )
        ret = np.zeros(self.T, dtype=bool)
        np.any(progressed, axis=1, out=ret[:hi])
        return ret

    def _active_hi(self, active: np.ndarray) -> int:
        """1 + the highest trial row with any active message."""
        rows = np.flatnonzero(active.any(axis=1))
        return int(rows[-1]) + 1 if rows.size else 0

    def _emit_step_events(self, t, active, progressed, rel_events, finished):
        """Reproduce the serial per-step event stream (T = 1 only)."""
        probes, crossed, padded, D = (
            self.probes, self.crossed[:, 0].T, self.padded, self.D,
        )
        stalled = np.flatnonzero(active[0] & ~progressed[0])
        if stalled.size:
            h = (crossed[stalled] > 0).sum(axis=1)
            wanted = np.where(
                h < D[stalled],
                padded[stalled, np.minimum(h, self.last_idx[stalled])],
                -1,
            )
            probes.on_block(t, stalled, wanted)
        if rel_events:
            # Serial order: ascending message, prev-edge release before
            # the final-edge release (at most one of each per message).
            rel_events.sort(key=lambda ev: (ev[1], ev[0]))
            r = np.asarray(rel_events, dtype=np.int64)
            probes.on_release(t, r[:, 1], r[:, 2])
        if finished.size:
            probes.on_complete(t, finished)
        movers = np.flatnonzero(progressed[0])
        probes.on_step(t, movers, (crossed > 0).sum(axis=1))


# ----------------------------------------------------------------------
# Store-and-forward: whole-packet hops, one message per edge per step.
# ----------------------------------------------------------------------


class StoreForwardKernel(_Kernel):
    """Greedy whole-packet advancement: one hop per granted message.

    The arbiter holds nothing across steps (an edge is owned only within
    the message step it transmits), so every round is a capacity-1 grant
    against empty occupancy.  Times scale by the per-trial message-step
    length ``hop[i] = ceil(L / B[i])`` flit steps.
    """

    def __init__(
        self,
        state,
        *,
        num_edges: int,
        padded: np.ndarray,
        lengths: np.ndarray,
        release: np.ndarray,
        hop: np.ndarray,
        priority: str,
        rngs: list,
        probes=None,
    ) -> None:
        T, M = len(rngs), int(lengths.size)
        _check_serial_probes(probes, T)
        self.state = state
        self.T, self.M = T, M
        self.num_edges = int(num_edges)
        self.padded = padded
        self.D = lengths
        # Release times in *message steps*, per trial: (T, M) or (M,).
        self.release = np.broadcast_to(
            np.asarray(release, dtype=np.int64), (T, M)
        )
        self.hop = hop
        self.priority = priority
        self.rngs = rngs
        self.probes = probes
        self.hops_done = np.zeros((T, M), dtype=np.int64)
        self.max_queue = np.zeros(T, dtype=np.int64)

    def body(self, t: int, active: np.ndarray) -> np.ndarray:
        D, probes = self.D, self.probes
        rows, cols = np.nonzero(active)
        hd = self.hops_done[rows, cols]
        edges = self.padded[cols, hd]
        if self.priority == "random":
            prio = self._random_prio(rows)
        elif self.priority == "age":
            prio = self.release[rows, cols].astype(np.float64)
        else:  # farthest to go first
            prio = -(D[cols] - hd).astype(np.float64)
        keys = rows * self.num_edges + edges
        winners = grant_free_slots(keys, prio, 1)  # one message per edge
        # Queue-depth bookkeeping: contenders per edge this step.
        counts = np.bincount(keys)
        np.maximum.at(self.max_queue, rows, counts[keys])

        mrows, mcols = rows[winners], cols[winners]
        self.hops_done[mrows, mcols] += 1
        self.state.blocked[rows[~winners], cols[~winners]] += self.hop[
            rows[~winners]
        ]
        fin = self.hops_done[mrows, mcols] == D[mcols]
        if fin.any():
            frows, fcols = mrows[fin], mcols[fin]
            self.state.completion[frows, fcols] = t * self.hop[frows]
            self.state.done[frows, fcols] = True

        if probes is not None:
            probes.on_grant(t, mcols, edges[winners])
            if (~winners).any():
                probes.on_block(t, cols[~winners], edges[~winners])
            # A store-and-forward edge is held only within the step it
            # transmits, so the grant's slot frees immediately.
            probes.on_release(t, mcols, edges[winners])
            if fin.any():
                probes.on_complete(t, mcols[fin])
            probes.on_step(t, mcols, self.hops_done[0])
        # A contended edge always forwards someone.
        return np.bincount(rows, minlength=self.T) > 0


# ----------------------------------------------------------------------
# Restricted: one flit per edge per step over B buffer slots.
# ----------------------------------------------------------------------


class RestrictedKernel(_Kernel):
    """Rotating-service advance for the buffering-only model.

    Each edge holds ``B`` one-flit slots (one per resident message) but
    forwards a single flit per step, chosen round-robin among its
    eligible residents (in admission order) and admissible new headers
    (in message order).  Edges are serviced to a fixpoint each step so a
    slot vacated this step can refill this step; header admission stays
    conservative (start-of-step resident counts), as in the full model.

    Trials are swept together: each pass visits the sorted union of all
    trials' touched edges and fires at most one flit per (trial, edge);
    a trial's own sub-sequence of fires is exactly its serial fixpoint
    (extra visits to edges it has no candidates on are no-ops).
    """

    def __init__(
        self,
        state,
        *,
        num_edges: int,
        padded: np.ndarray,
        lengths: np.ndarray,
        message_length: np.ndarray,
        capacities: np.ndarray,
        rngs: list,
        probes=None,
    ) -> None:
        T, M = len(rngs), int(lengths.size)
        if probes is not None:
            raise NetworkError("restricted model has no telemetry hooks")
        self.state = state
        self.T, self.M = T, M
        self.num_edges = int(num_edges)
        self.padded = padded
        self.D = lengths
        self.L = message_length
        self.B = capacities
        self.rngs = rngs
        self.max_D = int(padded.shape[1])
        # Flattened (message, path-index) sites, grouped per edge and
        # sorted by message id — edge-simplicity makes each (edge,
        # message) pair unique, so one static list serves both resident
        # and header candidate enumeration.
        site_m, site_i = np.nonzero(padded >= 0)
        site_e = padded[site_m, site_i]
        self.site_m, self.site_i, self.site_e = site_m, site_i, site_e
        self._site_fi = site_m * self.max_D + site_i
        self._site_L = message_length[site_m]
        order = np.lexsort((site_m, site_e))
        se, sm, si = site_e[order], site_m[order], site_i[order]
        self._all_edges = np.unique(se)
        # Static per-edge tables: flat (message, index) gather indices
        # for the site, its downstream neighbour, and its upstream
        # neighbour, plus the header ordering keys.  Residents sort by
        # admission stamp (< _HDR_BASE), eligible headers after them in
        # site (= message) order, so one stable argsort of the combined
        # key reproduces the serial candidate order.
        starts = np.searchsorted(se, np.arange(num_edges + 1))
        self._edge_tabs: dict[int, tuple] = {}
        for e in self._all_edges:
            lo, hi = starts[e], starts[e + 1]
            sm_e, si_e = sm[lo:hi], si[lo:hi]
            is_last = si_e == lengths[sm_e] - 1
            si_next = np.where(is_last, si_e, si_e + 1)
            self._edge_tabs[int(e)] = (
                sm_e,
                si_e,
                sm_e * self.max_D + si_e,
                sm_e * self.max_D + si_next,
                sm_e * self.max_D + np.maximum(si_e - 1, 0),
                si_e == 0,
                message_length[sm_e],
                is_last,
                _HDR_BASE + np.arange(sm_e.size),
            )
        # Rotating service offsets: the only RNG use of this model.
        self.rr_offset = np.stack(
            [rng.integers(0, 1 << 30, size=num_edges) for rng in rngs]
        )
        self.crossed = np.zeros((T, M, self.max_D), dtype=np.int64)
        self.resident = np.zeros((T, M, self.max_D), dtype=bool)
        # Admission stamps order each edge's residents like the serial
        # dict's insertion order (a global per-trial counter suffices:
        # stamps on one edge are mutually ordered by admission time).
        self.stamp = np.full((T, M, self.max_D), _FAR, dtype=np.int64)
        self.counter = np.zeros(T, dtype=np.int64)
        self.head_edge = np.zeros((T, M), dtype=np.int64)
        self.res_count = np.zeros((T, num_edges), dtype=np.int64)
        # Preallocated per-step scratch.
        self._snap = np.empty((T, M, self.max_D), dtype=np.int64)
        self._progressed = np.zeros((T, M), dtype=bool)
        self._serviced = np.zeros((T, num_edges), dtype=bool)
        self._emask = np.zeros(num_edges, dtype=bool)
        self._dirty = np.zeros(num_edges, dtype=bool)
        self._tarange = np.arange(T)

    def body(self, t: int, active: np.ndarray) -> np.ndarray:
        crossed, padded, D, L = self.crossed, self.padded, self.D, self.L
        T, B = self.T, self.B
        snapshot = self._snap
        np.copyto(snapshot, crossed)
        snap2 = snapshot.reshape(T, -1)
        crossed2 = crossed.reshape(T, -1)
        res2 = self.resident.reshape(T, -1)
        stamp2 = self.stamp.reshape(T, -1)
        progressed = self._progressed
        progressed[:] = False

        # Union of edges with any potential work in any trial,
        # ascending (the serial visit order).
        alive = (
            active[:, self.site_m] & (snap2[:, self._site_fi] < self._site_L)
        ).any(axis=0)
        emask = self._emask
        emask[:] = False
        emask[self.site_e[alive]] = True
        oe_sel = emask[self._all_edges]
        visit = self._all_edges[oe_sel]

        res0 = self.res_count.copy()  # start-of-step counts gate headers
        serviced = self._serviced
        serviced[:] = False
        done = self.state.done
        dirty = self._dirty
        tarange, rr = self._tarange, self.rr_offset
        # Gauss-Seidel fixpoint: repeat passes until a pass fires
        # nothing.  A fire can only *open* eligibility upstream of
        # itself (the buffer below the fired site drains, and a
        # resident release frees that edge's admission slot), so later
        # passes need only revisit the fired sites' upstream edges —
        # every skipped visit is provably a no-op, keeping the fire
        # sequence exactly the serial full-pass one.
        while visit.size:
            dirty[:] = False
            fired = False
            for e in visit:
                e = int(e)
                notserv = ~serviced[:, e]
                if not notserv.any():
                    continue
                (
                    sm, si, fi, fi_nx, fi_up, si0, L_sm, is_last, hdr_key,
                ) = self._edge_tabs[e]
                # Resident candidates: a waiting flit (start-of-step
                # availability) and a free own-message slot downstream
                # (live counts — lock-step pipelining).
                act = active[:, sm]
                up = np.where(si0, L_sm, snap2[:, fi_up])
                in_buf = crossed2[:, fi] - crossed2[:, fi_nx]
                elig_r = (
                    res2[:, fi]
                    & act
                    & ~done[:, sm]
                    & (snap2[:, fi] < up)
                    & (is_last | (in_buf < 1))
                    & notserv[:, None]
                )
                # Header candidates: an admissible slot (start-of-step
                # AND live counts below B) and an injectable flit.
                can_admit = (
                    (res0[:, e] < B) & (self.res_count[:, e] < B) & notserv
                )
                elig_h = (
                    act
                    & (self.head_edge[:, sm] == si)
                    & (up >= 1)
                    & can_admit[:, None]
                )
                key = np.where(
                    elig_r, stamp2[:, fi], np.where(elig_h, hdr_key, _FAR)
                )
                n = (key < _FAR).sum(axis=1)
                has = n > 0
                if not has.any():
                    continue
                # Candidate order: residents by admission stamp, then
                # headers by message id; rotate by (offset + t).
                pick = (rr[:, e] + t) % np.where(has, n, 1)
                order_k = np.argsort(key, axis=1, kind="stable")
                j = order_k[tarange, pick]
                tt = np.flatnonzero(has)
                jj = j[tt]
                msel, isel = sm[jj], si[jj]
                is_h = key[tt, jj] >= _HDR_BASE
                if is_h.any():
                    at, am, ai = tt[is_h], msel[is_h], isel[is_h]
                    self.resident[at, am, ai] = True
                    self.stamp[at, am, ai] = self.counter[at]
                    self.counter[at] += 1
                    res0[at, e] += 1
                    self.res_count[at, e] += 1
                    self.head_edge[at, am] += 1
                crossed[tt, msel, isel] += 1
                serviced[tt, e] = True
                progressed[tt, msel] = True
                fired = True
                inner_f = isel > 0
                if inner_f.any():
                    dirty[padded[msel[inner_f], isel[inner_f] - 1]] = True
                doneL = crossed[tt, msel, isel] == L[msel]
                if not doneL.any():
                    continue
                dt, dm, di = tt[doneL], msel[doneL], isel[doneL]
                # Last flit left the upstream buffer for good.
                inner = di > 0
                if inner.any():
                    pt, pm = dt[inner], dm[inner]
                    pi = di[inner] - 1
                    was = self.resident[pt, pm, pi]
                    self.resident[pt[was], pm[was], pi[was]] = False
                    self.res_count[
                        pt[was], padded[pm[was], pi[was]]
                    ] -= 1
                last = di == D[dm] - 1
                if last.any():
                    ct, cm, ci = dt[last], dm[last], di[last]
                    was = self.resident[ct, cm, ci]
                    self.resident[ct, cm, ci] = False  # delivered instantly
                    self.res_count[ct[was], e] -= 1
                    self.state.completion[ct, cm] = t
                    done[ct, cm] = True
            if not fired:
                break
            visit = self._all_edges[dirty[self._all_edges] & oe_sel]

        self.state.blocked += active & ~progressed
        return progressed.any(axis=1)


# ----------------------------------------------------------------------
# Adaptive: online minimal routing with mask-based misroute selection.
# ----------------------------------------------------------------------

_DIRS = ((1, 0), (-1, 0), (0, 1), (0, -1))  # +x, -x, +y, -y


class AdaptiveKernel(_Kernel):
    """Round-based adaptive mesh routing over per-trial head orders.

    Each step, every trial shuffles its active messages with its own
    RNG (the serial head-service order); round ``r`` then processes each
    trial's ``r``-th message across all trials at once — the geometric
    option masks (productive directions allowed by the turn-model
    policy) are computed vectorized from precomputed coordinate and
    direction-edge tables, while the per-head free-channel draw consumes
    each trial's RNG exactly as its serial run would (one
    ``integers(n_free)`` per head with a non-empty free set).
    """

    def __init__(
        self,
        state,
        *,
        cube,
        demands,
        message_length: int,
        dists: np.ndarray,
        capacities: np.ndarray,
        policy: str,
        rngs: list,
        probes=None,
    ) -> None:
        T, M = len(rngs), len(demands)
        _check_serial_probes(probes, T)
        self.state = state
        self.T, self.M = T, M
        self.L = int(message_length)
        self.dists = dists
        self.B = capacities
        self.policy = policy
        self.rngs = rngs
        self.probes = probes
        net = cube.network
        V = cube.num_nodes
        kk = cube.k
        self.cx = np.empty(V, dtype=np.int64)
        self.cy = np.empty(V, dtype=np.int64)
        self.dir_edge = np.full((V, 4), -1, dtype=np.int64)
        self.dir_node = np.full((V, 4), -1, dtype=np.int64)
        for v in range(V):
            x, y = cube.coords(v)
            self.cx[v], self.cy[v] = x, y
            for d, (dx, dy) in enumerate(_DIRS):
                x2, y2 = x + dx, y + dy
                if 0 <= x2 < kk and 0 <= y2 < kk:
                    u = cube.node((x2, y2))
                    e = net.edge_between(v, u)
                    if e is None:
                        raise NetworkError(
                            f"mesh is missing the edge between nodes "
                            f"{v} and {u}"
                        )
                    self.dir_edge[v, d] = e
                    self.dir_node[v, d] = u
        src = np.asarray([s for s, _ in demands], dtype=np.int64)
        self.dest = np.asarray([d for _, d in demands], dtype=np.int64)
        self.position = np.tile(src, (T, 1))
        self.k = np.zeros((T, M), dtype=np.int64)
        self.occ = np.zeros((T, net.num_edges), dtype=np.int64)
        max_d = int(dists.max()) if M else 0
        self.taken = np.zeros((T, M, max(max_d, 1)), dtype=np.int64)
        self.tlen = np.zeros((T, M), dtype=np.int64)
        # Preallocated per-step scratch: the padded shuffle matrices and
        # the movement mask (no per-step (T, M) allocations).
        self._ids_mat = np.zeros((T, M), dtype=np.int64)
        self._draw_mat = np.empty((T, M), dtype=np.float64)
        self._mov = np.zeros((T, M), dtype=bool)

    def taken_paths(self, trial: int) -> list[list[int]]:
        """The edge ids trial ``trial``'s messages actually traversed."""
        return [
            self.taken[trial, m, : self.tlen[trial, m]].tolist()
            for m in range(self.M)
        ]

    def _options(self, trs: np.ndarray, ms: np.ndarray):
        """Vectorized policy-allowed productive moves, in serial order.

        Returns ``(o1e, o1n, o2e, o2n)`` — the first and second option's
        edge and node ids (``-1`` = absent).  The serial option list
        appends the x-move before the y-move, so option 1 is the x-move
        whenever the policy allows one.
        """
        pos = self.position[trs, ms]
        dst = self.dest[ms]
        dx = self.cx[dst] - self.cx[pos]
        dy = self.cy[dst] - self.cy[pos]
        xi = np.where(dx > 0, 0, 1)
        yi = np.where(dy > 0, 2, 3)
        xe = np.where(dx != 0, self.dir_edge[pos, xi], -1)
        xn = np.where(dx != 0, self.dir_node[pos, xi], -1)
        ye = np.where(dy != 0, self.dir_edge[pos, yi], -1)
        yn = np.where(dy != 0, self.dir_node[pos, yi], -1)
        if self.policy == "dimension":
            o1e = np.where(dx != 0, xe, ye)
            o1n = np.where(dx != 0, xn, yn)
            o2e = np.full_like(o1e, -1)
            o2n = o2e
        elif self.policy == "west-first":
            # Destination west: go fully west, deterministically.
            west = dx < 0
            o1e, o1n = xe, xn
            o2e = np.where(west, -1, ye)
            o2n = np.where(west, -1, yn)
        else:  # fully-adaptive
            o1e, o1n, o2e, o2n = xe, xn, ye, yn
        return o1e, o1n, o2e, o2n

    def body(self, t: int, active: np.ndarray) -> np.ndarray:
        T, M, L = self.T, self.M, self.L
        dists, probes = self.dists, self.probes
        occ, B, k = self.occ, self.B, self.k
        # Per-trial head-service order: each trial with active messages
        # shuffles them with its own RNG (the serial draw, one
        # ``random(n)`` per trial), but the argsort runs batched over a
        # +inf-padded (T, max_len) matrix and the active-id scatter is
        # one vectorized write.
        counts = active.sum(axis=1)
        max_len = int(counts.max())
        rows, cols = np.nonzero(active)
        starts = np.zeros(T + 1, dtype=np.int64)
        np.cumsum(counts, out=starts[1:])
        ids_mat = self._ids_mat
        ids_mat[rows, np.arange(rows.size) - starts[rows]] = cols
        draw_mat = self._draw_mat[:, :max_len]
        draw_mat[...] = np.inf
        for tr in np.flatnonzero(counts):
            n = counts[tr]
            draw_mat[tr, :n] = self.rngs[tr].random(n)
        perm = np.argsort(draw_mat, axis=1)
        order_mat = np.take_along_axis(ids_mat[:, :max_len], perm, axis=1)

        movers0: list[int] = []
        grants: list[tuple[int, int]] = []
        blocks: list[tuple[int, int]] = []
        mov = self._mov
        mov[:] = False
        # Round r serves every trial's r-th message at once; a trial
        # contributes at most one head per round, so all the scatter
        # updates below hit distinct (trial, *) cells.
        for r in range(max_len):
            trs = np.flatnonzero(counts > r)
            ms = order_mat[trs, r]
            heads = k[trs, ms] < dists[ms]
            ht, hm = trs[heads], ms[heads]
            if ht.size:
                o1e, o1n, o2e, o2n = self._options(ht, hm)
                f1 = (o1e >= 0) & (occ[ht, np.maximum(o1e, 0)] < B[ht])
                f2 = (o2e >= 0) & (occ[ht, np.maximum(o2e, 0)] < B[ht])
                blk = ~(f1 | f2)
                if blk.any():
                    self.state.blocked[ht[blk], hm[blk]] += 1
                    if probes is not None:
                        first = np.where(o1e[blk] >= 0, o1e[blk], o2e[blk])
                        blocks.extend(
                            (int(m), int(e))
                            for m, e in zip(hm[blk], first)
                        )
                # Free-channel choice: ``integers(1)`` never consumes
                # RNG state and always returns 0, so only heads with
                # both options free draw from their trial's stream.
                ch = np.zeros(ht.size, dtype=np.int64)
                for i in np.flatnonzero(f1 & f2):
                    ch[i] = self.rngs[ht[i]].integers(2)
                win = ~blk
                use1 = f1 & (ch == 0)
                e_sel = np.where(use1, o1e, o2e)[win]
                n_sel = np.where(use1, o1n, o2n)[win]
                wt, wm = ht[win], hm[win]
                occ[wt, e_sel] += 1
                tl = self.tlen[wt, wm]
                self.taken[wt, wm, tl] = e_sel
                self.tlen[wt, wm] = tl + 1
                self.position[wt, wm] = n_sel
                mov[wt, wm] = True
                if probes is not None:
                    grants.extend(
                        (int(m), int(e)) for m, e in zip(wm, e_sel)
                    )
                    movers0.extend(int(m) for m in wm)
            dt, dm = trs[~heads], ms[~heads]
            mov[dt, dm] = True  # draining worms always move
            if probes is not None:
                movers0.extend(int(m) for m in dm)

        # -- movement: lock-step advance, strict buffer release ---------
        pre_k = self.k[0].copy() if probes is not None else None
        self.k += mov
        rel = self.k - L - 1
        vac = mov & (rel >= 0) & (rel < dists[None, :] - 1)
        if vac.any():
            vt, vm = np.nonzero(vac)
            np.subtract.at(
                self.occ, (vt, self.taken[vt, vm, rel[vt, vm]]), 1
            )
        fin = mov & (self.k == L + dists[None, :] - 1)
        if fin.any():
            ft, fm = np.nonzero(fin)
            np.subtract.at(
                self.occ, (ft, self.taken[ft, fm, dists[fm] - 1]), 1
            )
            self.state.completion[ft, fm] = t
            self.state.done[ft, fm] = True

        if probes is not None:
            self._emit_step_events(t, movers0, pre_k, grants, blocks)
        return mov.any(axis=1)

    def _emit_step_events(self, t, movers0, pre_k, grants, blocks):
        """Reproduce the serial per-step event stream (T = 1 only)."""
        probes, L = self.probes, self.L
        releases: list[tuple[int, int]] = []
        finished: list[int] = []
        for m in movers0:
            km = int(pre_k[m]) + 1
            d = int(self.dists[m])
            rel_i = km - L - 1
            if 0 <= rel_i < d - 1:
                releases.append((m, int(self.taken[0, m, rel_i])))
            if km == L + d - 1:
                releases.append((m, int(self.taken[0, m, d - 1])))
                finished.append(m)
        if grants:
            g = np.asarray(grants, dtype=np.int64)
            probes.on_grant(t, g[:, 0], g[:, 1])
        if blocks:
            b = np.asarray(blocks, dtype=np.int64)
            probes.on_block(t, b[:, 0], b[:, 1])
        if releases:
            r = np.asarray(releases, dtype=np.int64)
            probes.on_release(t, r[:, 0], r[:, 1])
        if finished:
            probes.on_complete(t, np.asarray(finished, dtype=np.int64))
        probes.on_step(t, np.asarray(movers0, dtype=np.int64), self.k[0])
