"""Parallel trial-grid sweeps over (simulator, workload, B, seed).

Every experiment in this repository ultimately runs the same loop: build
a workload, instantiate a router at some ``B``, route, and record a
handful of scalars.  This module centralizes that loop as a *trial grid*:

* a :class:`TrialSpec` names one (workload, simulator, ``B``, repeat)
  cell declaratively — everything needed to run the trial is in the spec,
  so trials can be shipped to worker processes or keyed into a cache;
* :func:`run_sweep` executes a list of specs on any
  :mod:`repro.exec` backend — inline, thread pool, or the
  fault-tolerant :class:`~repro.exec.process.ProcessPoolBackend`
  (``workers``/``backend`` arguments) — with a content-hash on-disk
  result cache (change one axis of a grid and only the delta is
  recomputed);
* cells of any flit-level router (:data:`repro.sim.batch.BATCHED_MODELS`)
  that share a workload shape (same workload, params, ``L``, and sim
  params) are packed into *batches* and run in lockstep by the
  per-model ``run_*_batch`` runners in :mod:`repro.sim.batch` —
  bit-identical to the per-trial path, several times faster
  (``batch_size``/``--batch-size``; ``1`` disables batching);
* each worker process memoizes built workloads and their packed path
  matrices (:meth:`Workload.padded_paths`), so repeated trials of one
  grid cell pay for path padding and edge-simplicity validation once;
* per-trial randomness is derived with
  :meth:`numpy.random.SeedSequence.spawn` from a root seed and a digest
  of the trial's configuration, so results are independent of execution
  order and worker count — a parallel sweep is bit-identical to a serial
  one — and adding trials to a grid never perturbs existing ones.

Workloads and simulators are looked up in registries by name (the spec
must stay JSON-serializable); :data:`WORKLOADS` covers the standard
instances used by the E1/E2/E5 experiments and the CLI, and new entries
can be registered with :func:`register_workload`.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..cache import CACHE_VERSION as _CACHE_VERSION
from ..cache import ResultCache, load_entry, store_entry
from ..network.graph import NetworkError
from .batch import BATCHED_MODELS, batch_compat_key

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "SweepResult",
    "TrialResult",
    "TrialSpec",
    "WORKLOADS",
    "SIMULATORS",
    "Workload",
    "register_workload",
    "run_sweep",
    "sweep_grid",
    "trial_seed",
]

_Scalar = (str, int, float, bool, type(None))


def _check_params(params: dict[str, Any], what: str) -> tuple[tuple[str, Any], ...]:
    """Normalize a parameter dict to a sorted, JSON-safe tuple of pairs."""
    items = []
    for key in sorted(params):
        value = params[key]
        if isinstance(value, (bool, np.bool_)):
            value = bool(value)
        elif isinstance(value, np.integer):
            value = int(value)
        elif isinstance(value, np.floating):
            value = float(value)
        if not isinstance(value, _Scalar):
            raise NetworkError(
                f"{what} parameter {key!r} must be a JSON scalar, "
                f"got {type(value).__name__}"
            )
        items.append((str(key), value))
    return tuple(items)


@dataclass(frozen=True)
class TrialSpec:
    """One cell of a sweep grid.

    A spec is pure data: workload and simulator are registry *names*, the
    parameter tuples are sorted ``(key, value)`` pairs of JSON scalars.
    Two specs with equal fields denote the same trial — same derived
    seed, same cache entry.
    """

    workload: str
    simulator: str
    B: int = 1
    workload_params: tuple[tuple[str, Any], ...] = ()
    sim_params: tuple[tuple[str, Any], ...] = ()
    message_length: int | None = None
    repeat: int = 0

    @classmethod
    def make(
        cls,
        workload: str,
        simulator: str,
        *,
        B: int = 1,
        workload_params: dict[str, Any] | None = None,
        sim_params: dict[str, Any] | None = None,
        message_length: int | None = None,
        repeat: int = 0,
    ) -> "TrialSpec":
        if workload not in WORKLOADS:
            raise NetworkError(
                f"unknown workload {workload!r}; "
                f"registered: {', '.join(sorted(WORKLOADS))}"
            )
        if simulator not in SIMULATORS:
            raise NetworkError(
                f"unknown simulator {simulator!r}; "
                f"registered: {', '.join(sorted(SIMULATORS))}"
            )
        if B < 1:
            raise NetworkError("B must be >= 1")
        if repeat < 0:
            raise NetworkError("repeat must be >= 0")
        return cls(
            workload=workload,
            simulator=simulator,
            B=int(B),
            workload_params=_check_params(workload_params or {}, "workload"),
            sim_params=_check_params(sim_params or {}, "simulator"),
            message_length=None if message_length is None else int(message_length),
            repeat=int(repeat),
        )

    def key(self) -> dict[str, Any]:
        """The trial's canonical identity (JSON-ready)."""
        return {
            "workload": self.workload,
            "workload_params": list(map(list, self.workload_params)),
            "simulator": self.simulator,
            "sim_params": list(map(list, self.sim_params)),
            "B": self.B,
            "message_length": self.message_length,
            "repeat": self.repeat,
        }

    def cache_key(self, root_seed: int) -> str:
        payload = {"v": _CACHE_VERSION, "root_seed": int(root_seed), **self.key()}
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    def label(self) -> str:
        rep = f" r{self.repeat}" if self.repeat else ""
        return f"{self.simulator}/{self.workload} B={self.B}{rep}"


#: Per-process memo for :func:`trial_seed`: (root_seed, config digest)
#: -> (base sequence, children spawned so far).  Spawned children are a
#: stable prefix sequence, so extending the cached list with
#: ``base.spawn(k)`` yields exactly the children a fresh
#: ``base.spawn(repeat + 1)`` would — but the per-config work drops
#: from O(repeats^2) spawns per sweep to O(repeats).
_SEED_CACHE: dict[
    tuple[int, bytes],
    tuple[np.random.SeedSequence, list[np.random.SeedSequence]],
] = {}
_SEED_CACHE_MAX = 4096


def trial_seed(spec: TrialSpec, root_seed: int) -> np.random.SeedSequence:
    """Derive the trial's :class:`~numpy.random.SeedSequence`.

    The sequence is keyed on ``root_seed`` plus a digest of the trial
    configuration *excluding* ``repeat``; repeats are then separated with
    :meth:`~numpy.random.SeedSequence.spawn` (children are a stable
    prefix sequence, so repeat ``i`` never changes when more repeats are
    added).  Execution order and worker count cannot influence this.

    Returned sequences are memoized per process; they are safe to share
    because every consumer treats them read-only (``default_rng`` and
    ``generate_state`` never mutate a :class:`SeedSequence`).
    """
    config = spec.key()
    config.pop("repeat")
    blob = json.dumps(config, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(blob.encode()).digest()
    key = (int(root_seed), digest[:16])
    entry = _SEED_CACHE.get(key)
    if entry is None:
        if len(_SEED_CACHE) >= _SEED_CACHE_MAX:
            _SEED_CACHE.clear()
        entropy = [
            int(root_seed) & 0xFFFFFFFF,
            int.from_bytes(digest[:16], "little"),
        ]
        entry = (np.random.SeedSequence(entropy), [])
        _SEED_CACHE[key] = entry
    base, children = entry
    if len(children) <= spec.repeat:
        children.extend(base.spawn(spec.repeat + 1 - len(children)))
    return children[spec.repeat]


# ----------------------------------------------------------------------
# Workload registry
# ----------------------------------------------------------------------


@dataclass
class Workload:
    """A built instance, ready to route.

    ``paths`` serve the path-routed simulators; ``demands``/``cube``
    serve the adaptive mesh router.  ``default_length`` supplies ``L``
    when the spec leaves ``message_length`` unset, and ``info`` carries
    JSON-safe provenance (C, D, M, ...) copied into trial metrics.
    """

    net: Any
    paths: list | None = None
    demands: list | None = None
    cube: Any = None
    default_length: int = 8
    info: dict[str, Any] = field(default_factory=dict)
    _padded: Any = field(default=None, repr=False, compare=False)

    def padded_paths(self):
        """The packed :class:`~repro.sim.engine.PaddedPaths`, built once.

        Repeated trials of the same grid cell share the padded matrix and
        its one-time edge-simplicity validation instead of re-packing the
        path lists per trial.
        """
        if self.paths is None:
            raise NetworkError("workload has no paths")
        if self._padded is None:
            from .engine import PaddedPaths

            self._padded = PaddedPaths.from_paths(self.paths)
        return self._padded


WORKLOADS: dict[str, Callable[..., Workload]] = {}

# Per-process memo of built workloads: builders are pure functions of
# their parameters, so trials of the same grid cell (and batches) share
# one instance — and with it the cached padded-path matrix.  Keyed on the
# builder *function* (not its registry name) so re-registering a name
# can never serve a stale build.
_WORKLOAD_CACHE: dict[tuple[Any, tuple[tuple[str, Any], ...]], Workload] = {}
_WORKLOAD_CACHE_MAX = 8


def _build_workload(name: str, params: tuple[tuple[str, Any], ...]) -> Workload:
    fn = WORKLOADS[name]
    key = (fn, params)
    wl = _WORKLOAD_CACHE.get(key)
    if wl is None:
        wl = fn(**dict(params))
        if len(_WORKLOAD_CACHE) >= _WORKLOAD_CACHE_MAX:
            _WORKLOAD_CACHE.pop(next(iter(_WORKLOAD_CACHE)))
        _WORKLOAD_CACHE[key] = wl
    return wl


def register_workload(name: str) -> Callable:
    """Register ``fn(**params) -> Workload`` under ``name``."""

    def deco(fn: Callable[..., Workload]) -> Callable[..., Workload]:
        WORKLOADS[name] = fn
        return fn

    return deco


@register_workload("layered")
def _wl_layered(
    width: int = 10,
    depth: int = 10,
    out_degree: int = 3,
    messages: int = 120,
    seed: int = 0,
) -> Workload:
    from ..network.random_networks import layered_network, random_walk_paths
    from ..routing.paths import congestion, dilation, paths_from_node_walks

    rng = np.random.default_rng(seed)
    net = layered_network(width, depth, out_degree, rng)
    walks = random_walk_paths(net, width, depth, messages, rng)
    paths = paths_from_node_walks(net, walks)
    C, D = congestion(paths), dilation(paths)
    return Workload(
        net=net,
        paths=paths,
        default_length=D,
        info={"congestion": C, "dilation": D, "messages": len(paths)},
    )


@register_workload("hard-instance")
def _wl_hard_instance(C: int = 8, D: int = 15, B: int = 1) -> Workload:
    from ..core.lower_bound import build_hard_instance

    inst = build_hard_instance(C=C, D=D, B=B)
    return Workload(
        net=inst.network,
        paths=inst.paths,
        default_length=inst.recommended_length(),
        info={
            "congestion": inst.congestion,
            "dilation": inst.dilation,
            "messages": inst.num_messages,
            "m_prime": inst.m_prime,
        },
    )


@register_workload("chain-bundle")
def _wl_chain_bundle(
    chains: int = 4, depth: int = 12, messages: int = 8
) -> Workload:
    from ..network.random_networks import chain_bundle
    from ..routing.paths import paths_from_node_walks

    net, walks = chain_bundle(chains, depth, messages)
    paths = paths_from_node_walks(net, walks)
    return Workload(
        net=net,
        paths=paths,
        default_length=2 * depth,
        info={"congestion": messages, "dilation": depth, "messages": len(paths)},
    )


@register_workload("butterfly-bitrev")
def _wl_butterfly_bitrev(n: int = 8) -> Workload:
    from ..network.butterfly import Butterfly
    from ..routing.problems import bit_reversal_permutation

    bf = Butterfly(n)
    inst = bit_reversal_permutation(n)
    paths = [list(r) for r in bf.path_edges_batch(inst.sources, inst.dests)]
    return Workload(
        net=bf,
        paths=paths,
        default_length=16,
        info={"n": n, "messages": len(paths)},
    )


@register_workload("mesh-permutation")
def _wl_mesh_permutation(k: int = 6, seed: int = 0) -> Workload:
    from ..network.mesh import KAryNCube

    cube = KAryNCube(k, 2, wrap=False)
    perm = np.random.default_rng(seed).permutation(k * k)
    demands = [(i, int(d)) for i, d in enumerate(perm) if i != int(d)]
    return Workload(
        net=cube.network,
        demands=demands,
        cube=cube,
        default_length=k,
        info={"k": k, "messages": len(demands)},
    )


# ----------------------------------------------------------------------
# Simulator runners
# ----------------------------------------------------------------------


def _digest(arr: np.ndarray) -> str:
    return hashlib.sha256(
        np.ascontiguousarray(arr, dtype=np.int64).tobytes()
    ).hexdigest()[:16]


def _result_metrics(res) -> dict[str, Any]:
    return {
        "makespan": int(res.makespan),
        "steps": int(res.steps_executed),
        "messages": int(res.num_messages),
        "delivered": int(res.num_delivered),
        "blocked": int(res.total_blocked_steps),
        "deadlocked": bool(res.deadlocked),
        "hit_step_cap": bool(res.hit_step_cap),
        "completion_digest": _digest(res.completion_times),
    }


def _sim_seed(sp: dict[str, Any], ss: np.random.SeedSequence):
    """Explicit ``seed`` in sim_params wins over the derived sequence."""
    return sp["seed"] if "seed" in sp else ss


def _run_wormhole(wl: Workload, spec: TrialSpec, ss, L: int) -> dict[str, Any]:
    from .wormhole import WormholeSimulator

    sp = dict(spec.sim_params)
    sim = WormholeSimulator(
        wl.net,
        num_virtual_channels=spec.B,
        priority=sp.get("priority", "random"),
        seed=_sim_seed(sp, ss),
    )
    return _result_metrics(sim.run(wl.padded_paths(), message_length=L))


def _run_cut_through(wl: Workload, spec: TrialSpec, ss, L: int) -> dict[str, Any]:
    from .cut_through import CutThroughSimulator

    sp = dict(spec.sim_params)
    sim = CutThroughSimulator(
        wl.net,
        buffer_flits=spec.B,
        priority=sp.get("priority", "random"),
        seed=_sim_seed(sp, ss),
    )
    return _result_metrics(sim.run(wl.padded_paths(), message_length=L))


def _run_store_forward(wl: Workload, spec: TrialSpec, ss, L: int) -> dict[str, Any]:
    from .store_forward import StoreForwardSimulator

    sp = dict(spec.sim_params)
    sim = StoreForwardSimulator(
        wl.net,
        bandwidth_flits_per_step=spec.B,
        priority=sp.get("priority", "farthest"),
        seed=_sim_seed(sp, ss),
    )
    res = sim.run(wl.padded_paths(), message_length=L)
    out = _result_metrics(res)
    out["max_queue"] = int(res.extra["max_queue"])
    return out


def _run_restricted(wl: Workload, spec: TrialSpec, ss, L: int) -> dict[str, Any]:
    from .restricted import RestrictedWormholeSimulator

    sp = dict(spec.sim_params)
    sim = RestrictedWormholeSimulator(
        wl.net, num_buffers=spec.B, seed=_sim_seed(sp, ss)
    )
    return _result_metrics(sim.run(wl.padded_paths(), message_length=L))


def _run_adaptive(wl: Workload, spec: TrialSpec, ss, L: int) -> dict[str, Any]:
    from .adaptive import AdaptiveMeshRouter

    if wl.cube is None or wl.demands is None:
        raise NetworkError(
            f"workload {spec.workload!r} has no mesh demands; "
            "the adaptive router needs a mesh workload (e.g. mesh-permutation)"
        )
    sp = dict(spec.sim_params)
    router = AdaptiveMeshRouter(
        wl.cube,
        num_virtual_channels=spec.B,
        policy=sp.get("policy", "west-first"),
        seed=_sim_seed(sp, ss),
    )
    return _result_metrics(router.run(wl.demands, message_length=L).result)


def _run_schedule(wl: Workload, spec: TrialSpec, ss, L: int) -> dict[str, Any]:
    """E1's pipeline: build a Theorem 2.1.6 schedule, then execute it."""
    from ..core.schedule import execute_schedule
    from ..core.scheduler import lll_schedule

    sp = dict(spec.sim_params)
    sched_seed = sp.get("schedule_seed")
    rng = np.random.default_rng(ss if sched_seed is None else sched_seed)
    build = lll_schedule(
        wl.paths,
        message_length=L,
        B=spec.B,
        rng=rng,
        mode=sp.get("mode", "direct"),
    )
    res = execute_schedule(
        wl.net, wl.paths, build.schedule, B=spec.B, seed=sp.get("seed", 0)
    )
    out = _result_metrics(res)
    out["classes"] = int(build.num_classes)
    out["congestion"] = int(build.congestion)
    out["dilation"] = int(build.dilation)
    out["length_bound"] = int(build.length_bound)
    return out


SIMULATORS: dict[str, Callable[..., dict[str, Any]]] = {
    "wormhole": _run_wormhole,
    "cut_through": _run_cut_through,
    "store_forward": _run_store_forward,
    "restricted": _run_restricted,
    "adaptive": _run_adaptive,
    "schedule": _run_schedule,
}


def _finish_metrics(metrics: dict[str, Any], wl: Workload, L: int) -> dict[str, Any]:
    metrics["message_length"] = int(L)
    for key, value in wl.info.items():
        metrics.setdefault(f"workload_{key}", value)
    return metrics


def _execute_trial(item: tuple[TrialSpec, int]) -> tuple[dict[str, Any], float]:
    """Top-level worker entry point (must be picklable)."""
    spec, root_seed = item
    start = time.perf_counter()
    wl = _build_workload(spec.workload, spec.workload_params)
    L = wl.default_length if spec.message_length is None else spec.message_length
    ss = trial_seed(spec, root_seed)
    metrics = SIMULATORS[spec.simulator](wl, spec, ss, L)
    return _finish_metrics(metrics, wl, L), time.perf_counter() - start


# ----------------------------------------------------------------------
# Batched execution
# ----------------------------------------------------------------------

#: Simulators eligible for lockstep batching (see ``repro.sim.batch``).
#: Every flit-level router is batched; only ``schedule`` (whose per-trial
#: work is dominated by the LLL scheduler, not the simulator) runs serial.
_BATCH_SIMULATORS = BATCHED_MODELS

#: Default trials per lockstep batch when ``batch_size`` is ``None``.
#: With the SoA kernels the per-step cost is almost flat in the trial
#: count, so wider batches are nearly free wall-clock-wise and slash
#: the number of per-batch Python setups; 128 still splits big sweeps
#: into enough batches to load-balance across worker processes.
DEFAULT_BATCH_SIZE = 128


# Grid cells batchable together: everything but ``B`` and ``repeat``.
# The definition of "compatible" is owned by ``repro.sim.batch`` and
# shared with the online service batcher so the two cannot drift.
_batch_key = batch_compat_key


def _run_batch_model(
    model: str, wl: Workload, L: int, sp: dict[str, Any], seeds: list, knobs: list
) -> list[dict[str, Any]]:
    """One lockstep call of ``model``'s batch runner; metrics per trial.

    ``knobs`` is the per-trial ``B`` axis (virtual channels, buffer
    flits, bandwidth, ...) — the one simulator parameter every runner
    vectorizes over trials.  Shared by the sweep's batch worker and the
    service's :func:`repro.service.batcher.execute_compatible` so the
    two dispatch tables cannot drift.
    """
    from . import batch as _batch

    if model == "wormhole":
        results = _batch.run_wormhole_batch(
            wl.net,
            wl.padded_paths(),
            message_length=L,
            seeds=seeds,
            num_virtual_channels=knobs,
            priority=sp.get("priority", "random"),
        )
    elif model == "cut_through":
        results = _batch.run_cut_through_batch(
            wl.net,
            wl.padded_paths(),
            message_length=L,
            seeds=seeds,
            buffer_flits=knobs,
            priority=sp.get("priority", "random"),
        )
    elif model == "store_forward":
        results = _batch.run_store_forward_batch(
            wl.net,
            wl.padded_paths(),
            message_length=L,
            seeds=seeds,
            bandwidth_flits_per_step=knobs,
            priority=sp.get("priority", "farthest"),
        )
    elif model == "restricted":
        results = _batch.run_restricted_batch(
            wl.net,
            wl.padded_paths(),
            message_length=L,
            seeds=seeds,
            num_buffers=knobs,
        )
    elif model == "adaptive":
        if wl.cube is None or wl.demands is None:
            raise NetworkError(
                "this workload has no mesh demands; the adaptive router "
                "needs a mesh workload (e.g. mesh-permutation)"
            )
        runs = _batch.run_adaptive_batch(
            wl.cube,
            wl.demands,
            message_length=L,
            seeds=seeds,
            num_virtual_channels=knobs,
            policy=sp.get("policy", "west-first"),
        )
        results = [r.result for r in runs]
    else:  # pragma: no cover - callers only batch _BATCH_SIMULATORS
        raise NetworkError(f"simulator {model!r} has no batch runner")
    out = []
    for res in results:
        metrics = _result_metrics(res)
        if model == "store_forward":
            metrics["max_queue"] = int(res.extra["max_queue"])
        out.append(_finish_metrics(metrics, wl, L))
    return out


def _execute_batch(
    item: tuple[tuple[TrialSpec, ...], int],
) -> list[tuple[dict[str, Any], float]]:
    """Run one lockstep batch; per-trial metrics in input order."""
    specs, root_seed = item
    start = time.perf_counter()
    spec0 = specs[0]
    wl = _build_workload(spec0.workload, spec0.workload_params)
    L = wl.default_length if spec0.message_length is None else spec0.message_length
    sp = dict(spec0.sim_params)
    seeds = [_sim_seed(dict(s.sim_params), trial_seed(s, root_seed)) for s in specs]
    metrics = _run_batch_model(
        spec0.simulator, wl, L, sp, seeds, [s.B for s in specs]
    )
    elapsed = (time.perf_counter() - start) / len(specs)
    return [(m, elapsed) for m in metrics]


def _execute_unit(
    unit: tuple[str, Any, int],
) -> list[tuple[dict[str, Any], float]]:
    """Top-level worker entry point for mixed single/batch work units."""
    kind, payload, root_seed = unit
    if kind == "batch":
        return _execute_batch((payload, root_seed))
    return [_execute_trial((payload, root_seed))]


def _pack_units(
    specs: list[TrialSpec], pending: list[int], root_seed: int, batch_size: int
) -> list[tuple[tuple[str, Any, int], list[int]]]:
    """Group pending trials into (work unit, pending-index list) pairs.

    Batchable trials sharing a :func:`_batch_key` are chunked into
    lockstep batches of at most ``batch_size``; everything else (and all
    trials when ``batch_size == 1``) becomes a single-trial unit.
    """
    units: list[tuple[tuple[str, Any, int], list[int]]] = []
    groups: dict[tuple, list[int]] = {}
    singles: list[int] = []
    for i in pending:
        spec = specs[i]
        if batch_size >= 2 and spec.simulator in _BATCH_SIMULATORS:
            groups.setdefault(_batch_key(spec), []).append(i)
        else:
            singles.append(i)
    for idxs in groups.values():
        for j in range(0, len(idxs), batch_size):
            chunk = idxs[j : j + batch_size]
            if len(chunk) == 1:
                singles.extend(chunk)
            else:
                payload = tuple(specs[i] for i in chunk)
                units.append((("batch", payload, root_seed), chunk))
    units.extend((("single", specs[i], root_seed), [i]) for i in singles)
    return units


# ----------------------------------------------------------------------
# Sweep execution
# ----------------------------------------------------------------------


@dataclass
class TrialResult:
    """One executed (or cache-served) trial."""

    spec: TrialSpec
    metrics: dict[str, Any]
    cached: bool = False
    elapsed: float = 0.0

    @property
    def provenance(self) -> str:
        """Where the numbers came from, in the :class:`repro.SimResult`
        vocabulary: ``"cache"`` for cache-served trials, otherwise the
        metrics' execution mode (``"exact"`` | ``"estimate"``)."""
        if self.cached:
            return "cache"
        return str(self.metrics.get("mode", "exact"))

    def row(self) -> dict[str, Any]:
        return {
            "workload": self.spec.workload,
            "simulator": self.spec.simulator,
            "B": self.spec.B,
            "repeat": self.spec.repeat,
            "provenance": self.provenance,
            **self.metrics,
        }


@dataclass
class SweepResult:
    """Results of :func:`run_sweep`, in input-spec order."""

    trials: list[TrialResult]
    root_seed: int = 0
    wall_time: float = 0.0

    def __len__(self) -> int:
        return len(self.trials)

    def __iter__(self):
        return iter(self.trials)

    @property
    def num_cached(self) -> int:
        return sum(t.cached for t in self.trials)

    def rows(self) -> list[dict[str, Any]]:
        return [t.row() for t in self.trials]

    def column(self, name: str) -> list[Any]:
        return [t.metrics.get(name) for t in self.trials]

    def filter(self, **eq: Any) -> "SweepResult":
        """Trials whose spec fields equal the given values."""
        kept = [
            t
            for t in self.trials
            if all(getattr(t.spec, k) == v for k, v in eq.items())
        ]
        return SweepResult(kept, self.root_seed, self.wall_time)


def sweep_grid(
    workload: str,
    simulators: str | Sequence[str],
    Bs: Iterable[int],
    *,
    workload_params: dict[str, Any] | None = None,
    sim_params: dict[str, Any] | None = None,
    message_length: int | None = None,
    repeats: int = 1,
) -> list[TrialSpec]:
    """The cartesian grid ``simulators x Bs x repeats`` on one workload."""
    if isinstance(simulators, str):
        simulators = [simulators]
    if repeats < 1:
        raise NetworkError("repeats must be >= 1")
    return [
        TrialSpec.make(
            workload,
            simulator,
            B=B,
            workload_params=workload_params,
            sim_params=sim_params,
            message_length=message_length,
            repeat=r,
        )
        for simulator in simulators
        for B in Bs
        for r in range(repeats)
    ]


# The on-disk cache implementation lives in the shared ``repro.cache``
# module (the cluster router fronts the same tier); these aliases keep
# the sweep's historical private surface working.
_cache_load = load_entry
_cache_store = store_entry


def _resolve_backend(backend, workers: int):
    """Map ``run_sweep``'s (backend, workers) surface to an exec backend.

    Returns ``(backend, owned)``; an instance created here is closed by
    the caller, a caller-supplied instance is left alone.  ``backend=
    None`` keeps the historical contract: ``workers >= 2`` fans out
    over worker processes, anything else runs inline.
    """
    from ..exec import create_backend

    if backend is None:
        backend = "process" if workers >= 2 else "inline"
    if not isinstance(backend, str):
        return backend, False  # a ready ExecutionBackend instance
    return create_backend(backend, workers=max(workers, 2)), True


def run_sweep(
    specs: Sequence[TrialSpec],
    *,
    root_seed: int = 0,
    workers: int = 0,
    cache_dir: str | os.PathLike | None = None,
    force: bool = False,
    batch_size: int | None = None,
    backend=None,
) -> SweepResult:
    """Execute a list of trial specs; returns results in input order.

    Parameters
    ----------
    specs:
        The grid (see :func:`sweep_grid` / :meth:`TrialSpec.make`).
    root_seed:
        Root entropy for :func:`trial_seed`; one sweep at two different
        root seeds is two independent replications of the whole grid.
    workers:
        Pool width for thread/process backends.  With the default
        ``backend=None``, ``0`` or ``1`` runs serially in-process and
        ``>= 2`` fans work units out over a fault-tolerant
        :class:`~repro.exec.process.ProcessPoolBackend`.  Results are
        bit-identical either way.
    cache_dir:
        Optional directory of per-trial JSON results keyed by a content
        hash of (spec, root_seed).  Cached trials are served without
        executing; changing any axis of the grid recomputes only the new
        cells.
    force:
        Ignore (and overwrite) existing cache entries.
    batch_size:
        Trials per lockstep batch for batch-capable simulators (every
        flit-level router; see :mod:`repro.sim.batch`).  ``None`` picks
        :data:`DEFAULT_BATCH_SIZE`; ``1`` disables batching and runs
        every trial through the per-trial path.  Results, seeds, and
        cache entries are bit-identical at every setting.
    backend:
        Execution substrate: ``None`` (derive from ``workers`` as
        above), an :mod:`repro.exec` backend name (``"inline"``,
        ``"thread"``, ``"process"``), or a ready
        :class:`~repro.exec.ExecutionBackend` instance (useful to share
        one pre-warmed pool across sweeps; the caller keeps ownership).
        The substrate never changes any trial's metrics.
    """
    specs = list(specs)
    if batch_size is None:
        batch_size = DEFAULT_BATCH_SIZE
    if batch_size < 1:
        raise NetworkError("batch_size must be >= 1")
    started = time.perf_counter()
    cache: ResultCache | None = None
    if cache_dir is not None:
        cache = ResultCache(cache_dir)

    results: list[TrialResult | None] = [None] * len(specs)
    pending: list[int] = []
    for i, spec in enumerate(specs):
        if cache is not None and not force:
            metrics = cache.load(spec.cache_key(root_seed), spec.key())
            if metrics is not None:
                results[i] = TrialResult(spec, metrics, cached=True)
                continue
        pending.append(i)

    if pending:
        units = _pack_units(specs, pending, root_seed, batch_size)
        payloads = [unit for unit, _ in units]
        exec_backend, owned = _resolve_backend(backend, workers)
        try:
            outcomes = exec_backend.map(_execute_unit, payloads)
        finally:
            if owned:
                exec_backend.close()
        for (_, idxs), unit_results in zip(units, outcomes):
            for i, (metrics, elapsed) in zip(idxs, unit_results):
                results[i] = TrialResult(
                    specs[i], metrics, cached=False, elapsed=elapsed
                )
                if cache is not None:
                    cache.store(
                        specs[i].cache_key(root_seed),
                        specs[i].key(),
                        metrics,
                        root_seed,
                    )

    done = [r for r in results if r is not None]
    assert len(done) == len(specs)
    return SweepResult(done, root_seed, time.perf_counter() - started)
