"""Shared simulation-engine core for every router in :mod:`repro.sim`.

The five routers (wormhole, cut-through, store-and-forward, restricted,
adaptive) implement different *buffer models* but share one synchronous
step protocol and one arbitration kernel.  This module owns that shared
machinery so each router contributes only its advance rule:

:func:`pad_paths` / :func:`check_edge_simple` / :class:`PaddedPaths`
    Path packing and validation (formerly private to the wormhole
    module; re-exported there for back compatibility).
    :class:`PaddedPaths` caches one packed-and-validated matrix so
    repeated runs of the same workload (every seed of a sweep grid
    cell) skip the re-pack and re-check.
:func:`grant_free_slots` / :class:`SlotArbiter`
    The vectorized contend/rank/grant kernel — sort the contenders by
    ``(slot, priority)``, rank each contender within its slot group, and
    grant the first ``free`` of every group — plus occupancy tracking
    for slot models that hold grants across steps (capacity-``B`` edges,
    or capacity-1 ``(edge, VC-class)`` pairs).  **This is the only place
    in** ``repro.sim`` **where the kernel exists**; the circuit and
    continuous simulators call it too.
:class:`StepLoop`
    The synchronous step protocol: time advance, release gating,
    idle-gap skipping, step caps, deadlock declaration, telemetry abort
    handling, and :class:`~repro.sim.stats.SimulationResult` assembly.
:class:`BatchSlotArbiter` / :class:`BatchStepLoop`
    The batched (many independent trials in lockstep) counterparts of
    :class:`SlotArbiter` and :class:`StepLoop`, used by
    :mod:`repro.sim.batch`: one flat occupancy array over the combined
    ``(trial, slot)`` key space and one shared clock with per-trial
    completion / deadlock / step-cap masking, bit-exact per trial with
    the serial loop.
:func:`default_step_cap` / :func:`resolve_step_cap`
    The documented per-model ``max_steps`` bounds with one shared
    override path.
:func:`legacy_record_probes` / :func:`legacy_extra`
    The deprecation shim behind the pre-telemetry ``record_trace`` /
    ``record_contention`` keywords.

Bit-exactness contract
----------------------
The engine reproduces the original per-router loops *exactly*: the same
RNG draws in the same order, the same arbitration outcomes, the same
probe event ordering, and the same deadlock declarations.  The golden
suite in ``tests/sim/test_golden_equivalence.py`` pins this against
outputs recorded from the pre-engine simulators.

Edge-simplicity note
--------------------
Every slot-holding router validates that paths are edge-simple (a worm
cannot hold two buffer slots on one edge).  The store-and-forward
router is deliberately **exempt**: it holds no per-edge slot across
steps (an edge is owned only within the message step it transmits) and
its queues are unbounded, so a path that repeats an edge is still
well-defined — the message simply queues at that edge again.  See
:mod:`repro.sim.store_forward`.
"""

from __future__ import annotations

import warnings
from collections.abc import Callable, Sequence

import numpy as np

from ..network.graph import NetworkError
from ..routing.paths import Path
from ..telemetry.probe import Probe, ProbeSet
from . import fastpath
from .stats import SimulationResult

__all__ = [
    "BatchSlotArbiter",
    "BatchStepLoop",
    "PaddedPaths",
    "SlotArbiter",
    "StepLoop",
    "age_priorities",
    "check_edge_simple",
    "compat_check_edge_simple",
    "default_step_cap",
    "grant_free_slots",
    "grant_free_slots_reference",
    "legacy_extra",
    "legacy_record_probes",
    "pad_paths",
    "resolve_step_cap",
]


# ----------------------------------------------------------------------
# Path packing and validation.
# ----------------------------------------------------------------------


def check_edge_simple(
    padded: np.ndarray, what: str = "path of message {m} is not edge-simple"
) -> None:
    """Raise unless every padded path row is free of repeated edge ids.

    A single sort over the padded matrix replaces the former per-message
    ``np.unique`` loop: after sorting each row, a duplicate edge shows
    up as two equal adjacent entries (the ``-1`` padding is masked out),
    so the whole check is one vectorized pass regardless of ``M``.
    """
    if padded.shape[0] == 0 or padded.shape[1] < 2:
        return
    srt = np.sort(padded, axis=1)
    dup = (srt[:, 1:] == srt[:, :-1]) & (srt[:, 1:] >= 0)
    bad = np.flatnonzero(dup.any(axis=1))
    if bad.size:
        raise NetworkError(what.format(m=int(bad[0])))


def compat_check_edge_simple(
    padded: np.ndarray,
    lengths: np.ndarray,
    what: str = "path of message {m} is not edge-simple",
) -> None:
    """The single back-compat shim behind the former per-router
    ``_check_edge_simple(padded, lengths)`` staticmethods."""
    del lengths  # encoded by the -1 padding already
    check_edge_simple(padded, what)


def pad_paths(paths: Sequence[Path] | Sequence[Sequence[int]]) -> tuple[np.ndarray, np.ndarray]:
    """Pack ragged per-message edge-id lists into a padded matrix.

    Returns ``(padded, lengths)`` where ``padded`` has shape
    ``(M, max_len)`` with ``-1`` padding and ``lengths[m]`` is message
    ``m``'s path length ``D_m``.
    """
    if isinstance(paths, PaddedPaths):
        return paths.padded, paths.lengths
    edge_lists = [
        list(p.edges) if isinstance(p, Path) else list(p) for p in paths
    ]
    lengths = np.asarray([len(e) for e in edge_lists], dtype=np.int64)
    max_len = int(lengths.max()) if lengths.size else 0
    padded = np.full((len(edge_lists), max_len), -1, dtype=np.int64)
    for m, edges in enumerate(edge_lists):
        padded[m, : len(edges)] = edges
    return padded, lengths


class PaddedPaths:
    """A packed path matrix that can be reused across simulator runs.

    Packing (``pad_paths``) and edge-simplicity validation
    (``check_edge_simple``) depend only on the routes, not on ``B``,
    the seed, or the priority discipline — yet every ``run()`` call
    used to redo both.  Wrapping the routes once in a
    :class:`PaddedPaths` and passing *it* wherever ``paths`` is
    accepted amortizes that work over all trials of the workload (the
    sweep runner does this per worker process).

    Instances are simulator-agnostic: validation is cached by
    :meth:`require_edge_simple` after the first successful check, and
    the ``padded`` / ``lengths`` arrays must be treated as read-only.
    """

    __slots__ = ("padded", "lengths", "_edge_simple")

    def __init__(self, padded: np.ndarray, lengths: np.ndarray) -> None:
        self.padded = padded
        self.lengths = lengths
        self._edge_simple = False

    @classmethod
    def from_paths(
        cls, paths: "Sequence[Path] | Sequence[Sequence[int]] | PaddedPaths"
    ) -> "PaddedPaths":
        if isinstance(paths, cls):
            return paths
        return cls(*pad_paths(paths))

    @property
    def num_messages(self) -> int:
        return int(self.lengths.size)

    def require_edge_simple(self, what: str | None = None) -> "PaddedPaths":
        """Validate once; later calls (any caller, any message) are free."""
        if not self._edge_simple:
            if what is None:
                check_edge_simple(self.padded)
            else:
                check_edge_simple(self.padded, what)
            self._edge_simple = True
        return self


# ----------------------------------------------------------------------
# The arbitration kernel.
# ----------------------------------------------------------------------


def grant_free_slots(
    slots: np.ndarray,
    prio: np.ndarray,
    capacity: int | np.ndarray,
    occupancy: np.ndarray | None = None,
) -> np.ndarray:
    """The vectorized contend/rank/grant kernel shared by every router.

    ``slots[i]`` is the slot id contender ``i`` requests and ``prio[i]``
    its priority (smaller wins).  Contenders are sorted by
    ``(slot, priority)``; within each slot group the first
    ``capacity - occupancy[slot]`` contenders are granted.  Returns the
    boolean granted mask aligned with the input order.  Occupancy is
    **not** updated — callers that hold grants across steps acquire via
    :class:`SlotArbiter`.

    ``capacity`` may be a per-contender array (constant within each
    slot group) — this is how :class:`BatchSlotArbiter` arbitrates
    trials with different ``B`` in one call.

    The post-sort rank/grant scan runs on the backend selected by
    :mod:`repro.sim.fastpath` (pure NumPy, or a numba jit of the same
    linear scan); both produce bit-identical masks.
    """
    order = np.lexsort((prio, slots))
    if order.size == 0:
        return np.zeros(0, dtype=bool)
    sorted_slots = slots[order]
    if isinstance(capacity, np.ndarray):
        sorted_caps = capacity[order]
    else:
        sorted_caps = np.broadcast_to(
            np.int64(capacity), (order.size,)
        )
    granted_sorted = fastpath.segmented_grant(
        sorted_slots, sorted_caps, occupancy
    )
    granted = np.empty(order.size, dtype=bool)
    granted[order] = granted_sorted
    return granted


def grant_free_slots_reference(
    slots: np.ndarray,
    prio: np.ndarray,
    capacity: int | np.ndarray,
    occupancy: np.ndarray | None = None,
) -> np.ndarray:
    """Naive per-slot reference for :func:`grant_free_slots`.

    Kept (not exported to routers) as the oracle for the fastpath
    parity suite: for every distinct slot, stable-sort its contenders
    by priority and grant the first ``capacity - occupancy`` of them.
    Quadratic and allocation-happy — never used in the hot path.
    """
    slots = np.asarray(slots)
    prio = np.asarray(prio)
    granted = np.zeros(slots.size, dtype=bool)
    for slot in np.unique(slots):
        members = np.flatnonzero(slots == slot)
        members = members[np.argsort(prio[members], kind="stable")]
        if isinstance(capacity, np.ndarray):
            free = int(capacity[members[0]])
        else:
            free = int(capacity)
        if occupancy is not None:
            free -= int(occupancy[slot])
        # Over-occupied slots have no free seats, not a wrapped slice.
        granted[members[: max(free, 0)]] = True
    return granted


def age_priorities(release: np.ndarray) -> np.ndarray:
    """Earlier-released-first priority ranks, ties broken by index."""
    return np.lexsort((np.arange(release.size), release)).argsort()


class SlotArbiter:
    """Capacity-limited slot pool with the shared arbitration kernel.

    A *slot* is whatever a router's buffer model holds across steps: a
    physical edge with capacity ``B`` (interchangeable virtual
    channels), or an ``(edge, VC-class)`` pair with capacity 1 (the
    Dally-Seitz mechanism).  The arbiter tracks per-slot occupancy and
    answers contention rounds with :meth:`contend`, which applies
    :func:`grant_free_slots` against the current occupancy.
    """

    def __init__(self, num_slots: int, capacity: int = 1) -> None:
        if capacity < 1:
            raise NetworkError("slot capacity must be >= 1")
        self.num_slots = int(num_slots)
        self.capacity = int(capacity)
        self.occupancy = np.zeros(self.num_slots, dtype=np.int64)

    # -- vectorized round ----------------------------------------------
    def contend(self, slots: np.ndarray, prio: np.ndarray) -> np.ndarray:
        """Granted mask for one contention round (does not acquire)."""
        if slots.size == 0:
            return np.zeros(0, dtype=bool)
        return grant_free_slots(slots, prio, self.capacity, self.occupancy)

    def acquire(self, slots: np.ndarray) -> None:
        """Occupy ``slots`` (duplicates accumulate)."""
        np.add.at(self.occupancy, slots, 1)

    def vacate(self, slots: np.ndarray) -> None:
        """Release previously acquired ``slots``."""
        np.add.at(self.occupancy, slots, -1)

    # -- scalar path (sequential / adaptive arbitration) ---------------
    def has_free(self, slot: int) -> bool:
        return bool(self.occupancy[slot] < self.capacity)

    def acquire_one(self, slot: int) -> None:
        self.occupancy[slot] += 1

    def vacate_one(self, slot: int) -> None:
        self.occupancy[slot] -= 1


class BatchSlotArbiter:
    """``T`` independent slot pools arbitrated in one kernel call.

    Trial ``i`` owns ``num_slots[i]`` slots with capacity
    ``capacities[i]``; the pools are laid out back to back in one flat
    occupancy array, and every contention round runs
    :func:`grant_free_slots` once over the combined ``(trial, slot)``
    key ``offset[trial] + slot``.  Because keys never collide across
    trials, the grants for each trial are exactly what its own
    :class:`SlotArbiter` would have produced — trials may even have
    different capacities (a mixed-``B`` batch).
    """

    def __init__(
        self,
        num_slots: np.ndarray | Sequence[int],
        capacities: np.ndarray | Sequence[int],
    ) -> None:
        num_slots = np.asarray(num_slots, dtype=np.int64)
        self.capacities = np.asarray(capacities, dtype=np.int64)
        if num_slots.shape != self.capacities.shape or num_slots.ndim != 1:
            raise NetworkError(
                "num_slots and capacities must be 1-D arrays of equal length"
            )
        if num_slots.size and self.capacities.min() < 1:
            raise NetworkError("slot capacity must be >= 1")
        self.num_trials = int(num_slots.size)
        self.offsets = np.zeros(self.num_trials + 1, dtype=np.int64)
        np.cumsum(num_slots, out=self.offsets[1:])
        self.occupancy = np.zeros(int(self.offsets[-1]), dtype=np.int64)

    def keys(self, trials: np.ndarray, slots: np.ndarray) -> np.ndarray:
        """Combined ``(trial, slot)`` keys into the flat occupancy."""
        return self.offsets[trials] + slots

    def contend(
        self, trials: np.ndarray, slots: np.ndarray, prio: np.ndarray
    ) -> np.ndarray:
        """Granted mask for one combined round (does not acquire)."""
        if slots.size == 0:
            return np.zeros(0, dtype=bool)
        return grant_free_slots(
            self.keys(trials, slots),
            prio,
            self.capacities[trials],
            self.occupancy,
        )

    def acquire(self, trials: np.ndarray, slots: np.ndarray) -> None:
        np.add.at(self.occupancy, self.keys(trials, slots), 1)

    def vacate(self, trials: np.ndarray, slots: np.ndarray) -> None:
        np.add.at(self.occupancy, self.keys(trials, slots), -1)


# ----------------------------------------------------------------------
# Per-model step caps.
# ----------------------------------------------------------------------


def _wormhole_cap(*, release, total_moves, trivial, **_):
    # Every step, at least one pending message moves (else deadlock is
    # declared), and each message needs L + D - 1 moves.
    if not (~trivial).any():
        return 0
    return int(release.max() + total_moves[~trivial].sum() + 1)


def _cut_through_cap(*, release, lengths, message_length, num_messages, **_):
    # Worst case is full serialization with per-hop drain lag.
    max_d = int(lengths.max())
    return int(
        release.max()
        + (int(message_length.max()) + 2 * max_d + 2) * num_messages
        + 10
    )


def _restricted_cap(*, release, lengths, message_length, num_messages, **_):
    # One flit per edge per step: full serialization costs about
    # L * D per message in the worst case.
    max_d = int(lengths.max())
    return int(
        release.max()
        + (int(message_length.max()) * (max_d + 2) + 4) * num_messages
        + 10
    )


def _store_forward_cap(*, release, lengths, **_):
    # Greedy store-and-forward always grants one message per contended
    # edge, so the schedule needs at most sum(D) message steps of work.
    return int(release.max() + lengths.sum() + 1)


def _adaptive_cap(*, release, lengths, message_length, **_):
    # Minimal adaptive routes have Manhattan length `lengths`; pad per
    # message for drain and injection slack.
    return int(release.max() + (message_length + lengths + 2).sum() + 10)


_STEP_CAPS: dict[str, Callable[..., int]] = {
    "wormhole": _wormhole_cap,
    "cut_through": _cut_through_cap,
    "restricted": _restricted_cap,
    "store_forward": _store_forward_cap,
    "adaptive": _adaptive_cap,
}


def default_step_cap(model: str, **dims) -> int:
    """The documented per-model ``max_steps`` bound.

    Each bound is generous enough that any *live* simulation of that
    buffer model finishes under it, so hitting the cap means livelock
    (or a deadlock the model cannot itself declare).  Accepted ``dims``
    (all NumPy arrays unless noted): ``release``, ``lengths`` (path /
    Manhattan lengths ``D_m``), ``message_length`` (per-message ``L``),
    ``num_messages`` (int), ``total_moves`` (``L + D - 1``),
    ``trivial`` (zero-length-path mask).  Units are the model's native
    steps (flit steps; message steps for store-and-forward).
    """
    try:
        cap = _STEP_CAPS[model]
    except KeyError:
        raise NetworkError(f"no step-cap bound for model {model!r}") from None
    return cap(**dims)


def resolve_step_cap(max_steps: int | None, model: str, **dims) -> int:
    """The shared override path: an explicit ``max_steps`` wins,
    otherwise the model's :func:`default_step_cap` applies."""
    if max_steps is not None:
        return int(max_steps)
    return default_step_cap(model, **dims)


# ----------------------------------------------------------------------
# Legacy record_* keyword shim.
# ----------------------------------------------------------------------


def legacy_record_probes(
    record_trace: bool, record_contention: bool, stacklevel: int = 3
) -> tuple[list[Probe], "Probe | None", "Probe | None"]:
    """Engine-level shim for the deprecated ``record_*`` run keywords.

    Returns ``(extra_probes, trace_probe, contention_probe)`` to pass to
    :meth:`ProbeSet.coerce` and :func:`legacy_extra`; emits the same
    DeprecationWarnings the routers used to emit inline.
    """
    legacy: list[Probe] = []
    trace_probe = contention_probe = None
    if record_trace:
        warnings.warn(
            "record_trace is deprecated; attach a repro.telemetry."
            "TraceSnapshotCollector via telemetry= instead",
            DeprecationWarning,
            stacklevel=stacklevel,
        )
        from ..telemetry.collectors import TraceSnapshotCollector

        trace_probe = TraceSnapshotCollector()
        legacy.append(trace_probe)
    if record_contention:
        warnings.warn(
            "record_contention is deprecated; attach a repro.telemetry."
            "EdgeContentionCollector via telemetry= instead",
            DeprecationWarning,
            stacklevel=stacklevel,
        )
        from ..telemetry.collectors import EdgeContentionCollector

        contention_probe = EdgeContentionCollector()
        legacy.append(contention_probe)
    return legacy, trace_probe, contention_probe


def legacy_extra(trace_probe, contention_probe) -> dict:
    """``extra`` keys for the deprecated ``record_*`` kwargs."""
    extra: dict = {}
    if trace_probe is not None:
        extra["trace"] = trace_probe.matrix
    if contention_probe is not None:
        extra["edge_contention"] = contention_probe.denied
    return extra


# ----------------------------------------------------------------------
# The synchronous step loop.
# ----------------------------------------------------------------------


class StepLoop:
    """The synchronous step protocol shared by every router.

    The loop owns everything that is *not* the buffer model: time
    advance, release gating (a message released at ``r`` first contends
    at step ``r + 1``), idle-gap skipping (when nothing is released the
    clock jumps to the next release), the step cap, deadlock
    declaration, telemetry abort handling, and result assembly.  The
    router supplies a ``body(t, active)`` callback that advances its
    buffer model for one step:

    * ``active`` is the boolean mask of released, unfinished messages;
    * the body mutates :attr:`completion`, :attr:`done`, and
      :attr:`blocked` in place and dispatches its own probe events
      (grant/block/release/complete/step — their order is part of each
      router's contract);
    * it returns ``True`` iff any message moved this step.

    When the body reports no movement while every pending message is
    already released, the configuration can never change again and the
    loop declares deadlock (``detect_deadlock=False`` opts out for
    models that cannot deadlock, e.g. greedy store-and-forward).  The
    ``on_deadlock`` / ``on_run_end`` lifecycle events and the
    ``telemetry_abort`` annotation are dispatched here so routers
    cannot drift apart in their protocol behavior.
    """

    def __init__(
        self,
        num_messages: int,
        release: np.ndarray,
        max_steps: int,
        probes: "ProbeSet | None" = None,
        *,
        detect_deadlock: bool = True,
        time_scale: int = 1,
    ) -> None:
        self.M = int(num_messages)
        self.release = release
        self.max_steps = int(max_steps)
        self.probes = probes
        self.detect_deadlock = detect_deadlock
        self.time_scale = int(time_scale)
        self.completion = np.full(self.M, -1, dtype=np.int64)
        self.blocked = np.zeros(self.M, dtype=np.int64)
        self.done = np.zeros(self.M, dtype=bool)
        self.t = 0

    @property
    def pending(self) -> int:
        return int(self.M - self.done.sum())

    def mark_trivial(self, trivial: np.ndarray, completion: np.ndarray) -> None:
        """Deliver zero-length-path messages at their release time."""
        self.done |= trivial
        self.completion[trivial] = completion[trivial]

    def run(
        self,
        body: Callable[[int, np.ndarray], bool],
        extra_factory: Callable[[], dict] | None = None,
    ) -> SimulationResult:
        release, done, probes = self.release, self.done, self.probes
        t = self.t
        while (self.M - done.sum()) and t < self.max_steps:
            t += 1
            active = ~done & (release < t)
            if not active.any():
                # Jump to the next release to avoid idling through gaps.
                t = int(release[~done].min())
                continue
            moved = body(t, active)
            if probes is not None and probes.aborted:
                break
            if (
                not moved
                and self.detect_deadlock
                and bool((release[~done] < t).all())
            ):
                # Nothing moved and every pending message is already
                # released: the configuration can never change.
                self.t = t
                result = self._result(True, False, extra_factory)
                if probes is not None:
                    probes.on_deadlock(t, np.flatnonzero(~done))
                    probes.on_run_end(result)
                return result
        self.t = t
        result = self._result(False, self.pending > 0, extra_factory)
        if probes is not None:
            if probes.aborted:
                result.extra["telemetry_abort"] = probes.abort_reason
            probes.on_run_end(result)
        return result

    def _result(
        self,
        deadlocked: bool,
        hit_step_cap: bool,
        extra_factory: Callable[[], dict] | None,
    ) -> SimulationResult:
        return SimulationResult(
            completion_times=self.completion,
            makespan=int(self.completion.max()),
            steps_executed=self.t * self.time_scale,
            blocked_steps=self.blocked,
            deadlocked=deadlocked,
            hit_step_cap=hit_step_cap,
            extra=extra_factory() if extra_factory is not None else {},
        )


# ----------------------------------------------------------------------
# The batched (lockstep) step loop.
# ----------------------------------------------------------------------

_FAR_FUTURE = np.iinfo(np.int64).max


class BatchStepLoop:
    """The :class:`StepLoop` protocol for ``T`` independent trials.

    All trials share one clock and one ``body(t, active)`` call per
    step; per-trial state lives in stacked ``(T, M)`` arrays.  The loop
    reproduces the serial protocol *per trial*:

    * ``active`` is the ``(T, M)`` mask of released, unfinished
      messages of still-running trials; the body mutates
      :attr:`completion` / :attr:`done` / :attr:`blocked` in place and
      returns the ``(T,)`` mask of trials in which any message moved;
    * a trial whose last message completes at step ``t`` is finalized
      with ``steps = t`` and drops out of the active set — the batch
      never stalls on it again;
    * a trial that executed a step without movement while every one of
      its pending messages was already released is declared deadlocked
      at that step (``detect_deadlock=False`` opts out);
    * each trial has its own step cap; a trial that is still pending
      after executing step ``max_steps[i]`` is finalized with the cap
      flag, exactly like the serial loop's exit condition;
    * idle trials (pending messages, none released yet) wait without
      consuming work; when *every* live trial is idle the shared clock
      jumps to the earliest next release, mirroring the serial loop's
      idle-gap skip.  A trial whose next release lies at or beyond its
      step cap is finalized with ``steps`` = that release time and the
      cap flag set — the serial loop's jump-past-the-cap exit.

    Bit-exactness per trial holds because a trial's state evolves only
    in steps where it has active messages, and those steps happen at
    the same ``t`` with the same inputs as in its own serial run; the
    steps it merely waits through touch none of its state.
    """

    def __init__(
        self,
        num_trials: int,
        num_messages: int,
        release: np.ndarray,
        max_steps: np.ndarray | int,
        *,
        detect_deadlock: bool = True,
        time_scale: int | np.ndarray = 1,
    ) -> None:
        self.T = int(num_trials)
        self.M = int(num_messages)
        # Releases may differ per trial (store-and-forward converts flit
        # steps to per-trial message steps): accept (M,) or (T, M).
        self.release = np.broadcast_to(
            np.asarray(release, dtype=np.int64), (self.T, self.M)
        )
        self.max_steps = np.broadcast_to(
            np.asarray(max_steps, dtype=np.int64), (self.T,)
        ).copy()
        self.detect_deadlock = detect_deadlock
        self.time_scale = np.broadcast_to(
            np.asarray(time_scale, dtype=np.int64), (self.T,)
        ).copy()
        self.completion = np.full((self.T, self.M), -1, dtype=np.int64)
        self.blocked = np.zeros((self.T, self.M), dtype=np.int64)
        self.done = np.zeros((self.T, self.M), dtype=bool)
        self.live = np.ones(self.T, dtype=bool)
        self.steps = np.zeros(self.T, dtype=np.int64)
        self.deadlocked = np.zeros(self.T, dtype=bool)
        self.hit_cap = np.zeros(self.T, dtype=bool)
        self.t = 0

    def mark_trivial(self, trivial: np.ndarray, completion: np.ndarray) -> None:
        """Deliver zero-length-path messages at their release time."""
        completion = np.broadcast_to(
            np.asarray(completion, dtype=np.int64), (self.T, self.M)
        )
        self.done[:, trivial] = True
        self.completion[:, trivial] = completion[:, trivial]

    def _finalize(self, mask: np.ndarray, t: int) -> None:
        self.steps[mask] = t
        self.live[mask] = False

    def run(self, body: Callable[[int, np.ndarray], np.ndarray]) -> None:
        release, done, live = self.release, self.done, self.live
        t = self.t
        # Trials with nothing to do (all paths trivial) end at step 0.
        self._finalize(live & done.all(axis=1), t)
        while live.any():
            t += 1
            active = live[:, None] & ~done & (release < t)
            act_any = active.any(axis=1)
            idle = live & ~act_any
            if idle.any():
                # The serial loop jumps an idle trial's clock to its next
                # release; a jump landing at or past the trial's step cap
                # exits right there with the cap flag set.
                rows = np.flatnonzero(idle)
                minrel = np.where(
                    done[rows], _FAR_FUTURE, release[rows]
                ).min(axis=1)
                over = minrel >= self.max_steps[rows]
                if over.any():
                    self.steps[rows[over]] = minrel[over]
                    self.hit_cap[rows[over]] = True
                    live[rows[over]] = False
                if not act_any.any():
                    if not over.all():
                        # Every surviving trial is idle: jump the shared
                        # clock to the earliest next release.
                        t = int(minrel[~over].min())
                    continue
                active &= live[:, None]
            moved = body(t, active)
            # 1) trials whose last message finished this step
            self._finalize(live & done.all(axis=1), t)
            # 2) deadlock: a trial that executed this step without any
            # movement while all its pending messages were released can
            # never change configuration again.
            if self.detect_deadlock:
                stuck = live & act_any & ~moved
                if stuck.any():
                    unreleased = (~done & (release >= t)).any(axis=1)
                    dead = stuck & ~unreleased
                    self.deadlocked |= dead
                    self._finalize(dead, t)
            # 3) per-trial step caps.
            capped = live & (t >= self.max_steps)
            self.hit_cap[capped] = True
            self._finalize(capped, t)
        self.t = t

    def results(
        self, extra_factory: Callable[[int], dict] | None = None
    ) -> list[SimulationResult]:
        """Per-trial :class:`SimulationResult` objects, in trial order.

        ``extra_factory(i)`` supplies trial ``i``'s ``extra`` dict (e.g.
        the store-and-forward per-trial queue-depth telemetry).
        """
        out = []
        for i in range(self.T):
            completion = self.completion[i].copy()
            out.append(
                SimulationResult(
                    completion_times=completion,
                    makespan=int(completion.max()) if self.M else -1,
                    steps_executed=int(self.steps[i]) * int(self.time_scale[i]),
                    blocked_steps=self.blocked[i].copy(),
                    deadlocked=bool(self.deadlocked[i]),
                    hit_step_cap=bool(self.hit_cap[i]),
                    extra=extra_factory(i) if extra_factory is not None else {},
                )
            )
        return out
