"""Continuous (steady-state) wormhole routing.

The paper routes *batches*; Scheideler and Vocking [43] showed that for
*continuous* routing — packets arriving over time by a random process —
the same ``D^(1/B)`` factor governs the maximum injection rate a
``B``-virtual-channel wormhole network can sustain.  This module adds an
open-loop harness around :class:`~repro.sim.wormhole.WormholeSimulator`'s
model: messages are generated over time (Bernoulli arrivals per source
per flit step), routed by a caller-supplied path generator, and the
run reports sustained throughput, latency, and backlog so experiments
can locate the stability knee as a function of ``B``.

The flit-step dynamics are identical to the batch simulator (same
lock-step worm reduction, synchronous arbitration, B slots per edge);
only injection differs: a source's messages queue FIFO in its external
injection buffer, and the backlog statistic is the paper-model analogue
of "the network is unstable at this rate".
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from ..network.graph import Network, NetworkError
from .engine import grant_free_slots

__all__ = ["ContinuousResult", "ContinuousWormholeSimulator"]

PathGenerator = Callable[[int, np.random.Generator], Sequence[int]]
"""Maps (source index, rng) -> an edge-id path for a new message."""


@dataclass
class ContinuousResult:
    """Outcome of an open-loop run.

    Attributes
    ----------
    generated / delivered:
        Message counts over the measurement window.
    throughput:
        Deliveries per flit step.
    mean_latency:
        Mean delivery time minus arrival time (flit steps), delivered
        messages only.
    final_backlog:
        Messages still queued or in flight at the end; a backlog growing
        linearly with the horizon indicates an unstable rate.
    backlog_series:
        Backlog sampled every ``sample_every`` steps (for trend checks).
    """

    generated: int
    delivered: int
    horizon: int
    mean_latency: float
    final_backlog: int
    backlog_series: np.ndarray
    sample_every: int

    @property
    def throughput(self) -> float:
        return self.delivered / self.horizon if self.horizon else 0.0

    def backlog_slope(self) -> float:
        """Least-squares slope of backlog vs time — ~0 when stable."""
        y = self.backlog_series.astype(np.float64)
        if y.size < 2:
            return 0.0
        x = np.arange(y.size, dtype=np.float64) * self.sample_every
        x = x - x.mean()
        denom = float((x * x).sum())
        return float((x * (y - y.mean())).sum() / denom) if denom else 0.0


class ContinuousWormholeSimulator:
    """Open-loop wormhole simulator with Bernoulli arrivals.

    Parameters
    ----------
    net:
        The network (``num_edges`` is required; sources are caller-level
        indices passed to ``path_of``).
    num_sources:
        Number of injection points.
    num_virtual_channels:
        The ``B`` of the model.
    seed:
        Drives arrivals, path generation, and arbitration.
    """

    def __init__(
        self,
        net: Network,
        num_sources: int,
        num_virtual_channels: int = 1,
        seed: int | None = 0,
    ) -> None:
        if num_virtual_channels < 1:
            raise NetworkError("need at least one virtual channel")
        if num_sources < 1:
            raise NetworkError("need at least one source")
        self.net = net
        self.num_edges = net.num_edges
        self.num_sources = int(num_sources)
        self.B = int(num_virtual_channels)
        self._rng = np.random.default_rng(seed)

    def run(
        self,
        rate: float | np.ndarray | Sequence[float],
        message_length: int,
        path_of: PathGenerator,
        horizon: int,
        sample_every: int = 50,
    ) -> ContinuousResult:
        """Simulate ``horizon`` flit steps at per-source arrival ``rate``.

        Each flit step, each source independently generates a new message
        with probability ``rate``; its route comes from ``path_of``.
        ``rate`` may also be a ``(horizon,)`` array giving the arrival
        probability of each step — bursty or heavy-tailed open-loop
        traces — with a scalar run being bit-identical to the equivalent
        constant trace (the RNG draw schedule does not change).
        Sources inject FIFO: a source's next message contends for its
        path's first edge only once all earlier messages from that source
        have fully left the injection buffer (entered the network).
        """
        if horizon < 1:
            raise NetworkError("horizon must be >= 1")
        rates = np.asarray(rate, dtype=np.float64)
        if rates.ndim == 0:
            rates = np.full(int(horizon), float(rates))
        elif rates.shape != (int(horizon),):
            raise NetworkError(
                f"per-step rate must have shape ({int(horizon)},), "
                f"got {rates.shape}"
            )
        if not (np.all(rates >= 0.0) and np.all(rates <= 1.0)):
            raise NetworkError("rate must be in [0, 1]")
        L = int(message_length)
        if L < 1:
            raise NetworkError("message length L must be >= 1")

        occupancy = np.zeros(self.num_edges, dtype=np.int64)
        # Per-message dynamic state (lists; the population is unbounded).
        paths: list[np.ndarray] = []
        k: list[int] = []  # completed moves
        state: list[int] = []  # 0 queued, 1 active, 2 done
        arrival: list[int] = []
        completion: list[int] = []
        # FIFO queues per source (indices into the message arrays).
        queues: list[list[int]] = [[] for _ in range(self.num_sources)]
        active: list[int] = []
        delivered = 0
        latency_sum = 0.0
        samples: list[int] = []

        for t in range(1, horizon + 1):
            # Candidates: heads of source queues (injection) + active.
            # (Arrivals are processed at the end of the step, so a message
            # arriving at step t first contends at t + 1 — matching the
            # batch simulator's release semantics.)
            inject_cands = [q[0] for q in queues if q]
            contenders: list[int] = []
            edges: list[int] = []
            movers: list[int] = []
            for m in active:
                if k[m] < paths[m].size:
                    contenders.append(m)
                    edges.append(int(paths[m][k[m]]))
                else:
                    movers.append(m)  # draining, always moves
            for m in inject_cands:
                contenders.append(m)
                edges.append(int(paths[m][0]))

            if contenders:
                edges_arr = np.asarray(edges, dtype=np.int64)
                prio = self._rng.random(len(contenders))
                granted = grant_free_slots(edges_arr, prio, self.B, occupancy)
                for idx, m in enumerate(contenders):
                    if granted[idx]:
                        occupancy[paths[m][k[m]]] += 1
                        movers.append(m)

            # Apply moves.
            for m in movers:
                if state[m] == 0:  # injected this step
                    state[m] = 1
                    for q in queues:
                        if q and q[0] == m:
                            q.pop(0)
                            break
                    active.append(m)
                k[m] += 1
                path = paths[m]
                d = path.size
                rel = k[m] - L - 1
                if 0 <= rel < d - 1:
                    occupancy[path[rel]] -= 1
                if k[m] == L + d - 1:
                    occupancy[path[d - 1]] -= 1
                    state[m] = 2
                    completion[m] = t
                    delivered += 1
                    latency_sum += t - arrival[m]
                    active.remove(m)

            # Arrivals for this step.
            arrivals = np.flatnonzero(
                self._rng.random(self.num_sources) < rates[t - 1]
            )
            for s in arrivals:
                path = np.asarray(path_of(int(s), self._rng), dtype=np.int64)
                m = len(paths)
                paths.append(path)
                k.append(0)
                state.append(0)
                arrival.append(t)
                completion.append(-1)
                if path.size == 0:
                    state[m] = 2
                    completion[m] = t
                    delivered += 1
                else:
                    queues[s].append(m)

            if t % sample_every == 0:
                backlog = sum(len(q) for q in queues) + len(active)
                samples.append(backlog)

        backlog = sum(len(q) for q in queues) + len(active)
        return ContinuousResult(
            generated=len(paths),
            delivered=delivered,
            horizon=horizon,
            mean_latency=latency_sum / delivered if delivered else 0.0,
            final_backlog=backlog,
            backlog_series=np.asarray(samples, dtype=np.int64),
            sample_every=sample_every,
        )
