"""``repro.exec`` — pluggable, fault-tolerant execution backends.

One small contract (:class:`~repro.exec.base.ExecutionBackend`: run one
picklable unit, or map many) with three substrates behind it:

* :class:`~repro.exec.inline.InlineBackend` — in the calling thread;
  the bit-exact reference, and the degradation target;
* :class:`~repro.exec.thread.ThreadBackend` — a shared thread pool;
  keeps blocking work off the asyncio loop (GIL-bound for compute);
* :class:`~repro.exec.process.ProcessPoolBackend` — pre-warmed worker
  processes with crash detection, automatic pool restart, per-unit
  timeouts, bounded exponential-backoff retry, and graceful degradation
  to inline after repeated failures.

Both the online service batcher (``repro serve --backend … --workers
…``) and the offline sweep runner (:func:`repro.sim.sweep.run_sweep`)
execute through this seam, so batching policy and execution substrate
vary independently — and every backend returns results bit-identical
to a serial :class:`~repro.sim.wormhole.WormholeSimulator` run, which
is what the service's loadgen gate and the sweep's golden tests pin.
"""

from .base import (
    BACKENDS,
    ExecStats,
    ExecutionBackend,
    ExecutionError,
    create_backend,
)
from .inline import InlineBackend
from .process import ProcessPoolBackend
from .thread import ThreadBackend

__all__ = [
    "BACKENDS",
    "ExecStats",
    "ExecutionBackend",
    "ExecutionError",
    "InlineBackend",
    "ProcessPoolBackend",
    "ThreadBackend",
    "create_backend",
]
