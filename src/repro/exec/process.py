"""Fault-tolerant process-pool execution.

The only backend with real CPU parallelism: units run in pre-warmed
worker processes, so a grid of wormhole batches scales past one core
instead of time-slicing the GIL.  Processes also *die* — OOM kills,
segfaults in native code, operators poking at the wrong PID — and a
``concurrent.futures`` pool answers every subsequent submission with
``BrokenProcessPool`` forever once that happens.  This backend treats
worker death as weather, not as an error:

* **crash detection** — ``BrokenProcessPool`` (and a worker vanishing
  mid-result) is caught, never propagated to callers;
* **automatic restart** — the broken pool is torn down and a fresh
  pre-warmed pool built in its place;
* **per-unit timeout** — an optional wall-clock budget per unit; a
  stalled worker is terminated with its pool and the unit retried;
* **bounded retry with exponential backoff** — each failed unit is
  re-submitted up to ``max_retries`` times, sleeping
  ``backoff_base_s * 2**attempt`` between attempts;
* **graceful degradation** — after ``degrade_after`` consecutive
  infrastructure failures the backend stops fighting and permanently
  falls back to an :class:`~repro.exec.inline.InlineBackend`, trading
  parallelism for availability (slow answers beat no answers).

Exceptions raised *by the unit function itself* propagate unchanged on
first occurrence: a deterministic failure would fail identically on
every retry, and hiding it behind recovery machinery would only delay
the report.

Because units are pure functions of picklable payloads (trial seeds
derive from specs, never from worker state), a retried unit returns a
bit-identical result — recovery is invisible in the response stream,
which is what lets the service promise "zero admitted requests
dropped" across a worker kill.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import Any

from .base import ExecutionError, _StatsMixin
from .inline import InlineBackend

__all__ = ["ProcessPoolBackend"]


def _warm(_: int) -> int:
    """No-op unit used to force worker startup ahead of real work."""
    return _


class ProcessPoolBackend(_StatsMixin):
    """Pre-warmed worker processes with crash recovery and degradation.

    Parameters
    ----------
    workers:
        Worker processes in the pool.
    timeout_s:
        Optional wall-clock budget per unit; on overrun the pool is
        terminated (the stalled worker with it) and the unit retried.
        ``None`` disables the timeout.
    max_retries:
        Re-submissions per unit after infrastructure failures before
        :class:`~repro.exec.base.ExecutionError` is raised (degradation,
        when armed, usually intervenes first).
    backoff_base_s:
        First retry sleeps this long; each further retry doubles it.
    degrade_after:
        Consecutive infrastructure failures (across units) after which
        the backend permanently degrades to inline execution.  ``0``
        disables degradation.
    prewarm:
        Start (and wait for) all workers at construction time so the
        first real unit never pays fork latency and ``worker_pids`` is
        immediately meaningful.
    """

    name = "process"

    def __init__(
        self,
        workers: int = 2,
        *,
        timeout_s: float | None = None,
        max_retries: int = 3,
        backoff_base_s: float = 0.05,
        degrade_after: int = 5,
        prewarm: bool = True,
    ) -> None:
        super().__init__()
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError(f"timeout_s must be > 0, got {timeout_s}")
        self.workers = int(workers)
        self.timeout_s = timeout_s
        self.max_retries = int(max_retries)
        self.backoff_base_s = float(backoff_base_s)
        self.degrade_after = int(degrade_after)
        self.prewarm = bool(prewarm)
        self._pool: ProcessPoolExecutor | None = None
        self._inline = InlineBackend()
        self._strikes = 0  # consecutive infrastructure failures
        self._degraded = False
        if self.prewarm:
            self._ensure_pool()

    # -- pool lifecycle ------------------------------------------------
    @property
    def degraded(self) -> bool:
        """True once the backend has fallen back to inline execution."""
        return self._degraded

    def worker_pids(self) -> list[int]:
        """PIDs of the current worker processes (empty if no pool)."""
        with self._lock:
            pool = self._pool
            if pool is None or pool._processes is None:
                return []
            return [p.pid for p in pool._processes.values()]

    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
                if self.prewarm:
                    for f in [
                        self._pool.submit(_warm, i) for i in range(self.workers)
                    ]:
                        f.result()
            return self._pool

    def _teardown_pool(self) -> None:
        """Kill the current pool outright (broken or stalled workers)."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is None:
            return
        processes = pool._processes
        if processes:
            for p in list(processes.values()):
                p.terminate()
        pool.shutdown(wait=False, cancel_futures=True)

    def _restart_pool(self) -> None:
        self._teardown_pool()
        self.stats.counters.bump("worker_restarts")
        if not self._degraded:
            self._ensure_pool()

    def _note_failure(self) -> None:
        """One infrastructure failure; degrade after ``degrade_after``."""
        self._strikes += 1
        if (
            self.degrade_after > 0
            and self._strikes >= self.degrade_after
            and not self._degraded
        ):
            self._degraded = True
            self.stats.counters.bump("degradations")
            self.stats.mode.set("inline")
            self._teardown_pool()

    # -- execution -----------------------------------------------------
    def run(self, fn: Callable[[Any], Any], arg: Any) -> Any:
        if self._degraded:
            return self._inline.run(fn, arg)
        attempt = 0
        while True:
            ok, outcome = self._attempt(fn, arg)
            if ok:
                return outcome
            self._note_failure()
            if self._degraded:
                return self._inline.run(fn, arg)
            self._restart_pool()
            attempt += 1
            if attempt > self.max_retries:
                self.stats.counters.bump("failures")
                raise ExecutionError(
                    f"unit failed {attempt} times ({outcome}); retries exhausted"
                )
            self.stats.counters.bump("retried")
            time.sleep(self.backoff_base_s * 2 ** (attempt - 1))

    def _attempt(self, fn: Callable[[Any], Any], arg: Any) -> tuple[bool, Any]:
        """One submission; ``(True, result)`` or ``(False, failure label)``.

        Success resets the strike counter — recovery only degrades on
        *consecutive* failures.
        """
        pool = self._ensure_pool()
        self.stats.counters.bump("submitted")
        try:
            future = pool.submit(fn, arg)
        except BrokenProcessPool:
            return False, "worker pool broken at submit"
        try:
            result = future.result(self.timeout_s)
        except BrokenProcessPool:
            return False, "worker died mid-unit"
        except FuturesTimeoutError:
            self.stats.counters.bump("timeouts")
            return False, f"unit exceeded timeout_s={self.timeout_s}"
        self._strikes = 0
        self.stats.counters.bump("completed")
        return True, result

    def map(self, fn: Callable[[Any], Any], args: Sequence[Any]) -> list[Any]:
        """Fan units across the pool; recover stragglers via :meth:`run`.

        The happy path is one parallel pass.  Units touched by a crash
        or timeout are re-run individually through :meth:`run`, which
        owns backoff, bounded retries, and degradation; units that
        already completed keep their results (re-execution would return
        identical bits anyway — trials are pure — but why pay twice).
        """
        if self._degraded:
            return self._inline.map(fn, args)
        args = list(args)
        sentinel = object()
        results: list[Any] = [sentinel] * len(args)
        pool = self._ensure_pool()
        futures: dict[int, Any] = {}
        casualties: list[int] = []
        broke = False
        for i, arg in enumerate(args):
            self.stats.counters.bump("submitted")
            try:
                futures[i] = pool.submit(fn, arg)
            except BrokenProcessPool:
                casualties.append(i)
                broke = True
        deadline = (
            None if self.timeout_s is None else time.monotonic() + self.timeout_s
        )
        for i, future in futures.items():
            remaining: float | None = None
            if deadline is not None:
                remaining = max(1e-3, deadline - time.monotonic())
            try:
                results[i] = future.result(remaining)
                self.stats.counters.bump("completed")
            except BrokenProcessPool:
                casualties.append(i)
                broke = True
            except FuturesTimeoutError:
                self.stats.counters.bump("timeouts")
                casualties.append(i)
                broke = True
        if broke:
            self._note_failure()
            if not self._degraded:
                self._restart_pool()
        for i in sorted(casualties):
            self.stats.counters.bump("retried")
            results[i] = self.run(fn, args[i])
        assert all(r is not sentinel for r in results)
        return results

    def close(self) -> None:
        if not self._closed:
            with self._lock:
                pool, self._pool = self._pool, None
            if pool is not None:
                pool.shutdown(wait=True, cancel_futures=True)
        super().close()
