"""Thread-pool execution: the service's historical substrate.

Threads share the interpreter, so CPU-bound simulation work is
GIL-bound — ``map`` overlaps only NumPy's internal no-GIL windows.
The backend still earns its keep in two places: it keeps blocking
work off the asyncio event loop, and it is crash-proof (a worker
thread cannot die out from under the pool the way a process can).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from concurrent.futures import ThreadPoolExecutor
from typing import Any

from .base import _StatsMixin

__all__ = ["ThreadBackend"]


class ThreadBackend(_StatsMixin):
    """Run units on a shared :class:`ThreadPoolExecutor`."""

    name = "thread"

    def __init__(self, workers: int = 2) -> None:
        super().__init__()
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-exec"
        )

    def run(self, fn: Callable[[Any], Any], arg: Any) -> Any:
        self.stats.counters.bump("submitted")
        result = self._pool.submit(fn, arg).result()
        self.stats.counters.bump("completed")
        return result

    def map(self, fn: Callable[[Any], Any], args: Sequence[Any]) -> list[Any]:
        args = list(args)
        self.stats.counters.bump("submitted", len(args))
        futures = [self._pool.submit(fn, arg) for arg in args]
        results = []
        for future in futures:
            results.append(future.result())
            self.stats.counters.bump("completed")
        return results

    def close(self) -> None:
        if not self._closed:
            self._pool.shutdown(wait=True)
        super().close()
