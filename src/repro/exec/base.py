"""The execution-backend contract shared by the service and the sweep.

Both heavy consumers of simulation compute in this repository push the
same shape of work: a picklable top-level function applied to picklable
payloads (the sweep's ``_execute_unit`` work units, the service
batcher's ``execute_compatible`` item lists).  Before this module each
consumer owned its own substrate — the batcher a one-thread
``ThreadPoolExecutor``, the sweep a bespoke ``ProcessPoolExecutor``
path — so batching policy and execution substrate were welded together.

:class:`ExecutionBackend` is the seam between them:

``run(fn, arg)``
    Execute one unit, blocking, and return its result.  Exceptions
    *raised by* ``fn`` propagate unchanged (a deterministic failure is
    not worth retrying); *infrastructure* failures (a worker process
    dying, a batch timing out) are the backend's problem to absorb.
``map(fn, args)``
    Execute many independent units, returning results in input order.
    Backends with real parallelism overlap them.
``stats_snapshot()``
    JSON-safe counters (submitted / completed / retried units, worker
    restarts, degradations) built on :mod:`repro.telemetry.metrics`,
    surfaced verbatim by the service's ``stats`` endpoint.

The three implementations — :class:`~repro.exec.inline.InlineBackend`,
:class:`~repro.exec.thread.ThreadBackend`, and the fault-tolerant
:class:`~repro.exec.process.ProcessPoolBackend` — are bit-equivalent by
construction: a backend only moves *where* ``fn`` runs, never what it
computes, and every trial's randomness is derived from its spec, so the
correctness anchor "responses identical to a serial
:class:`~repro.sim.wormhole.WormholeSimulator` run" holds regardless of
substrate.
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Sequence
from typing import Any, Protocol, runtime_checkable

from ..telemetry.metrics import EventCounter, StateGauge

__all__ = [
    "BACKENDS",
    "ExecStats",
    "ExecutionBackend",
    "ExecutionError",
    "create_backend",
]

#: Names accepted by :func:`create_backend` (and the ``--backend`` CLI
#: flags); each maps to the backend class's import path.
BACKENDS = ("inline", "thread", "process")


class ExecutionError(RuntimeError):
    """A unit could not be executed despite the backend's fault handling.

    Raised only after retries are exhausted (and, for the process
    backend, only when degradation is disabled) — by the time a caller
    sees this, the backend has already burned its recovery budget.
    """


class ExecStats:
    """Counters and state for one backend, snapshot-ready for ``stats``.

    ``submitted`` counts unit attempts handed to the substrate,
    ``completed`` successful unit results, ``retried`` re-submissions
    after an infrastructure failure, ``timeouts`` per-unit deadline
    overruns, ``worker_restarts`` pool rebuilds after a crash or
    timeout, ``degradations`` permanent fallbacks to inline execution,
    and ``failures`` units that exhausted every recovery path.  The
    :class:`~repro.telemetry.metrics.StateGauge` names the substrate
    currently executing work (e.g. ``"process"``, then ``"inline"``
    after degradation).

    Writes happen on whichever thread drives the backend; increments
    are single bytecode-level dict updates guarded by the GIL, and the
    asyncio reader only ever snapshots, so no locking is needed.
    """

    def __init__(self, backend: str) -> None:
        self.backend = backend
        self.counters = EventCounter(
            "submitted",
            "completed",
            "retried",
            "timeouts",
            "worker_restarts",
            "degradations",
            "failures",
        )
        self.mode = StateGauge(backend)

    def snapshot(self) -> dict[str, Any]:
        return {
            "backend": self.backend,
            "mode": self.mode.state,
            "mode_transitions": self.mode.transitions,
            **self.counters.snapshot(),
        }


@runtime_checkable
class ExecutionBackend(Protocol):
    """What the batcher and the sweep require of a substrate."""

    name: str
    stats: ExecStats

    def run(self, fn: Callable[[Any], Any], arg: Any) -> Any:
        """Execute one unit; block until its result is available."""
        ...

    def map(
        self, fn: Callable[[Any], Any], args: Sequence[Any]
    ) -> list[Any]:
        """Execute units independently; results in input order."""
        ...

    def stats_snapshot(self) -> dict[str, Any]:
        ...

    def close(self) -> None:
        """Release substrate resources (idempotent)."""
        ...


class _StatsMixin:
    """The bookkeeping shared by every backend implementation."""

    name: str

    def __init__(self) -> None:
        self.stats = ExecStats(self.name)
        self._closed = False
        self._lock = threading.Lock()

    def stats_snapshot(self) -> dict[str, Any]:
        return self.stats.snapshot()

    def close(self) -> None:
        self._closed = True

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def create_backend(
    spec: "str | ExecutionBackend | None",
    *,
    workers: int = 2,
    **options: Any,
) -> "ExecutionBackend":
    """Resolve a backend name (or pass an instance through).

    ``spec`` may be ``None`` (inline), one of :data:`BACKENDS`, or an
    already-constructed backend (returned unchanged, ``workers`` and
    ``options`` ignored).  ``workers`` sizes the thread/process pools;
    process-backend fault-tolerance knobs (``timeout_s``,
    ``max_retries``, ``backoff_base_s``, ``degrade_after``) ride in
    ``options``.
    """
    if spec is None:
        spec = "inline"
    if not isinstance(spec, str):
        return spec
    name = spec.strip().lower()
    if name == "inline":
        from .inline import InlineBackend

        return InlineBackend()
    if name == "thread":
        from .thread import ThreadBackend

        return ThreadBackend(workers=workers)
    if name == "process":
        from .process import ProcessPoolBackend

        return ProcessPoolBackend(workers=workers, **options)
    raise ValueError(
        f"unknown execution backend {spec!r}; choose from {', '.join(BACKENDS)}"
    )
