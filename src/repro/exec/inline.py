"""In-process execution: the zero-machinery reference backend."""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import Any

from .base import _StatsMixin

__all__ = ["InlineBackend"]


class InlineBackend(_StatsMixin):
    """Run every unit in the calling thread, one after another.

    The reference implementation the others must match bit for bit:
    no pools, no pickling, no recovery paths — which is exactly what
    tests and debugging want, and what the process backend degrades to
    when its workers keep dying.
    """

    name = "inline"

    def run(self, fn: Callable[[Any], Any], arg: Any) -> Any:
        self.stats.counters.bump("submitted")
        result = fn(arg)
        self.stats.counters.bump("completed")
        return result

    def map(self, fn: Callable[[Any], Any], args: Sequence[Any]) -> list[Any]:
        return [self.run(fn, arg) for arg in args]
