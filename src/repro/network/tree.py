"""Tree networks (Section 1.3.4).

Complete ``b``-ary trees with bidirectional channels.  Ranade, Schleimer
and Wilkerson [41] gave offline wormhole schedules of length
``O(LC + D)`` on trees; the unique tree routes make trees a convenient
worst-case substrate (congestion concentrates at the root).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .graph import Network, NetworkError

__all__ = ["CompleteTree", "tree_path"]


@dataclass
class CompleteTree:
    """A complete ``arity``-ary tree of the given ``height``.

    Node ids follow the standard heap layout: the root is 0 and the
    children of node ``v`` are ``arity * v + 1 .. arity * v + arity``.
    ``height`` counts edge-levels, so the tree has
    ``(arity**(height+1) - 1) / (arity - 1)`` nodes.
    """

    arity: int
    height: int
    network: Network = field(init=False)
    num_nodes: int = field(init=False)

    def __post_init__(self) -> None:
        if self.arity < 2:
            raise NetworkError(f"arity must be >= 2, got {self.arity}")
        if self.height < 1:
            raise NetworkError(f"height must be >= 1, got {self.height}")
        self.num_nodes = (self.arity ** (self.height + 1) - 1) // (self.arity - 1)
        net = Network(name=f"tree(arity={self.arity}, height={self.height})")
        for v in range(self.num_nodes):
            net.add_node(v)
        for v in range(1, self.num_nodes):
            net.add_bidirectional_edge(self.parent(v), v)
        self.network = net

    def parent(self, v: int) -> int:
        """Parent of node ``v`` (root has no parent)."""
        if not 0 < v < self.num_nodes:
            raise NetworkError(f"node {v} has no parent")
        return (v - 1) // self.arity

    def depth(self, v: int) -> int:
        """Edge-distance from the root."""
        if not 0 <= v < self.num_nodes:
            raise NetworkError(f"node id {v} out of range")
        d = 0
        while v > 0:
            v = (v - 1) // self.arity
            d += 1
        return d

    def leaves(self) -> range:
        """Node ids of the deepest level."""
        first = (self.arity**self.height - 1) // (self.arity - 1)
        return range(first, self.num_nodes)


def tree_path(tree: CompleteTree, src: int, dst: int) -> list[int]:
    """The unique tree route from ``src`` to ``dst`` as a node-id list."""
    up: list[int] = [src]
    down: list[int] = [dst]
    a, b = src, dst
    da, db = tree.depth(a), tree.depth(b)
    while da > db:
        a = tree.parent(a)
        up.append(a)
        da -= 1
    while db > da:
        b = tree.parent(b)
        down.append(b)
        db -= 1
    while a != b:
        a = tree.parent(a)
        up.append(a)
        b = tree.parent(b)
        down.append(b)
    # `up` ends at the meeting node which `down` also contains; drop the dup.
    return up + down[-2::-1]
