"""de Bruijn and shuffle-exchange networks (Section 1.3.4).

Cypher [11] designed minimal deadlock-free wormhole algorithms for these
hypercubic networks; we provide the topologies plus the canonical
shift-register routes of the de Bruijn graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .butterfly import is_power_of_two
from .graph import Network, NetworkError

__all__ = ["DeBruijn", "ShuffleExchange", "debruijn_path"]


@dataclass
class DeBruijn:
    """The binary de Bruijn graph on ``n = 2**d`` nodes.

    Node ``u`` has directed edges to ``(2u) mod n`` and ``(2u + 1) mod n``
    (shift in a 0 or a 1).  Any node reaches any other in at most ``d``
    hops by shifting in the destination's bits.
    """

    n: int
    network: Network = field(init=False)
    dimension: int = field(init=False)

    def __post_init__(self) -> None:
        if not is_power_of_two(self.n) or self.n < 4:
            raise NetworkError(f"de Bruijn needs a power-of-two n >= 4, got {self.n}")
        self.dimension = self.n.bit_length() - 1
        net = Network(name=f"debruijn(n={self.n})")
        for u in range(self.n):
            net.add_node(u)
        for u in range(self.n):
            for b in range(2):
                v = (2 * u + b) % self.n
                if v != u:  # skip the self-loops at 0...0 and 1...1
                    net.add_edge(u, v)
        self.network = net


def debruijn_path(src: int, dst: int, dimension: int) -> list[int]:
    """Shift-register route from ``src`` to ``dst`` (``dimension`` hops max).

    Successively shifts in the bits of ``dst`` from most to least
    significant; stops early if an intermediate state already equals a
    suffix-aligned ``dst``.  Repeated nodes caused by the skipped
    self-loops are collapsed.
    """
    n = 1 << dimension
    if not (0 <= src < n and 0 <= dst < n):
        raise NetworkError("src/dst out of range for dimension")
    nodes = [src]
    cur = src
    for j in range(dimension - 1, -1, -1):
        bit = (dst >> j) & 1
        nxt = ((2 * cur) % n + bit) % n
        if nxt != cur:
            nodes.append(nxt)
            cur = nxt
    if cur != dst:  # only possible when every shift was a self-loop collapse
        raise NetworkError("shift routing failed to reach destination")
    return nodes


@dataclass
class ShuffleExchange:
    """The binary shuffle-exchange graph on ``n = 2**d`` nodes.

    Node ``u`` has a *shuffle* edge to ``rotate_left(u)`` and an
    *exchange* edge to ``u ^ 1``, both directed variants included.
    """

    n: int
    network: Network = field(init=False)
    dimension: int = field(init=False)

    def __post_init__(self) -> None:
        if not is_power_of_two(self.n) or self.n < 4:
            raise NetworkError(
                f"shuffle-exchange needs a power-of-two n >= 4, got {self.n}"
            )
        self.dimension = self.n.bit_length() - 1
        net = Network(name=f"shuffle_exchange(n={self.n})")
        for u in range(self.n):
            net.add_node(u)
        high = 1 << (self.dimension - 1)
        for u in range(self.n):
            shuffled = ((u & ~high) << 1) | (u >> (self.dimension - 1))
            if shuffled != u:
                net.add_edge(u, shuffled)
            net.add_edge(u, u ^ 1)
        self.network = net
