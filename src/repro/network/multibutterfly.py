"""Multibutterfly networks (Arora-Leighton-Maggs [3], Section 1.3.4).

A *multibutterfly* replaces each butterfly switch by a ``d``-regular
random *splitter*: at every level, each node of a splitter block has
``d`` edges into the upper half of the next-level block and ``d`` edges
into the lower half (a butterfly is the ``d = 1`` special case with a
fixed wiring).  The resulting path diversity is what lets [3] route
``n`` ``L``-flit messages from inputs to outputs in ``O(L + log n)``
flit steps even online: a blocked worm has ``d - 1`` alternatives at
every level, so adversarial congestion cannot pin it down.

Levels and blocks: at level ``i`` the ``n`` nodes are partitioned into
``2**i`` blocks of size ``n / 2**i``; the upper/lower half of a block at
level ``i+1`` is selected by bit ``log n - 1 - i`` of the destination
(MSB-first splitting, the standard multibutterfly orientation).  Nodes
carry ids ``level * n + index`` like :class:`~repro.network.butterfly
.Butterfly`.

The random wiring uses ``d`` independent perfect matchings between each
half-block pair, so every node has exactly ``d`` edges into each
reachable half and in-degrees are balanced (``2d`` in, ``2d`` out for
interior nodes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .butterfly import is_power_of_two
from .graph import Network, NetworkError

__all__ = ["Multibutterfly"]


@dataclass
class Multibutterfly:
    """An ``n``-input multibutterfly of multiplicity ``d``.

    Parameters
    ----------
    n:
        Inputs (power of two, >= 4 so blocks can split).
    d:
        Edges from each node into each half of the next block
        (``d = 1`` with random matchings is a "randomly-wired
        butterfly"; ``d >= 2`` gives the expander-flavored diversity).
    rng:
        Wiring randomness.
    """

    n: int
    d: int = 2
    rng: np.random.Generator | None = None
    log_n: int = field(init=False)
    network: Network = field(init=False)
    # up_edges[level][node-index] / down_edges: lists of edge ids.
    _up: list[list[list[int]]] = field(init=False)
    _down: list[list[list[int]]] = field(init=False)

    def __post_init__(self) -> None:
        if not is_power_of_two(self.n) or self.n < 4:
            raise NetworkError(f"multibutterfly needs power-of-two n >= 4, got {self.n}")
        if self.d < 1:
            raise NetworkError(f"multiplicity d must be >= 1, got {self.d}")
        rng = self.rng if self.rng is not None else np.random.default_rng(0)
        self.log_n = self.n.bit_length() - 1
        net = Network(name=f"multibutterfly(n={self.n}, d={self.d})")
        for level in range(self.log_n + 1):
            for w in range(self.n):
                net.add_node((w, level))
        self._up = [
            [[] for _ in range(self.n)] for _ in range(self.log_n)
        ]
        self._down = [
            [[] for _ in range(self.n)] for _ in range(self.log_n)
        ]
        for level in range(self.log_n):
            block_size = self.n >> level
            half = block_size // 2
            num_blocks = 1 << level
            for b in range(num_blocks):
                base = b * block_size
                members = np.arange(base, base + block_size)
                # Upper half of the two child blocks: indices [base,
                # base+half); lower: [base+half, base+block).  d random
                # matchings per half keep degrees exact.
                for which, child_base in (("up", base), ("down", base + half)):
                    store = self._up if which == "up" else self._down
                    for _ in range(self.d):
                        perm = rng.permutation(block_size)
                        for j, src in enumerate(members):
                            dst_index = child_base + (perm[j] % half)
                            e = net.add_edge(
                                level * self.n + int(src),
                                (level + 1) * self.n + int(dst_index),
                            )
                            store[level][int(src)].append(e)
        self.network = net

    @property
    def num_levels(self) -> int:
        return self.log_n + 1

    @staticmethod
    def _half_for(dest_column: int, level: int, log_n: int) -> int:
        """0 = upper half, 1 = lower half at this level (MSB first)."""
        return (dest_column >> (log_n - 1 - level)) & 1

    def candidate_edges(self, node: int, dest_column: int) -> list[int]:
        """The ``d`` correct-direction edges out of ``node`` toward
        ``dest_column`` (the adaptive router's choice set)."""
        level, index = divmod(node, self.n)
        if level >= self.log_n:
            raise NetworkError(f"node {node} is an output; no further edges")
        half = self._half_for(dest_column, level, self.log_n)
        store = self._down if half else self._up
        return list(store[level][index])

    def inputs(self) -> np.ndarray:
        return np.arange(self.n, dtype=np.int64)

    def outputs(self) -> np.ndarray:
        return self.log_n * self.n + np.arange(self.n, dtype=np.int64)

    def output_of(self, dest_column: int) -> int:
        """Node id of output column ``dest_column``."""
        if not 0 <= dest_column < self.n:
            raise NetworkError(f"no output column {dest_column}")
        return self.log_n * self.n + dest_column
