"""Butterfly networks (Section 1.2 of the paper, Fig. 1).

An ``n``-input butterfly has ``n (log n + 1)`` nodes arranged in
``log n + 1`` levels of ``n`` nodes each.  A node is labelled ``(w, i)``
where ``i`` is its level and ``w`` its column (a ``log n``-bit number).
Nodes ``(w, i)`` and ``(w', i+1)`` are linked iff ``w == w'`` (a *straight*
edge) or ``w`` and ``w'`` differ exactly in bit position ``i+1`` (a *cross*
edge).  We number bit positions 1..log n from the least-significant bit, so
the cross edge leaving level ``i`` flips the bit of weight ``2**i``.

This module provides:

* :class:`Butterfly` — an arithmetic view with O(1) node/edge id formulas,
  used by the vectorized Section 3 algorithms.  It generalizes to

  - *truncated* butterflies (first ``depth`` levels only, Section 3.2), and
  - *cascades* of ``passes`` back-to-back butterflies sharing boundary
    levels, which is the unrolled form of routing ``passes`` times through
    a wrap-around butterfly (the two-pass route of Fig. 2 lives in a
    cascade with ``passes=2``).

* :func:`wrapped_butterfly` — the wrap-around variant where level
  ``log n`` is identified with level 0 (Section 1.2).

All node and edge ids follow closed forms so that path enumeration never
touches per-node Python objects:

* node id of ``(w, i)`` is ``i * n + w``;
* the edges from level ``i`` to ``i+1`` occupy ids ``[2 n i, 2 n (i+1))``,
  with the straight edge out of column ``w`` at ``2 n i + 2 w`` and the
  cross edge at ``2 n i + 2 w + 1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .graph import Network, NetworkError

__all__ = ["Butterfly", "wrapped_butterfly", "is_power_of_two"]


def is_power_of_two(n: int) -> bool:
    """True iff ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


@dataclass
class Butterfly:
    """Arithmetic model of an ``n``-input butterfly cascade.

    Parameters
    ----------
    n:
        Number of inputs; must be a power of two with ``n >= 2``.
    depth:
        Number of edge-levels.  Defaults to ``passes * log2(n)``.  Values
        smaller than ``log2(n)`` give the *truncated* butterfly of
        Section 3.2; values larger than ``log2(n)`` unroll repeated passes
        (the cross edge at level ``i`` flips bit ``i mod log2(n)``).
    passes:
        Convenience for ``depth = passes * log2(n)``; ignored when
        ``depth`` is given explicitly.
    """

    n: int
    depth: int | None = None
    passes: int = 1
    log_n: int = field(init=False)

    def __post_init__(self) -> None:
        if not is_power_of_two(self.n) or self.n < 2:
            raise NetworkError(f"butterfly needs a power-of-two n >= 2, got {self.n}")
        if self.passes < 1:
            raise NetworkError(f"passes must be >= 1, got {self.passes}")
        self.log_n = self.n.bit_length() - 1
        if self.depth is None:
            self.depth = self.passes * self.log_n
        if self.depth < 1:
            raise NetworkError(f"depth must be >= 1, got {self.depth}")

    # ------------------------------------------------------------------
    # sizes and id formulas
    # ------------------------------------------------------------------
    @property
    def num_levels(self) -> int:
        """Number of node-levels (``depth + 1``)."""
        return self.depth + 1

    @property
    def num_nodes(self) -> int:
        return self.n * self.num_levels

    @property
    def num_edges(self) -> int:
        return 2 * self.n * self.depth

    def node(self, column: int, level: int) -> int:
        """Node id of ``(column, level)``."""
        if not (0 <= column < self.n and 0 <= level <= self.depth):
            raise NetworkError(f"no node (column={column}, level={level})")
        return level * self.n + column

    def column_of(self, node: int) -> int:
        return node % self.n

    def level_of(self, node: int) -> int:
        return node // self.n

    def cross_bit(self, level: int) -> int:
        """Weight exponent of the bit flipped by cross edges leaving ``level``."""
        return level % self.log_n

    def edge(self, column: int, level: int, cross: bool) -> int:
        """Edge id leaving ``(column, level)``; ``cross`` selects the cross edge."""
        if not (0 <= column < self.n and 0 <= level < self.depth):
            raise NetworkError(f"no edge out of (column={column}, level={level})")
        return 2 * self.n * level + 2 * column + (1 if cross else 0)

    def edge_endpoints(self, edge_id: int) -> tuple[int, int]:
        """(tail node id, head node id) of ``edge_id``."""
        if not 0 <= edge_id < self.num_edges:
            raise NetworkError(f"edge id {edge_id} out of range")
        level, rest = divmod(edge_id, 2 * self.n)
        column, cross = divmod(rest, 2)
        tail = self.node(column, level)
        head_col = column ^ (1 << self.cross_bit(level)) if cross else column
        return tail, self.node(head_col, level + 1)

    # ------------------------------------------------------------------
    # greedy (bit-fixing) paths
    # ------------------------------------------------------------------
    def path_columns(self, src_col: int, dst_col: int) -> np.ndarray:
        """Columns visited when bit-fixing from ``src_col`` to ``dst_col``.

        Entry ``i`` is the column at level ``i``.  At each level the bit of
        weight ``2**cross_bit(level)`` is set to the destination's bit; this
        is the unique input-to-output path of a single-pass butterfly.  For
        cascades the same greedy rule is applied per pass, which makes
        levels ``>= log n`` already agree with ``dst_col`` once every bit
        has been fixed at least once.
        """
        cols = self.path_columns_batch(
            np.asarray([src_col], dtype=np.int64),
            np.asarray([dst_col], dtype=np.int64),
        )
        return cols[0]

    def path_columns_batch(
        self, src_cols: np.ndarray, dst_cols: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`path_columns` for message batches.

        Parameters are ``int64`` arrays of shape ``(m,)``; the result has
        shape ``(m, depth + 1)``.
        """
        src = np.asarray(src_cols, dtype=np.int64)
        dst = np.asarray(dst_cols, dtype=np.int64)
        if src.shape != dst.shape or src.ndim != 1:
            raise NetworkError("src_cols and dst_cols must be equal-shape 1-d arrays")
        if src.size and (
            src.min() < 0 or src.max() >= self.n or dst.min() < 0 or dst.max() >= self.n
        ):
            raise NetworkError("column out of range")
        cols = np.empty((src.size, self.num_levels), dtype=np.int64)
        cols[:, 0] = src
        cur = src.copy()
        for level in range(self.depth):
            bit = np.int64(1 << self.cross_bit(level))
            cur = (cur & ~bit) | (dst & bit)
            cols[:, level + 1] = cur
        return cols

    def path_edges_batch(
        self, src_cols: np.ndarray, dst_cols: np.ndarray
    ) -> np.ndarray:
        """Edge ids of the greedy paths, shape ``(m, depth)`` (vectorized)."""
        cols = self.path_columns_batch(src_cols, dst_cols)
        tails = cols[:, :-1]
        heads = cols[:, 1:]
        levels = np.arange(self.depth, dtype=np.int64)[None, :]
        cross = (tails != heads).astype(np.int64)
        return 2 * self.n * levels + 2 * tails + cross

    def path_edges(self, src_col: int, dst_col: int) -> np.ndarray:
        """Edge ids of the single greedy path from ``src_col`` to ``dst_col``."""
        return self.path_edges_batch(
            np.asarray([src_col], dtype=np.int64),
            np.asarray([dst_col], dtype=np.int64),
        )[0]

    def two_pass_path_edges_batch(
        self, src_cols: np.ndarray, mid_cols: np.ndarray, dst_cols: np.ndarray
    ) -> np.ndarray:
        """Edge ids of two-pass (Fig. 2) routes in a ``passes>=2`` cascade.

        Pass 1 bit-fixes from ``src`` to the random intermediate column
        ``mid`` over levels ``[0, log n)``; pass 2 bit-fixes from ``mid`` to
        ``dst`` over levels ``[log n, 2 log n)``.  Requires
        ``depth == 2 log n``.
        """
        if self.depth != 2 * self.log_n:
            raise NetworkError(
                "two-pass paths need a cascade with depth == 2 log n "
                f"(depth={self.depth}, log n={self.log_n})"
            )
        src = np.asarray(src_cols, dtype=np.int64)
        mid = np.asarray(mid_cols, dtype=np.int64)
        dst = np.asarray(dst_cols, dtype=np.int64)
        first = self.path_edges_batch(src, mid)[:, : self.log_n]
        # Pass 2 uses the same per-level bit order shifted by log n levels.
        second_cols = Butterfly(self.n).path_columns_batch(mid, dst)
        tails = second_cols[:, :-1]
        heads = second_cols[:, 1:]
        levels = self.log_n + np.arange(self.log_n, dtype=np.int64)[None, :]
        cross = (tails != heads).astype(np.int64)
        second = 2 * self.n * levels + 2 * tails + cross
        return np.concatenate([first, second], axis=1)

    # ------------------------------------------------------------------
    # materialization
    # ------------------------------------------------------------------
    def to_network(self) -> Network:
        """Materialize as a :class:`Network` with ``(column, level)`` labels.

        Node and edge ids in the returned network coincide with this
        class's arithmetic formulas, so paths computed arithmetically can
        be fed straight to the flit-level simulators.
        """
        net = Network(name=f"butterfly(n={self.n}, depth={self.depth})")
        for level in range(self.num_levels):
            for w in range(self.n):
                net.add_node((w, level))
        for level in range(self.depth):
            bit = 1 << self.cross_bit(level)
            for w in range(self.n):
                net.add_edge(self.node(w, level), self.node(w, level + 1))
                net.add_edge(self.node(w, level), self.node(w ^ bit, level + 1))
        return net

    def inputs(self) -> np.ndarray:
        """Node ids of the level-0 inputs."""
        return np.arange(self.n, dtype=np.int64)

    def outputs(self) -> np.ndarray:
        """Node ids of the last level."""
        return self.depth * self.n + np.arange(self.n, dtype=np.int64)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Butterfly(n={self.n}, depth={self.depth})"


def wrapped_butterfly(n: int) -> Network:
    """Wrap-around butterfly: level ``log n`` identified with level 0.

    The result has ``n log n`` nodes labelled ``(w, i)`` for
    ``0 <= i < log n`` and ``2 n log n`` directed edges; the edges leaving
    level ``log n - 1`` re-enter level 0 (Section 1.2: "the butterfly is
    said to wrap around").
    """
    if not is_power_of_two(n) or n < 2:
        raise NetworkError(f"butterfly needs a power-of-two n >= 2, got {n}")
    log_n = n.bit_length() - 1
    net = Network(name=f"wrapped_butterfly(n={n})")
    for level in range(log_n):
        for w in range(n):
            net.add_node((w, level))

    def node(w: int, level: int) -> int:
        return (level % log_n) * n + w

    for level in range(log_n):
        bit = 1 << (level % log_n)
        for w in range(n):
            net.add_edge(node(w, level), node(w, level + 1))
            net.add_edge(node(w, level), node(w ^ bit, level + 1))
    return net
