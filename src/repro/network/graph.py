"""Directed-network substrate underlying every simulator and algorithm.

The paper's model (Section 1.1) treats the network as a directed graph whose
edges are *physical channels*.  Each physical channel multiplexes ``B``
virtual channels, and the buffer at the head of each edge holds up to ``B``
flits, each belonging to a different message.  This module provides the
topology-agnostic :class:`Network` container used by every topology builder,
path selector, and router simulator in the package.

Nodes carry arbitrary hashable labels (butterflies use ``(column, level)``
pairs, meshes use coordinate tuples, ...) but are represented internally by
dense integer ids so that hot simulator loops can index NumPy arrays
directly.  Edges are likewise dense integer ids into parallel ``tails`` /
``heads`` arrays.

Example
-------
>>> net = Network()
>>> a, b, c = net.add_nodes(["a", "b", "c"])
>>> e1 = net.add_edge(a, b)
>>> e2 = net.add_edge(b, c)
>>> net.num_nodes, net.num_edges
(3, 2)
>>> net.edge_between(a, b) == e1
True
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Sequence
from dataclasses import dataclass, field

import numpy as np

__all__ = ["Network", "NetworkError", "EdgeView"]


class NetworkError(ValueError):
    """Raised for structurally invalid network operations."""


@dataclass(frozen=True)
class EdgeView:
    """Immutable view of a single directed edge.

    Attributes
    ----------
    index:
        Dense edge id, stable for the lifetime of the network.
    tail, head:
        Node ids of the edge's endpoints; flits flow tail -> head and are
        buffered *at the head* of the edge per the paper's model.
    """

    index: int
    tail: int
    head: int


@dataclass
class Network:
    """A directed multigraph with dense integer node and edge ids.

    Parallel edges are permitted (a physical channel per direction is the
    common case; topology builders create one edge per direction for
    bidirectional links).  Self-loops are rejected: a flit never needs to
    cross a channel from a node to itself, and allowing them would let path
    validation accept degenerate routes.
    """

    name: str = "network"
    _labels: list[Hashable] = field(default_factory=list)
    _label_to_id: dict[Hashable, int] = field(default_factory=dict)
    _tails: list[int] = field(default_factory=list)
    _heads: list[int] = field(default_factory=list)
    _out: list[list[int]] = field(default_factory=list)
    _in: list[list[int]] = field(default_factory=list)
    _edge_lookup: dict[tuple[int, int], int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, label: Hashable | None = None) -> int:
        """Add one node and return its dense id.

        ``label`` defaults to the id itself.  Labels must be unique.
        """
        node_id = len(self._labels)
        if label is None:
            label = node_id
        if label in self._label_to_id:
            raise NetworkError(f"duplicate node label: {label!r}")
        self._labels.append(label)
        self._label_to_id[label] = node_id
        self._out.append([])
        self._in.append([])
        return node_id

    def add_nodes(self, labels: Iterable[Hashable]) -> list[int]:
        """Add several nodes at once; returns their ids in order."""
        return [self.add_node(label) for label in labels]

    def add_edge(self, tail: int, head: int) -> int:
        """Add a directed edge (physical channel) and return its edge id."""
        n = self.num_nodes
        if not (0 <= tail < n and 0 <= head < n):
            raise NetworkError(f"edge ({tail}, {head}) references unknown node")
        if tail == head:
            raise NetworkError(f"self-loop at node {tail} is not allowed")
        edge_id = len(self._tails)
        self._tails.append(tail)
        self._heads.append(head)
        self._out[tail].append(edge_id)
        self._in[head].append(edge_id)
        # Remember the *first* edge between a node pair for edge_between();
        # parallel edges remain addressable through out_edges().
        self._edge_lookup.setdefault((tail, head), edge_id)
        return edge_id

    def add_bidirectional_edge(self, u: int, v: int) -> tuple[int, int]:
        """Add a channel in each direction between ``u`` and ``v``."""
        return self.add_edge(u, v), self.add_edge(v, u)

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        return len(self._tails)

    def node_id(self, label: Hashable) -> int:
        """Dense id of the node carrying ``label``."""
        try:
            return self._label_to_id[label]
        except KeyError:
            raise NetworkError(f"no node labelled {label!r}") from None

    def label(self, node: int) -> Hashable:
        """Label of node id ``node``."""
        self._check_node(node)
        return self._labels[node]

    def has_label(self, label: Hashable) -> bool:
        return label in self._label_to_id

    def edge(self, edge_id: int) -> EdgeView:
        """Return an :class:`EdgeView` for ``edge_id``."""
        self._check_edge(edge_id)
        return EdgeView(edge_id, self._tails[edge_id], self._heads[edge_id])

    def tail(self, edge_id: int) -> int:
        self._check_edge(edge_id)
        return self._tails[edge_id]

    def head(self, edge_id: int) -> int:
        self._check_edge(edge_id)
        return self._heads[edge_id]

    def edge_between(self, tail: int, head: int) -> int | None:
        """First edge id from ``tail`` to ``head``, or ``None`` if absent."""
        return self._edge_lookup.get((tail, head))

    def out_edges(self, node: int) -> Sequence[int]:
        """Edge ids leaving ``node`` (insertion order)."""
        self._check_node(node)
        return tuple(self._out[node])

    def in_edges(self, node: int) -> Sequence[int]:
        """Edge ids entering ``node`` (insertion order)."""
        self._check_node(node)
        return tuple(self._in[node])

    def out_degree(self, node: int) -> int:
        self._check_node(node)
        return len(self._out[node])

    def in_degree(self, node: int) -> int:
        self._check_node(node)
        return len(self._in[node])

    def successors(self, node: int) -> list[int]:
        """Heads of edges leaving ``node`` (with multiplicity)."""
        self._check_node(node)
        return [self._heads[e] for e in self._out[node]]

    def predecessors(self, node: int) -> list[int]:
        """Tails of edges entering ``node`` (with multiplicity)."""
        self._check_node(node)
        return [self._tails[e] for e in self._in[node]]

    def iter_edges(self) -> Iterator[EdgeView]:
        for e in range(self.num_edges):
            yield EdgeView(e, self._tails[e], self._heads[e])

    def nodes(self) -> range:
        return range(self.num_nodes)

    def edges(self) -> range:
        return range(self.num_edges)

    # ------------------------------------------------------------------
    # array views for vectorized code
    # ------------------------------------------------------------------
    def tails_array(self) -> np.ndarray:
        """``int64`` array mapping edge id -> tail node id (a copy)."""
        return np.asarray(self._tails, dtype=np.int64)

    def heads_array(self) -> np.ndarray:
        """``int64`` array mapping edge id -> head node id (a copy)."""
        return np.asarray(self._heads, dtype=np.int64)

    # ------------------------------------------------------------------
    # structure analysis
    # ------------------------------------------------------------------
    def bfs_distances(self, source: int) -> np.ndarray:
        """Hop distance from ``source`` to every node (-1 = unreachable)."""
        self._check_node(source)
        dist = np.full(self.num_nodes, -1, dtype=np.int64)
        dist[source] = 0
        frontier = [source]
        while frontier:
            nxt: list[int] = []
            for u in frontier:
                du = dist[u]
                for e in self._out[u]:
                    v = self._heads[e]
                    if dist[v] < 0:
                        dist[v] = du + 1
                        nxt.append(v)
            frontier = nxt
        return dist

    def is_leveled(self) -> bool:
        """True iff nodes admit levels with every edge going level i -> i+1.

        The paper calls such networks *leveled* (Section 1.3.1); butterflies
        are the canonical example.  Equivalent to a consistent topological
        level assignment on a DAG where all edges span exactly one level.
        """
        return self.level_assignment() is not None

    def level_assignment(self) -> np.ndarray | None:
        """Per-node levels with all edges spanning exactly +1, else ``None``.

        Levels of disconnected components are normalized so each component's
        minimum level is 0.  Works on the *undirected* constraint graph:
        level(head) = level(tail) + 1 for every edge.
        """
        n = self.num_nodes
        level = np.zeros(n, dtype=np.int64)
        seen = np.zeros(n, dtype=bool)
        for start in range(n):
            if seen[start]:
                continue
            seen[start] = True
            level[start] = 0
            component = [start]
            queue = [start]
            while queue:
                u = queue.pop()
                for e in self._out[u]:
                    v = self._heads[e]
                    if not seen[v]:
                        seen[v] = True
                        level[v] = level[u] + 1
                        component.append(v)
                        queue.append(v)
                    elif level[v] != level[u] + 1:
                        return None
                for e in self._in[u]:
                    v = self._tails[e]
                    if not seen[v]:
                        seen[v] = True
                        level[v] = level[u] - 1
                        component.append(v)
                        queue.append(v)
                    elif level[v] != level[u] - 1:
                        return None
            base = min(int(level[v]) for v in component)
            for v in component:
                level[v] -= base
        return level

    def is_acyclic(self) -> bool:
        """True iff the directed graph has no cycle (Kahn's algorithm)."""
        indeg = np.zeros(self.num_nodes, dtype=np.int64)
        for h in self._heads:
            indeg[h] += 1
        stack = [v for v in range(self.num_nodes) if indeg[v] == 0]
        removed = 0
        while stack:
            u = stack.pop()
            removed += 1
            for e in self._out[u]:
                v = self._heads[e]
                indeg[v] -= 1
                if indeg[v] == 0:
                    stack.append(v)
        return removed == self.num_nodes

    def to_networkx(self):
        """Export as a :class:`networkx.MultiDiGraph` (labels preserved)."""
        import networkx as nx

        g = nx.MultiDiGraph(name=self.name)
        for v in range(self.num_nodes):
            g.add_node(v, label=self._labels[v])
        for e in range(self.num_edges):
            g.add_edge(self._tails[e], self._heads[e], key=e)
        return g

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise NetworkError(f"node id {node} out of range [0, {self.num_nodes})")

    def _check_edge(self, edge_id: int) -> None:
        if not 0 <= edge_id < self.num_edges:
            raise NetworkError(f"edge id {edge_id} out of range [0, {self.num_edges})")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Network(name={self.name!r}, nodes={self.num_nodes}, "
            f"edges={self.num_edges})"
        )
