"""Hypercube networks (Section 1.3.4).

An ``n``-node hypercube (``n`` a power of two) links node ``u`` to
``u ^ 2**j`` for every bit ``j``.  Aiello et al. [1] route any permutation
of ``L``-flit messages on it in ``O(L + log n)`` flit steps using a small
constant number of virtual channels; we provide the topology and the
greedy bit-fixing paths used as inputs to the generic simulators.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .butterfly import is_power_of_two
from .graph import Network, NetworkError

__all__ = ["Hypercube", "bit_fixing_path"]


@dataclass
class Hypercube:
    """An ``n``-node hypercube; node labels are the integers themselves."""

    n: int
    network: Network = field(init=False)
    dimension: int = field(init=False)

    def __post_init__(self) -> None:
        if not is_power_of_two(self.n) or self.n < 2:
            raise NetworkError(f"hypercube needs a power-of-two n >= 2, got {self.n}")
        self.dimension = self.n.bit_length() - 1
        net = Network(name=f"hypercube(n={self.n})")
        for u in range(self.n):
            net.add_node(u)
        for u in range(self.n):
            for j in range(self.dimension):
                v = u ^ (1 << j)
                if u < v:
                    net.add_bidirectional_edge(u, v)
        self.network = net


def bit_fixing_path(src: int, dst: int, dimension: int) -> list[int]:
    """Greedy bit-fixing route from ``src`` to ``dst`` as a node-id list.

    Bits are corrected from least to most significant; this is the
    canonical oblivious hypercube route (and the building block of
    Valiant's two-phase scheme).
    """
    if not 0 <= src < (1 << dimension) or not 0 <= dst < (1 << dimension):
        raise NetworkError("src/dst out of range for dimension")
    nodes = [src]
    cur = src
    for j in range(dimension):
        bit = 1 << j
        if (cur ^ dst) & bit:
            cur ^= bit
            nodes.append(cur)
    return nodes
