"""Benes networks and Waksman's permutation-routing algorithm.

A Benes network is two back-to-back butterflies (Section 1.3.3).  Beizer
and Benes showed that edge-disjoint paths exist between the inputs and the
outputs for *any* permutation, and Waksman gave a linear-time algorithm
(the "looping" algorithm) to find them.  Used for wormhole routing, the
switch settings route any permutation of ``n`` ``L``-flit messages in
``O(L + log n)`` flit steps because no two worms ever share an edge.

Structure used here: an ``n``-input Benes network has ``2 log n + 1``
levels of ``n`` nodes.  The cross edges leaving level ``l`` flip

* bit ``l`` for ``l < log n`` (ascending), and
* bit ``2 log n - 1 - l`` for ``l >= log n`` (descending),

so the outermost edge-levels (0 and ``2 log n - 1``) pair columns ``2i``
and ``2i + 1`` into 2x2 switches and the middle levels form two disjoint
``n/2``-input Benes subnetworks on the even / odd columns — exactly the
recursive shape Waksman's algorithm exploits.

Node and edge id formulas match :class:`repro.network.butterfly.Butterfly`:
node ``(w, l)`` is ``l * n + w``; the straight/cross edges out of
``(w, l)`` are ``2 n l + 2 w`` and ``2 n l + 2 w + 1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .butterfly import is_power_of_two
from .graph import Network, NetworkError

__all__ = ["Benes", "waksman_paths", "looping_assignment"]


@dataclass
class Benes:
    """Arithmetic model of an ``n``-input Benes network."""

    n: int
    log_n: int = field(init=False)
    depth: int = field(init=False)

    def __post_init__(self) -> None:
        if not is_power_of_two(self.n) or self.n < 2:
            raise NetworkError(f"Benes needs a power-of-two n >= 2, got {self.n}")
        self.log_n = self.n.bit_length() - 1
        self.depth = 2 * self.log_n

    @property
    def num_levels(self) -> int:
        return self.depth + 1

    @property
    def num_nodes(self) -> int:
        return self.n * self.num_levels

    @property
    def num_edges(self) -> int:
        return 2 * self.n * self.depth

    def cross_bit(self, level: int) -> int:
        """Weight exponent of the bit flipped by cross edges leaving ``level``."""
        if not 0 <= level < self.depth:
            raise NetworkError(f"no edge-level {level}")
        return level if level < self.log_n else self.depth - 1 - level

    def node(self, column: int, level: int) -> int:
        if not (0 <= column < self.n and 0 <= level <= self.depth):
            raise NetworkError(f"no node (column={column}, level={level})")
        return level * self.n + column

    def edge(self, column: int, level: int, cross: bool) -> int:
        if not (0 <= column < self.n and 0 <= level < self.depth):
            raise NetworkError(f"no edge out of (column={column}, level={level})")
        return 2 * self.n * level + 2 * column + (1 if cross else 0)

    def to_network(self) -> Network:
        """Materialize as a :class:`Network` with ``(column, level)`` labels."""
        net = Network(name=f"benes(n={self.n})")
        for level in range(self.num_levels):
            for w in range(self.n):
                net.add_node((w, level))
        for level in range(self.depth):
            bit = 1 << self.cross_bit(level)
            for w in range(self.n):
                net.add_edge(self.node(w, level), self.node(w, level + 1))
                net.add_edge(self.node(w, level), self.node(w ^ bit, level + 1))
        return net

    def columns_to_edges(self, columns: np.ndarray) -> np.ndarray:
        """Convert per-level column paths, shape ``(m, depth+1)``, to edge ids."""
        cols = np.asarray(columns, dtype=np.int64)
        if cols.ndim != 2 or cols.shape[1] != self.num_levels:
            raise NetworkError(
                f"columns must have shape (m, {self.num_levels}), got {cols.shape}"
            )
        tails = cols[:, :-1]
        heads = cols[:, 1:]
        levels = np.arange(self.depth, dtype=np.int64)[None, :]
        cross = (tails != heads).astype(np.int64)
        return 2 * self.n * levels + 2 * tails + cross


def looping_assignment(perm: np.ndarray) -> np.ndarray:
    """Assign each input to the upper (0) or lower (1) subnetwork.

    This is the core step of Waksman's algorithm.  Constraints: inputs
    ``2i`` and ``2i+1`` (same input switch) must use different subnetworks,
    and so must the two inputs destined for outputs ``2o`` and ``2o+1``
    (same output switch).  The constraint graph is a union of two perfect
    matchings, hence a disjoint union of even cycles, so a valid 2-coloring
    always exists; we find it by walking each cycle once ("looping").

    Parameters
    ----------
    perm:
        A permutation of ``range(n)`` with ``n`` even.

    Returns
    -------
    ``int8`` array ``s`` with ``s[x]`` the subnetwork of input ``x``.
    """
    perm = np.asarray(perm, dtype=np.int64)
    n = perm.size
    if n % 2 != 0:
        raise NetworkError(f"looping assignment needs even n, got {n}")
    if not np.array_equal(np.sort(perm), np.arange(n)):
        raise NetworkError("perm is not a permutation")
    # co_partner[x] = the input sharing x's *output* switch.
    inv = np.empty(n, dtype=np.int64)
    inv[perm] = np.arange(n)
    co_partner = inv[perm ^ 1]
    sub = np.full(n, -1, dtype=np.int8)
    for start in range(n):
        if sub[start] >= 0:
            continue
        x, s = start, 0
        while sub[x] < 0:
            sub[x] = s
            partner = x ^ 1  # same input switch -> opposite subnetwork
            sub[partner] = 1 - s
            x = co_partner[partner]  # same output switch -> opposite again
            s = 1 - sub[partner]
        # The walk always closes the cycle back at `start` consistently
        # because the constraint graph's cycles alternate matchings.
    return sub


def waksman_paths(perm: np.ndarray) -> np.ndarray:
    """Edge-disjoint Benes paths realizing ``perm`` (Waksman's algorithm).

    Parameters
    ----------
    perm:
        Permutation of ``range(n)``; message ``x`` travels from input
        column ``x`` to output column ``perm[x]``.  ``n`` must be a power
        of two, ``n >= 2``.

    Returns
    -------
    ``int64`` array of shape ``(n, 2 log n + 1)``: row ``x`` lists the
    column occupied by message ``x`` at each level.  Rows describe
    pairwise edge-disjoint paths through :class:`Benes`.
    """
    perm = np.asarray(perm, dtype=np.int64)
    n = perm.size
    if not is_power_of_two(n) or n < 2:
        raise NetworkError(f"waksman_paths needs a power-of-two n >= 2, got {n}")
    if not np.array_equal(np.sort(perm), np.arange(n)):
        raise NetworkError("perm is not a permutation")
    log_n = n.bit_length() - 1
    columns = np.empty((n, 2 * log_n + 1), dtype=np.int64)
    columns[:, 0] = np.arange(n)
    _route_recursive(perm, columns, np.arange(n), 0)
    return columns


def _route_recursive(
    perm: np.ndarray, columns: np.ndarray, rows: np.ndarray, depth: int
) -> None:
    """Fill ``columns[rows, depth : 2(log n)+1-depth]`` for sub-perm ``perm``.

    ``rows`` maps sub-input index -> row of the top-level ``columns``
    matrix; ``depth`` is the recursion depth (how many outer level-pairs
    have been fixed).  At recursion depth ``d`` the subnetwork spans global
    levels ``d .. 2 log n - d`` and columns are built from the *high* bits:
    the global column equals ``(subcolumn << d) | fixed_low_bits``, and the
    low bits are already recorded in ``columns[:, d]``.
    """
    n = perm.size
    total_levels = columns.shape[1]
    if n == 2:
        # Base case: two edge-levels crossing the same bit.  Cross at the
        # first level if needed, go straight at the second.
        lo_mask = (1 << depth) - 1
        for i in range(2):
            row = rows[i]
            low = int(columns[row, depth]) & lo_mask
            dest_col = (int(perm[i]) << depth) | low
            columns[row, depth + 1] = dest_col
            columns[row, depth + 2] = dest_col
        return

    sub = looping_assignment(perm)
    half = n // 2
    sub_perm = np.empty((2, half), dtype=np.int64)
    sub_rows = np.empty((2, half), dtype=np.int64)
    for x in range(n):
        s = int(sub[x])
        in_switch = x >> 1
        out_switch = int(perm[x]) >> 1
        sub_perm[s, in_switch] = out_switch
        sub_rows[s, in_switch] = rows[x]
        # Entering edge-level `depth`: set the cross bit (global bit
        # `depth`) of the column to the subnetwork id.
        row = rows[x]
        col = int(columns[row, depth])
        bit = 1 << depth
        columns[row, depth + 1] = (col & ~bit) | (s << depth)
    for s in range(2):
        _route_recursive(sub_perm[s], columns, sub_rows[s], depth + 1)
    # Leaving edge-level ``2 log n - 1 - depth``: restore bit `depth` to the
    # destination's bit.
    exit_level = total_levels - 1 - depth
    bit = 1 << depth
    for x in range(n):
        row = rows[x]
        col = int(columns[row, exit_level - 1])
        dest_bit = int(perm[x]) & 1
        columns[row, exit_level] = (col & ~bit) | (dest_bit << depth)
