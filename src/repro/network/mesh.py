"""Meshes, tori, and k-ary n-cubes (Section 1.3.4).

A *k-ary n-cube* has ``k**n`` nodes labelled by coordinate tuples in
``{0..k-1}**n``; each node links to the nodes at distance one in each
dimension, wrapping around in a torus.  A *mesh with constant dimension*
(the paper's phrase) is the non-wrapping variant.  Dally's influential
analyses [15, 16] of virtual-channel routers were carried out on these
topologies, and the deadlock-avoidance schemes of Dally and Seitz (dateline
virtual channels on the torus) are exercised on them in
:mod:`repro.sim.deadlock`.

Dimension-order (e-cube) routing paths are provided for both variants; on
the torus they optionally take the shorter wrap direction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product

from .graph import Network, NetworkError

__all__ = ["KAryNCube", "dimension_order_path"]


@dataclass
class KAryNCube:
    """A k-ary n-cube (torus) or mesh.

    Parameters
    ----------
    k:
        Radix (nodes per dimension), ``k >= 2``.
    n:
        Number of dimensions, ``n >= 1``.
    wrap:
        ``True`` builds the torus; ``False`` the mesh.
    """

    k: int
    n: int
    wrap: bool = True
    network: Network = field(init=False)

    def __post_init__(self) -> None:
        if self.k < 2:
            raise NetworkError(f"radix k must be >= 2, got {self.k}")
        if self.n < 1:
            raise NetworkError(f"dimension n must be >= 1, got {self.n}")
        kind = "torus" if self.wrap else "mesh"
        net = Network(name=f"{self.k}-ary {self.n}-cube ({kind})")
        for coords in product(range(self.k), repeat=self.n):
            net.add_node(coords)
        for coords in product(range(self.k), repeat=self.n):
            u = self.node(coords)
            for dim in range(self.n):
                nxt = coords[dim] + 1
                if nxt < self.k:
                    v = self.node(self._with(coords, dim, nxt))
                    net.add_bidirectional_edge(u, v)
                elif self.wrap and self.k > 2:
                    # k == 2 wrap would duplicate the existing +/-1 links.
                    v = self.node(self._with(coords, dim, 0))
                    net.add_bidirectional_edge(u, v)
        self.network = net

    @property
    def num_nodes(self) -> int:
        return self.k**self.n

    def node(self, coords: tuple[int, ...]) -> int:
        """Node id of a coordinate tuple (mixed-radix, dimension 0 major)."""
        if len(coords) != self.n:
            raise NetworkError(f"expected {self.n} coordinates, got {len(coords)}")
        node = 0
        for c in coords:
            if not 0 <= c < self.k:
                raise NetworkError(f"coordinate {c} out of range [0, {self.k})")
            node = node * self.k + c
        return node

    def coords(self, node: int) -> tuple[int, ...]:
        """Coordinate tuple of a node id."""
        if not 0 <= node < self.num_nodes:
            raise NetworkError(f"node id {node} out of range")
        out = []
        for _ in range(self.n):
            node, c = divmod(node, self.k)
            out.append(c)
        return tuple(reversed(out))

    @staticmethod
    def _with(coords: tuple[int, ...], dim: int, value: int) -> tuple[int, ...]:
        lst = list(coords)
        lst[dim] = value
        return tuple(lst)


def dimension_order_path(cube: KAryNCube, src: int, dst: int) -> list[int]:
    """Dimension-order (e-cube) route as a node-id list, ``src`` first.

    Corrects one dimension at a time in increasing dimension order — the
    classic deterministic minimal route of Dally and Seitz.  On a torus the
    shorter wrap direction is taken (ties resolved toward increasing
    coordinates).
    """
    cur = list(cube.coords(src))
    dst_coords = cube.coords(dst)
    nodes = [src]
    for dim in range(cube.n):
        while cur[dim] != dst_coords[dim]:
            delta = dst_coords[dim] - cur[dim]
            if cube.wrap and cube.k > 2:
                # Choose the direction with the shorter wrap distance.
                forward = delta % cube.k
                step = 1 if forward <= cube.k - forward else -1
            else:
                step = 1 if delta > 0 else -1
            cur[dim] = (cur[dim] + step) % cube.k
            nodes.append(cube.node(tuple(cur)))
    return nodes
