"""Random and synthetic benchmark networks for the Section 2 experiments.

Theorem 2.1.6 is *network independent*: its bound depends only on the
congestion ``C``, dilation ``D``, message length ``L`` and virtual-channel
count ``B`` of the workload, never on the topology.  To exercise it we need
families of networks and path sets whose ``C`` and ``D`` we can dial in:

* :func:`layered_network` — random leveled networks (every edge goes from
  level ``i`` to ``i+1``), the structure assumed by Leighton, Maggs,
  Ranade and Rao's leveled-network algorithm [26] and convenient because
  wormhole routing on them can never deadlock;
* :func:`random_walk_paths` — random level-0 to level-``depth`` paths in a
  layered network, whose congestion concentrates near
  ``num_messages / width``;
* :func:`chain_bundle` — disjoint parallel chains giving *exact* control
  of ``C`` and ``D`` (all messages on a chain share every edge).
"""

from __future__ import annotations

import numpy as np

from .graph import Network, NetworkError

__all__ = ["layered_network", "random_walk_paths", "chain_bundle"]


def layered_network(
    width: int,
    depth: int,
    out_degree: int,
    rng: np.random.Generator,
) -> Network:
    """A random leveled network with ``depth + 1`` levels of ``width`` nodes.

    Every node at level ``i < depth`` receives ``out_degree`` edges to
    *distinct* random nodes at level ``i+1``.  Node labels are
    ``(column, level)`` and the node id of ``(w, i)`` is ``i*width + w``.
    """
    if width < 1 or depth < 1:
        raise NetworkError("width and depth must be >= 1")
    if not 1 <= out_degree <= width:
        raise NetworkError(f"out_degree must be in [1, {width}], got {out_degree}")
    net = Network(name=f"layered(width={width}, depth={depth}, d={out_degree})")
    for level in range(depth + 1):
        for w in range(width):
            net.add_node((w, level))
    for level in range(depth):
        base_next = (level + 1) * width
        for w in range(width):
            targets = rng.choice(width, size=out_degree, replace=False)
            for t in targets:
                net.add_edge(level * width + w, base_next + int(t))
    return net


def random_walk_paths(
    net: Network,
    width: int,
    depth: int,
    num_messages: int,
    rng: np.random.Generator,
) -> list[list[int]]:
    """Random top-to-bottom walks in a :func:`layered_network`.

    Each message starts at a uniformly random level-0 node and follows a
    uniformly random outgoing edge at every level.  Returns node-id lists
    (length ``depth + 1`` each); paths in a leveled network are
    automatically edge-simple.
    """
    paths: list[list[int]] = []
    for _ in range(num_messages):
        node = int(rng.integers(width))
        walk = [node]
        for _level in range(depth):
            succ = net.successors(node)
            if not succ:
                raise NetworkError(f"node {node} has no outgoing edge")
            node = succ[int(rng.integers(len(succ)))]
            walk.append(node)
        paths.append(walk)
    return paths


def chain_bundle(
    num_chains: int, depth: int, messages_per_chain: int
) -> tuple[Network, list[list[int]]]:
    """Disjoint chains of length ``depth`` with ``messages_per_chain`` each.

    The returned workload has congestion exactly ``messages_per_chain``
    and dilation exactly ``depth`` — the cleanest instance for calibrating
    schedule-length measurements, because every pair of messages on a
    chain conflicts on *every* edge.
    """
    if num_chains < 1 or depth < 1 or messages_per_chain < 1:
        raise NetworkError("num_chains, depth, messages_per_chain must be >= 1")
    net = Network(name=f"chains(num={num_chains}, depth={depth})")
    for c in range(num_chains):
        for i in range(depth + 1):
            net.add_node((c, i))
    for c in range(num_chains):
        base = c * (depth + 1)
        for i in range(depth):
            net.add_edge(base + i, base + i + 1)
    paths = []
    for c in range(num_chains):
        base = c * (depth + 1)
        chain_nodes = list(range(base, base + depth + 1))
        paths.extend([list(chain_nodes) for _ in range(messages_per_chain)])
    return net, paths
