"""Topology substrate: networks the paper's algorithms run on."""

from .benes import Benes, looping_assignment, waksman_paths
from .butterfly import Butterfly, is_power_of_two, wrapped_butterfly
from .debruijn import DeBruijn, ShuffleExchange, debruijn_path
from .graph import EdgeView, Network, NetworkError
from .hypercube import Hypercube, bit_fixing_path
from .mesh import KAryNCube, dimension_order_path
from .multibutterfly import Multibutterfly
from .random_networks import chain_bundle, layered_network, random_walk_paths
from .tree import CompleteTree, tree_path

__all__ = [
    "Benes",
    "Butterfly",
    "CompleteTree",
    "DeBruijn",
    "EdgeView",
    "Hypercube",
    "KAryNCube",
    "Multibutterfly",
    "Network",
    "NetworkError",
    "ShuffleExchange",
    "bit_fixing_path",
    "chain_bundle",
    "debruijn_path",
    "dimension_order_path",
    "is_power_of_two",
    "layered_network",
    "looping_assignment",
    "random_walk_paths",
    "tree_path",
    "waksman_paths",
    "wrapped_butterfly",
]
