"""Seeded cross-model invariant fuzzer: ``repro fuzz --rounds N --seed S``.

Each round draws a random case from one of five families —

``layered``
    random leveled network + random-walk paths (the Theorem 2.1.6
    substrate), cross-checked for delivery, unobstructed time, the
    ``ceil(L C / B)`` capacity bound, B-monotonicity (wormhole and
    store-and-forward), full-vs-restricted dominance, the LLL schedule
    length bound, Dally-Seitz consistency, batched == serial
    bit-exactness for every batched model (all five lockstep kernels,
    the adaptive one on a derived permutation mesh), the
    store-and-forward ``O(L (C + D))`` envelope, and the
    ``repro.analysis.estimate`` delay envelope (``lower <= makespan
    <= upper``) on every clean wormhole / store-and-forward /
    restricted run;
``chain``
    :func:`~repro.network.random_networks.chain_bundle` bundles with
    exactly dialed congestion/dilation, same oracles;
``gadget``
    the Theorem 2.2.1 hard instance at a random ``(C, D, B)``, plus the
    explicit ``(L - D) M / B`` lower bound;
``ring``
    cyclic ring traffic where deadlock is *deterministic*
    (``deadlocked iff B < hops`` given ``L > B``) and the dateline VC
    assignment must restore delivery;
``continuous``
    open-loop arrival traces through the continuous simulator, checked
    for message conservation.

Every case is reproducible from ``(root seed, round index)`` alone.  On
a violation the fuzzer *shrinks* — greedily dropping path chunks and
reducing ``L`` while the violation persists — and writes a replayable
JSON artifact; ``repro fuzz --replay <artifact>`` re-runs exactly that
case.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..network.graph import Network, NetworkError
from . import invariants as inv
from .invariants import Violation

__all__ = [
    "FuzzCase",
    "FuzzReport",
    "FAMILIES",
    "replay_artifact",
    "run_case",
    "run_fuzz",
    "shrink_case",
]

ARTIFACT_VERSION = 1

#: Case families, in draw order.  ``weights`` biases the draw toward the
#: cheap high-yield families.
FAMILIES = ("layered", "chain", "gadget", "ring", "continuous")
_FAMILY_WEIGHTS = (0.35, 0.25, 0.15, 0.15, 0.10)


@dataclass
class FuzzCase:
    """One generated case: a network, routes, and run parameters.

    ``extra`` carries family-specific facts the checkers need (the
    gadget's lower bound, the ring's expected-deadlock verdict, the
    continuous trace, ...).  A case is fully serializable: the network
    travels as its insertion-ordered edge list, so
    ``Network.add_edge`` replay rebuilds identical edge ids.
    """

    family: str
    network: Network
    paths: list[list[int]]  # edge-id sequences
    message_length: int
    priority: str
    sim_seed: int
    channels: tuple[int, ...]
    extra: dict[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        return (
            f"{self.family}: {self.network.num_nodes} nodes, "
            f"{self.network.num_edges} edges, {len(self.paths)} paths, "
            f"L={self.message_length}, channels={list(self.channels)}"
        )


@dataclass
class FuzzReport:
    """Outcome of :func:`run_fuzz`."""

    rounds: int
    seed: int
    cases_by_family: dict[str, int]
    checks_run: int
    failures: list[dict[str, Any]]  # artifact payloads (also on disk)
    artifact_paths: list[str]

    @property
    def ok(self) -> bool:
        return not self.failures


class _PathShim:
    """Duck-typed stand-in for :class:`repro.routing.paths.Path`.

    ``congestion`` / ``dilation`` / ``channel_dependency_graph`` only
    read ``.edges`` and ``.length`` — a shim avoids re-walking node
    sequences for every generated case.
    """

    __slots__ = ("edges", "length")

    def __init__(self, edges):
        self.edges = tuple(int(e) for e in edges)
        self.length = len(self.edges)


def _stats(paths: list[list[int]]) -> tuple[int, int]:
    from ..routing.paths import congestion, dilation

    shims = [_PathShim(p) for p in paths]
    return congestion(shims), dilation(shims)


# ----------------------------------------------------------------------
# Case generators (one per family, driven by a spawned Generator)
# ----------------------------------------------------------------------


def _gen_layered(rng: np.random.Generator) -> FuzzCase:
    from ..network.random_networks import layered_network, random_walk_paths

    width = int(rng.integers(4, 7))
    depth = int(rng.integers(3, 6))
    out_degree = int(rng.integers(2, 4))
    messages = int(rng.integers(6, 17))
    net = layered_network(width, depth, out_degree, rng)
    walks = random_walk_paths(net, width, depth, messages, rng)
    paths = [_edges_of_walk(net, w) for w in walks]
    return FuzzCase(
        family="layered",
        network=net,
        paths=paths,
        message_length=int(rng.integers(4, 13)),
        priority=str(rng.choice(["random", "age"])),
        sim_seed=int(rng.integers(0, 2**31)),
        channels=(1, 2, 4),
        extra={"acyclic": True},  # leveled networks: forward-only CDG
    )


def _edges_of_walk(net: Network, walk) -> list[int]:
    edges = []
    for u, v in zip(walk[:-1], walk[1:]):
        edges.append(net.edge_between(int(u), int(v)))
    return edges


def _gen_chain(rng: np.random.Generator) -> FuzzCase:
    from ..network.random_networks import chain_bundle

    chains = int(rng.integers(2, 5))
    depth = int(rng.integers(3, 9))
    messages = int(rng.integers(2, 7))
    net, walks = chain_bundle(chains, depth, messages)
    paths = [_edges_of_walk(net, w) for w in walks]
    return FuzzCase(
        family="chain",
        network=net,
        paths=paths,
        message_length=int(rng.integers(4, 13)),
        priority=str(rng.choice(["random", "age"])),
        sim_seed=int(rng.integers(0, 2**31)),
        channels=(1, 2, 4),
        extra={"acyclic": True},
    )


def _gen_gadget(rng: np.random.Generator) -> FuzzCase:
    from ..core.lower_bound import (
        build_hard_instance,
        hard_instance_lower_bound,
    )

    B = int(rng.choice([1, 2]))
    C = (B + 1) * int(rng.integers(2, 4))
    D = int(rng.integers(max(7, B + 2), 12))
    inst = build_hard_instance(C=C, D=D, B=B)
    L = inst.recommended_length(float(rng.uniform(1.5, 2.5)))
    bound = hard_instance_lower_bound(inst, L)
    return FuzzCase(
        family="gadget",
        network=inst.network,
        paths=[list(p) for p in inst.paths],
        message_length=L,
        priority=str(rng.choice(["random", "age"])),
        sim_seed=int(rng.integers(0, 2**31)),
        channels=(B,),
        extra={
            "built_B": B,
            "dilation": inst.dilation,
            "acyclic": True,
        },
    )


def _gen_ring(rng: np.random.Generator) -> FuzzCase:
    n = int(rng.integers(3, 7))
    hops = int(rng.integers(2, n + 1))
    B = int(rng.choice([1, 2, 3]))
    L = hops + B + int(rng.integers(1, 4))  # L > B: worms can wrap shut
    net = Network(name=f"fuzz-ring({n})")
    nodes = net.add_nodes(range(n))
    ring = [net.add_edge(nodes[i], nodes[(i + 1) % n]) for i in range(n)]
    paths = [[ring[(s + j) % n] for j in range(hops)] for s in range(n)]
    return FuzzCase(
        family="ring",
        network=net,
        paths=paths,
        message_length=L,
        priority="index",
        sim_seed=int(rng.integers(0, 2**31)),
        channels=(B,),
        extra={"hops": hops, "expect_deadlock": B < hops},
    )


def _gen_continuous(rng: np.random.Generator) -> FuzzCase:
    from ..network.random_networks import layered_network

    width = int(rng.integers(4, 7))
    depth = int(rng.integers(3, 5))
    net = layered_network(width, depth, int(rng.integers(2, 4)), rng)
    horizon = int(rng.integers(150, 301))
    shape = str(rng.choice(["constant", "burst"]))
    if shape == "burst":
        period = int(rng.integers(40, 90))
        burst = int(rng.integers(10, period // 2 + 1))
        t = np.arange(horizon)
        trace = np.where(
            (t % period) < burst, float(rng.uniform(0.3, 0.7)), 0.02
        )
    else:
        trace = np.full(horizon, float(rng.uniform(0.05, 0.4)))
    return FuzzCase(
        family="continuous",
        network=net,
        paths=[],
        message_length=int(rng.integers(3, 9)),
        priority="random",
        sim_seed=int(rng.integers(0, 2**31)),
        channels=(int(rng.choice([1, 2, 4])),),
        extra={
            "width": width,
            "depth": depth,
            "horizon": horizon,
            "rate_trace": [round(float(r), 6) for r in trace],
        },
    )


_GENERATORS = {
    "layered": _gen_layered,
    "chain": _gen_chain,
    "gadget": _gen_gadget,
    "ring": _gen_ring,
    "continuous": _gen_continuous,
}


def generate_case(
    root_seed: int, round_index: int, families: tuple[str, ...] = FAMILIES
) -> FuzzCase:
    """The case for ``(root_seed, round_index)`` — stable by construction.

    Each round gets its own :class:`numpy.random.SeedSequence` spawn, so
    inserting new draw sites in one generator never perturbs any other
    round.
    """
    rng = np.random.default_rng(
        np.random.SeedSequence(entropy=root_seed, spawn_key=(round_index,))
    )
    if families == FAMILIES:
        weights = np.asarray(_FAMILY_WEIGHTS)
    else:
        weights = np.ones(len(families)) / len(families)
    family = str(rng.choice(list(families), p=weights / weights.sum()))
    return _GENERATORS[family](rng)


# ----------------------------------------------------------------------
# Checking one case
# ----------------------------------------------------------------------


def _run_model(case: FuzzCase, model: str, B: int, telemetry=None):
    from ..facade import simulate

    return simulate(
        (case.network, case.paths),
        model=model,
        B=B,
        message_length=case.message_length,
        seed=case.sim_seed,
        priority=case.priority,
        telemetry=telemetry,
        max_steps=200_000,
    )


def _envelope_check(
    case: FuzzCase, model: str, B: int, res: Any, C: int
) -> Violation | None:
    """Clean run inside the ``repro.analysis.estimate`` envelope.

    Skips deadlocked / step-capped runs: the upper budget is
    conditioned on clean delivery (a stalled run's makespan measures
    the stall, not the routing).
    """
    if res.deadlocked or res.hit_step_cap:
        return None
    from ..analysis.estimate import estimate_paths

    env = estimate_paths(
        model,
        message_length=case.message_length,
        B=B,
        path_lengths=[len(p) for p in case.paths],
        congestion=C,
    )
    return inv.check_estimate_envelope(
        int(res.makespan), lower=env.lower, upper=env.upper, model=model
    )


def _check_routed(case: FuzzCase, telemetry=None) -> list[Violation]:
    """The wormhole-family oracles on one routed case."""
    C, D = _stats(case.paths)
    lengths = [len(p) for p in case.paths]
    L = case.message_length
    out: list[Violation] = []

    worm_makespans: dict[int, int] = {}
    for B in case.channels:
        res = _run_model(case, "wormhole", B, telemetry=telemetry)
        f_deadlocked = bool(res.deadlocked)
        f_cap = bool(res.hit_step_cap)
        out.extend(
            v
            for v in (
                inv.check_delivery(
                    delivered=int(res.num_delivered),
                    messages=int(res.num_messages),
                    deadlocked=f_deadlocked,
                    hit_step_cap=f_cap,
                ),
                None
                if (f_deadlocked or f_cap)
                else inv.check_unobstructed(
                    int(res.makespan),
                    message_length=L,
                    path_lengths=lengths,
                    B=B,
                ),
                None
                if (f_deadlocked or f_cap)
                else inv.check_congestion_bound(
                    int(res.makespan),
                    message_length=L,
                    congestion=C,
                    B=B,
                ),
                _envelope_check(case, "wormhole", B, res, C),
                inv.check_deadlock_consistency(
                    f_deadlocked,
                    cdg_acyclic=bool(case.extra.get("acyclic", False)),
                ),
            )
            if v is not None
        )
        if case.extra.get("expect_deadlock") is not None:
            want = B < int(case.extra["hops"])
            if f_deadlocked != want:
                out.append(
                    Violation(
                        "ring-deadlock-determinism",
                        f"ring case with hops={case.extra['hops']}, B={B}, "
                        f"L={L}: expected deadlocked={want}, "
                        f"observed {f_deadlocked}",
                        observed=f_deadlocked,
                        bound=want,
                    )
                )
        if not (f_deadlocked or f_cap):
            worm_makespans[B] = int(res.makespan)
        if case.extra.get("built_B") == B and not (f_deadlocked or f_cap):
            bound = (L - int(case.extra["dilation"])) * len(case.paths) / B
            got = inv.check_gadget_bound(int(res.makespan), lower_bound=bound)
            if got is not None:
                out.append(got)
    out.extend(inv.check_b_monotonicity(worm_makespans, model="wormhole"))

    if case.family in ("layered", "chain"):
        out.extend(_check_dominance_and_schedule(case, C, D, worm_makespans))
    return out


def _check_dominance_and_schedule(
    case: FuzzCase, C: int, D: int, worm_makespans: dict[int, int]
) -> list[Violation]:
    from ..core.schedule import execute_schedule
    from ..core.scheduler import lll_schedule

    L = case.message_length
    lengths = [len(p) for p in case.paths]
    out: list[Violation] = []

    # Store-and-forward: monotone in bandwidth + asymptotic envelope.
    sf_makespans: dict[int, int] = {}
    for B in case.channels:
        res = _run_model(case, "store_forward", B)
        if res.deadlocked or res.hit_step_cap:
            continue
        sf_makespans[B] = int(res.makespan)
        got = _envelope_check(case, "store_forward", B, res, C)
        if got is not None:
            out.append(got)
        got = inv.check_unobstructed(
            int(res.makespan),
            message_length=L,
            path_lengths=lengths,
            B=B,
            model="store_forward",
        )
        if got is not None:
            out.append(got)
        if B == 1:
            got = inv.check_store_forward_envelope(
                int(res.makespan), message_length=L, congestion=C, dilation=D
            )
            if got is not None:
                out.append(got)
    out.extend(
        inv.check_b_monotonicity(sf_makespans, model="store_forward")
    )

    # Section 1.4: full B=C multiplexing dominates the restricted model.
    B_low = case.channels[0]
    if C >= 1 and B_low in worm_makespans:
        restricted = _run_model(case, "restricted", B_low)
        full = _run_model(case, "wormhole", max(C, 1))
        if not (
            restricted.deadlocked
            or restricted.hit_step_cap
            or full.deadlocked
            or full.hit_step_cap
        ):
            got = inv.check_full_vs_restricted(
                int(full.makespan),
                int(restricted.makespan),
                B=B_low,
                congestion=C,
            )
            if got is not None:
                out.append(got)
            got = _envelope_check(case, "restricted", B_low, restricted, C)
            if got is not None:
                out.append(got)

    # Theorem 2.1.6: build + execute an LLL schedule at each B.
    for B in case.channels:
        build = lll_schedule(
            case.paths,
            message_length=L,
            B=B,
            rng=np.random.default_rng(case.sim_seed),
            mode="direct",
        )
        res = execute_schedule(
            case.network,
            case.paths,
            build.schedule,
            B=B,
            require_unblocked=False,
            seed=case.sim_seed,
        )
        got = inv.check_schedule_bound(
            int(res.makespan), length_bound=int(build.length_bound)
        )
        if got is not None:
            out.append(got)
        got = inv.check_delivery(
            delivered=int(res.num_delivered),
            messages=int(res.num_messages),
            deadlocked=bool(res.deadlocked),
            hit_step_cap=bool(res.hit_step_cap),
            model="schedule",
        )
        if got is not None:
            out.append(got)

    # Batched lockstep == serial, at the lowest channel count.
    out.extend(_check_batch_serial(case, B_low))
    return out


def _check_batch_serial(case: FuzzCase, B: int) -> list[Violation]:
    """Lockstep batch == serial replay, for *every* batched model.

    The path-based models run on the case's own network and routes,
    each under an arbitration discipline it accepts (cut-through has no
    age priority; restricted and adaptive take none).  The adaptive
    router needs a mesh, so it runs on a small permutation mesh derived
    from the case seed — the invariant still exercises all five kernels
    every round.
    """
    from ..facade import simulate
    from ..network.mesh import KAryNCube
    from ..sim.sweep import _result_metrics

    seeds = [case.sim_seed, case.sim_seed + 1, case.sim_seed + 2]
    routed = (case.network, case.paths)
    ct_priority = case.priority if case.priority in ("random", "index") else "random"
    cube = KAryNCube(4, 2, wrap=False)
    perm = np.random.default_rng(case.sim_seed).permutation(cube.num_nodes)
    demands = [(i, int(d)) for i, d in enumerate(perm) if i != int(d)]
    jobs: list[tuple[str, Any, int, dict[str, Any]]] = [
        ("wormhole", routed, case.message_length, {"priority": case.priority}),
        ("cut_through", routed, case.message_length, {"priority": ct_priority}),
        ("store_forward", routed, case.message_length, {}),
        ("restricted", routed, case.message_length, {}),
        ("adaptive", (cube, demands), min(case.message_length, 6), {}),
    ]
    out: list[Violation] = []
    for model, problem, L, kw in jobs:
        batch = simulate(
            problem, model=model, B=B, batch=seeds, message_length=L, **kw
        )
        serial = [
            simulate(problem, model=model, B=B, seed=s, message_length=L, **kw)
            for s in seeds
        ]
        got = inv.check_batch_matches_serial(
            [_result_metrics(r) for r in batch],
            [_result_metrics(r) for r in serial],
            model=model,
        )
        if got is not None:
            out.append(got)
    return out


def _check_continuous(case: FuzzCase) -> list[Violation]:
    from ..facade import simulate

    width = int(case.extra["width"])
    depth = int(case.extra["depth"])
    net = case.network
    rate = np.asarray(case.extra["rate_trace"], dtype=np.float64)

    def path_of(source: int, prng: np.random.Generator) -> list[int]:
        node = int(source)
        edges: list[int] = []
        for _ in range(depth):
            out = net.out_edges(node)
            e = out[int(prng.integers(len(out)))]
            edges.append(e)
            node = net.head(e)
        return edges

    res = simulate(
        (net, width, path_of),
        model="continuous",
        B=case.channels[0],
        message_length=case.message_length,
        seed=case.sim_seed,
        rate=rate,
        horizon=int(case.extra["horizon"]),
    )
    got = inv.check_conservation(
        generated=int(res.generated),
        delivered=int(res.delivered),
        backlog=int(res.final_backlog),
    )
    return [got] if got is not None else []


#: Dispatch table for :func:`run_case`.  Module-level on purpose: tests
#: monkeypatch entries here to prove a sabotaged invariant is caught,
#: shrunk, and serialized without touching any simulator.
CASE_CHECKERS: dict[str, Any] = {
    "layered": _check_routed,
    "chain": _check_routed,
    "gadget": _check_routed,
    "ring": _check_routed,
    "continuous": lambda case, telemetry=None: _check_continuous(case),
}


def run_case(case: FuzzCase, telemetry: Any = None) -> list[Violation]:
    """All applicable invariant checks for one case (empty == clean)."""
    return CASE_CHECKERS[case.family](case, telemetry=telemetry)


# ----------------------------------------------------------------------
# Shrinking
# ----------------------------------------------------------------------


def _still_fails(case: FuzzCase, invariant: str) -> bool:
    try:
        return any(v.invariant == invariant for v in run_case(case))
    except NetworkError:
        return False  # a shrink that breaks preconditions is not smaller


def _with(case: FuzzCase, *, paths=None, L=None) -> FuzzCase:
    return FuzzCase(
        family=case.family,
        network=case.network,
        paths=case.paths if paths is None else paths,
        message_length=case.message_length if L is None else L,
        priority=case.priority,
        sim_seed=case.sim_seed,
        channels=case.channels,
        extra=dict(case.extra),
    )


def shrink_case(case: FuzzCase, invariant: str, max_probes: int = 80) -> FuzzCase:
    """Greedy delta-debugging: smallest case still violating ``invariant``.

    Alternates dropping path chunks (halves, then quarters, then single
    paths) with reducing ``L``.  Gadget and ring cases keep their path
    sets intact — a strict subset of the hard instance no longer
    satisfies "every ``B + 1`` messages share a primary edge" (the
    recomputed bound would be unsound), and a partial ring breaks the
    deadlock-determinism rule — so those families shrink ``L`` only.
    """
    probes = 0
    structural = case.family in ("layered", "chain")

    def fails(c: FuzzCase) -> bool:
        nonlocal probes
        if probes >= max_probes:
            return False
        probes += 1
        return _still_fails(c, invariant)

    best = case
    if structural:
        chunk = max(len(best.paths) // 2, 1)
        while chunk >= 1 and len(best.paths) > 1:
            i, shrunk = 0, False
            while i < len(best.paths):
                trial_paths = best.paths[:i] + best.paths[i + chunk :]
                if trial_paths:
                    cand = _with(best, paths=trial_paths)
                    if fails(cand):
                        best = cand
                        shrunk = True
                        continue  # same i: next chunk slid into place
                i += chunk
            if not shrunk:
                chunk //= 2

    # Reduce L (gadget keeps L > D so the bound stays applicable).
    L_floor = 1
    if case.family == "gadget":
        L_floor = int(case.extra.get("dilation", 0)) + 1
    L = best.message_length
    while L > L_floor:
        step = max((L - L_floor) // 2, 1)
        cand = _with(best, L=L - step)
        if fails(cand):
            best = cand
            L = best.message_length
        elif step == 1:
            break
        else:
            L = L - step + step // 2 + 1  # probe a gentler cut next loop
            if L >= best.message_length:
                break
    return best


# ----------------------------------------------------------------------
# Artifacts
# ----------------------------------------------------------------------


def case_to_artifact(
    case: FuzzCase,
    violations: list[Violation],
    *,
    root_seed: int,
    round_index: int,
) -> dict[str, Any]:
    net = case.network
    return {
        "version": ARTIFACT_VERSION,
        "family": case.family,
        "violations": [v.to_json() for v in violations],
        "network": {
            "name": net.name,
            "num_nodes": net.num_nodes,
            "edges": [
                [int(net.tail(e)), int(net.head(e))]
                for e in range(net.num_edges)
            ],
        },
        "paths": [[int(e) for e in p] for p in case.paths],
        "message_length": int(case.message_length),
        "priority": case.priority,
        "sim_seed": int(case.sim_seed),
        "channels": [int(b) for b in case.channels],
        "extra": case.extra,
        "fuzz": {"root_seed": int(root_seed), "round": int(round_index)},
    }


def case_from_artifact(payload: dict[str, Any]) -> FuzzCase:
    meta = payload["network"]
    net = Network(name=meta.get("name") or "replayed")
    for i in range(int(meta["num_nodes"])):
        net.add_node(i)
    for tail, head in meta["edges"]:
        net.add_edge(int(tail), int(head))
    return FuzzCase(
        family=payload["family"],
        network=net,
        paths=[[int(e) for e in p] for p in payload["paths"]],
        message_length=int(payload["message_length"]),
        priority=payload["priority"],
        sim_seed=int(payload["sim_seed"]),
        channels=tuple(int(b) for b in payload["channels"]),
        extra=dict(payload.get("extra") or {}),
    )


def replay_artifact(path: str) -> list[Violation]:
    """Re-run the exact case stored in a repro artifact."""
    with open(path) as fh:
        payload = json.load(fh)
    if payload.get("version") != ARTIFACT_VERSION:
        raise NetworkError(
            f"unsupported artifact version {payload.get('version')!r}"
        )
    return run_case(case_from_artifact(payload))


# ----------------------------------------------------------------------
# The driver
# ----------------------------------------------------------------------


def run_fuzz(
    rounds: int,
    seed: int = 0,
    *,
    families: tuple[str, ...] | None = None,
    artifact_dir: str = "fuzz-artifacts",
    telemetry: Any = None,
    progress: Any = None,
) -> FuzzReport:
    """Fuzz ``rounds`` cases from ``seed``; shrink + serialize failures.

    ``telemetry`` (a :mod:`repro.telemetry` probe set) attaches to every
    wormhole run of the routed families, so ``repro profile``-style
    collectors see fuzz traffic unchanged.  ``progress`` is an optional
    ``fn(round_index, case, violations)`` hook for live reporting.
    """
    fams = FAMILIES if families is None else tuple(families)
    unknown = set(fams) - set(FAMILIES)
    if unknown:
        raise NetworkError(
            f"unknown fuzz families: {', '.join(sorted(unknown))}; "
            f"known: {', '.join(FAMILIES)}"
        )
    by_family = dict.fromkeys(fams, 0)
    failures: list[dict[str, Any]] = []
    artifact_paths: list[str] = []
    checks = 0

    for i in range(int(rounds)):
        case = generate_case(int(seed), i, fams)
        by_family[case.family] += 1
        violations = run_case(case, telemetry=telemetry)
        checks += 1
        if progress is not None:
            progress(i, case, violations)
        if not violations:
            continue
        shrunk = shrink_case(case, violations[0].invariant)
        final = run_case(shrunk)
        if not final:  # shrink landed on a flake boundary: keep original
            shrunk, final = case, violations
        payload = case_to_artifact(
            shrunk, final, root_seed=int(seed), round_index=i
        )
        os.makedirs(artifact_dir, exist_ok=True)
        out_path = os.path.join(
            artifact_dir, f"fuzz-{seed}-round{i}-{final[0].invariant}.json"
        )
        with open(out_path, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        failures.append(payload)
        artifact_paths.append(out_path)

    return FuzzReport(
        rounds=int(rounds),
        seed=int(seed),
        cases_by_family=by_family,
        checks_run=checks,
        failures=failures,
        artifact_paths=artifact_paths,
    )
