"""Property-based invariant fuzzing for the router models.

Two layers:

* :mod:`repro.fuzz.invariants` — pure oracle functions for every
  invariant the paper (and the batch/continuous subsystems) guarantee;
* :mod:`repro.fuzz.fuzzer` — the seeded case generator, cross-model
  checker, shrinker, and replayable-artifact machinery behind
  ``repro fuzz``.

>>> from repro.fuzz import run_fuzz
>>> run_fuzz(rounds=3, seed=0).ok
True
"""

from .invariants import (
    STORE_FORWARD_SLACK,
    Violation,
    check_b_monotonicity,
    check_batch_matches_serial,
    check_congestion_bound,
    check_conservation,
    check_deadlock_consistency,
    check_delivery,
    check_full_vs_restricted,
    check_gadget_bound,
    check_schedule_bound,
    check_store_forward_envelope,
    check_unobstructed,
)
from .fuzzer import (
    FAMILIES,
    FuzzCase,
    FuzzReport,
    generate_case,
    replay_artifact,
    run_case,
    run_fuzz,
    shrink_case,
)

__all__ = [
    "FAMILIES",
    "FuzzCase",
    "FuzzReport",
    "STORE_FORWARD_SLACK",
    "Violation",
    "check_b_monotonicity",
    "check_batch_matches_serial",
    "check_congestion_bound",
    "check_conservation",
    "check_deadlock_consistency",
    "check_delivery",
    "check_full_vs_restricted",
    "check_gadget_bound",
    "check_schedule_bound",
    "check_store_forward_envelope",
    "check_unobstructed",
    "generate_case",
    "replay_artifact",
    "run_case",
    "run_fuzz",
    "shrink_case",
]
