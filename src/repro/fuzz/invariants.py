"""Pure invariant checkers: the oracles behind ``repro fuzz``.

Every function here is a *pure* predicate over plain numbers and arrays —
no simulation, no RNG, no I/O — returning ``None`` when the invariant
holds and a :class:`Violation` when it does not.  Purity is the point:
``tests/fuzz/test_invariants.py`` pins each oracle against hand-built
violating and passing inputs, so a fuzzing run can only fail because the
*simulators* broke, never because an oracle silently drifted.

The invariants and where they come from:

=============================  =======================================
Checker                        Source
=============================  =======================================
:func:`check_delivery`         model contract: a finished run without
                               deadlock / step-cap delivered everything
:func:`check_unobstructed`     Section 1's unobstructed time: a worm
                               needs ``L + d - 1`` flit steps (store-
                               and-forward: ``d * ceil(L / B)``)
:func:`check_congestion_bound` edge-capacity counting: each delivered
                               worm holds a virtual channel on every
                               path edge for ``>= L`` steps, and an
                               edge serves ``<= B`` worms at once, so
                               ``makespan >= ceil(L * C / B)``
:func:`check_gadget_bound`     Theorem 2.2.1's explicit lower bound
                               ``(L - D) M / B`` on the hard instance
:func:`check_schedule_bound`   Theorem 2.1.6: executing an LLL schedule
                               finishes within ``schedule.length_bound``
:func:`check_store_forward_envelope`
                               Leighton–Maggs–Rao / Rothvoß
                               ``O(C + D)`` store-and-forward envelope:
                               greedy stays within ``slack * L (C + D)``
:func:`check_b_monotonicity`   model dominance: more virtual channels
                               (or store-and-forward bandwidth) never
                               slows a workload down under one seed
:func:`check_full_vs_restricted`
                               Section 1.4 Remarks: ``B = C``
                               multiplexing dominates the restricted
                               ``B``-buffer model
:func:`check_deadlock_consistency`
                               Dally–Seitz: an acyclic channel
                               dependency graph rules deadlock out
:func:`check_estimate_envelope`
                               ``repro.analysis.estimate`` contract: a
                               clean run's makespan lies inside the
                               analytic delay envelope
                               ``lower <= makespan <= upper``
:func:`check_batch_matches_serial`
                               ``repro.sim.batch`` contract: batched
                               lockstep trials are bit-identical to
                               serial runs
:func:`check_conservation`     open-loop bookkeeping: every generated
                               message is delivered or still backlogged
=============================  =======================================
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from typing import Any

import numpy as np

__all__ = [
    "Violation",
    "check_b_monotonicity",
    "check_batch_matches_serial",
    "check_congestion_bound",
    "check_conservation",
    "check_deadlock_consistency",
    "check_delivery",
    "check_estimate_envelope",
    "check_full_vs_restricted",
    "check_gadget_bound",
    "check_schedule_bound",
    "check_store_forward_envelope",
    "check_unobstructed",
]

#: Default slack factor of the store-and-forward asymptotic envelope.
#: Greedy runs measure within ~1.1x of ``L (C + D)``; 4x absorbs any
#: scheduling noise while still catching a broken router immediately.
STORE_FORWARD_SLACK = 4.0


@dataclass(frozen=True)
class Violation:
    """One broken invariant, with the numbers that broke it."""

    invariant: str
    detail: str
    observed: Any = None
    bound: Any = None

    def to_json(self) -> dict[str, Any]:
        def safe(v):
            if isinstance(v, (np.integer,)):
                return int(v)
            if isinstance(v, (np.floating,)):
                return float(v)
            return v

        return {
            "invariant": self.invariant,
            "detail": self.detail,
            "observed": safe(self.observed),
            "bound": safe(self.bound),
        }


def check_delivery(
    *,
    delivered: int,
    messages: int,
    deadlocked: bool,
    hit_step_cap: bool,
    model: str = "wormhole",
) -> Violation | None:
    """A run that neither deadlocked nor hit its step cap delivered all."""
    if deadlocked or hit_step_cap:
        return None
    if delivered == messages:
        return None
    return Violation(
        "delivery",
        f"{model}: run finished cleanly but delivered "
        f"{delivered}/{messages} messages",
        observed=delivered,
        bound=messages,
    )


def check_unobstructed(
    makespan: int,
    *,
    message_length: int,
    path_lengths: Sequence[int] | np.ndarray,
    B: int = 1,
    model: str = "wormhole",
    release_times: Sequence[int] | np.ndarray | None = None,
) -> Violation | None:
    """``makespan >= max_i(release_i + unobstructed_time_i)``.

    A worm router cannot beat ``L + d - 1`` flit steps per message; a
    store-and-forward router with link bandwidth ``B`` cannot beat
    ``d * ceil(L / B)`` (it forwards whole packets hop by hop).
    Zero-length paths (source == destination) are excluded: those
    messages are delivered without entering the network.
    """
    lengths = np.asarray(path_lengths, dtype=np.int64)
    if lengths.size == 0:
        return None
    L = int(message_length)
    if model == "store_forward":
        per_message = lengths * math.ceil(L / max(int(B), 1))
    else:
        per_message = np.where(lengths > 0, L + lengths - 1, 0)
    if release_times is not None:
        per_message = per_message + np.asarray(release_times, dtype=np.int64)
    bound = int(per_message.max(initial=0))
    if makespan >= bound:
        return None
    return Violation(
        "unobstructed-time",
        f"{model}: makespan {makespan} beats the unobstructed time "
        f"{bound} (L={L}, B={B})",
        observed=int(makespan),
        bound=bound,
    )


def check_congestion_bound(
    makespan: int,
    *,
    message_length: int,
    congestion: int,
    B: int,
) -> Violation | None:
    """Wormhole edge-capacity bound: ``makespan >= ceil(L * C / B)``.

    Each of the ``C`` worms crossing the busiest edge holds one of its
    ``B`` virtual channels for at least ``L`` flit steps.
    """
    if congestion < 1:
        return None
    bound = math.ceil(int(message_length) * int(congestion) / int(B))
    if makespan >= bound:
        return None
    return Violation(
        "congestion-bound",
        f"wormhole: makespan {makespan} beats the edge-capacity bound "
        f"ceil(L*C/B) = {bound} (L={message_length}, C={congestion}, B={B})",
        observed=int(makespan),
        bound=bound,
    )


def check_estimate_envelope(
    makespan: int,
    *,
    lower: int | None,
    upper: int | None,
    model: str = "wormhole",
) -> Violation | None:
    """Analytic delay envelope: ``lower <= makespan <= upper``.

    ``lower``/``upper`` come from a
    :class:`repro.analysis.estimate.DelayEnvelope` for the *same*
    ``(model, B, L, paths)`` as the simulated run; either side may be
    ``None`` when the estimator declines it (the adaptive model has no
    congestion-based lower bound).  Only clean runs — no deadlock, no
    step cap — are in scope; the caller filters those.
    """
    if lower is not None and makespan < lower:
        return Violation(
            "estimate-envelope",
            f"{model}: makespan {makespan} beats the analytic lower "
            f"envelope {lower}",
            observed=int(makespan),
            bound=int(lower),
        )
    if upper is not None and makespan > upper:
        return Violation(
            "estimate-envelope",
            f"{model}: makespan {makespan} exceeds the analytic upper "
            f"envelope {upper}",
            observed=int(makespan),
            bound=int(upper),
        )
    return None


def check_gadget_bound(makespan: int, *, lower_bound: float) -> Violation | None:
    """Theorem 2.2.1: on the hard instance, ``makespan >= (L - D) M / B``."""
    if makespan + 1e-9 >= lower_bound:
        return None
    return Violation(
        "gadget-lower-bound",
        f"hard instance routed in {makespan} flit steps, below the "
        f"Theorem 2.2.1 bound (L-D)M/B = {lower_bound:g}",
        observed=int(makespan),
        bound=float(lower_bound),
    )


def check_schedule_bound(makespan: int, *, length_bound: int) -> Violation | None:
    """Theorem 2.1.6: an executed LLL schedule meets its length bound."""
    if makespan <= length_bound:
        return None
    return Violation(
        "schedule-upper-bound",
        f"schedule execution took {makespan} flit steps, above its "
        f"guaranteed length bound {length_bound}",
        observed=int(makespan),
        bound=int(length_bound),
    )


def check_store_forward_envelope(
    makespan: int,
    *,
    message_length: int,
    congestion: int,
    dilation: int,
    slack: float = STORE_FORWARD_SLACK,
) -> Violation | None:
    """Rothvoß / Leighton–Maggs–Rao sanity: greedy store-and-forward at
    ``B = 1`` stays within ``slack * L * (C + D)`` flit steps."""
    bound = slack * int(message_length) * (int(congestion) + int(dilation))
    if makespan <= bound:
        return None
    return Violation(
        "store-forward-envelope",
        f"store-and-forward took {makespan} flit steps, above "
        f"{slack:g} * L(C+D) = {bound:g} "
        f"(L={message_length}, C={congestion}, D={dilation})",
        observed=int(makespan),
        bound=float(bound),
    )


def check_b_monotonicity(
    makespans: Mapping[int, int], *, model: str = "wormhole"
) -> list[Violation]:
    """Larger ``B`` never slower under identical seeds.

    ``makespans`` maps ``B -> makespan`` for runs that differ *only* in
    ``B`` (same workload, same seed).  Holds for the wormhole and
    store-and-forward models; the cut-through buffer knob is *not*
    monotone (more buffering can reorder arbitration), so it is
    deliberately not fuzzed with this oracle.
    """
    out: list[Violation] = []
    items = sorted((int(b), int(m)) for b, m in makespans.items())
    for (b_lo, m_lo), (b_hi, m_hi) in zip(items[:-1], items[1:]):
        if m_hi > m_lo:
            out.append(
                Violation(
                    "b-monotonicity",
                    f"{model}: makespan rose from {m_lo} at B={b_lo} to "
                    f"{m_hi} at B={b_hi} under the same seed",
                    observed=m_hi,
                    bound=m_lo,
                )
            )
    return out


def check_full_vs_restricted(
    full_makespan: int, restricted_makespan: int, *, B: int, congestion: int
) -> Violation | None:
    """Section 1.4 Remarks: full ``B = C`` multiplexing dominates the
    restricted ``B``-buffer model on the same workload and seed."""
    if full_makespan <= restricted_makespan:
        return None
    return Violation(
        "full-vs-restricted",
        f"wormhole at B=C={congestion} took {full_makespan} flit steps, "
        f"slower than the restricted {B}-buffer model at "
        f"{restricted_makespan}",
        observed=int(full_makespan),
        bound=int(restricted_makespan),
    )


def check_deadlock_consistency(
    deadlocked: bool, *, cdg_acyclic: bool, model: str = "wormhole"
) -> Violation | None:
    """Dally–Seitz: an acyclic channel dependency graph forbids deadlock."""
    if not (deadlocked and cdg_acyclic):
        return None
    return Violation(
        "deadlock-freedom",
        f"{model}: simulator declared deadlock although the channel "
        f"dependency graph is acyclic (Dally–Seitz guarantees progress)",
        observed=True,
        bound=False,
    )


def check_batch_matches_serial(
    batch_metrics: Sequence[Mapping[str, Any]],
    serial_metrics: Sequence[Mapping[str, Any]],
    model: str = "wormhole",
) -> Violation | None:
    """Batched lockstep trials must be bit-identical to serial replays.

    Both sequences are per-trial metric dicts (as produced by
    ``repro.sim.sweep``'s ``_result_metrics``) in the same trial order;
    ``model`` names the simulator under test (every entry of
    ``repro.sim.batch.BATCHED_MODELS`` is held to this invariant).
    """
    if len(batch_metrics) != len(serial_metrics):
        return Violation(
            "batch-serial-exactness",
            f"{model}: trial count mismatch: batched {len(batch_metrics)} "
            f"vs serial {len(serial_metrics)}",
            observed=len(batch_metrics),
            bound=len(serial_metrics),
        )
    for i, (got, want) in enumerate(zip(batch_metrics, serial_metrics)):
        if dict(got) == dict(want):
            continue
        keys = sorted(
            k
            for k in set(got) | set(want)
            if dict(got).get(k) != dict(want).get(k)
        )
        return Violation(
            "batch-serial-exactness",
            f"{model}: trial {i} diverged between batched and serial "
            f"execution on {', '.join(keys)}: batched "
            f"{ {k: dict(got).get(k) for k in keys} } vs serial "
            f"{ {k: dict(want).get(k) for k in keys} }",
            observed={k: dict(got).get(k) for k in keys},
            bound={k: dict(want).get(k) for k in keys},
        )
    return None


def check_conservation(
    *, generated: int, delivered: int, backlog: int
) -> Violation | None:
    """Open-loop bookkeeping: ``generated == delivered + backlog``."""
    if generated == delivered + backlog:
        return None
    return Violation(
        "message-conservation",
        f"open-loop run generated {generated} messages but accounts for "
        f"{delivered} delivered + {backlog} backlogged",
        observed=delivered + backlog,
        bound=generated,
    )
